#!/usr/bin/env python3
"""Spatial string search: scan text for a pattern with a 3-PE pipeline.

The paper's introduction motivates spatial accelerators with string
processing; this example builds the Table 3 ``string_search`` fabric for
an arbitrary text and pattern:

    reader PE  ->  byte splitter PE  ->  DFA worker PE  ->  memory

The reader streams 32-bit words from memory, the splitter cracks them
into bytes, and the worker walks a DFA whose expected-character table
lives in its scratchpad (preloaded by the host, as the paper's toolchain
allows).  The worker stores a 0/1 word per input byte; ones mark the
positions where a pattern occurrence completes.

The simple restart rule (on mismatch, restart at state 1 if the byte is
the pattern's first character, else state 0) is exact for patterns with
no proper self-overlap — "MICRO" qualifies, as does any pattern whose
first character never recurs.

Run:  python examples/string_search_app.py [pattern] [repeats]
"""

import sys

from repro import FunctionalPE, System
from repro.workloads.common import memory_streamer
from repro.workloads.string_search import _pack_words, dfa_program, splitter_program
import repro.workloads.string_search as ss


def has_self_overlap(pattern: str) -> bool:
    """True when the naive restart rule would miss overlapped matches."""
    for k in range(1, len(pattern)):
        if pattern[:-k] == pattern[k:] and len(pattern[k:]) > 1:
            return True
    return pattern[0] in pattern[1:]


def search(text: str, pattern: str) -> list[int]:
    """Return the byte positions where an occurrence of pattern ends."""
    data = text.encode("ascii")
    words = _pack_words(data)
    out_base = len(words)

    system = System(memory_words=out_base + len(data) + 16)
    reader = FunctionalPE(name="reader")
    splitter = FunctionalPE(name="splitter")
    worker = FunctionalPE(name="worker")

    memory_streamer(0, len(words), eos="sentinel").configure(reader)
    splitter_program(worker.params).configure(splitter)

    # Point the module-level pattern the DFA uses at ours, then build.
    ss._PATTERN = pattern
    dfa_program(worker.params, out_base, len(pattern)).configure(worker)
    worker.scratchpad.preload([ord(c) for c in pattern])

    for pe in (reader, splitter, worker):
        system.add_pe(pe)
    system.add_read_port(reader, request_out=0, response_in=0)
    system.connect(reader, 1, splitter, 0)
    system.connect(splitter, 1, worker, 0)
    system.add_write_port(worker, 1, worker, 2)
    system.memory.preload(words, base=0)

    cycles = system.run()
    marks = system.memory.dump(out_base, len(data))
    positions = [i for i, mark in enumerate(marks) if mark]
    print(f"  fabric ran {cycles} cycles "
          f"({system.pe('worker').counters.retired} worker instructions, "
          f"worker CPI {system.pe('worker').counters.cpi:.2f})")
    return positions


def main() -> None:
    pattern = sys.argv[1] if len(sys.argv) > 1 else "MICRO"
    repeats = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    if has_self_overlap(pattern):
        raise SystemExit(
            f"pattern {pattern!r} overlaps itself; the single-register DFA "
            "restart rule needs a non-self-overlapping pattern"
        )

    filler = "THE QUICK BROWN FOX JUMPS OVER THE LAZY DOG "
    text = (filler + pattern + " ") * repeats + filler
    # Pad to a whole number of words.
    text += "." * (-len(text) % 4)

    print(f"searching {len(text)} characters for {pattern!r} ...")
    positions = search(text, pattern)
    expected = []
    at = text.find(pattern)
    while at != -1:
        expected.append(at + len(pattern) - 1)
        at = text.find(pattern, at + 1)
    print(f"  matches end at byte positions: {positions}")
    assert positions == expected, (positions, expected)
    print(f"  verified against str.find: {len(positions)} occurrence(s)")


if __name__ == "__main__":
    main()
