#!/usr/bin/env python3
"""Quickstart: write a triggered program, run it, read the counters.

Triggered instructions have no program counter: each instruction is a
guarded atomic action, and every cycle the hardware fires the highest
priority instruction whose guard matches the predicate registers and the
tagged input queues.  This example programs one PE to accumulate a
tagged stream and walks through what the guards mean.

Run:  python examples/quickstart.py
"""

from repro import FunctionalPE, PipelinedPE, assemble, config_by_name

# Tag 0 marks ordinary data; tag 1 marks the last word of the stream.
ACCUMULATOR = """
# While data is available, add it into %r1.  The guard asks for predicate
# p0 == 0 (we are still running) and a word with tag 0 at the head of
# input queue 0.  'deq' consumes the word at dispatch.
when %p == XXXXXXX0 with %i0.0:
    add %r1, %r1, %i0; deq %i0;

# The EOS word still carries data: fold it in, emit the total on output
# queue 0 (tagged 1 for the consumer downstream), and set p0 = 1.
when %p == XXXXXXX0 with %i0.1:
    add %r1, %r1, %i0; deq %i0; set %p = ZZZZZZZ1;

when %p == XXXXXXX1:
    mov %o0.1, %r1; set %p = ZZZZZZ1Z;

when %p == XXXXXX1X:
    halt;
"""


def run_on(pe, values):
    """Feed the stream (respecting queue capacity) and run to halt."""
    backlog = [(v, 0) for v in values[:-1]] + [(values[-1], 1)]
    while not pe.halted:
        while backlog and not pe.inputs[0].is_full:
            value, tag = backlog.pop(0)
            pe.inputs[0].enqueue(value, tag)
        pe.step()
        pe.commit_queues()
    return pe.outputs[0].drain()[0].value


def main() -> None:
    values = list(range(1, 11))
    program = assemble(ACCUMULATOR)
    print(f"program: {len(program)} triggered instructions "
          f"({len(program.binary(program_params()))} bytes encoded)")

    # The functional model retires one instruction per cycle whenever any
    # trigger matches — the architectural reference.
    functional = FunctionalPE(name="functional")
    program.configure(functional)
    total = run_on(functional, values)
    print(f"\nfunctional model: sum(1..10) = {total}")
    print(f"  cycles={functional.counters.cycles} "
          f"retired={functional.counters.retired} "
          f"CPI={functional.counters.cpi:.2f}")

    # The same binary runs on any pipelined microarchitecture.  A deep
    # pipeline pays hazard stalls; the paper's +P +Q optimizations win
    # most of them back.
    for name in ("T|D|X1|X2", "T|D|X1|X2 +P+Q"):
        pe = PipelinedPE(config_by_name(name), name=name)
        program.configure(pe)
        total = run_on(pe, values)
        counters = pe.counters
        print(f"\n{name}: sum = {total}")
        print(f"  cycles={counters.cycles} CPI={counters.cpi:.2f} "
              f"stack={ {k: round(v, 2) for k, v in counters.stack().items()} }")


def program_params():
    from repro import DEFAULT_PARAMS
    return DEFAULT_PARAMS


if __name__ == "__main__":
    main()
