#!/usr/bin/env python3
"""A spatial processing chain on a 1x4 PE array.

The paper's motivation for triggered control: PEs react to incoming data
immediately and hand results downstream, so a row of PEs behaves like an
efficient macro-pipeline.  This example evaluates the polynomial

    y = a0 + a1*x + a2*x^2 + a3*x^3        (Horner's scheme)

by streaming x values west-to-east through a 1x4 mesh.  Each element
travels as a word pair — x (tag 0, or tag 1 for the last element)
followed by the running accumulator (tag 2) — and every station computes
``acc' = acc * x + c`` for its own coefficient.  Only nearest-neighbor
queues are used, exactly like the real fabric.

Run:  python examples/processing_chain.py
"""

from repro import FunctionalPE, System
from repro.fabric import Direction, PEArray
from repro.workloads.builder import ProgramBuilder

COEFFS = [7, 3, 2, 5]           # a0 + a1 x + a2 x^2 + a3 x^3
XS = list(range(1, 11))
MASK = 0xFFFFFFFF


def head_program(coefficient: int):
    """The west station: pair each incoming x with the seed accumulator a3."""
    b = ProgramBuilder(start_state="rx")
    b.add(state="rx", checks=["%i3.0"], op="mov %o1.0, %i3", deq=["%i3"],
          next="seed", comment="forward x")
    b.add(state="rx", checks=["%i3.1"], op="mov %o1.1, %i3", deq=["%i3"],
          set_flags={0: True}, next="seed", comment="forward the last x")
    b.add(state="seed", flags={0: False}, op=f"mov %o1.2, ${coefficient}",
          next="rx", comment="accumulator starts at a3")
    b.add(state="seed", flags={0: True}, op=f"mov %o1.2, ${coefficient}",
          next="done")
    b.add(state="done", op="halt")
    return b.program("head")


def station_program(coefficient: int, last: bool):
    """acc' = acc * x + c; x arrives first (tag 0/1), then acc (tag 2)."""
    b = ProgramBuilder(start_state="rx")
    b.add(state="rx", checks=["%i3.0"], op="mov %r2, %i3", deq=["%i3"],
          next="fx", comment="latch x")
    b.add(state="rx", checks=["%i3.1"], op="mov %r2, %i3", deq=["%i3"],
          set_flags={0: True}, next="fx", comment="latch the last x")
    if last:
        # The east station emits the finished y instead of an (x, acc) pair.
        b.add(state="fx", checks=["%i3.2"], op="mul %r3, %i3, %r2",
              next="emit", comment="acc * x")
        b.add(state="emit", flags={0: False},
              op=f"add %o1.0, %r3, ${coefficient}", deq=["%i3"], next="rx",
              comment="y leaves the array")
        b.add(state="emit", flags={0: True},
              op=f"add %o1.1, %r3, ${coefficient}", deq=["%i3"], next="done")
    else:
        b.add(state="fx", flags={0: False}, op="mov %o1.0, %r2", next="mul",
              comment="forward x downstream")
        b.add(state="fx", flags={0: True}, op="mov %o1.1, %r2", next="mul")
        b.add(state="mul", checks=["%i3.2"], op="mul %r3, %i3, %r2",
              next="emit", comment="acc * x")
        b.add(state="emit", flags={0: False},
              op=f"add %o1.2, %r3, ${coefficient}", deq=["%i3"], next="rx",
              comment="updated accumulator follows x")
        b.add(state="emit", flags={0: True},
              op=f"add %o1.2, %r3, ${coefficient}", deq=["%i3"], next="done")
    b.add(state="done", op="halt")
    return b.program(f"station(c={coefficient})")


def main() -> None:
    a0, a1, a2, a3 = COEFFS

    system = System(memory_words=64)
    array = PEArray(system, rows=1, cols=4,
                    make_pe=lambda name: FunctionalPE(name=name))

    head_program(a3).configure(array.pe(0, 0))
    station_program(a2, last=False).configure(array.pe(0, 1))
    station_program(a1, last=False).configure(array.pe(0, 2))
    station_program(a0, last=True).configure(array.pe(0, 3))

    # The host feeds x values into the west edge and collects results
    # from the east edge — the free queues of the edge PEs.
    feed = array.pe(0, 0).inputs[Direction.WEST]
    sink = array.pe(0, 3).outputs[Direction.EAST]

    backlog = [(x, 0) for x in XS[:-1]] + [(XS[-1], 1)]
    results = []
    while not system.all_halted:
        while backlog and not feed.is_full:
            value, tag = backlog.pop(0)
            feed.enqueue(value, tag)
        system.step()
        while not sink.is_empty:
            results.append(sink.dequeue().value)

    expected = [(a0 + a1 * x + a2 * x * x + a3 * x ** 3) & MASK for x in XS]
    print(f"polynomial y = {a0} + {a1}x + {a2}x^2 + {a3}x^3 over x = 1..10")
    print(f"  chain produced: {results}")
    assert results == expected, (results, expected)
    print(f"  verified in {system.cycles} cycles on a 1x4 triggered array "
          f"({sum(pe.counters.retired for pe in array)} instructions retired)")


if __name__ == "__main__":
    main()
