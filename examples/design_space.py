#!/usr/bin/env python3
"""Design-space exploration: pick a PE for your power and delay budget.

Replays the paper's Section 5.4 methodology end to end: measure CPI for
a set of microarchitectures on the ten-workload suite (cycle-accurate
simulation), close every (VT, VDD, frequency) point in the 65 nm model,
extract the Pareto frontier, and answer the designer's question — which
PE should I instantiate for a given budget?

Run:  python examples/design_space.py [--full]

Without --full a representative six-microarchitecture subset keeps the
simulation campaign under a minute; --full sweeps the paper's complete
32-microarchitecture matrix.
"""

import sys

from repro import config_by_name
from repro.dse import CpiTable, pareto_frontier, sweep
from repro.dse.pareto import frontier_span
from repro.pipeline.config import all_configs

SUBSET = ["TDX", "TD|X", "TDX1|X2 +Q", "T|DX +P+Q", "T|D|X1|X2", "T|D|X1|X2 +P+Q"]


def pick(frontier, max_power_mw=None, max_delay_ns=None):
    """Lowest-energy frontier point satisfying the budgets."""
    feasible = [
        p for p in frontier
        if (max_power_mw is None or p.power_mw <= max_power_mw)
        and (max_delay_ns is None or p.ns_per_instruction <= max_delay_ns)
    ]
    if not feasible:
        return None
    return min(feasible, key=lambda p: p.pj_per_instruction)


def main() -> None:
    full = "--full" in sys.argv
    configs = all_configs() if full else [config_by_name(n) for n in SUBSET]
    print(f"measuring CPI for {len(configs)} microarchitectures on the "
          f"ten-workload suite (cycle-accurate)...")
    table = CpiTable(scale=24, cache_path=".dse_cpi_cache.json")
    points = sweep(configs=configs, cpi_table=table)
    frontier = pareto_frontier(points)
    span = frontier_span(frontier)

    print(f"\nclosed {len(points)} design points; "
          f"{len(frontier)} on the Pareto frontier")
    print(f"energy span {span['min_pj']:.2f}-{span['max_pj']:.2f} pJ/ins, "
          f"delay span {span['min_ns']:.2f}-{span['max_ns']:.2f} ns/ins\n")

    print(f"{'design':20s} {'vt':>3s} {'Vdd':>4s} {'MHz':>7s} "
          f"{'ns/ins':>7s} {'pJ/ins':>7s} {'mW':>7s}")
    for point in frontier:
        row = point.row()
        print(f"{row['design']:20s} {row['vt']:>3s} {row['vdd']:4.1f} "
              f"{row['mhz']:7.1f} {row['ns_per_instruction']:7.2f} "
              f"{row['pj_per_instruction']:7.2f} {row['mw']:7.3f}")

    print("\ndesign recommendations:")
    scenarios = [
        ("high performance (delay <= 2 ns/ins)", None, 2.0),
        ("balanced (<= 1 mW, <= 5 ns/ins)", 1.0, 5.0),
        ("ultra low power (<= 0.05 mW)", 0.05, None),
    ]
    for label, power, delay in scenarios:
        choice = pick(frontier, power, delay)
        if choice is None:
            print(f"  {label}: no feasible frontier point")
            continue
        row = choice.row()
        print(f"  {label}:")
        print(f"    {row['design']} @ {row['vdd']:.1f} V {row['vt'].upper()}, "
              f"{row['mhz']:.0f} MHz -> {row['ns_per_instruction']:.2f} ns/ins, "
              f"{row['pj_per_instruction']:.2f} pJ/ins, {row['mw']:.3f} mW")


if __name__ == "__main__":
    main()
