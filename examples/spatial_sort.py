#!/usr/bin/env python3
"""Spatial merge: the paper's high-radix merge-sort building block.

Two PEs stream sorted lists from memory; a merge worker PE combines them
into one sorted list in memory (the Table 3 ``merge`` fabric).  This is
the processing-chain pattern the paper highlights: each PE works on the
current data item and hands it downstream, so the whole fabric behaves
like a pipeline whose throughput is set by a single PE's latency —
exactly why the intra-PE microarchitecture matters at the system level.

The example merges with the single-cycle baseline and with the deepest
pipeline, with and without the hazard optimizations, and reports how the
worker's CPI (and the fabric's total cycles) respond.

Run:  python examples/spatial_sort.py [elements]
"""

import random
import sys

from repro import PipelinedPE, System, config_by_name
from repro.workloads.common import memory_streamer
from repro.workloads.merge import merge_program


def merge_on(config_name: str, xs: list[int], ys: list[int]) -> dict:
    config = config_by_name(config_name)
    n = len(xs)
    out_base = 2 * n

    system = System(memory_words=4 * n + 64)
    stream_a = PipelinedPE(config, name="stream_a")
    stream_b = PipelinedPE(config, name="stream_b")
    worker = PipelinedPE(config, name="worker")
    memory_streamer(0, n, eos="sentinel").configure(stream_a)
    memory_streamer(n, n, eos="sentinel").configure(stream_b)
    merge_program(worker.params, out_base).configure(worker)
    for pe in (stream_a, stream_b, worker):
        system.add_pe(pe)
    system.add_read_port(stream_a, request_out=0, response_in=0)
    system.add_read_port(stream_b, request_out=0, response_in=0)
    system.connect(stream_a, 1, worker, 0)
    system.connect(stream_b, 1, worker, 3)
    system.add_write_port(worker, 1, worker, 2)
    system.memory.preload(xs, base=0)
    system.memory.preload(ys, base=n)

    cycles = system.run()
    merged = system.memory.dump(out_base, 2 * n)
    assert merged == sorted(xs + ys), "merge produced an unsorted list!"
    return {
        "cycles": cycles,
        "worker_cpi": worker.counters.cpi,
        "stack": worker.counters.stack(),
    }


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    rng = random.Random(7)
    xs = sorted(rng.randrange(1 << 30) for _ in range(n))
    ys = sorted(rng.randrange(1 << 30) for _ in range(n))
    print(f"merging two sorted lists of {n} elements on four "
          f"microarchitectures\n")

    baseline_cycles = None
    for name in ("TDX", "T|D|X1|X2", "T|D|X1|X2 +P", "T|D|X1|X2 +P+Q"):
        result = merge_on(name, xs, ys)
        if baseline_cycles is None:
            baseline_cycles = result["cycles"]
        slowdown = result["cycles"] / baseline_cycles
        stack = result["stack"]
        print(f"{name:18s} cycles={result['cycles']:6d} "
              f"(x{slowdown:4.2f} vs TDX)  worker CPI={result['worker_cpi']:5.2f}  "
              f"pred={stack['predicate_hazard']:.2f} "
              f"none={stack['none_triggered']:.2f} "
              f"forb={stack['forbidden']:.2f}")

    print(
        "\nPipelining alone inflates CPI through predicate and queue "
        "hazards;\npredicate prediction (+P) and effective queue status "
        "(+Q) win most of it back\n— the merge worker's comparisons are "
        "data-dependent, so this is the paper's\nworst case for the "
        "predictor (Figure 4) and the optimizations still help."
    )


if __name__ == "__main__":
    main()
