"""Parameter file, header generators, and the CLI drivers."""

import pytest

from repro.asm.__main__ import main as asm_main
from repro.errors import ParameterError
from repro.params import ArchParams, DEFAULT_PARAMS
from repro.toolchain import (
    dump_params,
    generate_c_header,
    generate_sv_header,
    load_params,
    loads_params,
    save_params,
)
from repro.toolchain.__main__ import main as toolchain_main


class TestParamsFile:
    def test_round_trip_defaults(self):
        text = dump_params(DEFAULT_PARAMS)
        assert loads_params(text) == DEFAULT_PARAMS

    def test_round_trip_custom(self):
        params = ArchParams(num_regs=16, word_width=16, tag_width=3)
        assert loads_params(dump_params(params)) == params

    def test_comments_and_blank_lines(self):
        params = loads_params("""
        # a comment
        num_regs: 4   # trailing comment

        num_preds: 4
        """)
        assert params.num_regs == 4 and params.num_preds == 4

    def test_hex_values(self):
        assert loads_params("word_width: 0x20").word_width == 32

    def test_unknown_key_rejected(self):
        with pytest.raises(ParameterError, match="unknown parameter"):
            loads_params("numregs: 8")

    def test_duplicate_key_rejected(self):
        with pytest.raises(ParameterError, match="duplicate"):
            loads_params("num_regs: 8\nnum_regs: 9")

    def test_malformed_line_rejected(self):
        with pytest.raises(ParameterError, match="expected"):
            loads_params("num_regs 8")

    def test_non_integer_rejected(self):
        with pytest.raises(ParameterError, match="integer"):
            loads_params("num_regs: eight")

    def test_disk_round_trip(self, tmp_path):
        path = tmp_path / "params.txt"
        save_params(DEFAULT_PARAMS, str(path))
        assert load_params(str(path)) == DEFAULT_PARAMS


class TestHeaderGenerators:
    def test_sv_header_contains_table2_widths(self):
        header = generate_sv_header()
        assert "localparam integer INSTRUCTION_WIDTH = 106;" in header
        assert "PADDED_INSTRUCTION_WIDTH = 128" in header
        assert "PREDMASK_WIDTH = 16" in header
        assert header.startswith("//")
        assert "endpackage" in header

    def test_c_header_contains_byte_stride(self):
        header = generate_c_header()
        assert "#define TIA_INSTRUCTION_BYTES 16" in header
        assert "#define TIA_WORD_WIDTH 32" in header
        assert "#ifndef TIA_PARAMS_H" in header

    def test_headers_track_parameters(self):
        params = ArchParams(num_preds=16)
        assert "NUM_PREDICATES = 16" in generate_sv_header(params)
        assert f"INSTRUCTION_WIDTH = {params.instruction_width}" in \
            generate_sv_header(params)


class TestCli:
    def test_assemble_and_disassemble(self, tmp_path, capsys):
        source = tmp_path / "p.s"
        binary = tmp_path / "p.bin"
        source.write_text("when %p == XXXXXXXX:\n    halt;\n")
        assert asm_main([str(source), "-o", str(binary)]) == 0
        assert binary.stat().st_size == 16
        assert asm_main(["--disassemble", str(binary)]) == 0
        out = capsys.readouterr().out
        assert "halt" in out

    def test_check_mode(self, tmp_path, capsys):
        source = tmp_path / "p.s"
        source.write_text("when %p == XXXXXXXX:\n    nop;\n")
        assert asm_main(["--check", str(source)]) == 0
        assert "1 instructions" in capsys.readouterr().out

    def test_assembler_error_is_reported(self, tmp_path, capsys):
        source = tmp_path / "bad.s"
        source.write_text("when %p == XXXXXXXX:\n    fdiv %r0, %r1, %r2;\n")
        assert asm_main(["--check", str(source)]) == 1
        assert "error" in capsys.readouterr().err

    def test_custom_params_flow(self, tmp_path, capsys):
        params_path = tmp_path / "params.txt"
        assert toolchain_main(["--emit-defaults", str(params_path)]) == 0
        sv = tmp_path / "params.sv"
        c = tmp_path / "params.h"
        assert toolchain_main(
            ["--params", str(params_path), "--sv", str(sv), "--c", str(c)]
        ) == 0
        assert "INSTRUCTION_WIDTH = 106" in sv.read_text()
        assert "TIA_INSTRUCTION_BYTES 16" in c.read_text()

    def test_toolchain_prints_sv_by_default(self, capsys):
        assert toolchain_main([]) == 0
        assert "package tia_params" in capsys.readouterr().out
