"""Parameter derivation (paper Tables 1 and 2)."""

import pytest

from repro.errors import ParameterError
from repro.params import ArchParams, DEFAULT_PARAMS


class TestDefaults:
    def test_table1_values(self):
        p = DEFAULT_PARAMS
        assert p.num_regs == 8
        assert p.num_input_queues == 4
        assert p.num_output_queues == 4
        assert p.max_check == 2
        assert p.max_deq == 2
        assert p.num_preds == 8
        assert p.word_width == 32
        assert p.tag_width == 2
        assert p.num_instructions == 16
        assert p.num_ops == 42
        assert p.num_srcs == 2
        assert p.num_dsts == 1

    def test_instruction_is_106_bits(self):
        assert DEFAULT_PARAMS.instruction_width == 106

    def test_padded_to_128_bits(self):
        assert DEFAULT_PARAMS.padded_instruction_width == 128

    def test_table2_field_widths(self):
        widths = DEFAULT_PARAMS.field_widths()
        assert widths == {
            "Val": 1,
            "PredMask": 16,
            "QueueIndices": 6,
            "NotTags": 2,
            "TagVals": 4,
            "Op": 6,
            "SrcTypes": 4,
            "SrcIDs": 6,
            "DstTypes": 2,
            "DstIDs": 3,
            "OutTag": 2,
            "IQueueDeq": 6,
            "PredUpdate": 16,
            "Imm": 32,
        }

    def test_word_helpers(self):
        p = DEFAULT_PARAMS
        assert p.word_mask == 0xFFFFFFFF
        assert p.word_sign_bit == 0x80000000
        assert p.num_tags == 4

    def test_table1_rows_cover_all_parameters(self):
        rows = DEFAULT_PARAMS.table1()
        assert len(rows) == 12
        assert rows[0] == ("NRegs", "Number of registers", 8)


class TestDerivedScaling:
    def test_more_queues_widen_indices(self):
        p = ArchParams(num_input_queues=8, max_deq=2)
        # 8 queues + "none" encoding needs 4 bits per index.
        assert p.queue_index_width == 4
        assert p.iqueue_deq_width == 8

    def test_wider_tags_widen_tag_vals(self):
        p = ArchParams(tag_width=4)
        assert p.tag_vals_width == p.max_check * 4
        assert p.num_tags == 16

    def test_instruction_width_tracks_word_width(self):
        narrow = ArchParams(word_width=16)
        assert narrow.instruction_width == 106 - 16
        assert narrow.padded_instruction_width == 96

    def test_more_predicates_widen_masks(self):
        p = ArchParams(num_preds=16)
        assert p.pred_mask_width == 32
        assert p.pred_update_width == 32


class TestValidation:
    @pytest.mark.parametrize("field", [
        "num_regs", "num_input_queues", "num_output_queues", "max_check",
        "max_deq", "num_preds", "word_width", "tag_width",
        "num_instructions", "num_ops", "queue_capacity",
    ])
    def test_rejects_non_positive(self, field):
        with pytest.raises(ParameterError):
            ArchParams(**{field: 0})

    def test_rejects_max_check_above_queue_count(self):
        with pytest.raises(ParameterError):
            ArchParams(max_check=5, num_input_queues=4)

    def test_rejects_max_deq_above_queue_count(self):
        with pytest.raises(ParameterError):
            ArchParams(max_deq=5, num_input_queues=4)

    def test_from_dict_round_trip(self):
        p = ArchParams.from_dict({"num_regs": 16, "word_width": 64})
        assert p.num_regs == 16
        assert p.word_width == 64

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ParameterError, match="unknown parameter"):
            ArchParams.from_dict({"numregs": 8})

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_PARAMS.num_regs = 9
