"""Decoupled load-store queue (Section 6 extension)."""

import pytest

from repro.arch import FunctionalPE
from repro.arch.queue import TaggedQueue
from repro.asm import assemble
from repro.errors import SimMemoryError
from repro.fabric import Memory, System
from repro.fabric.lsq import LoadStoreQueue


def make_lsq(latency=4, entries=4, memory=None):
    memory = memory or Memory(64)
    lsq = LoadStoreQueue(memory, latency=latency,
                         store_buffer_entries=entries)
    lsq.load_request = TaggedQueue(4, "req")
    lsq.load_response = TaggedQueue(4, "rsp")
    lsq.store_address = TaggedQueue(4, "sa")
    lsq.store_data = TaggedQueue(4, "sd")
    return memory, lsq


def spin(lsq, cycles):
    for _ in range(cycles):
        lsq.step()
        for queue in (lsq.load_request, lsq.load_response,
                      lsq.store_address, lsq.store_data):
            queue.commit()


class TestLoads:
    def test_load_latency(self):
        memory, lsq = make_lsq(latency=4)
        memory.preload([0, 0, 99])
        lsq.load_request.enqueue(2, tag=3)
        lsq.load_request.commit()
        spin(lsq, 4)
        assert lsq.load_response.is_empty    # not ready before the latency
        spin(lsq, 1)
        entry = lsq.load_response.dequeue()
        assert entry.value == 99 and entry.tag == 3

    def test_pipelined_loads(self):
        memory, lsq = make_lsq(latency=4)
        memory.preload(list(range(16)))
        results = []
        backlog = [5, 6, 7]
        for _ in range(16):
            while backlog and not lsq.load_request.is_full:
                lsq.load_request.enqueue(backlog.pop(0), tag=0)
            spin(lsq, 1)
            while not lsq.load_response.is_empty:
                results.append(lsq.load_response.dequeue().value)
        assert results == [5, 6, 7]

    def test_rejects_bad_parameters(self):
        with pytest.raises(SimMemoryError):
            LoadStoreQueue(Memory(8), latency=0)
        with pytest.raises(SimMemoryError):
            LoadStoreQueue(Memory(8), store_buffer_entries=0)


class TestStores:
    def test_store_commits_through_buffer(self):
        memory, lsq = make_lsq()
        lsq.store_address.enqueue(3, 0)
        lsq.store_data.enqueue(42, 0)
        for q in (lsq.store_address, lsq.store_data):
            q.commit()
        spin(lsq, 2)   # accept, then drain
        assert memory.load(3) == 42
        assert lsq.stores_committed == 1

    def test_store_buffer_capacity_backpressures(self):
        memory, lsq = make_lsq(entries=1)
        # Two stores arrive back to back; the buffer holds one at a time
        # but drains one per cycle, so both land within a few cycles.
        for address, value in ((1, 10), (2, 20)):
            lsq.store_address.enqueue(address, 0)
            lsq.store_data.enqueue(value, 0)
        for q in (lsq.store_address, lsq.store_data):
            q.commit()
        spin(lsq, 4)
        assert memory.load(1) == 10 and memory.load(2) == 20


class TestForwarding:
    def test_store_to_load_forwarding(self):
        """A load hitting a buffered (not yet committed) store gets the
        store's value, not stale memory."""
        memory, lsq = make_lsq(latency=2)
        memory.preload([0, 0, 0, 7])       # stale value at address 3
        lsq.store_address.enqueue(3, 0)
        lsq.store_data.enqueue(1000, 0)
        lsq.load_request.enqueue(3, 0)
        for q in (lsq.store_address, lsq.store_data, lsq.load_request):
            q.commit()
        spin(lsq, 6)
        assert lsq.load_response.dequeue().value == 1000
        assert lsq.forwarded_loads == 1

    def test_non_matching_load_bypasses_buffered_store(self):
        memory, lsq = make_lsq(latency=2)
        memory.preload([0, 55])
        lsq.store_address.enqueue(3, 0)
        lsq.store_data.enqueue(9, 0)
        lsq.load_request.enqueue(1, 0)
        for q in (lsq.store_address, lsq.store_data, lsq.load_request):
            q.commit()
        spin(lsq, 6)
        assert lsq.load_response.dequeue().value == 55
        assert lsq.forwarded_loads == 0

    def test_youngest_matching_store_wins(self):
        memory, lsq = make_lsq(latency=1, entries=4)
        for value in (10, 20):
            lsq.store_address.enqueue(5, 0)
            lsq.store_data.enqueue(value, 0)
        for q in (lsq.store_address, lsq.store_data):
            q.commit()
        spin(lsq, 1)       # both stores enter... one per cycle: first one
        spin(lsq, 1)       # second store accepted, first drained
        lsq.load_request.enqueue(5, 0)
        lsq.load_request.commit()
        spin(lsq, 4)
        assert lsq.load_response.dequeue().value == 20


class TestSystemIntegration:
    def test_pe_drives_memory_through_an_lsq(self):
        """Read-modify-write through the unified endpoint: the load after
        the store observes the new value via forwarding or memory."""
        system = System(memory_words=32, memory_latency=2)
        pe = FunctionalPE(name="rmw")
        assemble("""
        when %p == XXXXX000:
            mov %o0.0, $4; set %p = ZZZZZ001;          # load [4]
        when %p == XXXXX001 with %i0.0:
            add %r0, %i0, $1; deq %i0; set %p = ZZZZZ011;
        when %p == XXXXX011:
            mov %o1.0, $4; set %p = ZZZZZ010;          # store addr
        when %p == XXXXX010:
            mov %o2.0, %r0; set %p = ZZZZZ110;         # store data
        when %p == XXXXX110:
            mov %o0.0, $4; set %p = ZZZZZ100;          # load [4] again
        when %p == XXXXX100 with %i0.0:
            mov %r1, %i0; deq %i0; set %p = ZZZZZ101;
        when %p == XXXXX101:
            halt;
        """).configure(pe)
        system.add_pe(pe)
        lsq = system.add_load_store_queue(
            pe, load_request_out=0, load_response_in=0,
            store_address_out=1, store_data_out=2)
        system.memory.preload([0, 0, 0, 0, 41])
        system.run()
        assert pe.regs.read(1) == 42
        assert system.memory.load(4) == 42
        assert lsq.loads_issued == 2

    def test_lsq_counts_toward_port_idle(self):
        system = System(memory_words=16)
        pe = FunctionalPE(name="storer")
        assemble("""
        when %p == XXXXXX00:
            mov %o1.0, $2; set %p = ZZZZZZ01;
        when %p == XXXXXX01:
            mov %o2.0, $77; set %p = ZZZZZZ11;
        when %p == XXXXXX11:
            halt;
        """).configure(pe)
        system.add_pe(pe)
        system.add_load_store_queue(pe, 0, 0, 1, 2)
        system.run()
        # The run-loop flush waited for the store buffer to drain.
        assert system.memory.load(2) == 77
