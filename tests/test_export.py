"""CSV export of exhibit data."""

import csv

from repro.eval.export import export_all


def test_export_writes_every_exhibit(tmp_path, cpi_table):
    written = export_all(
        str(tmp_path), scale=cpi_table.scale, cache_path=cpi_table.cache_path
    )
    names = {path.rsplit("/", 1)[-1] for path in written}
    assert names == {
        "table1.csv", "table2.csv", "table3.csv", "figure3_breakdown.csv",
        "figure4_prediction.csv", "figure5_cpi_stacks.csv",
        "figure6_points.csv", "figure8_frontier.csv",
    }
    for path in written:
        with open(path, newline="", encoding="utf-8") as handle:
            rows = list(csv.reader(handle))
        assert len(rows) >= 2, path          # header + data
        assert all(len(row) == len(rows[0]) for row in rows), path

    with open(tmp_path / "figure6_points.csv", newline="") as handle:
        points = list(csv.reader(handle))
    assert len(points) > 3000

    with open(tmp_path / "table2.csv", newline="") as handle:
        fields = {row[0]: int(row[1]) for row in list(csv.reader(handle))[1:]}
    assert sum(fields.values()) == 106
