"""Tagged queue semantics: staged commit, capacity, FIFO order."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.queue import QueueEntry, TaggedQueue
from repro.errors import QueueError


class TestBasics:
    def test_empty_on_construction(self):
        q = TaggedQueue(4)
        assert q.is_empty and q.occupancy == 0 and q.free_slots == 4

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(QueueError):
            TaggedQueue(0)

    def test_staged_enqueue_invisible_until_commit(self):
        q = TaggedQueue(4)
        q.enqueue(1, tag=2)
        assert q.is_empty            # consumer can't see it yet
        assert q.free_slots == 3     # but the slot is taken
        q.commit()
        assert q.occupancy == 1
        assert q.peek(0) == QueueEntry(1, 2)

    def test_enqueue_to_full_raises(self):
        q = TaggedQueue(2)
        q.enqueue(1)
        q.enqueue(2)
        with pytest.raises(QueueError, match="full"):
            q.enqueue(3)

    def test_staged_entries_count_against_capacity(self):
        q = TaggedQueue(2)
        q.enqueue(1)
        q.commit()
        q.enqueue(2)          # staged
        assert q.is_full
        with pytest.raises(QueueError):
            q.enqueue(3)

    def test_dequeue_from_empty_raises(self):
        with pytest.raises(QueueError, match="empty"):
            TaggedQueue(4).dequeue()

    def test_peek_beyond_occupancy_raises(self):
        q = TaggedQueue(4)
        q.enqueue(1)
        q.commit()
        with pytest.raises(QueueError, match="peek"):
            q.peek(1)

    def test_head_and_neck_visibility(self):
        q = TaggedQueue(4)
        q.enqueue(10, tag=0)
        q.enqueue(20, tag=1)
        q.commit()
        assert q.peek(0).value == 10        # head
        assert q.peek(1).value == 20        # neck (Section 5.3)

    def test_dequeue_is_immediate(self):
        q = TaggedQueue(4)
        q.enqueue(1)
        q.commit()
        entry = q.dequeue()
        assert entry.value == 1 and q.is_empty

    def test_drain_and_reset(self):
        q = TaggedQueue(4)
        for value in (1, 2, 3):
            q.enqueue(value)
        q.commit()
        assert [e.value for e in q.drain()] == [1, 2, 3]
        q.enqueue(9)
        q.reset()
        q.commit()
        assert q.is_empty


class TestFifoProperty:
    @given(st.lists(st.tuples(st.integers(0, 2 ** 32 - 1), st.integers(0, 3)),
                    min_size=1, max_size=32))
    def test_order_preserved_across_commits(self, items):
        q = TaggedQueue(len(items))
        for value, tag in items:
            q.enqueue(value, tag)
            q.commit()
        seen = [q.dequeue() for _ in range(len(items))]
        assert [(e.value, e.tag) for e in seen] == items

    @given(st.data())
    def test_interleaved_operations_never_lose_entries(self, data):
        q = TaggedQueue(8)
        reference = []   # entries the consumer can currently see
        staged = []
        for _ in range(data.draw(st.integers(1, 60))):
            action = data.draw(st.sampled_from(["enq", "deq", "commit"]))
            if action == "enq" and q.free_slots > 0:
                value = data.draw(st.integers(0, 1000))
                q.enqueue(value)
                staged.append(value)
            elif action == "deq" and reference:
                assert q.dequeue().value == reference.pop(0)
            elif action == "commit":
                q.commit()
                reference.extend(staged)
                staged.clear()
            assert q.occupancy == len(reference)
            assert q.free_slots == q.capacity - len(reference) - len(staged)


class TestVersionCounter:
    """The monotone version counter backing memoized trigger decisions.

    Soundness of the scheduler's decision cache rests on one invariant:
    any mutation that can change what a queue-status view observes bumps
    ``version``, and the counter never decreases.
    """

    def test_every_mutation_bumps_the_version(self):
        q = TaggedQueue(4)
        v = q.version
        q.enqueue(1)
        assert q.version > v; v = q.version
        q.commit()
        assert q.version > v; v = q.version
        q.dequeue()
        assert q.version > v; v = q.version
        q.enqueue(2)
        q.commit()
        q.drain()
        assert q.version > v; v = q.version
        q.reset()
        assert q.version > v

    def test_empty_commit_leaves_version_alone(self):
        q = TaggedQueue(4)
        v = q.version
        q.commit()
        assert q.version == v

    @given(st.data())
    def test_version_is_strictly_monotone(self, data):
        q = TaggedQueue(4)
        last = q.version
        for _ in range(data.draw(st.integers(1, 40))):
            action = data.draw(st.sampled_from(["enq", "deq", "commit"]))
            if action == "enq" and q.free_slots > 0:
                q.enqueue(data.draw(st.integers(0, 100)))
            elif action == "deq" and q.occupancy:
                q.dequeue()
            elif action == "commit":
                q.commit()
            assert q.version >= last
            last = q.version
