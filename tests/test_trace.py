"""Pipeline tracer / debug monitor."""

from repro.asm import assemble
from repro.pipeline import PipelinedPE, config_by_name
from repro.pipeline.trace import PipelineTracer

LOOP = """
when %p == XXXXXXX0:
    ult %p1, %r0, $5; set %p = ZZZZZZZ1;
when %p == XXXXXX11:
    add %r0, %r0, $1; set %p = ZZZZZZ00;
when %p == XXXXXX01:
    halt;
"""


def traced(config_name):
    pe = PipelinedPE(config_by_name(config_name), name="t")
    assemble(LOOP).configure(pe)
    tracer = PipelineTracer(pe)
    tracer.run()
    return tracer


def test_records_every_cycle():
    tracer = traced("T|D|X")
    assert len(tracer.records) == tracer.pe.counters.cycles


def test_event_histogram_tiles_cycles():
    tracer = traced("T|D|X")
    histogram = tracer.event_histogram()
    assert sum(histogram.values()) == tracer.pe.counters.cycles
    assert histogram["issued"] == tracer.pe.counters.issued
    assert histogram.get("predicate hazard", 0) == \
        tracer.pe.counters.pred_hazard_cycles


def test_stage_names_match_partition():
    assert traced("T|D|X1|X2").stage_names() == ["T", "D", "X1", "X2"]
    assert traced("TDX").stage_names() == ["TDX"]


def test_render_is_a_table():
    tracer = traced("T|D|X")
    text = tracer.render(count=5)
    lines = text.splitlines()
    assert "cycle" in lines[0] and "event" in lines[0]
    assert len(lines) == 6


def test_utilization_bounded():
    tracer = traced("T|D|X1|X2")
    assert 0.0 < tracer.utilization() <= 1.0


def test_speculation_flagged_in_records():
    pe = PipelinedPE(config_by_name("T|D|X1|X2 +P"), name="t")
    assemble(LOOP).configure(pe)
    tracer = PipelineTracer(pe)
    tracer.run()
    assert any(record.speculating for record in tracer.records)


def test_limit_caps_memory():
    pe = PipelinedPE(config_by_name("T|D|X"), name="t")
    assemble(LOOP).configure(pe)
    tracer = PipelineTracer(pe, limit=3)
    tracer.run()
    assert len(tracer.records) == 3


def test_truncation_is_surfaced():
    pe = PipelinedPE(config_by_name("T|D|X"), name="t")
    assemble(LOOP).configure(pe)
    tracer = PipelineTracer(pe, limit=3)
    tracer.run()
    assert tracer.truncated
    assert tracer.dropped == pe.counters.cycles - 3
    assert "truncated" in tracer.render()
    assert f"{tracer.dropped} later cycles" in tracer.render()


def test_untruncated_trace_stays_silent():
    tracer = traced("T|D|X")
    assert not tracer.truncated and tracer.dropped == 0
    assert "truncated" not in tracer.render()


def test_histogram_accurate_past_the_limit():
    """Event classification continues after storage stops, so the
    histogram tiles the whole run even on a truncated trace."""
    pe = PipelinedPE(config_by_name("T|D|X"), name="t")
    assemble(LOOP).configure(pe)
    tracer = PipelineTracer(pe, limit=3)
    tracer.run()
    histogram = tracer.event_histogram()
    assert sum(histogram.values()) == pe.counters.cycles
    assert histogram["issued"] == pe.counters.issued


def test_stage_snapshot_backs_the_trace():
    tracer = traced("T|D|X1|X2")
    depth = len(tracer.pe.config.stages)
    assert all(len(record.stages) == depth for record in tracer.records)
    # The final record reflects the drained pipe.
    assert tracer.records[-1].stages == ("-",) * depth
