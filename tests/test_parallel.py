"""Worker-count policy and campaign parallelism determinism."""

import os

import pytest

from repro.dse.cpi import CpiTable, table_fingerprint
from repro.parallel import parallel_map, resolve_workers
from repro.params import DEFAULT_PARAMS as P
from repro.pipeline.config import all_configs


@pytest.fixture()
def clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_SERIAL", raising=False)
    monkeypatch.delenv("REPRO_WORKERS", raising=False)


def _square(x):   # module level: must pickle for the pool path
    return x * x


class TestResolveWorkers:
    def test_serial_env_forces_one(self, clean_env, monkeypatch):
        monkeypatch.setenv("REPRO_SERIAL", "1")
        assert resolve_workers(8) == 1

    def test_explicit_argument_wins_over_workers_env(self, clean_env, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_workers_env_applies_when_unspecified(self, clean_env, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers() == 5

    def test_defaults_to_cpu_count(self, clean_env):
        assert resolve_workers() == max(1, os.cpu_count() or 1)

    def test_never_below_one(self, clean_env):
        assert resolve_workers(0) == 1
        assert resolve_workers(-3) == 1

    def test_garbage_workers_env_falls_through(self, clean_env, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        assert resolve_workers() == max(1, os.cpu_count() or 1)


class TestParallelMap:
    def test_serial_path_preserves_order(self, clean_env):
        assert parallel_map(_square, range(10), workers=1) == [
            x * x for x in range(10)
        ]

    def test_pool_path_matches_serial(self, clean_env):
        items = list(range(12))
        assert parallel_map(_square, items, workers=2) == [
            x * x for x in items
        ]

    def test_empty_input(self, clean_env):
        assert parallel_map(_square, [], workers=4) == []


class TestCpiTableParallelism:
    CONFIGS = all_configs()[:3]
    SCALE = 5

    def test_populate_matches_lazy_serial_evaluation(self, clean_env):
        lazy = CpiTable(scale=self.SCALE)
        for config in self.CONFIGS:
            lazy.cpi(config)
        pooled = CpiTable(scale=self.SCALE)
        pooled.populate(self.CONFIGS, workers=2)
        assert pooled._cpi == lazy._cpi
        assert pooled._stacks == lazy._stacks

    def test_fingerprint_covers_scale_params_and_configs(self):
        base = table_fingerprint(8, 0, P, self.CONFIGS)
        assert table_fingerprint(9, 0, P, self.CONFIGS) != base
        assert table_fingerprint(8, 1, P, self.CONFIGS) != base
        assert table_fingerprint(8, 0, P, self.CONFIGS[:2]) != base
        assert table_fingerprint(8, 0, P, self.CONFIGS) == base

    def test_stale_disk_cache_is_not_loaded(self, clean_env, tmp_path):
        path = str(tmp_path / "cache.json")
        first = CpiTable(scale=self.SCALE, cache_path=path)
        first.populate(self.CONFIGS[:1])
        assert CpiTable(scale=self.SCALE, cache_path=path)._cpi == first._cpi
        assert CpiTable(scale=self.SCALE + 1, cache_path=path)._cpi == {}
