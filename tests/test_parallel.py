"""Worker-count policy and campaign parallelism determinism."""

import os

import pytest

from repro.dse.cpi import CpiTable, table_fingerprint
from repro.parallel import parallel_map, resolve_workers
from repro.params import DEFAULT_PARAMS as P
from repro.pipeline.config import all_configs


@pytest.fixture()
def clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_SERIAL", raising=False)
    monkeypatch.delenv("REPRO_WORKERS", raising=False)


def _square(x):   # module level: must pickle for the pool path
    return x * x


class TestResolveWorkers:
    def test_serial_env_forces_one(self, clean_env, monkeypatch):
        monkeypatch.setenv("REPRO_SERIAL", "1")
        assert resolve_workers(8) == 1

    def test_explicit_argument_wins_over_workers_env(self, clean_env, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_workers_env_applies_when_unspecified(self, clean_env, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers() == 5

    def test_defaults_to_cpu_count(self, clean_env):
        assert resolve_workers() == max(1, os.cpu_count() or 1)

    def test_never_below_one(self, clean_env):
        assert resolve_workers(0) == 1
        assert resolve_workers(-3) == 1

    def test_garbage_workers_env_falls_through(self, clean_env, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        assert resolve_workers() == max(1, os.cpu_count() or 1)


class TestParallelMap:
    def test_serial_path_preserves_order(self, clean_env):
        assert parallel_map(_square, range(10), workers=1) == [
            x * x for x in range(10)
        ]

    def test_pool_path_matches_serial(self, clean_env):
        items = list(range(12))
        assert parallel_map(_square, items, workers=2) == [
            x * x for x in items
        ]

    def test_empty_input(self, clean_env):
        assert parallel_map(_square, [], workers=4) == []


class TestCpiTableParallelism:
    CONFIGS = all_configs()[:3]
    SCALE = 5

    def test_populate_matches_lazy_serial_evaluation(self, clean_env):
        lazy = CpiTable(scale=self.SCALE)
        for config in self.CONFIGS:
            lazy.cpi(config)
        pooled = CpiTable(scale=self.SCALE)
        pooled.populate(self.CONFIGS, workers=2)
        assert pooled._cpi == lazy._cpi
        assert pooled._stacks == lazy._stacks

    def test_fingerprint_covers_scale_params_and_configs(self):
        base = table_fingerprint(8, 0, P, self.CONFIGS)
        assert table_fingerprint(9, 0, P, self.CONFIGS) != base
        assert table_fingerprint(8, 1, P, self.CONFIGS) != base
        assert table_fingerprint(8, 0, P, self.CONFIGS[:2]) != base
        assert table_fingerprint(8, 0, P, self.CONFIGS) == base

    def test_stale_disk_cache_is_not_loaded(self, clean_env, tmp_path):
        path = str(tmp_path / "cache.json")
        first = CpiTable(scale=self.SCALE, cache_path=path)
        first.populate(self.CONFIGS[:1])
        assert CpiTable(scale=self.SCALE, cache_path=path)._cpi == first._cpi
        assert CpiTable(scale=self.SCALE + 1, cache_path=path)._cpi == {}


class TestRetryDelay:
    def test_deterministic_for_same_inputs(self):
        from repro.parallel import retry_delay

        a = retry_delay(0.25, 2, cap=5.0, token="pool", seed=0)
        b = retry_delay(0.25, 2, cap=5.0, token="pool", seed=0)
        assert a == b

    def test_jitter_decorrelates_tokens_and_attempts(self):
        from repro.parallel import retry_delay

        base = retry_delay(0.25, 1, token="a")
        assert retry_delay(0.25, 1, token="b") != base
        assert retry_delay(0.25, 1, token="a", seed=1) != base
        assert retry_delay(0.25, 2, token="a") != base

    def test_exponential_growth_within_jitter_bounds(self):
        from repro.parallel import retry_delay

        for attempt in range(1, 6):
            delay = retry_delay(0.1, attempt, token="t")
            exponential = 0.1 * 2 ** (attempt - 1)
            assert exponential <= delay <= exponential * 1.25

    def test_cap_bounds_the_delay(self):
        from repro.parallel import retry_delay

        assert retry_delay(1.0, 10, cap=2.0, token="t") == 2.0


class TestCheckpointCrashSafety:
    def _checkpoint(self, path, **kwargs):
        from repro.parallel import Checkpoint

        return Checkpoint(str(path), fingerprint="fp", **kwargs)

    def test_roundtrip_survives_reload(self, tmp_path):
        path = tmp_path / "ckpt.json"
        first = self._checkpoint(path)
        first.put("a", [1, 2])
        first.put("b", [3])
        resumed = self._checkpoint(path)
        assert len(resumed) == 2
        assert resumed.get("a") == [1, 2]

    def test_truncated_checkpoint_tolerated_as_empty(self, tmp_path):
        path = tmp_path / "ckpt.json"
        ckpt = self._checkpoint(path)
        ckpt.put("a", [1])
        raw = path.read_text()
        path.write_text(raw[: len(raw) // 2])   # torn mid-write
        assert len(self._checkpoint(path)) == 0

    def test_garbage_checkpoint_tolerated_as_empty(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("\x00\xff not json")
        assert len(self._checkpoint(path)) == 0

    def test_non_dict_json_tolerated_as_empty(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("[1, 2, 3]")
        assert len(self._checkpoint(path)) == 0
        path.write_text('{"fingerprint": "fp", "results": [1, 2]}')
        assert len(self._checkpoint(path)) == 0

    def test_fingerprint_mismatch_discards_results(self, tmp_path):
        from repro.parallel import Checkpoint

        path = tmp_path / "ckpt.json"
        self._checkpoint(path).put("a", [1])
        assert len(Checkpoint(str(path), fingerprint="other")) == 0

    def test_save_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "ckpt.json"
        ckpt = self._checkpoint(path)
        for index in range(5):
            ckpt.put(f"k{index}", index)
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []
        assert path.exists()


def _fails(item):   # module level: must pickle for the pool path
    raise ValueError(f"bad item {item}")


class TestWorkerTracebackChain:
    def test_serial_failure_chains_worker_traceback(self):
        from repro.errors import CampaignError
        from repro.parallel import WorkerTraceback, resilient_map

        with pytest.raises(CampaignError) as err:
            resilient_map(_fails, [7], workers=1)
        assert "ValueError" in str(err.value)
        assert "bad item 7" in str(err.value)
        cause = err.value.__cause__
        assert isinstance(cause, WorkerTraceback)
        assert "ValueError: bad item 7" in cause.tb

    def test_pool_failure_chains_worker_traceback(self, clean_env):
        from repro.errors import CampaignError
        from repro.parallel import WorkerTraceback, resilient_map

        with pytest.raises(CampaignError) as err:
            resilient_map(_fails, [1, 2, 3], workers=2)
        assert isinstance(err.value.__cause__, WorkerTraceback)
        assert err.value.worker_traceback
        assert "ValueError" in err.value.worker_traceback
