"""Cross-cutting checks on the real workload programs.

The ten Table 3 programs are the most demanding artifacts in the repo:
they exercise every ISA feature, fill PEs to capacity, and must encode,
decode and disassemble faithfully.
"""

import pytest

from repro.asm import assemble
from repro.asm.disassembler import disassemble
from repro.isa.encoding import decode_program
from repro.params import DEFAULT_PARAMS as P
from repro.workloads.arg_max import arg_max_program
from repro.workloads.bst import bst_program
from repro.workloads.common import counter_producer, memory_streamer
from repro.workloads.dot_product import mac_program
from repro.workloads.filter import filter_worker_program, threshold_program
from repro.workloads.gcd import gcd_program
from repro.workloads.mean import mean_program
from repro.workloads.merge import merge_program
from repro.workloads.string_search import dfa_program, splitter_program
from repro.workloads.udiv import divider_program, feeder_program


def _all_programs():
    return {
        "bst": bst_program(P, 32, 64),
        "gcd": gcd_program(P),
        "mean": mean_program(P, 64),
        "arg_max": arg_max_program(P, 100),
        "dot_product": mac_program(P, 100),
        "threshold": threshold_program(P, 1 << 20),
        "filter_worker": filter_worker_program(P, 100, 200),
        "merge": merge_program(P, 100),
        "splitter": splitter_program(P),
        "string_search": dfa_program(P, 100, 5),
        "udiv": divider_program(P),
        "udiv_feeder": feeder_program(P, 16, 100),
        "streamer_last": memory_streamer(0, 16, P, eos="last"),
        "streamer_sentinel": memory_streamer(0, 16, P, eos="sentinel"),
        "streamer_none": memory_streamer(0, 16, P, eos="none"),
        "counter": counter_producer(0, 16, P, eos="sentinel"),
    }


@pytest.mark.parametrize("name,program", _all_programs().items(),
                         ids=_all_programs().keys())
class TestProgramArtifacts:
    def test_fits_the_pe(self, name, program):
        assert 1 <= len(program) <= P.num_instructions

    def test_binary_round_trip(self, name, program):
        blob = program.binary(P)
        decoded = decode_program(blob, P)
        for original, back in zip(program.instructions, decoded):
            assert back.trigger == original.trigger
            assert back.dp == original.dp

    def test_disassembly_reassembles_identically(self, name, program):
        text = disassemble(program.instructions, P, program.initial_predicates)
        again = assemble(text)
        assert again.binary(P) == program.binary(P)
        assert again.initial_predicates == program.initial_predicates


def test_bst_and_udiv_fill_the_pe_exactly():
    """Both are written to use all 16 instruction slots — the paper's
    point about each slot being a scarce resource."""
    assert len(bst_program(P, 32, 64)) == P.num_instructions
    assert len(divider_program(P)) == P.num_instructions


def test_every_program_obeys_max_check():
    for name, program in _all_programs().items():
        for ins in program.instructions:
            assert len(ins.trigger.tag_checks) <= P.max_check, (name, ins.label)


def test_udiv_feeder_fits_with_room_for_none():
    assert len(feeder_program(P, 16, 100)) <= P.num_instructions
