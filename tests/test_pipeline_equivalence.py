"""Property-based equivalence: pipelining must never change results.

Hypothesis generates random *halting* triggered programs — linear state
chains with data-dependent predicate branches folded in — and every
pipeline microarchitecture (with and without +P/+Q) must produce exactly
the architectural state the functional reference produces.  This is the
strongest single check on the pipeline model: hazard handling,
forwarding, speculation, flush/rollback and queue accounting all have to
be perfect for thousands of random programs to agree.
"""

from hypothesis import given, settings, strategies as st

from repro.arch import FunctionalPE
from repro.isa.instruction import (
    DatapathOp,
    Destination,
    Instruction,
    Operand,
    PredUpdate,
    TagCheck,
    Trigger,
)
from repro.isa.opcodes import op_by_name
from repro.params import DEFAULT_PARAMS as P
from repro.pipeline import PipelinedPE, config_by_name

# A mix of early- and late-result operations with two register sources.
_BINARY_OPS = ["add", "sub", "and", "or", "xor", "mul", "mulh", "shl",
               "shr", "rol", "eq", "ult", "sge", "land"]
_UNARY_OPS = ["not", "clz", "ctz", "popc", "brev", "mov", "sext8"]

# State chains use predicate bits 4..7; bits 0..3 are free for the
# data-dependent branch flags the generator may add.
_STATE_BITS = (4, 5, 6, 7)


def _state_trigger(step: int) -> Trigger:
    on = off = 0
    for position, bit in enumerate(_STATE_BITS):
        if (step >> position) & 1:
            on |= 1 << bit
        else:
            off |= 1 << bit
    return Trigger(pred_on=on, pred_off=off)


def _state_update(next_step: int) -> PredUpdate:
    set_mask = clear_mask = 0
    for position, bit in enumerate(_STATE_BITS):
        if (next_step >> position) & 1:
            set_mask |= 1 << bit
        else:
            clear_mask |= 1 << bit
    return PredUpdate(set_mask=set_mask, clear_mask=clear_mask)


@st.composite
def chain_programs(draw):
    """A random program that always halts: a chain of <= 15 steps.

    Each step is either a pure register operation, a predicate write
    (consumed by nothing — state flow is via PredUpdate — but exercising
    the prediction machinery), an input-queue consume, or an enqueue.
    """
    length = draw(st.integers(min_value=1, max_value=15))
    instructions = []
    pushes = draw(st.lists(
        st.tuples(st.integers(0, 0xFFFFFFFF), st.integers(0, 3)),
        min_size=4, max_size=4))
    queue_reads = 0
    emits = {q: 0 for q in range(P.num_output_queues)}
    for step in range(length):
        kind = draw(st.sampled_from(["binary", "unary", "pred", "consume", "emit"]))
        regs = st.integers(0, P.num_regs - 1)
        if kind == "consume" and queue_reads < len(pushes):
            tag = pushes[queue_reads][1]
            queue_reads += 1
            ins = Instruction(
                trigger=Trigger(
                    pred_on=_state_trigger(step).pred_on,
                    pred_off=_state_trigger(step).pred_off,
                    tag_checks=(TagCheck(queue=0, tag=tag),),
                ),
                dp=DatapathOp(
                    op=op_by_name("add"),
                    srcs=(Operand.reg(draw(regs)), Operand.input_queue(0)),
                    dst=Destination.reg(draw(regs)),
                    deq=(0,),
                    pred_update=_state_update(step + 1),
                ),
            )
        elif kind == "pred":
            op = op_by_name(draw(st.sampled_from(["eq", "ult", "nez", "sge"])))
            srcs = [Operand.reg(draw(regs)) for _ in range(op.num_srcs)]
            ins = Instruction(
                trigger=_state_trigger(step),
                dp=DatapathOp(
                    op=op,
                    srcs=tuple(srcs),
                    dst=Destination.predicate(draw(st.integers(0, 3))),
                    pred_update=_state_update(step + 1),
                ),
            )
        elif kind == "emit" and min(emits.values()) < P.queue_capacity - 1:
            # Nobody drains the outputs during the run, so stay below the
            # physical capacity or every model deadlocks equally.
            queue = draw(st.sampled_from(
                [q for q, count in emits.items()
                 if count < P.queue_capacity - 1]))
            emits[queue] += 1
            ins = Instruction(
                trigger=_state_trigger(step),
                dp=DatapathOp(
                    op=op_by_name("mov"),
                    srcs=(Operand.reg(draw(regs)),),
                    dst=Destination.output_queue(queue, draw(st.integers(0, 3))),
                    pred_update=_state_update(step + 1),
                ),
            )
        else:
            if kind == "binary":
                op = op_by_name(draw(st.sampled_from(_BINARY_OPS)))
            else:
                op = op_by_name(draw(st.sampled_from(_UNARY_OPS)))
            srcs = []
            imm = 0
            for __ in range(op.num_srcs):
                if draw(st.booleans()):
                    srcs.append(Operand.reg(draw(regs)))
                else:
                    srcs.append(Operand.imm())
                    imm = draw(st.integers(0, 0xFFFFFFFF))
            if sum(1 for s in srcs if s.kind.name == "IMM") > 1:
                srcs[1] = Operand.reg(0)
            dst = Destination.reg(draw(regs))
            if op.mnemonic in ("eq", "ult", "sge", "land") and draw(st.booleans()):
                dst = Destination.predicate(draw(st.integers(0, 3)))
            ins = Instruction(
                trigger=_state_trigger(step),
                dp=DatapathOp(
                    op=op, srcs=tuple(srcs), dst=dst, imm=imm,
                    pred_update=_state_update(step + 1),
                ),
            )
        ins.validate(P)
        instructions.append(ins)

    instructions.append(
        Instruction(
            trigger=_state_trigger(length),
            dp=DatapathOp(op=op_by_name("halt")),
        )
    )
    return instructions, pushes


def _run(pe, instructions, pushes, max_cycles=3_000):
    pe.load_program(instructions)
    for value, tag in pushes:
        pe.inputs[0].enqueue(value, tag)
    pe.commit_queues()
    for _ in range(max_cycles):
        if pe.halted:
            break
        pe.step()
        pe.commit_queues()
    assert pe.halted, "generated program failed to halt"
    outputs = [
        [(entry.value, entry.tag) for entry in queue.drain()]
        for queue in pe.outputs
    ]
    return pe.regs.snapshot(), pe.preds.state & 0x0F, outputs


CONFIGS = [
    "TD|X", "T|DX", "TDX1|X2", "TD|X1|X2", "T|DX1|X2", "T|D|X",
    "T|D|X1|X2", "T|D|X1|X2 +P", "T|D|X1|X2 +Q", "T|D|X1|X2 +P+Q",
    "TDX1|X2 +P+Q", "T|DX +P+Q",
]


@settings(max_examples=60, deadline=None)
@given(chain_programs())
def test_every_microarchitecture_matches_the_functional_reference(generated):
    instructions, pushes = generated
    reference = _run(FunctionalPE(P, name="ref"), instructions, pushes)
    for name in CONFIGS:
        pe = PipelinedPE(config_by_name(name), P, name=name)
        result = _run(pe, instructions, pushes)
        assert result == reference, f"{name} diverged from the functional model"


@settings(max_examples=20, deadline=None)
@given(chain_programs())
def test_nested_speculation_preserves_results(generated):
    instructions, pushes = generated
    reference = _run(FunctionalPE(P, name="ref"), instructions, pushes)
    config = config_by_name("T|D|X1|X2 +P").with_options(speculative_depth=3)
    pe = PipelinedPE(config, P, name="nested")
    assert _run(pe, instructions, pushes) == reference


# ---------------------------------------------------------------------------
# Fast-path differential: the compiled-trigger + memoized-decision path
# (the default) against the original per-cycle dataclass walk
# (``fast_path=False``), which is kept as the reference implementation.
# ---------------------------------------------------------------------------

import pytest

from repro.pipeline.config import all_configs
from repro.workloads.suite import WORKLOADS, run_workload

_DIFF_SCALE = 6


def _workload_fingerprint(run):
    """Everything a simulation can influence: counters, stack, and final
    architectural state of every PE plus memory."""
    counters = run.worker_counters
    pes = []
    for pe in run.system.pes:
        pes.append((
            pe.name,
            pe.halted,
            tuple(pe.regs.snapshot()),
            pe.preds.state,
        ))
    return {
        "cycles": run.cycles,
        "counters": counters,
        "stack": counters.stack(),
        "pes": tuple(pes),
        "memory": tuple(run.system.memory._words),
    }


@pytest.mark.parametrize("config", all_configs(), ids=lambda c: c.name)
def test_fast_path_is_bit_identical_across_the_workload_suite(config):
    """All 8 partitions x {baseline, +P, +Q, +P+Q}, all ten workloads:
    the fast path must reproduce the reference path bit for bit — same
    CPI stacks, same counters, same final architectural state."""
    for name in WORKLOADS():
        fast = run_workload(
            name, scale=_DIFF_SCALE,
            make_pe=lambda n: PipelinedPE(config, P, name=n, fast_path=True),
        )
        reference = run_workload(
            name, scale=_DIFF_SCALE,
            make_pe=lambda n: PipelinedPE(config, P, name=n, fast_path=False),
        )
        assert _workload_fingerprint(fast) == _workload_fingerprint(reference), (
            f"{config.name} / {name}: fast path diverged from reference"
        )


@settings(max_examples=30, deadline=None)
@given(chain_programs())
def test_fast_path_matches_reference_on_random_programs(generated):
    instructions, pushes = generated
    for name in ("T|D|X1|X2 +P+Q", "TD|X", "T|DX +P+Q"):
        fast = PipelinedPE(config_by_name(name), P, name="fast", fast_path=True)
        ref = PipelinedPE(config_by_name(name), P, name="ref", fast_path=False)
        fast_result = _run(fast, instructions, pushes)
        ref_result = _run(ref, instructions, pushes)
        assert fast_result == ref_result, f"{name}: architectural state diverged"
        assert fast.counters == ref.counters, f"{name}: counters diverged"
