"""Rectangular PE arrays with mesh wiring."""

import pytest

from repro.arch import FunctionalPE
from repro.asm import assemble
from repro.errors import ConfigError
from repro.fabric import Direction, PEArray, System


def make_array(rows, cols):
    system = System(memory_words=256)
    array = PEArray(system, rows, cols,
                    make_pe=lambda name: FunctionalPE(name=name))
    return system, array


class TestTopology:
    def test_pe_count_and_names(self):
        system, array = make_array(2, 3)
        assert len(system.pes) == 6
        assert array.pe(1, 2).name == "pe_1_2"

    def test_out_of_range_rejected(self):
        __, array = make_array(2, 2)
        with pytest.raises(ConfigError):
            array.pe(2, 0)

    def test_degenerate_dimensions_rejected(self):
        with pytest.raises(ConfigError):
            make_array(0, 3)

    def test_neighbor_queues_are_shared_objects(self):
        __, array = make_array(2, 2)
        west = array.pe(0, 0)
        east = array.pe(0, 1)
        assert west.outputs[Direction.EAST] is east.inputs[Direction.WEST]
        assert east.outputs[Direction.WEST] is west.inputs[Direction.EAST]
        north = array.pe(0, 0)
        south = array.pe(1, 0)
        assert north.outputs[Direction.SOUTH] is south.inputs[Direction.NORTH]
        assert south.outputs[Direction.NORTH] is north.inputs[Direction.SOUTH]

    def test_direction_opposites(self):
        assert Direction.NORTH.opposite is Direction.SOUTH
        assert Direction.EAST.opposite is Direction.WEST

    def test_edge_detection(self):
        __, array = make_array(2, 2)
        assert array.is_edge_direction(0, 0, Direction.NORTH)
        assert array.is_edge_direction(0, 0, Direction.WEST)
        assert not array.is_edge_direction(0, 0, Direction.EAST)
        assert array.is_edge_direction(1, 1, Direction.SOUTH)

    def test_interior_port_attachment_rejected(self):
        __, array = make_array(2, 2)
        with pytest.raises(ConfigError, match="faces a neighbor"):
            array.attach_read_port(0, 0, Direction.EAST)

    def test_iteration_covers_all_pes(self):
        __, array = make_array(3, 3)
        assert len(list(array)) == 9


class TestExecution:
    def test_token_ring_around_a_2x2_array(self):
        """A token makes one clockwise lap: 00 -> 01 -> 11 -> 10 -> 00."""
        system, array = make_array(2, 2)
        hops = {
            (0, 0): (Direction.WEST, Direction.EAST),    # host in, pass east
            (0, 1): (Direction.WEST, Direction.SOUTH),
            (1, 1): (Direction.NORTH, Direction.WEST),
            (1, 0): (Direction.EAST, Direction.NORTH),
        }
        for (r, c), (source, sink) in hops.items():
            assemble(f"""
            when %p == XXXXXXX0 with %i{int(source)}.1:
                add %o{int(sink)}.1, %i{int(source)}, $1;
                deq %i{int(source)}; set %p = ZZZZZZZ1;
            when %p == XXXXXXX1:
                halt;
            """).configure(array.pe(r, c))

        # Inject the token at (0,0)'s west edge; (1,0) sends it north to
        # (0,0)'s SOUTH input, but (0,0) has halted — so the lap ends with
        # the incremented token parked on that channel.
        array.pe(0, 0).inputs[Direction.WEST].enqueue(100, tag=1)
        system.run()
        parked = array.pe(0, 0).inputs[Direction.SOUTH].peek(0)
        assert parked.value == 104   # one increment per hop

    def test_edge_memory_ports(self):
        """An edge PE loads through an attached read port."""
        system, array = make_array(1, 2)
        array.attach_read_port(0, 0, Direction.WEST)
        assemble(f"""
        when %p == XXXXXX00:
            mov %o{int(Direction.WEST)}.0, $7; set %p = ZZZZZZ01;
        when %p == XXXXXX01 with %i{int(Direction.WEST)}.0:
            mov %r0, %i{int(Direction.WEST)};
            deq %i{int(Direction.WEST)}; set %p = ZZZZZZ11;
        when %p == XXXXXX11:
            halt;
        """).configure(array.pe(0, 0))
        assemble("when %p == XXXXXXXX:\n    halt;").configure(array.pe(0, 1))
        system.memory.preload([0] * 7 + [1234])
        system.run()
        assert array.pe(0, 0).regs.read(0) == 1234
