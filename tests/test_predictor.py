"""Two-bit saturating predicate predictor."""

from repro.pipeline.predictor import PredicatePredictor
from repro.params import DEFAULT_PARAMS as P


def test_initial_prediction_is_not_taken():
    predictor = PredicatePredictor(P)
    assert predictor.predict(0) == 0


def test_two_outcomes_flip_the_prediction():
    predictor = PredicatePredictor(P)
    predictor.record_outcome(0, 1)
    assert predictor.predict(0) == 1     # weak-not -> weak-taken
    predictor.record_outcome(0, 1)
    assert predictor.counters[0] == PredicatePredictor.STRONG_TAKEN


def test_saturation():
    predictor = PredicatePredictor(P)
    for _ in range(10):
        predictor.record_outcome(0, 1)
    assert predictor.counters[0] == PredicatePredictor.STRONG_TAKEN
    for _ in range(10):
        predictor.record_outcome(0, 0)
    assert predictor.counters[0] == PredicatePredictor.STRONG_NOT


def test_strong_state_tolerates_one_flip():
    """The hysteresis that makes loop-closing branches near-perfect."""
    predictor = PredicatePredictor(P)
    predictor.record_outcome(0, 1)
    predictor.record_outcome(0, 1)       # strong taken
    predictor.record_outcome(0, 0)       # single loop exit
    assert predictor.predict(0) == 1     # still predicts taken


def test_predicates_are_independent():
    predictor = PredicatePredictor(P)
    predictor.record_outcome(2, 1)
    predictor.record_outcome(2, 1)
    assert predictor.predict(2) == 1
    assert predictor.predict(3) == 0


def test_accuracy_accounting():
    predictor = PredicatePredictor(P)
    assert predictor.accuracy is None
    predictor.record_resolution(True)
    predictor.record_resolution(True)
    predictor.record_resolution(False)
    assert predictor.predictions == 3
    assert abs(predictor.accuracy - 2 / 3) < 1e-12


def test_forced_inversion_excluded_from_accuracy():
    """Fault-injected inversions must not pollute Figure 4 statistics."""
    predictor = PredicatePredictor(P)
    predictor.record_resolution(True)
    predictor.record_resolution(False, forced=True)
    assert predictor.predictions == 1
    assert predictor.forced == 1
    assert predictor.accuracy == 1.0


def test_predict_flags_forced_inversions():
    predictor = PredicatePredictor(P)
    predictor.force_invert_next = True
    assert predictor.predict(0) == 1
    assert predictor.last_forced
    assert predictor.predict(0) == 0
    assert not predictor.last_forced


def test_reset():
    predictor = PredicatePredictor(P)
    predictor.record_outcome(0, 1)
    predictor.record_resolution(True)
    predictor.reset()
    assert predictor.predictions == 0
    assert predictor.counters[0] == PredicatePredictor.WEAK_NOT
