"""Cycle-accurate pipelined PE: correctness and hazard behavior."""

import pytest

from repro.arch import FunctionalPE
from repro.asm import assemble
from repro.pipeline import PipelinedPE, all_configs, config_by_name
from repro.pipeline.config import ALL_PARTITIONS, partition_name

ALL_PARTITION_NAMES = [partition_name(s) for s in ALL_PARTITIONS]

# A deterministic program exercising arithmetic, predicate control flow,
# queue I/O and the scratchpad: sums tagged input, scales it, stores it
# locally, and emits it.
MIXED_PROGRAM = """
when %p == XXXXX000 with %i0.0:
    add %r1, %r1, %i0; deq %i0;
when %p == XXXXX000 with %i0.1:
    add %r1, %r1, %i0; deq %i0; set %p = ZZZZZ001;
when %p == XXXXX001:
    mul %r2, %r1, $3; set %p = ZZZZZ011;
when %p == XXXXX011:
    ssw $7, %r2; set %p = ZZZZZ010;
when %p == XXXXX010:
    lsw %r3, $7; set %p = ZZZZZ110;
when %p == XXXXX110:
    mov %o0.2, %r3; set %p = ZZZZZ100;
when %p == XXXXX100:
    halt;
"""



def _drive(pe, pushes, max_cycles):
    """Run to halt, feeding host pushes as queue capacity allows."""
    backlog = list(pushes)
    for _ in range(max_cycles):
        if pe.halted:
            return pe
        while backlog and not pe.inputs[backlog[0][0]].is_full:
            queue, value, tag = backlog.pop(0)
            pe.inputs[queue].enqueue(value, tag)
        pe.step()
        pe.commit_queues()
    raise AssertionError(f"{pe.name} did not halt")


def run_pipelined(source, config_name, pushes=(), max_cycles=20_000):
    pe = PipelinedPE(config_by_name(config_name), name=config_name)
    assemble(source).configure(pe)
    return _drive(pe, pushes, max_cycles)


def run_functional(source, pushes=()):
    pe = FunctionalPE(name="f")
    assemble(source).configure(pe)
    return _drive(pe, pushes, 20_000)


PUSHES = [(0, 5, 0), (0, 6, 0), (0, 7, 1)]


class TestArchitecturalEquivalence:
    """Every microarchitecture must compute exactly what the functional
    reference computes — pipelining changes timing, never results."""

    @pytest.mark.parametrize("config_name", ALL_PARTITION_NAMES)
    def test_partitions_match_functional(self, config_name):
        reference = run_functional(MIXED_PROGRAM, PUSHES)
        pipelined = run_pipelined(MIXED_PROGRAM, config_name, PUSHES)
        assert pipelined.regs.snapshot() == reference.regs.snapshot()
        assert pipelined.scratchpad.load(7) == reference.scratchpad.load(7)
        assert [e.value for e in pipelined.outputs[0].drain()] == \
            [e.value for e in reference.outputs[0].drain()]

    @pytest.mark.parametrize("flags", ["", " +P", " +Q", " +P+Q"])
    def test_features_match_functional_on_deepest_pipe(self, flags):
        reference = run_functional(MIXED_PROGRAM, PUSHES)
        pipelined = run_pipelined(MIXED_PROGRAM, "T|D|X1|X2" + flags, PUSHES)
        assert pipelined.regs.snapshot() == reference.regs.snapshot()

    @pytest.mark.parametrize("config_name", [
        "T|D|X +P", "T|D|X1|X2 +P+Q", "TDX1|X2 +P", "TD|X +P+Q",
    ])
    def test_speculation_never_corrupts_state(self, config_name):
        pushes = [(0, v, 0) for v in (10, 90, 20, 80, 30)] + [(0, 1, 1)]
        # Count words above 50 with data-dependent branching.
        source = """
        when %p == XXXXXXX0 with %i0.0:
            ugt %p1, %i0, $50; set %p = ZZZZZZZ1;
        when %p == XXXXXX11:
            add %r2, %r2, $1; deq %i0; set %p = ZZZZZZ00;
        when %p == XXXXXX01:
            nop; deq %i0; set %p = ZZZZZZ00;
        when %p == XXXXXXX0 with %i0.1:
            mov %r3, %r2; deq %i0; set %p = ZZ1ZZZZZ;
        when %p == XX1XXXXX:
            halt;
        """
        reference = run_functional(source, pushes)
        pipelined = run_pipelined(source, config_name, pushes)
        assert pipelined.regs.read(3) == reference.regs.read(3) == 2
        if "+P" in config_name:
            assert pipelined.counters.predictions > 0


class TestTiming:
    def test_tdx_straight_line_cpi_is_one(self):
        source = "\n".join(
            f"when %p == XXXXXX{i:02b}:\n    add %r0, %r0, $1; "
            f"set %p = ZZZZZZ{(i + 1) % 4:02b};"
            for i in range(3)
        ) + "\nwhen %p == XXXXXX11:\n    halt;"
        pe = run_pipelined(source, "TDX")
        # Issue once per cycle; the drain of the final halt adds one cycle.
        assert pe.counters.issued == pe.counters.retired == 4
        assert pe.counters.cycles <= pe.counters.retired + 1

    def test_predicate_hazard_grows_with_depth(self):
        """A dependent trigger right behind a predicate write stalls
        depth-proportionally without +P."""
        source = """
        when %p == XXXXXXX0:
            ult %p1, %r0, $40; set %p = ZZZZZZZ1;
        when %p == XXXXXX11:
            add %r0, %r0, $1; set %p = ZZZZZZ00;
        when %p == XXXXXX01:
            halt;
        """
        hazards = {}
        for name in ("TD|X", "T|D|X", "T|D|X1|X2"):
            pe = run_pipelined(source, name)
            assert pe.regs.read(0) == 40
            hazards[name] = pe.counters.pred_hazard_cycles
        assert hazards["TD|X"] < hazards["T|D|X"] < hazards["T|D|X1|X2"]

    def test_same_depth_same_predicate_hazards(self):
        source = """
        when %p == XXXXXXX0:
            ult %p1, %r0, $40; set %p = ZZZZZZZ1;
        when %p == XXXXXX11:
            add %r0, %r0, $1; set %p = ZZZZZZ00;
        when %p == XXXXXX01:
            halt;
        """
        counts = {
            name: run_pipelined(source, name).counters.pred_hazard_cycles
            for name in ("TD|X", "T|DX", "TDX1|X2")
        }
        assert len(set(counts.values())) == 1

    def test_prediction_removes_loop_hazards(self):
        source = """
        when %p == XXXXXXX0:
            ult %p1, %r0, $40; set %p = ZZZZZZZ1;
        when %p == XXXXXX11:
            add %r0, %r0, $1; set %p = ZZZZZZ00;
        when %p == XXXXXX01:
            halt;
        """
        base = run_pipelined(source, "T|D|X1|X2")
        opt = run_pipelined(source, "T|D|X1|X2 +P")
        assert opt.regs.read(0) == base.regs.read(0) == 40
        assert opt.counters.pred_hazard_cycles < base.counters.pred_hazard_cycles / 4
        assert opt.counters.cycles < base.counters.cycles
        # A predictable loop mispredicts at most a couple of times.
        assert opt.counters.mispredictions <= 3

    def test_misprediction_quashes_and_recovers(self):
        """Alternating branch outcomes: the predicted path's pure register
        op issues speculatively and is quashed on every misprediction,
        yet the final counts stay architecturally correct."""
        pushes = [(0, v, 0) for v in (90, 10, 90, 10, 90, 10)] + [(0, 0, 1)]
        source = """
        when %p == XXXX00X0 with %i0.0:
            ugt %p1, %i0, $50; set %p = ZZZZZZZ1;
        when %p == XXXX0011:
            add %r2, %r2, $1; set %p = ZZZZ01ZZ;
        when %p == XXXX0001:
            add %r4, %r4, $1; set %p = ZZZZ01ZZ;
        when %p == XXXXX1XX:
            nop; deq %i0; set %p = ZZZZ0000;
        when %p == XXXX00X0 with %i0.1:
            mov %r3, %r2; deq %i0; set %p = ZZ1ZZZZZ;
        when %p == XX1XXXXX:
            halt;
        """
        pe = run_pipelined(source, "T|D|X1|X2 +P", pushes)
        assert pe.regs.read(3) == 3      # words above 50
        assert pe.regs.read(4) == 3      # words at or below 50
        assert pe.counters.mispredictions > 0
        assert pe.counters.quashed > 0

    def test_effective_queue_status_improves_consumer_loop(self):
        """A tight consume loop stalls conservatively without +Q."""
        pushes = [(0, v, 0) for v in range(3)] + [(0, 99, 1)]
        source = """
        when %p == XXXXXXX0 with %i0.0:
            add %r1, %r1, %i0; deq %i0;
        when %p == XXXXXXX0 with %i0.1:
            mov %r2, %r1; deq %i0; set %p = ZZZZZZZ1;
        when %p == XXXXXXX1:
            halt;
        """
        base = run_pipelined(source, "T|D|X1|X2", pushes)
        opt = run_pipelined(source, "T|D|X1|X2 +Q", pushes)
        assert base.regs.read(2) == opt.regs.read(2) == 3
        assert opt.counters.none_triggered_cycles < base.counters.none_triggered_cycles

    def test_forbidden_instructions_counted_under_speculation(self):
        pushes = [(0, v, 0) for v in (60, 60, 60)] + [(0, 0, 1)]
        source = """
        when %p == XXXXXXX0 with %i0.0:
            ugt %p1, %i0, $50; set %p = ZZZZZZZ1;
        when %p == XXXXXX11:
            add %r2, %r2, $1; deq %i0; set %p = ZZZZZZ00;
        when %p == XXXXXX01:
            nop; deq %i0; set %p = ZZZZZZ00;
        when %p == XXXXXXX0 with %i0.1:
            mov %r3, %r2; deq %i0; set %p = ZZ1ZZZZZ;
        when %p == XX1XXXXX:
            halt;
        """
        pe = run_pipelined(source, "T|D|X1|X2 +P", pushes)
        # The dequeueing add is triggered while the ugt speculation is
        # still unresolved -> forbidden cycles appear.
        assert pe.counters.forbidden_cycles > 0

    def test_data_hazard_on_multiply_consumer(self):
        source = """
        when %p == XXXXXX00:
            mul %r1, %r0, $7; set %p = ZZZZZZ01;
        when %p == XXXXXX01:
            add %r2, %r1, $1; set %p = ZZZZZZ11;
        when %p == XXXXXX11:
            halt;
        """
        pe = run_pipelined(source, "TD|X1|X2")
        assert pe.regs.read(2) == 1
        assert pe.counters.data_hazard_cycles > 0

    def test_counters_tile_the_cycle_count(self):
        for flags in ("", " +P", " +P+Q"):
            pe = run_pipelined(MIXED_PROGRAM, "T|D|X1|X2" + flags, PUSHES)
            pe.counters.check_consistency()


class TestNestedSpeculationExtension:
    def test_nested_depth_reduces_hazards_on_back_to_back_writes(self):
        """Section 6 extension: a second in-flight prediction removes the
        pending-predicate stall on closely spaced predicate writes."""
        source = """
        when %p == 00XXXXXX:
            ult %p1, %r0, $30; set %p = 01ZZZZZZ;
        when %p == 01XXXXXX:
            eqz %p2, %r3; set %p = 10ZZZZZZ;
        when %p == 10XXX11X:
            add %r0, %r0, $1; set %p = 00ZZZZZZ;
        when %p == 10XXXX0X:
            halt;
        """
        flat = PipelinedPE(config_by_name("T|D|X1|X2 +P"), name="flat")
        nested_config = config_by_name("T|D|X1|X2 +P").with_options(
            speculative_depth=2)
        nested = PipelinedPE(nested_config, name="nested")
        for pe in (flat, nested):
            assemble(source).configure(pe)
            while not pe.halted:
                pe.step()
                pe.commit_queues()
        assert flat.regs.read(0) == nested.regs.read(0) == 30
        assert nested.counters.pred_hazard_cycles < flat.counters.pred_hazard_cycles


class TestReset:
    def test_reset_clears_pipeline_state(self):
        pe = run_pipelined(MIXED_PROGRAM, "T|D|X1|X2 +P+Q", PUSHES)
        pe.reset()
        assert not pe.halted
        assert pe.counters.cycles == 0
        assert pe.preds.state == 0
        # And it runs again identically.
        for queue, value, tag in PUSHES:
            pe.inputs[queue].enqueue(value, tag)
        pe.commit_queues()
        while not pe.halted:
            pe.step()
            pe.commit_queues()
        assert pe.regs.read(2) == (5 + 6 + 7) * 3
