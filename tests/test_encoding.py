"""Binary encoding round trips, including a hypothesis-generated fuzz."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError
from repro.isa.encoding import (
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
)
from repro.isa.instruction import (
    DatapathOp,
    Destination,
    DestinationType,
    Instruction,
    Operand,
    OperandType,
    PredUpdate,
    TagCheck,
    Trigger,
)
from repro.isa.opcodes import OPS, op_by_name
from repro.params import ArchParams, DEFAULT_PARAMS as P


# ----------------------------------------------------------------------
# Hypothesis strategy: arbitrary *valid* instructions.
# ----------------------------------------------------------------------

def _operand(draw, op):
    kind = draw(st.sampled_from([OperandType.REG, OperandType.IN, OperandType.IMM]))
    if kind is OperandType.REG:
        return Operand.reg(draw(st.integers(0, P.num_regs - 1)))
    if kind is OperandType.IN:
        return Operand.input_queue(draw(st.integers(0, P.num_input_queues - 1)))
    return Operand.imm()


@st.composite
def instructions(draw):
    op = draw(st.sampled_from([o for o in OPS if o.mnemonic != "nop"]))
    srcs = []
    imm_used = False
    for _ in range(op.num_srcs):
        operand = _operand(draw, op)
        if operand.kind is OperandType.IMM:
            if imm_used:
                operand = Operand.reg(0)
            imm_used = True
        srcs.append(operand)

    if not op.has_dst:
        dst = Destination.none()
    else:
        kind = draw(st.sampled_from(
            [DestinationType.REG, DestinationType.OUT, DestinationType.PRED]))
        if kind is DestinationType.REG:
            dst = Destination.reg(draw(st.integers(0, P.num_regs - 1)))
        elif kind is DestinationType.OUT:
            dst = Destination.output_queue(
                draw(st.integers(0, P.num_output_queues - 1)),
                draw(st.integers(0, P.num_tags - 1)),
            )
        else:
            dst = Destination.predicate(draw(st.integers(0, P.num_preds - 1)))

    check_queues = draw(st.lists(
        st.integers(0, P.num_input_queues - 1), max_size=P.max_check, unique=True))
    checks = tuple(
        TagCheck(queue=q, tag=draw(st.integers(0, P.num_tags - 1)),
                 negate=draw(st.booleans()))
        for q in check_queues
    )
    on = draw(st.integers(0, (1 << P.num_preds) - 1))
    off = draw(st.integers(0, (1 << P.num_preds) - 1)) & ~on

    deq = tuple(draw(st.lists(
        st.integers(0, P.num_input_queues - 1), max_size=P.max_deq, unique=True)))

    taken = (1 << dst.index) if dst.kind is DestinationType.PRED else 0
    set_mask = draw(st.integers(0, (1 << P.num_preds) - 1)) & ~taken
    clear_mask = draw(st.integers(0, (1 << P.num_preds) - 1)) & ~set_mask & ~taken

    return Instruction(
        trigger=Trigger(pred_on=on, pred_off=off, tag_checks=checks),
        dp=DatapathOp(
            op=op,
            srcs=tuple(srcs),
            dst=dst,
            imm=draw(st.integers(0, P.word_mask)) if imm_used else 0,
            deq=deq,
            pred_update=PredUpdate(set_mask=set_mask, clear_mask=clear_mask),
        ),
    )


class TestRoundTrip:
    @given(instructions())
    def test_encode_decode_round_trip(self, ins):
        word = encode_instruction(ins, P)
        back = decode_instruction(word, P)
        assert back.trigger == ins.trigger
        assert back.dp == ins.dp
        assert back.valid == ins.valid

    @given(instructions())
    def test_encoded_width_fits(self, ins):
        word = encode_instruction(ins, P)
        assert 0 <= word < (1 << P.instruction_width)

    def test_all_zero_word_is_invalid_slot(self):
        ins = decode_instruction(0, P)
        assert not ins.valid


class TestPrograms:
    def test_program_round_trip(self):
        ins = Instruction(
            trigger=Trigger(pred_off=0b1),
            dp=DatapathOp(op=op_by_name("add"),
                          srcs=(Operand.reg(0), Operand.imm()),
                          dst=Destination.reg(0), imm=7),
        )
        blob = encode_program([ins, ins], P)
        assert len(blob) == 2 * P.padded_instruction_width // 8
        back = decode_program(blob, P)
        assert len(back) == 2
        assert back[0].dp == ins.dp

    def test_program_too_long_rejected(self):
        ins = decode_instruction(0, P)
        with pytest.raises(EncodingError, match="PE holds"):
            encode_program([ins] * (P.num_instructions + 1), P)

    def test_misaligned_blob_rejected(self):
        with pytest.raises(EncodingError, match="multiple"):
            decode_program(b"\x00" * 17, P)

    def test_padding_is_outside_the_stored_bits(self):
        """The 128-bit host word holds 106 instruction bits; the rest is
        padding the instruction memory never stores."""
        assert P.padded_instruction_width - P.instruction_width == 22


class TestParameterizedEncoding:
    def test_wider_machine_round_trip(self):
        wide = ArchParams(num_regs=16, num_input_queues=8, num_output_queues=8,
                          max_check=3, max_deq=3, num_preds=16, tag_width=3)
        ins = Instruction(
            trigger=Trigger(pred_on=0x8001,
                            tag_checks=(TagCheck(7, tag=5, negate=True),)),
            dp=DatapathOp(op=op_by_name("xor"),
                          srcs=(Operand.input_queue(7), Operand.reg(15)),
                          dst=Destination.output_queue(7, tag=6),
                          deq=(7, 2, 0)),
        )
        back = decode_instruction(encode_instruction(ins, wide), wide)
        assert back.trigger == ins.trigger
        assert back.dp == ins.dp
