"""Queue-status policies: conservative, effective (+Q), padded."""

import pytest

from repro.arch.queue import TaggedQueue
from repro.pipeline.config import config_by_name
from repro.pipeline.queue_status import (
    ConservativeQueueView,
    EffectiveQueueView,
    InFlightQueueState,
    PaddedQueueView,
    make_queue_view,
)


@pytest.fixture()
def setup():
    inputs = [TaggedQueue(4, f"i{i}") for i in range(2)]
    outputs = [TaggedQueue(4, f"o{i}") for i in range(2)]
    state = InFlightQueueState(2, 2)
    inputs[0].enqueue(10, tag=0)
    inputs[0].enqueue(20, tag=1)
    inputs[0].commit()
    return inputs, outputs, state


class TestConservative:
    def test_pending_dequeue_means_empty(self, setup):
        inputs, outputs, state = setup
        view = ConservativeQueueView(inputs, outputs, state)
        assert view.input_count(0) == 2
        state.sched_deqs[0] = 1
        assert view.input_count(0) == 0
        assert view.input_tag(0) is None

    def test_pending_enqueue_means_full(self, setup):
        inputs, outputs, state = setup
        view = ConservativeQueueView(inputs, outputs, state)
        assert view.output_space(0) == 4
        state.pending_enqs[0] = 1
        assert view.output_space(0) == 0

    def test_physical_dequeue_alone_does_not_hide_input(self, setup):
        """The conservative window keys off retirement, not decode."""
        inputs, outputs, state = setup
        view = ConservativeQueueView(inputs, outputs, state)
        state.pending_deqs[0] = 1     # physically pending, but sched flag clear
        assert view.input_count(0) == 2


class TestEffective:
    def test_occupancy_corrected_by_pending_dequeues(self, setup):
        inputs, outputs, state = setup
        view = EffectiveQueueView(inputs, outputs, state)
        assert view.input_count(0) == 2
        state.pending_deqs[0] = 1
        assert view.input_count(0) == 1

    def test_neck_inspection(self, setup):
        """With one dequeue in flight the scheduler sees the second entry."""
        inputs, outputs, state = setup
        view = EffectiveQueueView(inputs, outputs, state)
        assert view.input_tag(0, 0) == 0
        state.pending_deqs[0] = 1
        assert view.input_tag(0, 0) == 1     # the neck's tag

    def test_output_space_counts_in_flight_enqueues(self, setup):
        inputs, outputs, state = setup
        view = EffectiveQueueView(inputs, outputs, state)
        state.pending_enqs[1] = 2
        assert view.output_space(1) == 2

    def test_never_negative(self, setup):
        inputs, outputs, state = setup
        view = EffectiveQueueView(inputs, outputs, state)
        state.pending_deqs[0] = 5
        assert view.input_count(0) == 0
        state.pending_enqs[0] = 9
        assert view.output_space(0) == 0

    def test_tags_invisible_past_head_and_neck(self, setup):
        """Section 5.3 hardware has only head and neck tag comparators;
        an effective position of 2+ must read as unknown, not peek deep."""
        inputs, outputs, state = setup
        inputs[0].enqueue(30, tag=1)
        inputs[0].commit()                    # occupancy 3, tags (0, 1, 1)
        view = EffectiveQueueView(inputs, outputs, state)
        state.pending_deqs[0] = 2
        assert view.input_count(0) == 1       # occupancy math is still exact
        assert view.input_tag(0, 0) is None   # third-from-head: no comparator


class TestVisibilityWindowRegression:
    """Minimized repro: with two dequeues in flight, a tag match visible
    only at the third-from-head entry must not fire a trigger — the
    hardware cannot see it."""

    def test_third_from_head_tag_cannot_fire_a_trigger(self):
        from repro.arch.scheduler import Scheduler, TriggerKind
        from repro.isa.instruction import (
            DatapathOp, Destination, Instruction, Operand, TagCheck, Trigger,
        )
        from repro.isa.opcodes import op_by_name
        from repro.params import DEFAULT_PARAMS

        inputs = [TaggedQueue(4, f"i{i}") for i in range(4)]
        outputs = [TaggedQueue(4, f"o{i}") for i in range(4)]
        for value, tag in ((1, 0), (2, 0), (3, 1)):
            inputs[0].enqueue(value, tag)
        inputs[0].commit()
        state = InFlightQueueState(4, 4)
        state.pending_deqs[0] = 2            # head and neck being dequeued
        view = EffectiveQueueView(inputs, outputs, state)
        program = [Instruction(
            trigger=Trigger(tag_checks=(TagCheck(queue=0, tag=1),)),
            dp=DatapathOp(
                op=op_by_name("mov"),
                srcs=(Operand.input_queue(0),),
                dst=Destination.reg(0),
            ),
        )]
        outcome = Scheduler(DEFAULT_PARAMS).evaluate(program, 0, view)
        assert outcome.kind is TriggerKind.NONE_TRIGGERED


class TestPadded:
    def test_output_checks_against_unpadded_capacity(self, setup):
        inputs, outputs, state = setup
        # Physical queue is padded by the pipeline depth (2 here).
        outputs[0] = TaggedQueue(6, "padded")
        view = PaddedQueueView(inputs, outputs, state, padding=2)
        assert view.output_space(0) == 4
        state.pending_enqs[0] = 3      # padding absorbs them: ignored
        assert view.output_space(0) == 4

    def test_inputs_stay_conservative(self, setup):
        inputs, outputs, state = setup
        view = PaddedQueueView(inputs, outputs, state, padding=2)
        state.sched_deqs[0] = 1
        assert view.input_count(0) == 0


class TestFactory:
    def test_policy_selects_view(self, setup):
        inputs, outputs, state = setup
        assert isinstance(
            make_queue_view(config_by_name("T|D|X"), inputs, outputs, state),
            ConservativeQueueView,
        )
        assert isinstance(
            make_queue_view(config_by_name("T|D|X +Q"), inputs, outputs, state),
            EffectiveQueueView,
        )
        assert isinstance(
            make_queue_view(config_by_name("T|D|X +pad"), inputs, outputs, state),
            PaddedQueueView,
        )
