"""Assembler: the paper's syntax, error reporting, binary round trips."""

import pytest

from repro.asm import assemble
from repro.errors import AssemblerError
from repro.isa.encoding import decode_program
from repro.isa.instruction import DestinationType, OperandType
from repro.params import DEFAULT_PARAMS as P

PAPER_EXAMPLE = """
when %p == XXXX0000 with %i0.0, %i3.0:
    ult %p7, %i3, %i0; set %p = ZZZZ0001;
"""


class TestPaperExample:
    """The exact snippet from Section 2.2 must assemble."""

    def test_assembles(self):
        program = assemble(PAPER_EXAMPLE)
        assert len(program) == 1

    def test_guard(self):
        ins = assemble(PAPER_EXAMPLE).instructions[0]
        assert ins.trigger.pred_on == 0
        assert ins.trigger.pred_off == 0b00001111
        assert [(c.queue, c.tag) for c in ins.trigger.tag_checks] == [(0, 0), (3, 0)]

    def test_datapath(self):
        ins = assemble(PAPER_EXAMPLE).instructions[0]
        assert ins.dp.op.mnemonic == "ult"
        assert ins.dp.dst.kind is DestinationType.PRED and ins.dp.dst.index == 7
        assert [s.index for s in ins.dp.srcs] == [3, 0]
        assert all(s.kind is OperandType.IN for s in ins.dp.srcs)

    def test_pred_update(self):
        ins = assemble(PAPER_EXAMPLE).instructions[0]
        assert ins.dp.pred_update.set_mask == 0b1
        assert ins.dp.pred_update.clear_mask == 0b1110


class TestSyntax:
    def test_comments_and_blank_lines(self):
        program = assemble("""
        # leading comment
        when %p == XXXXXXXX:   // trailing comment
            nop;               # another
        """)
        assert len(program) == 1

    def test_immediates(self):
        src = "when %p == XXXXXXXX:\n    add %r0, %r1, $-1;"
        ins = assemble(src).instructions[0]
        assert ins.dp.imm == P.word_mask
        src = "when %p == XXXXXXXX:\n    add %r0, %r1, $0x10;"
        assert assemble(src).instructions[0].dp.imm == 16

    def test_output_destination_with_tag(self):
        ins = assemble("when %p == XXXXXXXX:\n    mov %o2.3, %r0;").instructions[0]
        assert ins.dp.dst.kind is DestinationType.OUT
        assert ins.dp.dst.index == 2 and ins.dp.dst.out_tag == 3

    def test_negated_tag_check(self):
        ins = assemble(
            "when %p == XXXXXXXX with %i1.!2:\n    mov %r0, %i1; deq %i1;"
        ).instructions[0]
        check = ins.trigger.tag_checks[0]
        assert check.queue == 1 and check.tag == 2 and check.negate

    def test_multi_dequeue(self):
        ins = assemble(
            "when %p == XXXXXXXX:\n    add %r0, %i0, %i1; deq %i0, %i1;"
        ).instructions[0]
        assert ins.dp.deq == (0, 1)

    def test_start_directive(self):
        program = assemble(".start %p = 00000101\nwhen %p == XXXXXXXX:\n    nop;")
        assert program.initial_predicates == 0b101

    def test_priority_is_source_order(self):
        program = assemble("""
        when %p == XXXXXXX1:
            halt;
        when %p == XXXXXXXX:
            nop;
        """)
        assert program.instructions[0].dp.op.mnemonic == "halt"

    def test_multiline_instruction_body(self):
        program = assemble("""
        when %p == XXXXXXXX
            with %i0.0:
            add %r0, %r0, %i0;
            deq %i0;
        """)
        assert program.instructions[0].dp.deq == (0,)


class TestErrors:
    def test_error_carries_line_and_column(self):
        # The bad action is on line 4, column 5 — errors cite the action's
        # own location, not the block's ``when`` line.
        with pytest.raises(AssemblerError, match=r"line 4:5"):
            assemble("\n\nwhen %p == XXXXXXXX:\n    bogus %r0, %r1;")

    def test_instructions_carry_source_location(self):
        # Each instruction is anchored at its block's ``when`` line.
        program = assemble("\nwhen %p == XXXXXXXX:\n    nop;\nwhen %p == XXXXXXXX:\n    halt;")
        assert [(i.line, i.column) for i in program.instructions] == [(2, 1), (4, 1)]

    def test_unknown_operation(self):
        with pytest.raises(AssemblerError, match="unknown operation"):
            assemble("when %p == XXXXXXXX:\n    div %r0, %r1, %r2;")

    def test_malformed_guard(self):
        with pytest.raises(AssemblerError, match="guard"):
            assemble("when %p = XXXXXXXX:\n    nop;")

    def test_statement_before_when(self):
        with pytest.raises(AssemblerError, match="before any 'when'"):
            assemble("nop;")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError, match="expects 3"):
            assemble("when %p == XXXXXXXX:\n    add %r0, %r1;")

    def test_two_immediates_rejected(self):
        with pytest.raises(AssemblerError, match="one immediate"):
            assemble("when %p == XXXXXXXX:\n    add %r0, $1, $2;")

    def test_two_datapath_ops_rejected(self):
        with pytest.raises(AssemblerError, match="more than one datapath"):
            assemble("when %p == XXXXXXXX:\n    nop; nop;")

    def test_empty_program_rejected(self):
        with pytest.raises(AssemblerError, match="no instructions"):
            assemble("# nothing here")

    def test_unknown_directive(self):
        with pytest.raises(AssemblerError, match="unknown directive"):
            assemble(".origin 0\nwhen %p == XXXXXXXX:\n    nop;")

    def test_too_many_instructions(self):
        source = "\n".join(
            "when %p == XXXXXXXX:\n    nop;" for _ in range(P.num_instructions + 1)
        )
        with pytest.raises(AssemblerError, match="NIns"):
            assemble(source)

    def test_pattern_too_long(self):
        with pytest.raises(AssemblerError, match="longer than NPreds"):
            assemble("when %p == XXXXXXXXX:\n    nop;")

    def test_set_conflicts_with_datapath_predicate(self):
        with pytest.raises(AssemblerError, match="force-updated"):
            assemble("when %p == XXXXXXXX:\n    eq %p0, %r0, %r1; set %p = ZZZZZZZ1;")


class TestBinaryRoundTrip:
    def test_source_to_binary_to_instructions(self):
        source = """
        .start %p = 00000001
        when %p == XXXXXXX1 with %i0.0:
            add %r1, %r1, %i0; deq %i0;
        when %p == XXXXXXX1 with %i0.1:
            mov %o0.1, %r1; deq %i0; set %p = ZZZZZZ10;
        when %p == XXXXXX1X:
            halt;
        """
        program = assemble(source)
        blob = program.binary(P)
        back = decode_program(blob, P)
        for original, decoded in zip(program.instructions, back):
            assert decoded.trigger == original.trigger
            assert decoded.dp == original.dp
