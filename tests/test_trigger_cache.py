"""Program lowering: compiled triggers and datapaths match their source."""

from repro.arch.trigger_cache import (
    DST_OUT,
    DST_PRED,
    DST_REG,
    IN,
    LIT,
    REG,
    CompiledDatapath,
    compile_datapaths,
    compile_program,
)
from repro.isa.alu import alu_execute
from repro.isa.instruction import (
    DatapathOp,
    Destination,
    Instruction,
    Operand,
    PredUpdate,
    TagCheck,
    Trigger,
    make_nop,
)
from repro.isa.opcodes import op_by_name
from repro.params import DEFAULT_PARAMS as P


def _ins(**kwargs):
    defaults = dict(
        trigger=Trigger(),
        dp=DatapathOp(
            op=op_by_name("add"),
            srcs=(Operand.reg(0), Operand.reg(1)),
            dst=Destination.reg(0),
        ),
    )
    defaults.update(kwargs)
    return Instruction(**defaults)


class TestCompiledTrigger:
    def test_fields_mirror_the_instruction(self):
        ins = _ins(
            trigger=Trigger(
                pred_on=0b0101, pred_off=0b1010,
                tag_checks=(TagCheck(queue=2, tag=3, negate=True),),
            ),
            dp=DatapathOp(
                op=op_by_name("add"),
                srcs=(Operand.input_queue(1), Operand.reg(0)),
                dst=Destination.output_queue(2, 1),
                deq=(1,),
            ),
        )
        [d] = compile_program([ins]).descriptors
        assert d.index == 0
        assert d.pred_on == 0b0101 and d.pred_off == 0b1010
        assert d.watched == 0b1111
        assert d.required_queues == (1, 2)   # operand + tag-checked queues
        assert d.tag_checks == ((2, 3, True),)
        assert d.out_queue == 2
        assert d.side_effects == ins.dp.has_side_effects_before_retire

    def test_invalid_slots_dropped_but_indices_kept(self):
        program = [make_nop(), _ins(), make_nop(), _ins()]
        compiled = compile_program(program)
        assert [d.index for d in compiled.descriptors] == [1, 3]

    def test_matches_is_identity_based(self):
        program = [_ins()]
        compiled = compile_program(program)
        assert compiled.matches(program)
        assert not compiled.matches(list(program))


class TestCompiledDatapath:
    def test_operand_plan_padded_and_immediate_premasked(self):
        ins = _ins(dp=DatapathOp(
            op=op_by_name("not"),
            srcs=(Operand.imm(),),
            dst=Destination.reg(3),
            imm=-1,
        ))
        meta = CompiledDatapath(ins, P)
        assert meta.operand_plan == ((LIT, P.word_mask), (LIT, 0))
        assert meta.reg_srcs == ()
        assert meta.dst_kind == DST_REG and meta.dst_index == 3

    def test_queue_sources_and_destinations(self):
        ins = _ins(dp=DatapathOp(
            op=op_by_name("add"),
            srcs=(Operand.input_queue(2), Operand.reg(5)),
            dst=Destination.output_queue(1, 3),
            deq=(2,),
        ))
        meta = CompiledDatapath(ins, P)
        assert meta.operand_plan == ((IN, 2), (REG, 5))
        assert meta.reg_srcs == (5,)
        assert meta.deq == (2,)
        assert meta.dst_kind == DST_OUT
        assert meta.dst_index == 1 and meta.out_tag == 3
        assert meta.out_queue == 1

    def test_predicate_destination_flags(self):
        ins = _ins(dp=DatapathOp(
            op=op_by_name("eqz"),
            srcs=(Operand.reg(0),),
            dst=Destination.predicate(2),
            pred_update=PredUpdate(set_mask=0b1),
        ))
        meta = CompiledDatapath(ins, P)
        assert meta.dst_kind == DST_PRED and meta.dst_index == 2
        assert meta.writes_pred and not meta.writes_reg
        assert meta.out_queue == -1
        assert meta.pred_update is ins.dp.pred_update

    def test_semantics_agree_with_alu_execute(self):
        for mnemonic in ("add", "mulh", "asr", "brev", "slt", "halt"):
            op = op_by_name(mnemonic)
            srcs = tuple(Operand.reg(i) for i in range(op.num_srcs))
            ins = _ins(dp=DatapathOp(op=op, srcs=srcs, dst=Destination.reg(0)))
            meta = CompiledDatapath(ins, P)
            assert meta.is_halt == (mnemonic == "halt")
            assert meta.late_result == op.late_result
            for a, b in ((0, 0), (7, 3), (P.word_mask, 1)):
                got = meta.semantics(a, b, P, P.word_mask, P.word_width, None)
                assert got == alu_execute(op, a, b, P, None)

    def test_compiled_by_position_including_invalid(self):
        program = [make_nop(), _ins(), make_nop()]
        metas = compile_datapaths(program, P)
        assert len(metas) == 3
        assert metas[1].op is program[1].dp.op
