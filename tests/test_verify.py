"""Tests for the differential fuzzing subsystem (``repro.verify``)."""

import copy
import os

from repro.isa.opcodes import OPS
from repro.params import DEFAULT_PARAMS
from repro.verify.corpus import load_corpus
from repro.verify.generator import case_source, generate_case
from repro.verify.harness import check_case, real_divergences
from repro.verify.runner import fuzz_run, summarize_run
from repro.verify.shrinker import shrink_case
import repro.pipeline.queue_status as qs

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

#: The unminimized Section 5.3 probe: a non-dequeuing tag-checked pair
#: evaluated while a late-result-dependent consume holds its dequeue in
#: flight.  The corpus holds its shrunk form; the tests shrink this one.
NECK_TAG_CASE = {
    "name": "hand-neck-tag", "seed": -1, "start": "s0",
    "entries": [
        {"op": "mul %r2, %r7, %r7", "state": "s0", "next": "s1"},
        {"op": "add %r0, %i1, %r2", "state": "s1", "next": "s2",
         "checks": ["%i1.0"], "deq": ["%i1"]},
        {"op": "add %r0, %i1, %r2", "state": "s1", "next": "s2",
         "checks": ["%i1.1"], "deq": ["%i1"]},
        {"op": "mov %o0.0, $111", "state": "s2", "next": "s3",
         "checks": ["%i1.0"]},
        {"op": "mov %o0.0, $222", "state": "s2", "next": "s3",
         "checks": ["%i1.1"]},
        {"op": "mov %r1, %i1", "state": "s3", "next": "s4", "deq": ["%i1"]},
        {"op": "halt", "state": "s4"},
    ],
    "streams": {"1": [[5, 0], [7, 1]]},
}


def _inject_effective_tag_bug(monkeypatch):
    """Revert the Section 5.3 fix: +Q tag inspection reads the physical
    position, ignoring in-flight dequeues and the visibility window."""
    def bugged(self, queue, position=0):
        q = self.inputs[queue]
        if position >= q.occupancy:
            return None
        return q.peek(position).tag
    monkeypatch.setattr(qs.EffectiveQueueView, "input_tag", bugged)


def _inject_conservative_suppression_bug(monkeypatch):
    """Conservative view loses its scheduled-dequeue suppression."""
    def bugged_tag(self, queue, position=0):
        q = self.inputs[queue]
        if position >= q.occupancy:
            return None
        return q.peek(position).tag
    monkeypatch.setattr(qs.ConservativeQueueView, "input_tag", bugged_tag)
    monkeypatch.setattr(qs.ConservativeQueueView, "input_count",
                        lambda self, queue: self.inputs[queue].occupancy)


class TestGenerator:
    def test_same_seed_same_case(self):
        assert generate_case(7) == generate_case(7)
        assert generate_case(7) != generate_case(8)

    def test_cases_are_valid_and_equivalent(self):
        """Every generated case assembles, round-trips, terminates on
        the golden model, and matches it on all 48 microarchitectures."""
        for seed in range(18):
            case = generate_case(seed, DEFAULT_PARAMS)
            result = check_case(case, DEFAULT_PARAMS, ref_configs=1)
            assert result["divergences"] == [], (seed, result["divergences"])
            assert result["configs_checked"] == 48

    def test_case_source_is_assembly_text(self):
        source = case_source(generate_case(3, DEFAULT_PARAMS))
        assert "halt" in source


class TestRunner:
    def test_results_identical_at_any_worker_count(self):
        serial = fuzz_run(6, seed=50, workers=1, ref_configs=1)
        pooled = fuzz_run(6, seed=50, workers=2, ref_configs=1)
        assert serial == pooled
        summary = summarize_run(serial)
        assert summary["cases"] == 6
        assert summary["divergent_cases"] == []
        assert summary["generator_bugs"] == []


class TestCorpus:
    def test_corpus_replays_clean(self):
        pairs = load_corpus(CORPUS_DIR)
        assert pairs, "the landed corpus must not be empty"
        for path, case in pairs:
            result = check_case(case, DEFAULT_PARAMS, ref_configs=2)
            assert result["divergences"] == [], (path, result["divergences"])

    def test_corpus_covers_every_opcode(self):
        """The round-trip corpus cases exercise the full 42-op ISA."""
        used = set()
        for _, case in load_corpus(CORPUS_DIR):
            for entry in case["entries"]:
                used.add(entry["op"].split()[0])
        assert {op.mnemonic for op in OPS} <= used


class TestShrinker:
    def test_non_divergent_case_unchanged(self):
        case = generate_case(3, DEFAULT_PARAMS)
        assert shrink_case(case, DEFAULT_PARAMS, ref_configs=0) == case

    def test_minimizes_and_is_idempotent(self, monkeypatch):
        _inject_effective_tag_bug(monkeypatch)
        case = copy.deepcopy(NECK_TAG_CASE)
        small = shrink_case(case, DEFAULT_PARAMS, ref_configs=0)
        assert small["name"].endswith("-min")
        assert len(small["entries"]) < len(NECK_TAG_CASE["entries"])
        assert real_divergences(
            check_case(small, DEFAULT_PARAMS, ref_configs=0))
        assert shrink_case(small, DEFAULT_PARAMS, ref_configs=0) == small


class TestSensitivity:
    """The harness must actually catch queue-status fidelity bugs: each
    injected regression diverges on the landed corpus probes."""

    def _corpus_case(self, name):
        for path, case in load_corpus(CORPUS_DIR):
            if case["name"] == name:
                return case
        raise AssertionError(f"corpus case {name!r} missing")

    def test_detects_effective_tag_visibility_regression(self, monkeypatch):
        _inject_effective_tag_bug(monkeypatch)
        case = self._corpus_case("neck-tag-visibility")
        divs = real_divergences(check_case(case, DEFAULT_PARAMS,
                                           ref_configs=0))
        assert divs, "reverting the Section 5.3 fix must diverge"
        assert all("+Q" in d["config"] for d in divs)

    def test_detects_conservative_suppression_regression(self, monkeypatch):
        _inject_conservative_suppression_bug(monkeypatch)
        case = self._corpus_case("neck-tag-visibility")
        divs = real_divergences(check_case(case, DEFAULT_PARAMS,
                                           ref_configs=0))
        assert divs, "losing in-flight dequeue suppression must diverge"
        assert all("+Q" not in d["config"] for d in divs)

    def test_fuzzer_finds_the_injected_regression(self, monkeypatch):
        """The generated stream itself (not just hand probes) exposes
        the injected bug: seed 125 is a fuzzer-found detector."""
        _inject_effective_tag_bug(monkeypatch)
        case = generate_case(125, DEFAULT_PARAMS)
        divs = real_divergences(check_case(case, DEFAULT_PARAMS,
                                           ref_configs=0))
        assert divs
