"""Integer semantics of every operation, including property-based checks."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.scratchpad import Scratchpad
from repro.errors import SimulationError
from repro.isa.alu import alu_execute, to_signed, to_unsigned
from repro.isa.opcodes import op_by_name
from repro.params import DEFAULT_PARAMS as P

words = st.integers(min_value=0, max_value=P.word_mask)


def run(mnemonic, a=0, b=0, scratchpad=None):
    return alu_execute(op_by_name(mnemonic), a, b, P, scratchpad)


class TestBasics:
    def test_nop_produces_nothing(self):
        r = run("nop")
        assert r.value == 0 and not r.halt and r.store is None

    def test_halt_sets_flag(self):
        assert run("halt").halt

    def test_mov_copies_first_operand(self):
        assert run("mov", 123, 999).value == 123

    @pytest.mark.parametrize("a,b,expected", [
        (1, 2, 3), (P.word_mask, 1, 0), (0x7FFFFFFF, 1, 0x80000000),
    ])
    def test_add(self, a, b, expected):
        assert run("add", a, b).value == expected

    def test_sub_wraps(self):
        assert run("sub", 0, 1).value == P.word_mask

    def test_mul_low_word(self):
        assert run("mul", 0x10000, 0x10000).value == 0

    def test_mulhu_high_word(self):
        assert run("mulhu", 0x10000, 0x10000).value == 1

    def test_mulh_signed(self):
        minus_one = P.word_mask
        assert run("mulh", minus_one, minus_one).value == 0  # (-1)*(-1) >> 32

    def test_logic(self):
        assert run("and", 0b1100, 0b1010).value == 0b1000
        assert run("or", 0b1100, 0b1010).value == 0b1110
        assert run("xor", 0b1100, 0b1010).value == 0b0110
        assert run("nor", 0, 0).value == P.word_mask
        assert run("nand", P.word_mask, P.word_mask).value == 0
        assert run("xnor", 5, 5).value == P.word_mask
        assert run("not", 0).value == P.word_mask

    def test_shifts(self):
        assert run("shl", 1, 4).value == 16
        assert run("shr", 0x80000000, 31).value == 1
        assert run("asr", 0x80000000, 31).value == P.word_mask

    def test_rotates(self):
        assert run("rol", 0x80000001, 1).value == 0x00000003
        assert run("ror", 0x80000001, 1).value == 0xC0000000

    def test_bit_manipulation(self):
        assert run("clz", 0).value == 32
        assert run("clz", 1).value == 31
        assert run("ctz", 0).value == 32
        assert run("ctz", 0x80000000).value == 31
        assert run("popc", 0xFF00FF00).value == 16
        assert run("brev", 1).value == 0x80000000

    def test_sign_extension(self):
        assert run("sext8", 0x80).value == 0xFFFFFF80
        assert run("sext8", 0x7F).value == 0x7F
        assert run("sext16", 0x8000).value == 0xFFFF8000
        assert run("sext16", 0x1234).value == 0x1234

    def test_comparisons_signed_vs_unsigned(self):
        minus_one = P.word_mask
        assert run("slt", minus_one, 0).value == 1   # -1 < 0 signed
        assert run("ult", minus_one, 0).value == 0   # 0xFFFFFFFF not < 0
        assert run("sge", 0, minus_one).value == 1
        assert run("uge", 0, minus_one).value == 0

    def test_predicate_logic(self):
        assert run("land", 3, 7).value == 1
        assert run("land", 3, 0).value == 0
        assert run("lor", 0, 0).value == 0
        assert run("lor", 0, 9).value == 1

    def test_scratchpad_ops(self):
        pad = Scratchpad(P)
        assert run("ssw", 5, 77, pad).store == (5, 77)
        pad.store(5, 77)
        assert run("lsw", 5, 0, pad).value == 77

    def test_memory_ops_require_scratchpad(self):
        with pytest.raises(SimulationError):
            run("lsw", 0)
        with pytest.raises(SimulationError):
            run("ssw", 0, 0)


class TestProperties:
    @given(a=words, b=words)
    def test_add_sub_inverse(self, a, b):
        total = run("add", a, b).value
        assert run("sub", total, b).value == a

    @given(a=words, b=words)
    def test_full_product_reconstruction_unsigned(self, a, b):
        low = run("mul", a, b).value
        high = run("mulhu", a, b).value
        assert (high << 32) | low == a * b

    @given(a=words, b=words)
    def test_full_product_reconstruction_signed(self, a, b):
        low = run("mul", a, b).value
        high = run("mulh", a, b).value
        signed = to_signed(a, P) * to_signed(b, P)
        assert (high << 32) | low == signed & 0xFFFFFFFFFFFFFFFF

    @given(a=words)
    def test_double_negation(self, a):
        assert run("not", run("not", a).value).value == a

    @given(a=words)
    def test_brev_involution(self, a):
        assert run("brev", run("brev", a).value).value == a

    @given(a=words, s=st.integers(min_value=0, max_value=31))
    def test_rotate_round_trip(self, a, s):
        assert run("ror", run("rol", a, s).value, s).value == a

    @given(a=words)
    def test_clz_ctz_popc_consistency(self, a):
        clz = run("clz", a).value
        ctz = run("ctz", a).value
        popc = run("popc", a).value
        assert popc == bin(a).count("1")
        if a == 0:
            assert clz == ctz == 32
        else:
            assert clz + a.bit_length() == 32
            assert (a >> ctz) & 1 == 1

    @given(a=words, b=words)
    def test_comparison_trichotomy_unsigned(self, a, b):
        lt = run("ult", a, b).value
        eq = run("eq", a, b).value
        gt = run("ugt", a, b).value
        assert lt + eq + gt == 1

    @given(a=words, b=words)
    def test_comparison_duality(self, a, b):
        assert run("ule", a, b).value == run("uge", b, a).value
        assert run("slt", a, b).value == run("sgt", b, a).value
        assert run("ne", a, b).value == 1 - run("eq", a, b).value

    @given(a=words)
    def test_signed_round_trip(self, a):
        assert to_unsigned(to_signed(a, P), P) == a

    @given(a=words, s=st.integers(min_value=0, max_value=31))
    def test_shift_pair(self, a, s):
        """shl then shr recovers the value with the high bits dropped."""
        masked = a & (P.word_mask >> s)
        assert run("shr", run("shl", a, s).value, s).value == masked
