"""The ten Table 3 microbenchmarks, validated end to end."""

import pytest

from repro.pipeline import PipelinedPE, config_by_name
from repro.workloads import WORKLOADS, get_workload, run_workload
from repro.errors import ConfigError

ALL = WORKLOADS()


class TestSuiteShape:
    def test_table3_has_ten_benchmarks(self):
        assert len(ALL) == 10
        assert ALL == [
            "bst", "gcd", "mean", "arg_max", "dot_product",
            "filter", "merge", "stream", "string_search", "udiv",
        ]

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigError, match="unknown workload"):
            get_workload("matmul")

    def test_single_vs_multi_pe_counts(self):
        """Three single-PE programs, seven on small arrays (Table 3)."""
        single = [n for n in ALL if get_workload(n).pe_count == 1]
        assert single == ["bst", "gcd", "mean"]
        assert all(2 <= get_workload(n).pe_count <= 4 for n in ALL
                   if n not in single)

    def test_every_workload_has_a_worker(self):
        for name in ALL:
            assert get_workload(name).worker_name == "worker"

    def test_programs_fit_the_pe(self):
        """Every PE program respects NIns = 16 (enforced at configure)."""
        for name in ALL:
            run_workload(name, scale=8)   # configure would raise otherwise


class TestFunctionalCorrectness:
    """run_workload raises on any golden-model mismatch."""

    @pytest.mark.parametrize("name", ALL)
    def test_default_seed(self, name):
        run = run_workload(name, scale=16)
        assert run.cycles > 0
        assert run.worker_counters.retired > 0

    @pytest.mark.parametrize("name", ALL)
    def test_alternate_seed(self, name):
        run_workload(name, scale=16, seed=99)

    @pytest.mark.parametrize("name", ["bst", "merge", "udiv", "string_search"])
    def test_larger_scale(self, name):
        run_workload(name, scale=48)

    def test_udiv_divides_correctly_at_scale_one(self):
        run_workload("udiv", scale=1)

    def test_string_search_finds_planted_patterns(self):
        run = run_workload("string_search", scale=32)
        out_base = 32  # words of text
        marks = run.system.memory.dump(out_base, 128)
        assert sum(marks) >= 2   # planted occurrences found


class TestPipelinedCorrectness:
    """The same programs must validate on pipelined microarchitectures."""

    @pytest.mark.parametrize("config_name", [
        "TDX", "TD|X", "T|D|X1|X2", "T|D|X1|X2 +P", "T|D|X1|X2 +P+Q",
        "TDX1|X2 +Q",
    ])
    @pytest.mark.parametrize("name", ALL)
    def test_all_workloads(self, name, config_name):
        config = config_by_name(config_name)
        factory = lambda pe_name: PipelinedPE(config, name=pe_name)
        run = run_workload(name, make_pe=factory, scale=12)
        run.worker_counters.check_consistency()

    def test_pipelining_never_changes_results_only_timing(self):
        shallow = run_workload(
            "merge",
            make_pe=lambda n: PipelinedPE(config_by_name("TDX"), name=n),
            scale=16,
        )
        deep = run_workload(
            "merge",
            make_pe=lambda n: PipelinedPE(config_by_name("T|D|X1|X2"), name=n),
            scale=16,
        )
        assert deep.cycles > shallow.cycles

    def test_dot_product_worker_writes_no_predicates(self):
        """The Figure 4 outlier: control purely via operand tags."""
        run = run_workload(
            "dot_product",
            make_pe=lambda n: PipelinedPE(config_by_name("T|D|X +P"), name=n),
            scale=16,
        )
        assert run.worker_counters.predicate_writes == 0
        assert run.worker_counters.prediction_accuracy is None

    def test_filter_and_merge_predictions_are_hard(self):
        """High-entropy control flow: accuracy near the 50% worst case."""
        for name in ("filter", "merge"):
            run = run_workload(
                name,
                make_pe=lambda n: PipelinedPE(
                    config_by_name("T|D|X1|X2 +P"), name=n),
                scale=96,
            )
            accuracy = run.worker_counters.prediction_accuracy
            assert accuracy is not None and accuracy < 0.75

    def test_gcd_and_stream_predictions_are_easy(self):
        """Long predictable loops: near-perfect accuracy."""
        for name in ("gcd", "stream"):
            run = run_workload(
                name,
                make_pe=lambda n: PipelinedPE(
                    config_by_name("T|D|X1|X2 +P"), name=n),
                scale=96,
            )
            accuracy = run.worker_counters.prediction_accuracy
            assert accuracy is not None and accuracy > 0.9
