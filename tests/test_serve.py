"""Campaign service tier: store, admission, supervisor taxonomy, clients.

The supervisor tests run chaos task kinds (:mod:`repro.serve.chaos`)
against *real* forked worker processes — crash-once, hang-once, and
poison tasks — so the kill/respawn/retry/quarantine paths are exercised
end to end, not mocked.  The chaos SIGKILL gate (the acceptance
criterion: a campaign interrupted by kill -9 of the whole service
process group resumes from the durable store byte-identical to an
uninterrupted serial run, with zero duplicated executions) runs the
same orchestrator as ``python -m repro.serve --chaos``, scaled down.
"""

import asyncio
import json
import multiprocessing
import os
import threading

import pytest

from repro.errors import CampaignError, ConfigError
from repro.parallel import WorkerTraceback
from repro.serve import (
    AdmissionController,
    AdmissionError,
    CampaignService,
    HttpClient,
    InProcessClient,
    ResultStore,
    Supervisor,
    canonical_json,
    task_fingerprint,
)
from repro.serve import supervisor as supervisor_mod
from repro.serve.admission import TokenBucket
from repro.serve.http import start_http_server
from repro.serve.tasks import execute, registered_kinds


# ----------------------------------------------------------------------
# Durable result store
# ----------------------------------------------------------------------


class TestResultStore:
    def test_put_get_roundtrip(self):
        with ResultStore() as store:
            fp = task_fingerprint("chaos-echo", {"value": 1})
            assert store.put(fp, "chaos-echo", {"value": 1}, {"echo": 1})
            assert store.get(fp) == {"echo": 1}
            assert fp in store
            assert len(store) == 1

    def test_miss_raises_or_defaults(self):
        with ResultStore() as store:
            with pytest.raises(KeyError):
                store.get("absent")
            assert store.get("absent", default=None) is None
            assert store.misses == 2

    def test_duplicate_put_keeps_first_result(self):
        with ResultStore() as store:
            fp = task_fingerprint("chaos-echo", {"value": 1})
            assert store.put(fp, "chaos-echo", {"value": 1}, {"echo": 1})
            assert not store.put(fp, "chaos-echo", {"value": 1}, {"echo": 99})
            assert store.get(fp) == {"echo": 1}
            assert store.duplicate_puts == 1
            assert store.executions(fp) == 1
            assert store.max_executions() == 1

    def test_persists_across_instances(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        fp = task_fingerprint("chaos-echo", {"value": 7})
        with ResultStore(path) as store:
            store.put(fp, "chaos-echo", {"value": 7}, {"echo": 7})
        with ResultStore(path) as store:
            assert store.get(fp) == {"echo": 7}
            assert store.kinds() == {"chaos-echo": 1}

    def test_corrupt_database_recovers_empty(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        with open(path, "w") as handle:
            handle.write("this is not a sqlite database at all")
        with ResultStore(path) as store:
            assert store.recovered_corrupt
            assert len(store) == 0
            fp = task_fingerprint("chaos-echo", {"value": 1})
            store.put(fp, "chaos-echo", {"value": 1}, {"echo": 1})
            assert store.get(fp) == {"echo": 1}
        assert os.path.exists(path + ".corrupt")

    def test_stats_shape(self):
        with ResultStore() as store:
            stats = store.stats()
            assert stats["rows"] == 0
            assert stats["max_executions"] == 0
            assert not stats["recovered_corrupt"]


class TestFingerprint:
    def test_key_order_invariant(self):
        a = task_fingerprint("k", {"x": 1, "y": 2})
        b = task_fingerprint("k", {"y": 2, "x": 1})
        assert a == b

    def test_kind_and_payload_distinguish(self):
        base = task_fingerprint("k", {"x": 1})
        assert task_fingerprint("other", {"x": 1}) != base
        assert task_fingerprint("k", {"x": 2}) != base

    def test_canonical_json_is_tight_and_sorted(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'


# ----------------------------------------------------------------------
# Admission control (fake clock: fully deterministic)
# ----------------------------------------------------------------------


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestAdmission:
    def test_job_too_large_rejected(self):
        ctl = AdmissionController(max_job_tasks=10)
        with pytest.raises(AdmissionError) as err:
            ctl.admit(object(), tasks=11)
        assert err.value.reason == "job-too-large"
        assert err.value.retry_after is None

    def test_queue_full_rejected_with_hint(self):
        ctl = AdmissionController(max_queued_jobs=2, rate=1e9, burst=1e9)
        ctl.admit("a", tasks=1)
        ctl.admit("b", tasks=1)
        with pytest.raises(AdmissionError) as err:
            ctl.admit("c", tasks=1)
        assert err.value.reason == "queue-full"
        assert err.value.retry_after is not None

    def test_backlog_bound_spans_active_jobs(self):
        ctl = AdmissionController(max_backlog_tasks=5, rate=1e9, burst=1e9)
        ctl.admit("a", tasks=4)
        assert ctl.next_job() == "a"   # active, still counted
        with pytest.raises(AdmissionError) as err:
            ctl.admit("b", tasks=2)
        assert err.value.reason == "backlog-full"
        ctl.task_finished(3)
        ctl.admit("b", tasks=2)   # now fits

    def test_rate_limit_with_fake_clock(self):
        clock = _FakeClock()
        ctl = AdmissionController(rate=1.0, burst=2.0, clock=clock)
        ctl.admit("a", client="c1", tasks=0)
        ctl.admit("b", client="c1", tasks=0)
        with pytest.raises(AdmissionError) as err:
            ctl.admit("c", client="c1", tasks=0)
        assert err.value.reason == "rate-limited"
        assert 0.0 < err.value.retry_after <= 1.0
        ctl.admit("d", client="c2", tasks=0)   # separate client budget
        clock.now += 1.0                       # bucket refills
        ctl.admit("e", client="c1", tasks=0)
        assert ctl.stats()["rejections"] == {"rate-limited": 1}

    def test_priority_order_with_fifo_tiebreak(self):
        ctl = AdmissionController(rate=1e9, burst=1e9)
        ctl.admit("low", priority=0)
        ctl.admit("high", priority=5)
        ctl.admit("also-low", priority=0)
        assert ctl.next_job() == "high"
        assert ctl.next_job() == "low"
        assert ctl.next_job() == "also-low"
        assert ctl.next_job() is None

    def test_token_bucket_refill_caps_at_burst(self):
        clock = _FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert bucket.try_take(3.0) is None
        clock.now += 100.0
        assert bucket.try_take(3.0) is None      # capped at burst, not 200
        assert bucket.try_take(1.0) == pytest.approx(0.5)


# ----------------------------------------------------------------------
# Service + supervisor failure taxonomy (real forked workers)
# ----------------------------------------------------------------------


def _run(service, kind, payloads, timeout=60.0):
    return InProcessClient(service).map(kind, payloads, timeout=timeout)


class TestServiceBasics:
    def test_echo_roundtrip_order_preserved(self):
        with CampaignService(None, workers=2) as service:
            results = _run(
                service, "chaos-echo", [{"value": i} for i in range(8)]
            )
        assert results == [{"echo": i} for i in range(8)]

    def test_unknown_kind_fails_fast(self):
        with CampaignService(None, workers=1) as service:
            with pytest.raises(ConfigError):
                service.submit("no-such-kind", [{}])

    def test_dedup_within_one_job(self):
        with CampaignService(None, workers=2) as service:
            job = service.submit("chaos-echo", [{"value": 1}] * 4)
            results = asyncio.run(service.wait(job, timeout=60.0))
        assert results == [{"echo": 1}] * 4
        assert job.executed == 1
        assert job.shared == 3

    def test_dedup_across_jobs_via_store(self):
        with CampaignService(None, workers=1) as service:
            client = InProcessClient(service)
            client.map("chaos-echo", [{"value": 1}, {"value": 2}])
            second = service.submit("chaos-echo", [{"value": 2}, {"value": 3}])
            asyncio.run(service.wait(second, timeout=60.0))
        assert second.from_store == 1
        assert second.executed == 1

    def test_status_and_stats_report_progress(self):
        with CampaignService(None, workers=1) as service:
            job = service.submit("chaos-echo", [{"value": 1}])
            asyncio.run(service.wait(job, timeout=60.0))
            status = service.job_status(job.job_id)
            stats = service.stats()
        assert status["state"] == "done"
        assert status["resolved"] == status["total"] == 1
        assert stats["jobs"] == {"done": 1}
        assert stats["store"]["rows"] == 1


class TestFailureTaxonomy:
    def test_crashed_worker_respawns_and_task_retries(self, tmp_path):
        with CampaignService(
            None, workers=1, backoff_base=0.01, backoff_cap=0.05,
        ) as service:
            results = _run(service, "chaos-crash-once", [
                {"marker": str(tmp_path / "crash.marker"), "token": "t"}
            ])
            stats = service.stats()
        assert results == [{"survived": True, "token": "t"}]
        assert stats["supervisor"]["worker_crashes"] >= 1
        assert stats["supervisor"]["task_retries"] >= 1
        assert stats["supervisor"]["worker_spawns"] >= 2   # respawned

    def test_hung_worker_is_killed_and_task_retries(self, tmp_path):
        with CampaignService(
            None, workers=1, task_timeout=0.5,
            backoff_base=0.01, backoff_cap=0.05,
        ) as service:
            results = _run(service, "chaos-hang-once", [
                {"marker": str(tmp_path / "hang.marker"), "token": "t",
                 "hang_seconds": 600.0}
            ])
            stats = service.stats()
        assert results == [{"survived": True, "token": "t"}]
        assert stats["supervisor"]["worker_kills"] >= 1
        assert stats["supervisor"]["task_retries"] >= 1

    def test_poison_task_quarantined_after_max_failures(self):
        with CampaignService(
            None, workers=1, max_task_failures=2,
            backoff_base=0.01, backoff_cap=0.05,
        ) as service:
            job = service.submit("chaos-always-crash", [{"exit_code": 29}])
            with pytest.raises(CampaignError) as err:
                asyncio.run(service.wait(job, timeout=60.0))
            status = job.status()
            stats = service.stats()
        assert status["state"] == "failed"
        assert status["quarantined"] == 1
        assert status["failed"] == 0    # quarantine, not a task exception
        assert stats["supervisor"]["tasks_quarantined"] == 1
        [report] = err.value.quarantine_reports
        assert len(report["attempts"]) == 2
        assert {a["failure"] for a in report["attempts"]} == {"crashed"}
        assert report["payload"] == {"exit_code": 29}

    def test_task_exception_fails_immediately_without_retry(self):
        with CampaignService(None, workers=1) as service:
            with pytest.raises(CampaignError) as err:
                _run(service, "chaos-fail", [{"message": "boom"}])
            stats = service.stats()
        assert "ValueError" in str(err.value)
        assert "boom" in str(err.value)
        # Deterministic campaign input: never retried, never quarantined.
        assert stats["supervisor"]["task_retries"] == 0
        assert stats["supervisor"]["tasks_quarantined"] == 0
        assert isinstance(err.value.__cause__, WorkerTraceback)
        assert "ValueError: boom" in err.value.__cause__.tb

    def test_serial_degradation_when_pool_unavailable(self, monkeypatch):
        real = multiprocessing.get_context("fork")

        class _UnstartableProcess:
            def __init__(self, *args, **kwargs):
                pass

            def start(self):
                raise OSError("process spawning disabled for this test")

        class _NoProcessCtx:
            SimpleQueue = staticmethod(real.SimpleQueue)
            Process = _UnstartableProcess

        monkeypatch.setattr(
            supervisor_mod.multiprocessing, "get_context",
            lambda method: _NoProcessCtx(),
        )
        with CampaignService(None, workers=2) as service:
            results = _run(
                service, "chaos-echo", [{"value": i} for i in range(4)]
            )
            stats = service.stats()
        assert results == [{"echo": i} for i in range(4)]
        assert stats["serial"] is True
        assert stats["supervisor"]["serial_fallback"] is True
        assert stats["supervisor"]["worker_spawns"] == 0

    def test_serial_mode_still_quarantines_poison(self):
        # chaos-fail raises (rather than os._exit, which would kill the
        # test process in serial mode); in serial mode that is still an
        # immediate deterministic failure.
        sup = Supervisor(serial=True)
        task = supervisor_mod.SupervisedTask("t0", "chaos-fail", {}, "fp")
        sup.submit(task)
        [outcome] = sup.poll()
        assert outcome.status == "failed"
        sup.close()


class TestResume:
    def test_restart_replays_everything_from_store(self, tmp_path):
        path = str(tmp_path / "resume.sqlite")
        payloads = [{"value": i} for i in range(6)]
        with CampaignService(path, workers=2) as service:
            first = _run(service, "chaos-echo", payloads)
        # Fresh service, same store: zero re-executions.
        with CampaignService(path, workers=2) as service:
            job = service.submit("chaos-echo", payloads)
            replayed = asyncio.run(service.wait(job, timeout=60.0))
        assert replayed == first
        assert job.executed == 0
        assert job.from_store == len(payloads)
        with ResultStore(path) as store:
            assert store.max_executions() == 1

    def test_replayed_results_byte_identical_to_fresh(self, tmp_path):
        path = str(tmp_path / "ident.sqlite")
        payloads = [{"workload": "gcd", "config": "TDX", "scale": 4,
                     "seed": 0}]
        with CampaignService(path, workers=1) as service:
            fresh = _run(service, "workload-run", payloads, timeout=120.0)
        with CampaignService(path, workers=1) as service:
            replayed = _run(service, "workload-run", payloads, timeout=120.0)
        assert canonical_json(fresh) == canonical_json(replayed)
        serial = json.loads(canonical_json(
            [execute("workload-run", payloads[0])]
        ))
        assert replayed == serial


# ----------------------------------------------------------------------
# Campaign clients: the in-tree fan-outs routed through the service
# ----------------------------------------------------------------------


class TestCampaignClients:
    def test_fault_campaign_matches_direct_run(self):
        from repro.resilience.campaign import fault_campaign

        kwargs = dict(
            configs=("TDX",), faults=("reg-bit-flip",), workloads=("gcd",),
            trials=2, scale=4, seed=3,
        )
        direct = fault_campaign(workers=1, **kwargs)
        with CampaignService(None, workers=2) as service:
            served = fault_campaign(
                service=InProcessClient(service), **kwargs
            )
        assert served == direct

    def test_fuzz_run_matches_direct_run(self):
        from repro.verify.runner import fuzz_run

        direct = fuzz_run(2, seed=11, workers=1, ref_configs=2)
        with CampaignService(None, workers=2) as service:
            served = fuzz_run(
                2, seed=11, ref_configs=2, service=InProcessClient(service)
            )
        assert served == direct

    def test_cpi_populate_matches_direct_run(self):
        from repro.dse.cpi import CpiTable
        from repro.pipeline.config import config_by_name

        configs = [config_by_name("TDX"), config_by_name("T|DX +P")]
        direct = CpiTable(scale=4, seed=0)
        direct.populate(configs, workers=1)
        with CampaignService(None, workers=2) as service:
            served = CpiTable(scale=4, seed=0)
            served.populate(configs, service=InProcessClient(service))
        for config in configs:
            assert served.cpi(config) == direct.cpi(config)
            assert served.stack(config) == direct.stack(config)

    def test_sweep_matches_direct_run(self):
        from repro.dse.cpi import CpiTable
        from repro.dse.sweep import sweep
        from repro.pipeline.config import config_by_name

        configs = [config_by_name("TDX")]
        direct = sweep(
            configs, cpi_table=CpiTable(scale=4, seed=0), workers=1,
        )
        with CampaignService(None, workers=2) as service:
            served = sweep(
                configs, cpi_table=CpiTable(scale=4, seed=0),
                service=InProcessClient(service),
            )
        assert served == direct


# ----------------------------------------------------------------------
# HTTP frontend + client
# ----------------------------------------------------------------------


@pytest.fixture()
def http_service():
    """A live service + HTTP frontend on a background event loop."""
    service = CampaignService(None, workers=2, task_timeout=10.0,
                              backoff_base=0.01, backoff_cap=0.05)
    bound = {}
    ready = threading.Event()
    stop = threading.Event()

    def run_loop():
        async def main():
            server = await start_http_server(service, port=0)
            bound["port"] = server.sockets[0].getsockname()[1]
            pump = asyncio.ensure_future(service.drive())
            ready.set()
            try:
                async with server:
                    while not stop.is_set():
                        await asyncio.sleep(0.01)
            finally:
                pump.cancel()
        asyncio.run(main())

    thread = threading.Thread(target=run_loop, daemon=True)
    thread.start()
    assert ready.wait(10.0)
    try:
        yield HttpClient(f"http://127.0.0.1:{bound['port']}")
    finally:
        stop.set()
        thread.join(timeout=10.0)
        service.close()


class TestHttpApi:
    def test_healthz_and_stats(self, http_service):
        assert http_service.healthy()
        stats = http_service.stats()
        assert "admission" in stats and "supervisor" in stats

    def test_map_roundtrip(self, http_service):
        results = http_service.map(
            "chaos-echo", [{"value": i} for i in range(4)], timeout=30.0
        )
        assert results == [{"echo": i} for i in range(4)]

    def test_status_reports_progress_fields(self, http_service):
        job_id = http_service.submit("chaos-echo", [{"value": 1}])
        body = http_service.wait(job_id, timeout=30.0)
        assert body["state"] == "done"
        assert body["resolved"] == body["total"] == 1

    def test_unknown_kind_is_client_error(self, http_service):
        with pytest.raises(CampaignError) as err:
            http_service.submit("no-such-kind", [{}])
        assert "HTTP 400" in str(err.value)

    def test_unknown_job_is_not_found(self, http_service):
        with pytest.raises(CampaignError) as err:
            http_service.status("job-9999")
        assert "HTTP 404" in str(err.value)

    def test_failed_job_surfaces_worker_error(self, http_service):
        job_id = http_service.submit("chaos-fail", [{"message": "kaput"}])
        body = http_service.wait(job_id, timeout=30.0)
        assert body["state"] == "failed"
        with pytest.raises(CampaignError) as err:
            http_service.results(job_id)
        assert "kaput" in str(err.value)

    def test_rate_limit_maps_to_admission_error(self):
        tiny = AdmissionController(rate=0.0, burst=1.0)
        service = CampaignService(None, workers=1, admission=tiny)
        bound = {}
        ready = threading.Event()
        stop = threading.Event()

        def run_loop():
            async def main():
                server = await start_http_server(service, port=0)
                bound["port"] = server.sockets[0].getsockname()[1]
                ready.set()
                async with server:
                    while not stop.is_set():
                        await asyncio.sleep(0.01)
            asyncio.run(main())

        thread = threading.Thread(target=run_loop, daemon=True)
        thread.start()
        assert ready.wait(10.0)
        try:
            client = HttpClient(f"http://127.0.0.1:{bound['port']}")
            client.submit("chaos-echo", [{"value": 1}])   # spends the burst
            with pytest.raises(AdmissionError) as err:
                client.submit("chaos-echo", [{"value": 2}])
            assert err.value.reason == "rate-limited"
        finally:
            stop.set()
            thread.join(timeout=10.0)
            service.close()


# ----------------------------------------------------------------------
# The acceptance gate: kill -9 chaos run (scaled-down --chaos)
# ----------------------------------------------------------------------


class TestChaosKill:
    def test_sigkill_resume_is_byte_identical_with_no_duplicates(
        self, tmp_path
    ):
        """SIGKILL the service process group mid-campaign (twice), then
        verify the store-assembled results are byte-identical to an
        uninterrupted serial run with zero re-executions and zero
        duplicated executions recorded."""
        from repro.serve.__main__ import run_chaos

        assert run_chaos(
            scale=48, seed=0, workdir=str(tmp_path), kill_points=(4, 12),
        ) == 0


def test_registered_kinds_cover_the_campaign_clients():
    kinds = registered_kinds()
    for expected in ("cpi-config", "dse-close", "fault-trial", "fuzz-case",
                     "workload-run", "chaos-echo", "chaos-crash-once",
                     "chaos-hang-once", "chaos-always-crash", "chaos-fail"):
        assert expected in kinds


# ----------------------------------------------------------------------
# Service observability: spans, /metrics exposition, SSE streams
# ----------------------------------------------------------------------

import re

from repro.obs import ServiceObs


class TestServiceObservability:
    def test_spans_cover_the_job_lifecycle(self):
        obs = ServiceObs()
        with CampaignService(None, workers=1, obs=obs) as service:
            job = service.submit(
                "chaos-echo", [{"value": 1}, {"value": 2}, {"value": 1}]
            )
            asyncio.run(service.wait(job, timeout=60.0))
        summary = obs.tracer.summary()
        assert summary["job"] == 1 and summary["admission"] == 1
        # Two distinct fingerprints execute; the third slot shares one.
        assert summary["task"] == 2
        assert summary["queue_wait"] == 2
        assert summary["execute"] == 2
        assert summary["store_commit"] == 2
        assert obs.tracer.check_nesting() == []
        # Every span belongs to the job's trace.
        assert {s.trace_id for s in obs.tracer.spans} == {job.job_id}
        # Worker-side windows landed on the parent timeline.
        for run_span in obs.tracer.by_name("worker_run"):
            assert run_span.seconds >= 0.0

    def test_store_hit_spans_on_replay(self):
        obs = ServiceObs()
        with CampaignService(None, workers=1, obs=obs) as service:
            client = InProcessClient(service)
            client.map("chaos-echo", [{"value": 9}])
            client.map("chaos-echo", [{"value": 9}])   # replayed from store
        assert len(obs.tracer.by_name("store_hit")) == 1
        assert len(obs.tracer.by_name("execute")) == 1

    def test_queue_wait_and_task_latency_histograms(self):
        obs = ServiceObs()
        with CampaignService(None, workers=1, obs=obs) as service:
            _run(service, "chaos-echo", [{"value": i} for i in range(3)])
        snap = obs.metrics.snapshot()["histograms"]
        assert snap["repro_serve_queue_wait_seconds"]["count"] == 3
        assert snap['repro_serve_task_seconds{kind="chaos-echo"}'][
            "count"] == 3

    def test_retry_after_histogram_and_reject_log(self):
        import io as _io

        from repro.obs import JsonLogger

        sink = _io.StringIO()
        obs = ServiceObs(logger=JsonLogger(sink))
        # Nonzero rate: the retry_after hint is finite and histogrammed
        # (rate=0 would hint "inf", which is deliberately not observed).
        tiny = AdmissionController(rate=0.001, burst=1.0)
        with CampaignService(None, workers=1, admission=tiny,
                             obs=obs) as service:
            service.submit("chaos-echo", [{"value": 1}])
            with pytest.raises(AdmissionError):
                service.submit("chaos-echo", [{"value": 2}])
        histograms = obs.metrics.snapshot()["histograms"]
        assert "repro_serve_retry_after_seconds" in histograms
        records = [json.loads(line) for line in
                   sink.getvalue().splitlines()]
        [reject] = [r for r in records if r["event"] == "admission_reject"]
        assert reject["level"] == "warning"
        assert reject["reason"] == "rate-limited"
        # The rejected job's span closed in the rejected state.
        rejected = [s for s in obs.tracer.by_name("job")
                    if s.attrs.get("state") == "rejected"]
        assert len(rejected) == 1

    def test_quarantine_forensics_carry_trace_and_metrics(self):
        obs = ServiceObs()
        with CampaignService(
            None, workers=1, max_task_failures=2,
            backoff_base=0.01, backoff_cap=0.05, obs=obs,
        ) as service:
            job = service.submit("chaos-always-crash", [{"exit_code": 7}])
            with pytest.raises(CampaignError) as err:
                asyncio.run(service.wait(job, timeout=60.0))
        [report] = err.value.quarantine_reports
        assert report["trace"]["trace_id"] == job.job_id
        assert report["trace"]["span_id"]
        assert report["supervisor_metrics"]["tasks_quarantined"] == 1
        counters = report["service_metrics"]["counters"]
        assert json.loads(json.dumps(report))   # forensics stay JSON-pure
        # The retry backoffs were spanned on the task's track.
        assert len(obs.tracer.by_name("backoff")) == 1

    def test_logs_carry_correlation_ids(self):
        import io as _io

        from repro.obs import JsonLogger

        sink = _io.StringIO()
        obs = ServiceObs(logger=JsonLogger(sink))
        with CampaignService(None, workers=1, obs=obs) as service:
            job = service.submit("chaos-echo", [{"value": 1}])
            asyncio.run(service.wait(job, timeout=60.0))
        records = [json.loads(line) for line in sink.getvalue().splitlines()]
        events = [r["event"] for r in records]
        assert "job_admitted" in events and "job_done" in events
        assert "task_done" in events
        for record in records:
            if record["event"].startswith(("job_", "task_")):
                assert record["trace_id"] == job.job_id


class TestMetricsEndpoint:
    def test_exposition_without_obs(self):
        with CampaignService(None, workers=1) as service:
            _run(service, "chaos-echo", [{"value": 1}])
            text = service.metrics_text()
        assert "# TYPE repro_serve_tasks_done_total counter" in text
        assert "repro_serve_tasks_done_total 1" in text
        assert "repro_serve_store_rows 1" in text
        assert "repro_jit_cache_hits_total" in text
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? "
            r"(-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|NaN)$"
        )
        for line in text.splitlines():
            assert line.startswith("# TYPE ") or sample.match(line), line

    def test_exposition_gains_histograms_with_obs(self):
        obs = ServiceObs()
        with CampaignService(None, workers=1, obs=obs) as service:
            _run(service, "chaos-echo", [{"value": 1}])
            text = service.metrics_text()
        assert 'repro_serve_queue_wait_seconds_bucket{le="+Inf"} 1' in text
        assert 'repro_serve_task_seconds_bucket{kind="chaos-echo"' in text
        # One exposition: each family name appears in exactly one TYPE.
        families = [line.split()[2] for line in text.splitlines()
                    if line.startswith("# TYPE ")]
        assert len(families) == len(set(families))

    def test_stats_surface_store_audit(self):
        with CampaignService(None, workers=1) as service:
            _run(service, "chaos-echo", [{"value": 1}, {"value": 1}])
            stats = service.stats()
        store = stats["store"]
        assert store["rows"] == 1
        assert store["executions_total"] == 1
        assert store["max_executions"] == 1
        assert store["seconds_total"] >= 0.0
        assert "obs" not in stats   # no obs attached, no obs section

    def test_stats_obs_section_when_attached(self):
        obs = ServiceObs()
        with CampaignService(None, workers=1, obs=obs) as service:
            _run(service, "chaos-echo", [{"value": 1}])
            stats = service.stats()
        assert stats["obs"]["spans"] == len(obs.tracer.spans)
        assert stats["obs"]["spans_dropped"] == 0


class TestSseStreams:
    def test_publish_order_snapshot_to_terminal(self):
        with CampaignService(None, workers=1) as service:
            job = service.submit("chaos-echo", [{"value": i}
                                                for i in range(3)])
            stream = job.subscribe()
            asyncio.run(service.wait(job, timeout=60.0))
            events = stream.pop_all()
            job.unsubscribe(stream)
        names = [e["event"] for e in events]
        assert names[0] == "active"
        assert names[-1] == "done"
        assert names.count("progress") == 3
        resolved = [e["resolved"] for e in events]
        assert resolved == sorted(resolved)       # progress is monotone
        assert events[-1]["resolved"] == events[-1]["total"] == 3

    def test_unsubscribed_job_pays_nothing(self):
        with CampaignService(None, workers=1) as service:
            job = service.submit("chaos-echo", [{"value": 1}])
            asyncio.run(service.wait(job, timeout=60.0))
        assert job._subscribers == []

    def test_slow_consumer_drops_oldest_not_newest(self):
        with CampaignService(None, workers=1) as service:
            job = service.submit("chaos-echo", [{"value": i}
                                                for i in range(8)])
            stream = job.subscribe(max_buffer=2)
            asyncio.run(service.wait(job, timeout=60.0))
            events = stream.pop_all()
            job.unsubscribe(stream)
        # 10 frames published (active + 8 progress + done); 2 kept.
        assert stream.dropped == 8
        assert len(events) == 2
        assert events[-1]["event"] == "done"   # the terminal frame survives

    def test_http_sse_stream_lifecycle(self, http_service):
        job_id = http_service.submit(
            "chaos-echo", [{"value": i} for i in range(4)]
        )
        frames = list(http_service.events(job_id, timeout=60.0))
        names = [f["event"] for f in frames]
        assert names[0] == "snapshot"
        assert names[-1] == "done"
        resolved = [f["resolved"] for f in frames]
        assert resolved == sorted(resolved)
        assert frames[-1]["resolved"] == frames[-1]["total"] == 4

    def test_http_sse_on_finished_job_closes_immediately(self, http_service):
        job_id = http_service.submit("chaos-echo", [{"value": 1}])
        http_service.wait(job_id, timeout=30.0)
        frames = list(http_service.events(job_id, timeout=30.0))
        assert [f["event"] for f in frames] == ["snapshot", "done"]

    def test_http_sse_failed_job_terminates_with_failed(self, http_service):
        job_id = http_service.submit("chaos-fail", [{"message": "nope"}])
        frames = list(http_service.events(job_id, timeout=60.0))
        assert frames[-1]["event"] == "failed"

    def test_http_sse_unknown_job_is_404(self, http_service):
        import urllib.error
        import urllib.request

        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(
                http_service.base_url + "/jobs/job-9999/events", timeout=10.0
            )
        assert err.value.code == 404

    def test_http_metrics_exposition(self, http_service):
        http_service.map("chaos-echo", [{"value": 1}], timeout=30.0)
        text = http_service.metrics_text()
        assert "# TYPE repro_serve_tasks_done_total counter" in text
        assert "repro_serve_store_rows 1" in text
