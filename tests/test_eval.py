"""The per-exhibit reproduction harness: shape claims of every figure."""

import math

import pytest

from repro.eval import (
    figure3,
    figure4,
    figure5,
    figure7,
    overheads,
    table1,
    table2,
    table3,
)


class TestTables:
    def test_table1_matches_paper(self):
        rows = {name: value for name, __, value in table1.compute()}
        for name, value in table1.PAPER_VALUES.items():
            assert rows[name] == value, name

    def test_table1_renders(self):
        text = table1.render()
        assert "NRegs" in text and "42" in text

    def test_table2_matches_paper(self):
        assert table2.compute() == table2.PAPER_WIDTHS

    def test_table2_renders_totals(self):
        text = table2.render()
        assert "106" in text and "128" in text

    def test_table3_all_validate(self):
        reports = table3.compute(scale=8)
        assert len(reports) == 10
        assert all(r.validated for r in reports)
        assert all(r.worker_cpi >= 1.0 for r in reports)


class TestFigure3:
    def test_totals(self):
        data = figure3.compute()
        assert data["total_area_um2"] == pytest.approx(64_435)
        assert data["total_power_mw"] == pytest.approx(1.95)

    def test_paper_shares_reproduced(self):
        data = figure3.compute()
        imem = data["components"]["instruction_memory"]
        assert imem["area_fraction"] == pytest.approx(0.25)
        assert imem["power_fraction"] == pytest.approx(0.41)
        split = data["split"]
        assert split["front_power"] > split["back_power"]   # power skews front
        assert split["back_area"] > split["front_area"]     # area skews back

    def test_render(self):
        assert "instruction_memory" in figure3.render()


class TestFigure4:
    @pytest.fixture(scope="class")
    def reports(self):
        return {r.name: r for r in figure4.compute(scale=48)}

    def test_dot_product_writes_no_predicates(self, reports):
        assert reports["dot_product"].predicate_write_rate == 0
        assert reports["dot_product"].accuracy is None

    def test_high_entropy_benchmarks_near_50_percent(self, reports):
        for name in ("filter", "merge"):
            assert reports[name].accuracy < 0.75

    def test_loopy_benchmarks_near_perfect(self, reports):
        for name in ("gcd", "stream", "mean"):
            assert reports[name].accuracy > 0.85

    def test_nested_branch_benchmarks_in_between(self, reports):
        for name in ("bst", "udiv"):
            assert 0.6 < reports[name].accuracy < 0.95

    def test_every_benchmark_reported(self, reports):
        assert len(reports) == 10


class TestFigure5:
    @pytest.fixture(scope="class")
    def stacks(self, cpi_table):
        return figure5.compute(cpi_table)

    def test_all_partitions_present(self, stacks):
        assert len(stacks) == 8
        assert set(stacks["T|D|X1|X2"]) == {"base", "+P", "+P+Q"}
        assert set(stacks["TDX"]) == {"base"}

    def test_predicate_hazard_identical_for_same_depth(self, stacks):
        depth2 = [stacks[n]["base"]["predicate_hazard"]
                  for n in ("TD|X", "T|DX", "TDX1|X2")]
        assert max(depth2) - min(depth2) < 0.01

    def test_predicate_hazard_grows_with_depth(self, stacks):
        d2 = stacks["TD|X"]["base"]["predicate_hazard"]
        d3 = stacks["T|D|X"]["base"]["predicate_hazard"]
        d4 = stacks["T|D|X1|X2"]["base"]["predicate_hazard"]
        assert 0 < d2 < d3 < d4

    def test_prediction_nearly_eliminates_predicate_hazards(self, stacks):
        base = stacks["T|D|X1|X2"]["base"]["predicate_hazard"]
        predicted = stacks["T|D|X1|X2"]["+P"]["predicate_hazard"]
        assert predicted < base * 0.1

    def test_prediction_causes_forbidden_uptick(self, stacks):
        assert stacks["T|D|X1|X2"]["+P"]["forbidden"] > \
            stacks["T|D|X1|X2"]["base"]["forbidden"]

    def test_forbidden_grows_with_depth(self, stacks):
        assert stacks["T|D|X1|X2"]["+P"]["forbidden"] >= \
            stacks["T|DX1|X2"]["+P"]["forbidden"]

    def test_virtually_no_quashed_instructions(self, stacks):
        for partition, variants in stacks.items():
            for stack in variants.values():
                assert stack["quashed"] < 0.1

    def test_queue_accounting_reduces_none_triggered(self, stacks):
        with_p = stacks["T|D|X1|X2"]["+P"]["none_triggered"]
        with_pq = stacks["T|D|X1|X2"]["+P+Q"]["none_triggered"]
        assert with_pq < with_p

    def test_four_stage_cpi_reduction_near_35_percent(self, cpi_table):
        """The paper's headline: +P+Q cut 4-stage CPI by 35%."""
        improvement = figure5.four_stage_improvement(cpi_table)
        assert 0.25 <= improvement <= 0.45

    def test_render(self, cpi_table):
        text = figure5.render(cpi_table)
        assert "T|D|X1|X2 +P+Q" in text


class TestFigure7:
    def test_combined_features_improve_balanced_frontier(self, cpi_table):
        data = figure7.compute(cpi_table)
        improvement = data["improvements"]["+P+Q"]
        assert improvement is not None and improvement > 0.05

    def test_each_feature_frontier_exists(self, cpi_table):
        data = figure7.compute(cpi_table)
        assert set(data["frontiers"]) == {"none", "+P", "+Q", "+P+Q"}


class TestOverheads:
    def test_scalars(self):
        data = overheads.compute()
        assert data["pipe_register_mw"] == pytest.approx(0.301, abs=0.002)
        assert data["trigger_fo4"] == pytest.approx(53.6)
        assert data["trigger_fo4_with_p"] == pytest.approx(64.3)
        assert data["pipe4_fmax_mhz"] == pytest.approx(1184, rel=0.001)

    def test_feature_rows_match_section_54(self):
        features = overheads.compute()["features"]
        assert features["+P+Q"]["area_um2"] == pytest.approx(64_895.4, rel=1e-3)
        assert features["padded"]["area_um2"] == pytest.approx(72_439.4, rel=1e-3)

    def test_render(self):
        text = overheads.render()
        assert "pipeline register" in text
