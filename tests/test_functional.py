"""The functional (architectural) PE simulator."""

import pytest

from repro.arch import FunctionalPE
from repro.asm import assemble
from repro.errors import SimulationError
from repro.params import ArchParams, DEFAULT_PARAMS as P


def run_program(source, pushes=None, max_cycles=10_000, pe=None):
    pe = pe or FunctionalPE(name="t")
    assemble(source).configure(pe)
    for queue, value, tag in pushes or []:
        pe.inputs[queue].enqueue(value, tag)
        pe.inputs[queue].commit()
    pe.run(max_cycles)
    return pe


class TestExecution:
    def test_halt_program(self):
        pe = run_program("when %p == XXXXXXXX:\n    halt;")
        assert pe.halted and pe.counters.retired == 1

    def test_register_arithmetic(self):
        pe = run_program("""
        when %p == XXXXXXX0:
            add %r0, %r0, $21; set %p = ZZZZZZZ1;
        when %p == XXXXXXX1:
            halt;
        """)
        assert pe.regs.read(0) == 21

    def test_predicate_branching(self):
        pe = run_program("""
        when %p == XXXXXX00:
            ult %p1, %r0, $5; set %p = ZZZZZZZ1;
        when %p == XXXXXX11:
            add %r0, %r0, $1; set %p = ZZZZZZ00;
        when %p == XXXXXX01:
            halt;
        """)
        assert pe.regs.read(0) == 5   # loop ran until r0 < 5 failed

    def test_queue_consume_and_produce(self):
        pe = run_program("""
        when %p == XXXXXXXX with %i0.0:
            add %o1.2, %i0, $100; deq %i0; set %p = ZZZZZZZ1;
        when %p == XXXXXXX1:
            halt;
        """, pushes=[(0, 7, 0)])
        entry = pe.outputs[1].peek(0)
        assert entry.value == 107 and entry.tag == 2

    def test_tag_directed_dispatch(self):
        source = """
        when %p == XXXXXXXX with %i0.1:
            mov %r1, %i0; deq %i0; set %p = ZZZZZZZ1;
        when %p == XXXXXXXX with %i0.0:
            mov %r0, %i0; deq %i0;
        when %p == XXXXXXX1:
            halt;
        """
        pe = run_program(source, pushes=[(0, 11, 0), (0, 22, 1)])
        assert pe.regs.read(0) == 11 and pe.regs.read(1) == 22

    def test_scratchpad_round_trip(self):
        pe = run_program("""
        when %p == XXXXXX00:
            ssw %r0, $55; set %p = ZZZZZZ01;
        when %p == XXXXXX01:
            lsw %r1, %r0; set %p = ZZZZZZ11;
        when %p == XXXXXX11:
            halt;
        """)
        assert pe.regs.read(1) == 55

    def test_waits_for_missing_input(self):
        pe = FunctionalPE(name="t")
        assemble("""
        when %p == XXXXXXXX with %i0.0:
            mov %r0, %i0; deq %i0; set %p = ZZZZZZZ1;
        when %p == XXXXXXX1:
            halt;
        """).configure(pe)
        for _ in range(10):
            pe.step()
            pe.commit_queues()
        assert pe.counters.none_triggered == 10
        pe.inputs[0].enqueue(1, 0)
        pe.commit_queues()
        pe.run()
        assert pe.halted

    def test_timeout_raises(self):
        pe = FunctionalPE(name="t")
        assemble("when %p == XXXXXXX1:\n    halt;").configure(pe)
        with pytest.raises(SimulationError, match="did not halt"):
            pe.run(max_cycles=50)

    def test_program_too_long_rejected(self):
        pe = FunctionalPE(name="t")
        ins = assemble("when %p == XXXXXXXX:\n    nop;").instructions * 17
        with pytest.raises(SimulationError, match="NIns"):
            pe.load_program(ins)


class TestCounters:
    def test_cpi_is_one_when_always_ready(self):
        pe = run_program("""
        when %p == XXXXXX00:
            add %r0, %r0, $1; set %p = ZZZZZZ01;
        when %p == XXXXXX01:
            add %r0, %r0, $1; set %p = ZZZZZZ11;
        when %p == XXXXXX11:
            halt;
        """)
        assert pe.counters.cpi == 1.0
        assert pe.counters.retired == 3

    def test_predicate_write_tracking(self):
        pe = run_program("""
        when %p == XXXXXX00:
            eq %p1, %r0, %r0; set %p = ZZZZZZZ1;
        when %p == XXXXXX11:
            halt;
        """)
        assert pe.counters.predicate_writes == 1
        assert pe.counters.predicate_write_rate == 0.5

    def test_retired_by_op_histogram(self):
        pe = run_program("""
        when %p == XXXXXXX0:
            add %r0, %r0, $1; set %p = ZZZZZZZ1;
        when %p == XXXXXXX1:
            halt;
        """)
        assert pe.counters.retired_by_op == {"add": 1, "halt": 1}

    def test_reset_restores_initial_state(self):
        pe = run_program("""
        .start %p = 00000010
        when %p == XXXXXX10:
            add %r0, %r0, $9; set %p = ZZZZZZ11;
        when %p == XXXXXX11:
            halt;
        """)
        assert pe.regs.read(0) == 9
        pe.reset()
        assert not pe.halted
        assert pe.regs.read(0) == 0
        assert pe.preds.state == 0b10     # .start value survives reset
        assert pe.counters.retired == 0
        pe.run()
        assert pe.regs.read(0) == 9


class TestParameterizedMachine:
    def test_small_machine(self):
        params = ArchParams(num_regs=2, num_preds=2, num_input_queues=1,
                            num_output_queues=1, max_check=1, max_deq=1,
                            num_instructions=4)
        pe = FunctionalPE(params, name="small")
        assemble("""
        when %p == X0:
            add %r1, %r1, $3; set %p = Z1;
        when %p == X1:
            halt;
        """, params).configure(pe)
        pe.run()
        assert pe.regs.read(1) == 3
