"""Register file, predicate file, and scratchpad."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.predicates import PredicateFile
from repro.arch.regfile import RegisterFile
from repro.arch.scratchpad import Scratchpad
from repro.errors import SimMemoryError, SimulationError
from repro.isa.instruction import PredUpdate
from repro.params import DEFAULT_PARAMS as P


class TestRegisterFile:
    def test_initializes_to_zero(self):
        regs = RegisterFile(P)
        assert all(regs.read(i) == 0 for i in range(len(regs)))

    def test_write_read(self):
        regs = RegisterFile(P)
        regs.write(3, 42)
        assert regs.read(3) == 42

    def test_write_truncates_to_word(self):
        regs = RegisterFile(P)
        regs.write(0, 1 << 40)
        assert regs.read(0) == 0

    def test_out_of_range_raises(self):
        regs = RegisterFile(P)
        with pytest.raises(SimulationError):
            regs.read(8)
        with pytest.raises(SimulationError):
            regs.write(-1, 0)

    def test_reset_and_snapshot(self):
        regs = RegisterFile(P)
        regs.write(1, 5)
        assert regs.snapshot()[1] == 5
        regs.reset()
        assert regs.snapshot() == (0,) * 8


class TestPredicateFile:
    def test_initial_state(self):
        assert PredicateFile(P).state == 0
        assert PredicateFile(P, initial=0b101).state == 0b101

    def test_bit_access(self):
        preds = PredicateFile(P)
        preds.write_bit(3, 1)
        assert preds.read_bit(3) == 1
        assert preds.state == 0b1000
        preds.write_bit(3, 0)
        assert preds.state == 0

    def test_nonzero_value_sets_bit(self):
        preds = PredicateFile(P)
        preds.write_bit(0, 7)
        assert preds.read_bit(0) == 1

    def test_apply_update(self):
        preds = PredicateFile(P, initial=0b0110)
        preds.apply_update(PredUpdate(set_mask=0b0001, clear_mask=0b0100))
        assert preds.state == 0b0011

    def test_out_of_range_raises(self):
        with pytest.raises(SimulationError):
            PredicateFile(P).read_bit(8)

    def test_rejects_oversized_initial(self):
        with pytest.raises(SimulationError):
            PredicateFile(P, initial=1 << 8)

    @given(state=st.integers(0, 255), set_mask=st.integers(0, 255),
           clear_mask=st.integers(0, 255))
    def test_update_is_set_then_clear(self, state, set_mask, clear_mask):
        preds = PredicateFile(P, initial=state)
        preds.apply_update(PredUpdate(set_mask=set_mask & ~clear_mask,
                                      clear_mask=clear_mask))
        expected = (state | (set_mask & ~clear_mask)) & ~clear_mask
        assert preds.state == expected & 0xFF


class TestScratchpad:
    def test_load_store(self):
        pad = Scratchpad(P)
        pad.store(10, 99)
        assert pad.load(10) == 99

    def test_preload_and_dump(self):
        pad = Scratchpad(P)
        pad.preload([1, 2, 3], base=5)
        assert pad.dump(5, 3) == [1, 2, 3]

    def test_bounds(self):
        pad = Scratchpad(P)
        with pytest.raises(SimMemoryError):
            pad.load(P.scratchpad_words)
        with pytest.raises(SimMemoryError):
            pad.preload([0] * 10, base=P.scratchpad_words - 5)

    def test_store_truncates(self):
        pad = Scratchpad(P)
        pad.store(0, 1 << 35)
        assert pad.load(0) == 0

    def test_reset(self):
        pad = Scratchpad(P)
        pad.store(0, 1)
        pad.reset()
        assert pad.load(0) == 0
