"""Pipeline configuration: partitions, names, feature matrix."""

import pytest

from repro.errors import ConfigError
from repro.pipeline.config import (
    ALL_PARTITIONS,
    PIPELINED_PARTITIONS,
    PipelineConfig,
    QueuePolicy,
    SINGLE_CYCLE,
    all_configs,
    config_by_name,
    partition_name,
)


class TestPartitions:
    def test_eight_partitions(self):
        assert len(ALL_PARTITIONS) == 8
        assert len(PIPELINED_PARTITIONS) == 7

    def test_names(self):
        names = [partition_name(stages) for stages in ALL_PARTITIONS]
        assert names == [
            "TDX", "TD|X", "T|DX", "TDX1|X2", "TD|X1|X2", "T|DX1|X2",
            "T|D|X", "T|D|X1|X2",
        ]

    def test_depths(self):
        depths = [len(stages) for stages in ALL_PARTITIONS]
        assert depths == [1, 2, 2, 2, 3, 3, 3, 4]

    def test_paper_range_is_2_to_4_stages(self):
        assert {len(s) for s in PIPELINED_PARTITIONS} == {2, 3, 4}


class TestConfig:
    def test_single_cycle(self):
        assert SINGLE_CYCLE.depth == 1
        assert SINGLE_CYCLE.name == "TDX"
        assert not SINGLE_CYCLE.split_alu

    def test_split_alu_detection(self):
        assert config_by_name("TDX1|X2").split_alu
        assert not config_by_name("T|D|X").split_alu

    def test_stage_lookup(self):
        config = config_by_name("T|D|X1|X2")
        assert config.trigger_stage == 0
        assert config.decode_stage == 1
        assert config.early_result_stage == 2
        assert config.late_result_stage == 3

    def test_coalesced_stages(self):
        config = config_by_name("TD|X")
        assert config.decode_stage == 0
        assert config.early_result_stage == 1
        assert config.late_result_stage == 1

    def test_name_includes_features(self):
        config = config_by_name("T|DX +P+Q")
        assert config.predicate_prediction
        assert config.queue_policy is QueuePolicy.EFFECTIVE
        assert config.name == "T|DX +P+Q"

    def test_padded_name(self):
        config = config_by_name("T|D|X1|X2 +pad")
        assert config.queue_policy is QueuePolicy.PADDED

    def test_unknown_partition(self):
        with pytest.raises(ConfigError):
            config_by_name("T|D|X3")

    def test_rejects_out_of_order_phases(self):
        with pytest.raises(ConfigError):
            PipelineConfig(stages=(("D",), ("T", "X")))

    def test_rejects_bad_speculative_depth(self):
        with pytest.raises(ConfigError):
            PipelineConfig(stages=ALL_PARTITIONS[0], speculative_depth=0)

    def test_with_options(self):
        base = config_by_name("T|D|X")
        nested = base.with_options(speculative_depth=2)
        assert nested.speculative_depth == 2
        assert base.speculative_depth == 1


class TestMatrix:
    def test_paper_matrix_is_32(self):
        assert len(all_configs()) == 32

    def test_matrix_with_padding_is_48(self):
        assert len(all_configs(include_padded=True)) == 48

    def test_names_unique(self):
        names = [c.name for c in all_configs(include_padded=True)]
        assert len(names) == len(set(names))
