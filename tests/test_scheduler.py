"""Trigger resolution: priority, predicate matching, queue conditions."""

import pytest

from repro.arch.queue import TaggedQueue
from repro.arch.scheduler import ArchQueueView, Scheduler, TriggerKind
from repro.isa.instruction import (
    DatapathOp,
    Destination,
    Instruction,
    Operand,
    TagCheck,
    Trigger,
    make_nop,
)
from repro.isa.opcodes import op_by_name
from repro.params import DEFAULT_PARAMS as P


@pytest.fixture()
def queues():
    inputs = [TaggedQueue(4, f"i{i}") for i in range(4)]
    outputs = [TaggedQueue(4, f"o{i}") for i in range(4)]
    return inputs, outputs


def view(queues):
    return ArchQueueView(*queues)


def ins(trigger=Trigger(), op="add", srcs=(Operand.reg(0), Operand.reg(1)),
        dst=Destination.reg(0), deq=()):
    return Instruction(
        trigger=trigger,
        dp=DatapathOp(op=op_by_name(op), srcs=tuple(srcs), dst=dst, deq=tuple(deq)),
    )


def fill(queue, *entries):
    for entry in entries:
        value, tag = entry if isinstance(entry, tuple) else (entry, 0)
        queue.enqueue(value, tag)
    queue.commit()


class TestPriority:
    def test_highest_priority_triggered_fires(self, queues):
        program = [ins(Trigger(pred_on=0b1)), ins(), ins()]
        outcome = Scheduler(P).evaluate(program, 0, view(queues))
        # Slot 0 requires p0=1 and p0 is 0, so slot 1 wins.
        assert outcome.kind is TriggerKind.FIRED and outcome.index == 1

    def test_invalid_slots_skipped(self, queues):
        program = [make_nop(), ins()]
        outcome = Scheduler(P).evaluate(program, 0, view(queues))
        assert outcome.index == 1

    def test_none_triggered(self, queues):
        program = [ins(Trigger(pred_on=0b1))]
        outcome = Scheduler(P).evaluate(program, 0, view(queues))
        assert outcome.kind is TriggerKind.NONE_TRIGGERED

    def test_triggered_indices_telemetry(self, queues):
        program = [ins(), ins(Trigger(pred_on=0b1)), ins()]
        indices = Scheduler(P).triggered_indices(program, 0, view(queues))
        assert indices == [0, 2]


class TestQueueConditions:
    def test_source_queue_must_be_nonempty(self, queues):
        program = [ins(srcs=(Operand.input_queue(0), Operand.reg(0)))]
        sched = Scheduler(P)
        assert sched.evaluate(program, 0, view(queues)).kind is TriggerKind.NONE_TRIGGERED
        fill(queues[0][0], 5)
        assert sched.evaluate(program, 0, view(queues)).fired

    def test_dequeued_queue_must_be_nonempty(self, queues):
        program = [ins(deq=(2,))]
        sched = Scheduler(P)
        assert not sched.evaluate(program, 0, view(queues)).fired
        fill(queues[0][2], 1)
        assert sched.evaluate(program, 0, view(queues)).fired

    def test_tag_check_matches_head(self, queues):
        program = [ins(Trigger(tag_checks=(TagCheck(0, tag=2),)))]
        sched = Scheduler(P)
        fill(queues[0][0], (5, 1))
        assert not sched.evaluate(program, 0, view(queues)).fired
        queues[0][0].dequeue()
        fill(queues[0][0], (5, 2))
        assert sched.evaluate(program, 0, view(queues)).fired

    def test_negated_tag_check(self, queues):
        program = [ins(Trigger(tag_checks=(TagCheck(0, tag=2, negate=True),)))]
        sched = Scheduler(P)
        fill(queues[0][0], (5, 2))
        assert not sched.evaluate(program, 0, view(queues)).fired
        queues[0][0].dequeue()
        fill(queues[0][0], (5, 0))
        assert sched.evaluate(program, 0, view(queues)).fired

    def test_output_needs_space(self, queues):
        program = [ins(dst=Destination.output_queue(1, 0))]
        sched = Scheduler(P)
        for _ in range(4):
            queues[1][1].enqueue(0)
        queues[1][1].commit()
        assert sched.evaluate(program, 0, view(queues)).kind is TriggerKind.NONE_TRIGGERED
        queues[1][1].dequeue()
        assert sched.evaluate(program, 0, view(queues)).fired


class TestPredicateHazards:
    def test_pending_watched_bit_blocks(self, queues):
        program = [ins(Trigger(pred_on=0b1))]
        outcome = Scheduler(P).evaluate(
            program, 0b1, view(queues), pending_predicates=0b1)
        assert outcome.kind is TriggerKind.PREDICATE_HAZARD

    def test_pending_unwatched_bit_harmless(self, queues):
        program = [ins(Trigger(pred_on=0b1))]
        outcome = Scheduler(P).evaluate(
            program, 0b1, view(queues), pending_predicates=0b10)
        assert outcome.fired

    def test_stable_mismatch_beats_pending(self, queues):
        """If the non-pending watched bits already fail, the instruction is
        simply not triggered — no hazard stall."""
        program = [ins(Trigger(pred_on=0b11))]
        outcome = Scheduler(P).evaluate(
            program, 0b00, view(queues), pending_predicates=0b10)
        assert outcome.kind is TriggerKind.NONE_TRIGGERED

    def test_unknown_blocks_lower_priority(self, queues):
        """Priority semantics: nothing may fire past an unknown slot."""
        program = [ins(Trigger(pred_on=0b1)), ins()]
        outcome = Scheduler(P).evaluate(
            program, 0b1, view(queues), pending_predicates=0b1)
        assert outcome.kind is TriggerKind.PREDICATE_HAZARD
        assert outcome.index == 0

    def test_higher_priority_triggered_fires_before_unknown(self, queues):
        program = [ins(), ins(Trigger(pred_on=0b1))]
        outcome = Scheduler(P).evaluate(
            program, 0b1, view(queues), pending_predicates=0b1)
        assert outcome.fired and outcome.index == 0


class TestSpeculationRestrictions:
    def test_side_effect_forbidden_while_speculating(self, queues):
        fill(queues[0][0], 1)
        program = [ins(deq=(0,))]
        outcome = Scheduler(P).evaluate(
            program, 0, view(queues), forbid_side_effects=True)
        assert outcome.kind is TriggerKind.FORBIDDEN

    def test_pure_instruction_allowed_while_speculating(self, queues):
        program = [ins()]
        outcome = Scheduler(P).evaluate(
            program, 0, view(queues), forbid_side_effects=True)
        assert outcome.fired


class TestTriggeredIndicesPendingPredicates:
    def test_pending_write_hides_watching_slots(self, queues):
        program = [ins(Trigger(pred_on=0b1)), ins(Trigger(pred_off=0b1)), ins()]
        sched = Scheduler(P)
        # Stable state: p0=0 -> slots 1 and 2 trigger.
        assert sched.triggered_indices(program, 0, view(queues)) == [1, 2]
        # An in-flight write to p0 makes both watchers unknown, not
        # "triggered under the stale value".
        assert sched.triggered_indices(
            program, 0, view(queues), pending_predicates=0b1
        ) == [2]

    def test_pending_bits_outside_the_watch_set_are_ignored(self, queues):
        program = [ins(Trigger(pred_on=0b10)), ins()]
        indices = Scheduler(P).triggered_indices(
            program, 0b10, view(queues), pending_predicates=0b100
        )
        assert indices == [0, 1]


class TestCompiledEvaluate:
    """The compiled descriptor path must agree with the dataclass walk."""

    def _assert_agree(self, program, pred_state, queues, pending=0, forbid=False):
        from repro.arch.trigger_cache import compile_program

        sched = Scheduler(P)
        reference = sched.evaluate(
            program, pred_state, view(queues),
            pending_predicates=pending, forbid_side_effects=forbid,
        )
        compiled = sched.evaluate(
            program, pred_state, view(queues),
            pending_predicates=pending, forbid_side_effects=forbid,
            compiled=compile_program(program),
        )
        assert compiled.kind is reference.kind
        assert compiled.index == reference.index

    def test_agreement_across_predicate_states(self, queues):
        program = [ins(Trigger(pred_on=0b1, pred_off=0b10)), ins(deq=(0,)), ins()]
        fill(queues[0][0], (7, 1))
        for pred_state in range(8):
            for pending in (0, 0b1, 0b11):
                for forbid in (False, True):
                    self._assert_agree(program, pred_state, queues,
                                       pending, forbid)

    def test_agreement_on_tag_checks(self, queues):
        program = [
            ins(Trigger(tag_checks=(TagCheck(queue=0, tag=2),))),
            ins(Trigger(tag_checks=(TagCheck(queue=0, tag=2, negate=True),))),
            ins(Trigger(pred_on=0b1)),
        ]
        self._assert_agree(program, 0, queues)          # empty queue
        fill(queues[0][0], (9, 2))
        self._assert_agree(program, 0, queues)          # tag match
        queues[0][0].dequeue()
        queues[0][0].commit()
        fill(queues[0][0], (9, 3))
        self._assert_agree(program, 0, queues)          # tag mismatch
