"""Trigger resolution: priority, predicate matching, queue conditions."""

import pytest

from repro.arch.queue import TaggedQueue
from repro.arch.scheduler import ArchQueueView, Scheduler, TriggerKind
from repro.isa.instruction import (
    DatapathOp,
    Destination,
    Instruction,
    Operand,
    TagCheck,
    Trigger,
    make_nop,
)
from repro.isa.opcodes import op_by_name
from repro.params import DEFAULT_PARAMS as P


@pytest.fixture()
def queues():
    inputs = [TaggedQueue(4, f"i{i}") for i in range(4)]
    outputs = [TaggedQueue(4, f"o{i}") for i in range(4)]
    return inputs, outputs


def view(queues):
    return ArchQueueView(*queues)


def ins(trigger=Trigger(), op="add", srcs=(Operand.reg(0), Operand.reg(1)),
        dst=Destination.reg(0), deq=()):
    return Instruction(
        trigger=trigger,
        dp=DatapathOp(op=op_by_name(op), srcs=tuple(srcs), dst=dst, deq=tuple(deq)),
    )


def fill(queue, *entries):
    for entry in entries:
        value, tag = entry if isinstance(entry, tuple) else (entry, 0)
        queue.enqueue(value, tag)
    queue.commit()


class TestPriority:
    def test_highest_priority_triggered_fires(self, queues):
        program = [ins(Trigger(pred_on=0b1)), ins(), ins()]
        outcome = Scheduler(P).evaluate(program, 0, view(queues))
        # Slot 0 requires p0=1 and p0 is 0, so slot 1 wins.
        assert outcome.kind is TriggerKind.FIRED and outcome.index == 1

    def test_invalid_slots_skipped(self, queues):
        program = [make_nop(), ins()]
        outcome = Scheduler(P).evaluate(program, 0, view(queues))
        assert outcome.index == 1

    def test_none_triggered(self, queues):
        program = [ins(Trigger(pred_on=0b1))]
        outcome = Scheduler(P).evaluate(program, 0, view(queues))
        assert outcome.kind is TriggerKind.NONE_TRIGGERED

    def test_triggered_indices_telemetry(self, queues):
        program = [ins(), ins(Trigger(pred_on=0b1)), ins()]
        indices = Scheduler(P).triggered_indices(program, 0, view(queues))
        assert indices == [0, 2]


class TestQueueConditions:
    def test_source_queue_must_be_nonempty(self, queues):
        program = [ins(srcs=(Operand.input_queue(0), Operand.reg(0)))]
        sched = Scheduler(P)
        assert sched.evaluate(program, 0, view(queues)).kind is TriggerKind.NONE_TRIGGERED
        fill(queues[0][0], 5)
        assert sched.evaluate(program, 0, view(queues)).fired

    def test_dequeued_queue_must_be_nonempty(self, queues):
        program = [ins(deq=(2,))]
        sched = Scheduler(P)
        assert not sched.evaluate(program, 0, view(queues)).fired
        fill(queues[0][2], 1)
        assert sched.evaluate(program, 0, view(queues)).fired

    def test_tag_check_matches_head(self, queues):
        program = [ins(Trigger(tag_checks=(TagCheck(0, tag=2),)))]
        sched = Scheduler(P)
        fill(queues[0][0], (5, 1))
        assert not sched.evaluate(program, 0, view(queues)).fired
        queues[0][0].dequeue()
        fill(queues[0][0], (5, 2))
        assert sched.evaluate(program, 0, view(queues)).fired

    def test_negated_tag_check(self, queues):
        program = [ins(Trigger(tag_checks=(TagCheck(0, tag=2, negate=True),)))]
        sched = Scheduler(P)
        fill(queues[0][0], (5, 2))
        assert not sched.evaluate(program, 0, view(queues)).fired
        queues[0][0].dequeue()
        fill(queues[0][0], (5, 0))
        assert sched.evaluate(program, 0, view(queues)).fired

    def test_output_needs_space(self, queues):
        program = [ins(dst=Destination.output_queue(1, 0))]
        sched = Scheduler(P)
        for _ in range(4):
            queues[1][1].enqueue(0)
        queues[1][1].commit()
        assert sched.evaluate(program, 0, view(queues)).kind is TriggerKind.NONE_TRIGGERED
        queues[1][1].dequeue()
        assert sched.evaluate(program, 0, view(queues)).fired


class TestPredicateHazards:
    def test_pending_watched_bit_blocks(self, queues):
        program = [ins(Trigger(pred_on=0b1))]
        outcome = Scheduler(P).evaluate(
            program, 0b1, view(queues), pending_predicates=0b1)
        assert outcome.kind is TriggerKind.PREDICATE_HAZARD

    def test_pending_unwatched_bit_harmless(self, queues):
        program = [ins(Trigger(pred_on=0b1))]
        outcome = Scheduler(P).evaluate(
            program, 0b1, view(queues), pending_predicates=0b10)
        assert outcome.fired

    def test_stable_mismatch_beats_pending(self, queues):
        """If the non-pending watched bits already fail, the instruction is
        simply not triggered — no hazard stall."""
        program = [ins(Trigger(pred_on=0b11))]
        outcome = Scheduler(P).evaluate(
            program, 0b00, view(queues), pending_predicates=0b10)
        assert outcome.kind is TriggerKind.NONE_TRIGGERED

    def test_unknown_blocks_lower_priority(self, queues):
        """Priority semantics: nothing may fire past an unknown slot."""
        program = [ins(Trigger(pred_on=0b1)), ins()]
        outcome = Scheduler(P).evaluate(
            program, 0b1, view(queues), pending_predicates=0b1)
        assert outcome.kind is TriggerKind.PREDICATE_HAZARD
        assert outcome.index == 0

    def test_higher_priority_triggered_fires_before_unknown(self, queues):
        program = [ins(), ins(Trigger(pred_on=0b1))]
        outcome = Scheduler(P).evaluate(
            program, 0b1, view(queues), pending_predicates=0b1)
        assert outcome.fired and outcome.index == 0


class TestSpeculationRestrictions:
    def test_side_effect_forbidden_while_speculating(self, queues):
        fill(queues[0][0], 1)
        program = [ins(deq=(0,))]
        outcome = Scheduler(P).evaluate(
            program, 0, view(queues), forbid_side_effects=True)
        assert outcome.kind is TriggerKind.FORBIDDEN

    def test_pure_instruction_allowed_while_speculating(self, queues):
        program = [ins()]
        outcome = Scheduler(P).evaluate(
            program, 0, view(queues), forbid_side_effects=True)
        assert outcome.fired
