"""Observability layer: event bus, metrics registry, trace export,
campaign profiling, and the bit-identical-when-disabled guarantee."""

import json

import pytest

from repro.asm import assemble
from repro.dse.cpi import CpiTable
from repro.errors import SimulationError
from repro.obs import (
    CampaignProfile,
    MetricsRegistry,
    Telemetry,
    chrome_trace,
    format_campaign_report,
    run_instrumented,
)
from repro.pipeline import PipelinedPE, config_by_name
from repro.pipeline.config import all_configs
from repro.arch.queue import TaggedQueue
from repro.workloads.suite import run_workload

CONFIG = config_by_name("T|D|X1|X2 +P+Q")


@pytest.fixture(scope="module")
def stream_run():
    """One instrumented multi-PE run shared by the read-only tests."""
    return run_instrumented("stream", config=CONFIG, scale=8, seed=0)


# ----------------------------------------------------------------------
# Event/counter identities
# ----------------------------------------------------------------------

def test_event_counts_match_pipeline_counters(stream_run):
    counts = stream_run.telemetry.event_counts
    issued = sum(pe.counters.issued for pe in stream_run.system.pes)
    retired = sum(pe.counters.retired for pe in stream_run.system.pes)
    quashed = sum(pe.counters.quashed for pe in stream_run.system.pes)
    assert counts["issue"] == issued
    assert counts["retire"] == retired
    assert counts.get("quash", 0) == quashed


def test_events_carry_source_and_cycle(stream_run):
    telemetry = stream_run.telemetry
    pe_names = {pe.name for pe in stream_run.system.pes}
    for event in telemetry.events_of("retire"):
        assert event.source in pe_names
        assert 0 <= event.cycle <= stream_run.cycles
        assert "seq" in event.data and "op" in event.data


def test_queue_conservation(stream_run):
    """enqueues - dequeues == final occupancy, per instrumented queue.

    (The stream workload starts with empty queues, so the events alone
    must account for every entry ever present.)
    """
    telemetry = stream_run.telemetry
    enq: dict[str, int] = {}
    deq: dict[str, int] = {}
    for event in telemetry.events:
        if event.kind == "enqueue":
            enq[event.source] = enq.get(event.source, 0) + 1
        elif event.kind == "dequeue":
            deq[event.source] = deq.get(event.source, 0) + 1
    assert enq, "no enqueue events captured"
    for name, timeline in telemetry.queue_timelines.items():
        final = timeline[-1][1] if timeline else 0
        assert enq.get(name, 0) - deq.get(name, 0) == final, name


def test_port_grants_recorded(stream_run):
    grants = stream_run.telemetry.events_of("port_grant")
    assert grants
    assert all(event.data["op"] in ("load", "store") for event in grants)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------

def test_aggregate_sums_per_pe_counters(stream_run):
    registry = stream_run.metrics
    aggregate = registry.aggregate()
    assert aggregate["retired"] == sum(
        entry["counters"]["retired"] for entry in registry.pes.values()
    )
    assert aggregate["cycles"] == sum(
        entry["counters"]["cycles"] for entry in registry.pes.values()
    )
    assert aggregate["cpi"] == aggregate["cycles"] / aggregate["retired"]


def test_hazard_breakdown_covers_every_pe(stream_run):
    breakdown = stream_run.metrics.hazard_breakdown()
    assert set(breakdown) == {pe.name for pe in stream_run.system.pes}
    for hazards in breakdown.values():
        assert "data_hazard_cycles" in hazards
        assert all(count >= 0 for count in hazards.values())


def test_queue_metrics_have_timelines_and_high_water(stream_run):
    queues = stream_run.metrics.queue_metrics()
    assert queues
    for entry in queues.values():
        assert entry["high_water"] <= entry["capacity"]
        occupancies = [point[1] for point in entry["timeline"]]
        assert max(occupancies, default=0) == entry["high_water"]
        # Delta compression: consecutive points always differ.
        assert all(a != b for a, b in zip(occupancies, occupancies[1:]))


def test_port_busy_fraction_bounded(stream_run):
    ports = stream_run.metrics.port_metrics()
    assert ports  # stream uses a write port
    for entry in ports.values():
        assert 0.0 < entry["busy_fraction"] <= 1.0


def test_metrics_json_round_trip(tmp_path, stream_run):
    path = tmp_path / "metrics.json"
    text = stream_run.metrics.to_json(str(path))
    decoded = json.loads(path.read_text())
    assert decoded == json.loads(text)
    assert decoded["aggregate"]["retired"] > 0
    assert decoded["events"]["truncated"] is False


def test_functional_model_metrics():
    run = run_instrumented("gcd", config=None, scale=4, seed=1)
    registry = run.metrics
    entry = registry.pes["worker"]
    assert entry["model"] == "functional"
    assert registry.aggregate()["none_triggered_cycles"] == \
        run.worker_counters.none_triggered
    assert registry.snapshot()["aggregate"]["retired"] > 0


# ----------------------------------------------------------------------
# Trace export
# ----------------------------------------------------------------------

def test_chrome_trace_round_trips_as_json(stream_run):
    trace = json.loads(json.dumps(
        chrome_trace(stream_run.telemetry, stream_run.system)
    ))
    events = trace["traceEvents"]
    phases = {event["ph"] for event in events}
    assert {"M", "X", "C"} <= phases
    for event in events:
        assert "pid" in event and "ts" in event or event["ph"] == "M"


def test_trace_spans_stay_inside_the_run(stream_run):
    trace = chrome_trace(stream_run.telemetry, stream_run.system)
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert spans
    for span in spans:
        assert span["dur"] >= 1
        assert 0 <= span["ts"] <= stream_run.cycles
        assert span["ts"] + span["dur"] <= stream_run.cycles + 1


def test_trace_has_one_track_per_stage(stream_run):
    trace = chrome_trace(stream_run.telemetry, stream_run.system)
    names = {
        (event["pid"], event["tid"])
        for event in trace["traceEvents"] if event["ph"] == "X"
    }
    depth = len(CONFIG.stages)
    pipelined = [
        pe for pe in stream_run.system.pes if hasattr(pe, "stage_snapshot")
    ]
    assert len(names) <= depth * len(pipelined)
    # Every pipelined PE shows activity in its first (trigger) stage.
    assert len({pid for pid, __ in names}) == len(pipelined)


# ----------------------------------------------------------------------
# Disabled == bit-identical; attach/detach hygiene
# ----------------------------------------------------------------------

def test_disabled_run_bit_identical():
    def factory(name):
        return PipelinedPE(CONFIG, name=name)

    bare = run_workload("stream", make_pe=factory, scale=8, seed=0)
    instrumented = run_instrumented("stream", config=CONFIG, scale=8, seed=0)
    assert bare.cycles == instrumented.cycles
    assert bare.worker_counters.as_dict() == \
        instrumented.worker_counters.as_dict()


def test_detach_restores_class_default(stream_run):
    telemetry = Telemetry()
    run = run_instrumented("stream", config=CONFIG, scale=8, seed=0,
                           telemetry=telemetry)
    telemetry.detach()
    assert TaggedQueue.telemetry is None
    for pe in run.system.pes:
        assert pe.telemetry is None
        for queue in list(pe.inputs) + list(pe.outputs):
            assert "telemetry" not in queue.__dict__
    assert run.system.telemetry is None


def test_event_limit_truncates_but_keeps_counts():
    telemetry = Telemetry(limit=4)
    run = run_instrumented("stream", config=CONFIG, scale=8, seed=0,
                           telemetry=telemetry)
    assert telemetry.truncated
    assert len(telemetry.events) == 4
    assert telemetry.dropped_events > 0
    # Counts keep tiling the full run even though storage stopped.
    total = sum(telemetry.event_counts.values())
    assert total == len(telemetry.events) + telemetry.dropped_events
    assert run.metrics.snapshot()["events"]["truncated"] is True


def test_sample_interval_thins_fabric_sampling():
    telemetry = Telemetry(sample_interval=4)
    run = run_instrumented("stream", config=CONFIG, scale=8, seed=0,
                           telemetry=telemetry)
    assert 0 < telemetry.sampled_cycles <= run.cycles // 4 + 1


# ----------------------------------------------------------------------
# Counter-consistency audit in System.run
# ----------------------------------------------------------------------

def test_counter_checks_pass_on_clean_run():
    run = run_instrumented("stream", config=CONFIG, scale=8, seed=0,
                           check_counters=True)
    assert run.cycles > 0


def test_counter_checks_catch_corruption():
    run = run_instrumented("stream", config=CONFIG, scale=8, seed=0,
                           check_counters=True)
    system = run.system
    system.pe("worker").counters.data_hazard_cycles += 7
    with pytest.raises(SimulationError, match="pe=worker"):
        system.run()  # already halted: goes straight to the audit


# ----------------------------------------------------------------------
# Stage snapshot API
# ----------------------------------------------------------------------

LOOP = """
when %p == XXXXXXX0:
    ult %p1, %r0, $5; set %p = ZZZZZZZ1;
when %p == XXXXXX11:
    add %r0, %r0, $1; set %p = ZZZZZZ00;
when %p == XXXXXX01:
    halt;
"""


def test_stage_snapshot_shape_and_content():
    pe = PipelinedPE(config_by_name("T|D|X1|X2"), name="t")
    assemble(LOOP).configure(pe)
    seen_occupant = False
    for _ in range(200):
        if pe.halted:
            break
        pe.step()
        pe.commit_queues()
        snapshot = pe.stage_snapshot()
        assert len(snapshot) == len(pe.config.stages)
        for stage, occupant in enumerate(snapshot):
            if occupant is None:
                continue
            seen_occupant = True
            assert occupant.stage == stage
            assert occupant.label
            assert occupant.seq >= 0
    assert pe.halted and seen_occupant


def test_stage_intervals_tile_without_overlap(stream_run):
    for per_stage in stream_run.telemetry.stage_intervals.values():
        for intervals in per_stage:
            spans = sorted(intervals)
            for (s1, e1, *_), (s2, __, *_) in zip(spans, spans[1:]):
                assert e1 >= s1
                assert s2 > e1  # no overlap within one stage track


# ----------------------------------------------------------------------
# Campaign profiling
# ----------------------------------------------------------------------

def test_campaign_profile_records_cpi_population():
    profile = CampaignProfile(label="unit")
    table = CpiTable(scale=6)
    configs = all_configs()[:3]
    table.populate(configs, workers=1, profile=profile)
    report = profile.report()
    assert report["completed_tasks"] == 3
    assert report["planned_tasks"] == 3
    assert report["elapsed_seconds"] > 0
    assert 0.0 < report["worker_utilization"] <= 1.0
    assert report["pool_retries"] == 0 and report["timeouts"] == 0
    assert len(report["tasks"]) == 3
    text = format_campaign_report(report)
    assert "unit" in text and "3/3" in text


def test_campaign_profile_accumulates_across_calls():
    profile = CampaignProfile(label="accum")
    table = CpiTable(scale=6)
    table.populate(all_configs()[:1], workers=1, profile=profile)
    table.populate(all_configs()[1:2], workers=1, profile=profile)
    assert profile.report()["completed_tasks"] == 2
