"""Observability layer: event bus, metrics registry, trace export,
campaign profiling, and the bit-identical-when-disabled guarantee."""

import json

import pytest

from repro.asm import assemble
from repro.dse.cpi import CpiTable
from repro.errors import SimulationError
from repro.obs import (
    CampaignProfile,
    MetricsRegistry,
    Telemetry,
    chrome_trace,
    format_campaign_report,
    run_instrumented,
)
from repro.pipeline import PipelinedPE, config_by_name
from repro.pipeline.config import all_configs
from repro.arch.queue import TaggedQueue
from repro.workloads.suite import run_workload

CONFIG = config_by_name("T|D|X1|X2 +P+Q")


@pytest.fixture(scope="module")
def stream_run():
    """One instrumented multi-PE run shared by the read-only tests."""
    return run_instrumented("stream", config=CONFIG, scale=8, seed=0)


# ----------------------------------------------------------------------
# Event/counter identities
# ----------------------------------------------------------------------

def test_event_counts_match_pipeline_counters(stream_run):
    counts = stream_run.telemetry.event_counts
    issued = sum(pe.counters.issued for pe in stream_run.system.pes)
    retired = sum(pe.counters.retired for pe in stream_run.system.pes)
    quashed = sum(pe.counters.quashed for pe in stream_run.system.pes)
    assert counts["issue"] == issued
    assert counts["retire"] == retired
    assert counts.get("quash", 0) == quashed


def test_events_carry_source_and_cycle(stream_run):
    telemetry = stream_run.telemetry
    pe_names = {pe.name for pe in stream_run.system.pes}
    for event in telemetry.events_of("retire"):
        assert event.source in pe_names
        assert 0 <= event.cycle <= stream_run.cycles
        assert "seq" in event.data and "op" in event.data


def test_queue_conservation(stream_run):
    """enqueues - dequeues == final occupancy, per instrumented queue.

    (The stream workload starts with empty queues, so the events alone
    must account for every entry ever present.)
    """
    telemetry = stream_run.telemetry
    enq: dict[str, int] = {}
    deq: dict[str, int] = {}
    for event in telemetry.events:
        if event.kind == "enqueue":
            enq[event.source] = enq.get(event.source, 0) + 1
        elif event.kind == "dequeue":
            deq[event.source] = deq.get(event.source, 0) + 1
    assert enq, "no enqueue events captured"
    for name, timeline in telemetry.queue_timelines.items():
        final = timeline[-1][1] if timeline else 0
        assert enq.get(name, 0) - deq.get(name, 0) == final, name


def test_port_grants_recorded(stream_run):
    grants = stream_run.telemetry.events_of("port_grant")
    assert grants
    assert all(event.data["op"] in ("load", "store") for event in grants)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------

def test_aggregate_sums_per_pe_counters(stream_run):
    registry = stream_run.metrics
    aggregate = registry.aggregate()
    assert aggregate["retired"] == sum(
        entry["counters"]["retired"] for entry in registry.pes.values()
    )
    assert aggregate["cycles"] == sum(
        entry["counters"]["cycles"] for entry in registry.pes.values()
    )
    assert aggregate["cpi"] == aggregate["cycles"] / aggregate["retired"]


def test_hazard_breakdown_covers_every_pe(stream_run):
    breakdown = stream_run.metrics.hazard_breakdown()
    assert set(breakdown) == {pe.name for pe in stream_run.system.pes}
    for hazards in breakdown.values():
        assert "data_hazard_cycles" in hazards
        assert all(count >= 0 for count in hazards.values())


def test_queue_metrics_have_timelines_and_high_water(stream_run):
    queues = stream_run.metrics.queue_metrics()
    assert queues
    for entry in queues.values():
        assert entry["high_water"] <= entry["capacity"]
        occupancies = [point[1] for point in entry["timeline"]]
        assert max(occupancies, default=0) == entry["high_water"]
        # Delta compression: consecutive points always differ.
        assert all(a != b for a, b in zip(occupancies, occupancies[1:]))


def test_port_busy_fraction_bounded(stream_run):
    ports = stream_run.metrics.port_metrics()
    assert ports  # stream uses a write port
    for entry in ports.values():
        assert 0.0 < entry["busy_fraction"] <= 1.0


def test_metrics_json_round_trip(tmp_path, stream_run):
    path = tmp_path / "metrics.json"
    text = stream_run.metrics.to_json(str(path))
    decoded = json.loads(path.read_text())
    assert decoded == json.loads(text)
    assert decoded["aggregate"]["retired"] > 0
    assert decoded["events"]["truncated"] is False


def test_functional_model_metrics():
    run = run_instrumented("gcd", config=None, scale=4, seed=1)
    registry = run.metrics
    entry = registry.pes["worker"]
    assert entry["model"] == "functional"
    assert registry.aggregate()["none_triggered_cycles"] == \
        run.worker_counters.none_triggered
    assert registry.snapshot()["aggregate"]["retired"] > 0


# ----------------------------------------------------------------------
# Trace export
# ----------------------------------------------------------------------

def test_chrome_trace_round_trips_as_json(stream_run):
    trace = json.loads(json.dumps(
        chrome_trace(stream_run.telemetry, stream_run.system)
    ))
    events = trace["traceEvents"]
    phases = {event["ph"] for event in events}
    assert {"M", "X", "C"} <= phases
    for event in events:
        assert "pid" in event and "ts" in event or event["ph"] == "M"


def test_trace_spans_stay_inside_the_run(stream_run):
    trace = chrome_trace(stream_run.telemetry, stream_run.system)
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert spans
    for span in spans:
        assert span["dur"] >= 1
        assert 0 <= span["ts"] <= stream_run.cycles
        assert span["ts"] + span["dur"] <= stream_run.cycles + 1


def test_trace_has_one_track_per_stage(stream_run):
    trace = chrome_trace(stream_run.telemetry, stream_run.system)
    names = {
        (event["pid"], event["tid"])
        for event in trace["traceEvents"] if event["ph"] == "X"
    }
    depth = len(CONFIG.stages)
    pipelined = [
        pe for pe in stream_run.system.pes if hasattr(pe, "stage_snapshot")
    ]
    assert len(names) <= depth * len(pipelined)
    # Every pipelined PE shows activity in its first (trigger) stage.
    assert len({pid for pid, __ in names}) == len(pipelined)


# ----------------------------------------------------------------------
# Disabled == bit-identical; attach/detach hygiene
# ----------------------------------------------------------------------

def test_disabled_run_bit_identical():
    def factory(name):
        return PipelinedPE(CONFIG, name=name)

    bare = run_workload("stream", make_pe=factory, scale=8, seed=0)
    instrumented = run_instrumented("stream", config=CONFIG, scale=8, seed=0)
    assert bare.cycles == instrumented.cycles
    assert bare.worker_counters.as_dict() == \
        instrumented.worker_counters.as_dict()


def test_detach_restores_class_default(stream_run):
    telemetry = Telemetry()
    run = run_instrumented("stream", config=CONFIG, scale=8, seed=0,
                           telemetry=telemetry)
    telemetry.detach()
    assert TaggedQueue.telemetry is None
    for pe in run.system.pes:
        assert pe.telemetry is None
        for queue in list(pe.inputs) + list(pe.outputs):
            assert "telemetry" not in queue.__dict__
    assert run.system.telemetry is None


def test_event_limit_truncates_but_keeps_counts():
    telemetry = Telemetry(limit=4)
    run = run_instrumented("stream", config=CONFIG, scale=8, seed=0,
                           telemetry=telemetry)
    assert telemetry.truncated
    assert len(telemetry.events) == 4
    assert telemetry.dropped_events > 0
    # Counts keep tiling the full run even though storage stopped.
    total = sum(telemetry.event_counts.values())
    assert total == len(telemetry.events) + telemetry.dropped_events
    assert run.metrics.snapshot()["events"]["truncated"] is True


def test_sample_interval_thins_fabric_sampling():
    telemetry = Telemetry(sample_interval=4)
    run = run_instrumented("stream", config=CONFIG, scale=8, seed=0,
                           telemetry=telemetry)
    assert 0 < telemetry.sampled_cycles <= run.cycles // 4 + 1


# ----------------------------------------------------------------------
# Counter-consistency audit in System.run
# ----------------------------------------------------------------------

def test_counter_checks_pass_on_clean_run():
    run = run_instrumented("stream", config=CONFIG, scale=8, seed=0,
                           check_counters=True)
    assert run.cycles > 0


def test_counter_checks_catch_corruption():
    run = run_instrumented("stream", config=CONFIG, scale=8, seed=0,
                           check_counters=True)
    system = run.system
    system.pe("worker").counters.data_hazard_cycles += 7
    with pytest.raises(SimulationError, match="pe=worker"):
        system.run()  # already halted: goes straight to the audit


# ----------------------------------------------------------------------
# Stage snapshot API
# ----------------------------------------------------------------------

LOOP = """
when %p == XXXXXXX0:
    ult %p1, %r0, $5; set %p = ZZZZZZZ1;
when %p == XXXXXX11:
    add %r0, %r0, $1; set %p = ZZZZZZ00;
when %p == XXXXXX01:
    halt;
"""


def test_stage_snapshot_shape_and_content():
    pe = PipelinedPE(config_by_name("T|D|X1|X2"), name="t")
    assemble(LOOP).configure(pe)
    seen_occupant = False
    for _ in range(200):
        if pe.halted:
            break
        pe.step()
        pe.commit_queues()
        snapshot = pe.stage_snapshot()
        assert len(snapshot) == len(pe.config.stages)
        for stage, occupant in enumerate(snapshot):
            if occupant is None:
                continue
            seen_occupant = True
            assert occupant.stage == stage
            assert occupant.label
            assert occupant.seq >= 0
    assert pe.halted and seen_occupant


def test_stage_intervals_tile_without_overlap(stream_run):
    for per_stage in stream_run.telemetry.stage_intervals.values():
        for intervals in per_stage:
            spans = sorted(intervals)
            for (s1, e1, *_), (s2, __, *_) in zip(spans, spans[1:]):
                assert e1 >= s1
                assert s2 > e1  # no overlap within one stage track


# ----------------------------------------------------------------------
# Campaign profiling
# ----------------------------------------------------------------------

def test_campaign_profile_records_cpi_population():
    profile = CampaignProfile(label="unit")
    table = CpiTable(scale=6)
    configs = all_configs()[:3]
    table.populate(configs, workers=1, profile=profile)
    report = profile.report()
    assert report["completed_tasks"] == 3
    assert report["planned_tasks"] == 3
    assert report["elapsed_seconds"] > 0
    assert 0.0 < report["worker_utilization"] <= 1.0
    assert report["pool_retries"] == 0 and report["timeouts"] == 0
    assert len(report["tasks"]) == 3
    text = format_campaign_report(report)
    assert "unit" in text and "3/3" in text


def test_campaign_profile_accumulates_across_calls():
    profile = CampaignProfile(label="accum")
    table = CpiTable(scale=6)
    table.populate(all_configs()[:1], workers=1, profile=profile)
    table.populate(all_configs()[1:2], workers=1, profile=profile)
    assert profile.report()["completed_tasks"] == 2


# ----------------------------------------------------------------------
# Service-side observability (repro.obs.svc)
# ----------------------------------------------------------------------

import io
import re

from repro.obs import (
    JobEventStream,
    JsonLogger,
    ServiceMetrics,
    ServiceObs,
    ServiceTracer,
    campaign_trace,
)
from repro.obs.svc import stats_metrics


class _TickClock:
    """Deterministic monotonic clock: +1.0 per call."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


class TestServiceTracer:
    def test_begin_end_records_window_and_ids(self):
        tracer = ServiceTracer(clock=_TickClock())
        span = tracer.begin("job", trace_id="job-1", track="jobs", kind="k")
        assert span.end is None and span.seconds is None
        tracer.end(span, state="done")
        assert span.seconds == 1.0
        assert span.attrs == {"kind": "k", "state": "done"}
        assert span.trace_id == "job-1" and span.span_id == "s000001"
        tracer.end(span, state="again")   # idempotent: first end wins
        assert span.attrs["state"] == "done"
        tracer.end(None)                  # None is a no-op

    def test_record_and_by_name(self):
        tracer = ServiceTracer(clock=_TickClock())
        parent = tracer.begin("task", trace_id="t")
        tracer.record("worker_run", 1.5, 2.5, trace_id="t",
                      parent=parent.span_id)
        tracer.end(parent)
        [run] = tracer.by_name("worker_run")
        assert run.seconds == 1.0 and run.parent_id == parent.span_id
        assert tracer.summary() == {"task": 1, "worker_run": 1}

    def test_check_nesting_flags_problems(self):
        tracer = ServiceTracer(clock=_TickClock())
        open_span = tracer.begin("never_ended", trace_id="t")
        parent = tracer.record("parent", 10.0, 11.0, trace_id="t")
        tracer.record("escapee", 10.5, 12.0, trace_id="t",
                      parent=parent.span_id)
        tracer.record("orphan", 0.0, 1.0, trace_id="t", parent="s999999")
        problems = tracer.check_nesting()
        assert len(problems) == 3
        assert any("never ended" in p for p in problems)
        assert any("escapes parent" in p for p in problems)
        assert any("unknown" in p for p in problems)
        tracer.end(open_span)

    def test_span_limit_counts_drops(self):
        tracer = ServiceTracer(clock=_TickClock(), limit=2)
        for _ in range(5):
            tracer.begin("x", trace_id="t")
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3


class TestServiceMetrics:
    def test_counters_accumulate_per_label_set(self):
        metrics = ServiceMetrics()
        metrics.inc("tasks_total", kind="a")
        metrics.inc("tasks_total", 2, kind="a")
        metrics.inc("tasks_total", kind="b")
        snap = metrics.snapshot()["counters"]
        assert snap['tasks_total{kind="a"}'] == 3
        assert snap['tasks_total{kind="b"}'] == 1

    def test_histogram_buckets_cumulative_in_exposition(self):
        metrics = ServiceMetrics()
        for value in (0.0005, 0.003, 0.003, 99.0):
            metrics.observe("lat_seconds", value)
        text = metrics.prometheus_text()
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="0.001"} 1' in text
        assert 'lat_seconds_bucket{le="0.005"} 3' in text
        assert 'lat_seconds_bucket{le="+Inf"} 4' in text
        assert "lat_seconds_count 4" in text

    def test_prometheus_lines_all_parse(self):
        metrics = ServiceMetrics()
        metrics.inc("c_total", 3, label='tricky"quote')
        metrics.gauge("g", 1.5)
        metrics.observe("h_seconds", 0.2, kind="x")
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? "
            r"(-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|NaN)$"
        )
        for line in metrics.prometheus_text().splitlines():
            assert line.startswith("# TYPE ") or sample.match(line), line

    def test_snapshot_is_json_ready(self):
        metrics = ServiceMetrics()
        metrics.inc("c_total")
        metrics.observe("h_seconds", 0.5)
        decoded = json.loads(json.dumps(metrics.snapshot()))
        assert decoded["counters"]["c_total"] == 1
        assert decoded["histograms"]["h_seconds"]["count"] == 1


def test_stats_metrics_renders_service_and_jit_families():
    stats = {
        "jobs": {"done": 2},
        "supervisor": {"tasks_done": 5, "worker_crashes": 1},
        "admission": {"admitted_jobs": 2, "rejected_jobs": 1,
                      "rejections": {"rate-limited": 1},
                      "queued_jobs": 0, "backlog_tasks": 0},
        "store": {"rows": 4, "hits": 3, "misses": 4, "puts": 4,
                  "duplicate_puts": 0, "max_executions": 1,
                  "executions_total": 4, "kinds": {"workload-run": 4}},
        "serial": False, "pending_tasks": 0, "in_flight": 0,
    }
    jit = {"hits": 7, "misses": 2, "compile_seconds": 0.25, "entries": 2,
           "block_exits": {"halt": 3, "budget": 1}}
    text = stats_metrics(stats, jit=jit).prometheus_text()
    assert "repro_serve_tasks_done_total 5" in text
    assert "repro_serve_worker_crashes_total 1" in text
    assert 'repro_serve_rejections_total{reason="rate-limited"} 1' in text
    assert "repro_serve_store_rows 4" in text
    assert "repro_serve_store_executions_total 4" in text
    assert 'repro_serve_store_kind_rows{kind="workload-run"} 4' in text
    assert "repro_jit_cache_hits_total 7" in text
    assert "repro_jit_compile_seconds_total 0.25" in text
    assert 'repro_jit_block_exits_total{reason="halt"} 3' in text
    # Family names never repeat across TYPE sections (exposition rule).
    families = [line.split()[2] for line in text.splitlines()
                if line.startswith("# TYPE ")]
    assert len(families) == len(set(families))


class TestJsonLogger:
    def test_correlation_ids_and_json_lines(self):
        sink = io.StringIO()
        logger = JsonLogger(sink)
        logger.log("task_retry", level="warning", trace_id="job-1",
                   span_id="s000002", attempt=2)
        logger.log("plain_event")
        lines = sink.getvalue().splitlines()
        assert logger.lines == 2
        first = json.loads(lines[0])
        assert first["event"] == "task_retry"
        assert first["level"] == "warning"
        assert first["trace_id"] == "job-1"
        assert first["span_id"] == "s000002"
        assert first["attempt"] == 2 and "ts" in first
        assert "trace_id" not in json.loads(lines[1])


class TestJobEventStream:
    def test_bounded_buffer_drops_oldest(self):
        stream = JobEventStream(max_buffer=4)
        for i in range(10):
            stream.push({"i": i})
        assert stream.dropped == 6
        events = stream.pop_all()
        assert [e["i"] for e in events] == [6, 7, 8, 9]
        assert len(stream) == 0 and stream.pop_all() == []


def test_campaign_trace_unifies_service_and_sim_tracks():
    obs = ServiceObs(sim_trace=True)
    tracer = obs.tracer
    job = tracer.record("job", 0.0, 10.0, trace_id="job-1", track="jobs")
    tracer.record("task", 1.0, 9.0, trace_id="job-1",
                  parent=job.span_id, track="task job-1/0")
    execute = tracer.record("execute", 2.0, 8.0, trace_id="job-1",
                            track="worker 0", kind="workload-run")
    obs.add_sim_trace(
        "job-1/0",
        {"cycles": 10,
         "pes": {"worker": {"stages": ["T", "X"],
                            "intervals": [[[0, 4, "add", 0, 0]],
                                          [[5, 9, "mul", 1, 1]]]}}},
        start=execute.start, end=execute.end, trace_id="job-1",
    )
    trace = json.loads(json.dumps(campaign_trace(obs)))
    events = trace["traceEvents"]
    service = [e for e in events if e["ph"] == "X" and e["cat"] == "service"]
    sim = [e for e in events if e["ph"] == "X" and e["cat"] == "pipeline"]
    assert len(service) == 3 and len(sim) == 2
    # Service spans all live in process 1; sim tracks in their own.
    assert {e["pid"] for e in service} == {1}
    assert {e["pid"] for e in sim} == {2}
    names = {e["args"]["name"] for e in events if e["ph"] == "M"
             and e["name"] == "thread_name"}
    assert "jobs" in names and "worker 0" in names
    assert "worker T" in names and "worker X" in names
    # Cycle timestamps scale into the execute span's wall window.
    execute_event = next(e for e in service if e["name"] == "execute")
    window = range(execute_event["ts"],
                   execute_event["ts"] + execute_event["dur"] + 1)
    for event in sim:
        assert event["ts"] in window
        assert event["ts"] + event["dur"] in window
    assert event["args"]["cycle"] == 5
    assert trace["otherData"]["sim_tasks"] == 1


def test_campaign_trace_without_sim_tracks():
    obs = ServiceObs()
    obs.tracer.record("job", 0.0, 1.0, trace_id="j", track="jobs")
    trace = campaign_trace(obs, include_sim=False)
    assert all(e["cat"] != "pipeline" for e in trace["traceEvents"]
               if e["ph"] == "X")


def test_metrics_registry_exposes_jit_cache_section(stream_run):
    snapshot = stream_run.metrics.snapshot()
    jit = snapshot["jit"]
    assert set(jit) >= {"hits", "misses", "compile_seconds", "entries",
                        "block_exits"}
    assert json.loads(json.dumps(jit)) == jit


def test_jit_block_exit_reasons_counted():
    from repro.jit.cache import block_exit_counts, clear_cache
    from repro.params import DEFAULT_PARAMS

    clear_cache()
    try:
        # A solo PE running to halt exits its generated block once.
        pe = PipelinedPE(config_by_name("T|D|X1|X2"), name="t",
                         backend="jit")
        assemble(LOOP).configure(pe)
        pe.run_cycles(500)
        assert pe.halted
        assert block_exit_counts() == {"halt": 1}
        # A fabric workload exits blocks on queue activity instead.
        run_workload(
            "gcd",
            make_pe=lambda n: PipelinedPE(
                config_by_name("TDX"), DEFAULT_PARAMS, name=n,
                backend="jit"
            ),
            scale=4, seed=0,
        )
        exits = block_exit_counts()
        assert exits["halt"] == 1 and exits.get("enqueue", 0) > 0
        known = {"refused", "halt", "stall", "budget", "dequeue",
                 "enqueue", "other", "error"}
        assert set(exits) <= known
    finally:
        clear_cache()
