"""Static analyzer: lint fixtures, fabric rules, cross-validation."""

import json

import pytest

from repro.analyze import (
    Severity,
    analyze_program,
    analyze_system,
    explore,
    render_json,
    render_sarif,
    render_text,
    stream_tag_sets,
    unreachable_retirements,
)
from repro.analyze.__main__ import main as analyze_main
from repro.arch import FunctionalPE
from repro.asm import assemble
from repro.fabric.system import System
from repro.isa.opcodes import (
    ALU_OPS_1SRC,
    ALU_OPS_2SRC,
    BOOLEAN_OPS_2SRC,
    SIDE_EFFECTING_OPS,
    op_by_name,
)
from repro.params import DEFAULT_PARAMS as P
from repro.workloads.suite import WORKLOADS, get_workload


def rules(findings, minimum=Severity.NOTE):
    return [f.rule for f in findings if f.severity >= minimum]


# ----------------------------------------------------------------------
# Known-bad fixture programs: one per lint, asserting exact findings.
# ----------------------------------------------------------------------

UNREACHABLE = """
.start %p = 00000000
when %p == XXXXXX00:
    add %r0, %r0, $1; set %p = ZZZZZZ01;
when %p == XXXXXX01:
    halt;
when %p == XXXXXX10:
    nop;
"""

UNSATISFIABLE = """
.start %p = 00000001
when %p == XXXXXXX0:
    nop;
when %p == XXXXXXX1:
    halt;
"""

SHADOWED = """
when %p == XXXXXXXX with %i0.0:
    mov %r0, %i0; deq %i0;
when %p == XXXXXXXX with %i0.0:
    add %r1, %r1, %i0; deq %i0;
"""

OVERLAP = """
when %p == XXXXXXXX with %i0.0:
    add %r0, %r0, %i0; deq %i0;
when %p == XXXXXXXX:
    mov %r1, %i0; deq %i0;
"""

SPECULATION = """
.start %p = 00000000
when %p == XXXXXX00:
    ult %p1, %r0, %r1; set %p = ZZZZZZZ1;
when %p == XXXXXX11:
    mov %r2, %i0; deq %i0;
when %p == XXXXXX01:
    halt;
"""


class TestProgramLints:
    def test_unreachable_trigger(self):
        findings = analyze_program(assemble(UNREACHABLE), P)
        assert [(f.rule, f.severity, f.slot) for f in findings] == [
            ("unreachable-trigger", Severity.WARNING, 2)
        ]

    def test_unsatisfiable_and_redundant(self):
        findings = analyze_program(assemble(UNSATISFIABLE), P)
        assert [(f.rule, f.severity, f.slot) for f in findings] == [
            ("unsatisfiable-trigger", Severity.ERROR, 0),
            ("redundant-pred-literal", Severity.WARNING, 1),
        ]

    def test_shadowed_trigger(self):
        findings = analyze_program(assemble(SHADOWED), P)
        assert [(f.rule, f.severity, f.slot) for f in findings] == [
            ("trigger-shadowed", Severity.WARNING, 1)
        ]
        assert "slot 0" in findings[0].message

    def test_trigger_overlap(self):
        findings = analyze_program(assemble(OVERLAP), P)
        assert [(f.rule, f.severity, f.slot) for f in findings] == [
            ("trigger-overlap", Severity.WARNING, 1)
        ]
        assert "dequeue" in findings[0].message

    def test_speculation_window(self):
        findings = analyze_program(assemble(SPECULATION), P)
        assert [(f.rule, f.severity, f.slot) for f in findings] == [
            ("speculation-window", Severity.NOTE, 1)
        ]
        assert "slot 0" in findings[0].message

    def test_findings_carry_source_location(self):
        finding = analyze_program(assemble(UNREACHABLE), P)[0]
        assert finding.line == 7 and finding.column == 1
        assert finding.snippet.startswith("when %p == XXXXXX10")

    def test_tag_dispatch_idiom_is_clean(self):
        # The standard forwarder pair — same queue, different tags — must
        # not be reported as an overlap: the tag checks conflict.
        source = """
        when %p == XXXXXXXX with %i0.0:
            mov %o1.0, %i0; deq %i0;
        when %p == XXXXXXXX with %i0.1:
            mov %o1.1, %i0; deq %i0; set %p = ZZZZZZZ1;
        when %p == XXXXXXX1:
            halt;
        """
        assert analyze_program(assemble(source), P) == []


class TestAbstractInterpreter:
    def test_definite_fire_stops_priority_walk(self):
        # Slot 0 has no queue conditions: nothing below it can ever fire.
        source = """
        when %p == XXXXXXXX:
            nop;
        when %p == XXXXXXXX:
            halt;
        """
        program = assemble(source)
        reach = explore(program.instructions, 0, P)
        assert reach.reachable_slots == frozenset({0})

    def test_queue_conditioned_walk_continues(self):
        source = """
        when %p == XXXXXXXX with %i0.0:
            mov %o0.0, %i0; deq %i0;
        when %p == XXXXXXXX:
            halt;
        """
        program = assemble(source)
        reach = explore(program.instructions, 0, P)
        assert reach.reachable_slots == frozenset({0, 1})

    def test_predicate_write_forks_both_outcomes(self):
        source = """
        .start %p = 00000000
        when %p == XXXXXXX0 with %i0.0:
            ult %p1, %i0, %r0; set %p = ZZZZZZZ1;
        when %p == XXXXXX11:
            halt;
        when %p == XXXXXX01:
            halt;
        """
        program = assemble(source)
        reach = explore(program.instructions, 0, P)
        assert reach.reachable_slots == frozenset({0, 1, 2})

    def test_input_tag_knowledge_prunes(self):
        source = """
        when %p == XXXXXXXX with %i0.1:
            mov %r0, %i0; deq %i0;
        when %p == XXXXXXXX with %i0.0:
            halt;
        """
        program = assemble(source)
        tags = {0: frozenset({0})}
        reach = explore(program.instructions, 0, P, tags)
        assert reach.reachable_slots == frozenset({1})


# ----------------------------------------------------------------------
# Fabric-level rules.
# ----------------------------------------------------------------------

FORWARD = "when %p == XXXXXXXX:\n    mov %o0.0, %i0; deq %i0;"


def _two_pe_system(producer_src, consumer_src):
    system = System()
    producer = FunctionalPE(P, name="producer")
    consumer = FunctionalPE(P, name="consumer")
    system.add_pe(producer)
    system.add_pe(consumer)
    assemble(producer_src, P).configure(producer)
    assemble(consumer_src, P).configure(consumer)
    system.connect(producer, 0, consumer, 0)
    return system


class TestFabricAnalysis:
    def test_capacity_cycle_deadlock(self):
        system = _two_pe_system(FORWARD, FORWARD)
        system.connect(system.pe("consumer"), 0, system.pe("producer"), 0)
        findings = analyze_system(system)
        assert [(f.rule, f.severity) for f in findings] == [
            ("capacity-cycle", Severity.WARNING)
        ]
        assert "consumer" in findings[0].message
        assert "producer" in findings[0].message

    def test_tag_mismatch(self):
        system = _two_pe_system(
            "when %p == XXXXXXXX:\n    mov %o0.2, $5;",
            "when %p == XXXXXXXX with %i0.0:\n    mov %r0, %i0; deq %i0;",
        )
        findings = analyze_system(system)
        by_rule = {f.rule: f for f in findings}
        mismatch = by_rule["tag-mismatch"]
        assert mismatch.severity is Severity.WARNING
        assert mismatch.pe == "producer" and mismatch.slot == 0
        assert "tag 2" in mismatch.message
        # Wiring knowledge also proves the consumer's trigger dead: only
        # tag 2 ever arrives and it waits for tag 0.
        unreachable = by_rule["unreachable-trigger"]
        assert unreachable.pe == "consumer"

    def test_matched_tags_are_clean(self):
        system = _two_pe_system(
            "when %p == XXXXXXXX:\n    mov %o0.0, $5;",
            FORWARD,
        )
        assert analyze_system(system) == []

    def test_wiring_inventory(self):
        system = _two_pe_system(FORWARD, FORWARD)
        channels = {
            info.queue.name: info for info in system.wiring()
        }
        link = channels["producer.o0->consumer.i0"]
        assert link.producer == ("producer", 0)
        assert link.consumer == ("consumer", 0)
        assert link.port_producer is None and link.port_consumer is None


# ----------------------------------------------------------------------
# The acceptance bar: all ten workloads are warning-free, and every
# speculation note names a real data-dependent dequeue site.
# ----------------------------------------------------------------------

class TestWorkloadAudit:
    def test_all_workloads_clean(self):
        for name in WORKLOADS():
            workload = get_workload(name)
            system = workload.build(
                workload.default_pe_factory(), workload.default_scale, seed=0)
            findings = analyze_system(system, workload.params)
            actionable = [f for f in findings
                          if f.severity >= Severity.WARNING]
            assert actionable == [], (
                f"workload {name!r} has analyzer findings: "
                + "; ".join(f"{f.rule}@{f.location}" for f in actionable))
            for note in findings:
                assert note.rule == "speculation-window"


# ----------------------------------------------------------------------
# Analyzer <-> fuzzer cross-validation.
# ----------------------------------------------------------------------

class TestCrossValidation:
    def _check(self, case):
        from repro.errors import ReproError
        from repro.verify.generator import case_source, case_streams
        from repro.verify.harness import GOLDEN_WATCHDOG, _run_model

        try:
            program = assemble(case_source(case), P, name=case["name"])
        except ReproError:
            return            # shrunk cases may not assemble; nothing to claim
        streams = case_streams(case)
        pe = FunctionalPE(P, name=case["name"])
        program.configure(pe)
        if _run_model(pe, streams, GOLDEN_WATCHDOG) is None:
            return
        problems = unreachable_retirements(
            program, pe.counters, P,
            stream_tag_sets(streams, P.num_input_queues))
        assert problems == [], f"case {case['name']}: {problems}"

    def test_corpus(self):
        from pathlib import Path

        corpus = Path(__file__).parent / "corpus"
        cases = sorted(corpus.glob("*.json"))
        assert cases, "fuzz corpus is missing"
        for path in cases:
            self._check(json.loads(path.read_text()))

    def test_generated_cases(self):
        from repro.verify.generator import generate_case

        for seed in range(20):
            self._check(generate_case(seed))

    def test_harness_reports_analysis_kind(self):
        # The differential harness itself carries the cross-check; a
        # normal case must produce no 'analysis' divergences.
        from repro.verify.generator import generate_case
        from repro.verify.harness import check_case

        result = check_case(generate_case(3), P, ref_configs=0)
        assert [d for d in result["divergences"]
                if d["kind"] == "analysis"] == []


# ----------------------------------------------------------------------
# Emitters and CLI.
# ----------------------------------------------------------------------

class TestEmitters:
    def test_text(self):
        findings = analyze_program(assemble(OVERLAP), P)
        text = render_text(findings)
        assert "trigger-overlap" in text and "1 warning(s)" in text

    def test_json(self):
        findings = analyze_program(assemble(UNSATISFIABLE), P)
        payload = json.loads(render_json(findings))
        assert payload["counts"]["error"] == 1
        assert payload["findings"][0]["rule"] == "unsatisfiable-trigger"
        assert payload["findings"][0]["severity"] == "error"

    def test_sarif(self):
        findings = analyze_program(assemble(UNREACHABLE), P)
        log = json.loads(render_sarif(findings))
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-analyze"
        result = run["results"][0]
        assert result["ruleId"] == "unreachable-trigger"
        assert result["level"] == "warning"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 7


def _assert_sarif_required_fields(log: dict) -> None:
    """The SARIF 2.1.0 required-field set a consumer may rely on:
    top-level version + runs, each run's tool.driver.name, and for each
    result a ruleId (declared in the driver's rules), a level, a
    message.text, and well-formed locations when present."""
    assert log["version"] == "2.1.0"
    assert isinstance(log["runs"], list) and log["runs"]
    for run in log["runs"]:
        driver = run["tool"]["driver"]
        assert driver["name"]
        declared = {rule["id"] for rule in driver["rules"]}
        assert isinstance(run["results"], list)
        for result in run["results"]:
            assert result["ruleId"] in declared
            assert result["level"] in ("note", "warning", "error")
            assert result["message"]["text"]
            for location in result.get("locations", []):
                physical = location.get("physicalLocation")
                if physical is not None:
                    assert physical["artifactLocation"]["uri"]
                    assert physical["region"]["startLine"] >= 1
                for logical in location.get("logicalLocations", []):
                    assert logical["name"]


class TestSarifRequiredFields:
    def test_lint_findings(self):
        findings = []
        for source in (UNREACHABLE, UNSATISFIABLE, SHADOWED, SPECULATION):
            findings += analyze_program(assemble(source), P)
        assert findings
        _assert_sarif_required_fields(json.loads(render_sarif(findings)))

    def test_perf_findings(self):
        from repro.analyze.perf import workload_analyzer

        analyzer, worker = workload_analyzer("gcd", scale=8)
        findings = analyzer.findings(worker)
        assert findings
        _assert_sarif_required_fields(json.loads(render_sarif(findings)))

    def test_empty_log_is_still_valid(self):
        _assert_sarif_required_fields(json.loads(render_sarif([])))


class TestFailOnThreshold:
    """--fail-on must compare via the explicit Severity order, not the
    labels' accidental string order ("error" < "note" < "warning")."""

    def _finding(self, severity):
        from repro.analyze import Finding

        return Finding(rule="r", severity=severity, message="m")

    def test_order_is_note_warning_error(self):
        assert Severity.NOTE < Severity.WARNING < Severity.ERROR

    def test_string_order_would_invert(self):
        # The regression this guards against: alphabetical label order
        # disagrees with the semantic order.
        assert sorted(s.label for s in Severity) != [
            s.label for s in sorted(Severity)]

    def test_threshold_matrix(self):
        from repro.analyze import fails_build

        note = [self._finding(Severity.NOTE)]
        warning = [self._finding(Severity.WARNING)]
        error = [self._finding(Severity.ERROR)]
        assert fails_build(note, "note")
        assert not fails_build(note, "warning")
        assert not fails_build(note, "error")
        assert fails_build(warning, "note")
        assert fails_build(warning, "warning")
        assert not fails_build(warning, "error")
        assert fails_build(error, "error")
        assert fails_build(note + error, "warning")

    def test_never_and_empty(self):
        from repro.analyze import fails_build

        assert not fails_build([self._finding(Severity.ERROR)], "never")
        assert not fails_build([], "note")

    def test_unknown_threshold_raises(self):
        from repro.analyze import fails_build

        with pytest.raises(ValueError):
            fails_build([], "fatal")

    def test_cli_note_threshold(self, tmp_path, capsys):
        # A NOTE finding fails --fail-on note but passes the default
        # warning threshold — wrong under string comparison, where
        # "note" > "warning" would make notes never fail.
        noisy = tmp_path / "spec.s"
        noisy.write_text(SPECULATION)
        assert analyze_main([str(noisy)]) == 0
        capsys.readouterr()
        assert analyze_main([str(noisy), "--fail-on", "note"]) == 1
        capsys.readouterr()


class TestCli:
    def test_lint_file_exit_status(self, tmp_path, capsys):
        bad = tmp_path / "bad.s"
        bad.write_text(OVERLAP)
        assert analyze_main([str(bad)]) == 1
        assert "trigger-overlap" in capsys.readouterr().out
        assert analyze_main([str(bad), "--fail-on", "never"]) == 0
        capsys.readouterr()

    def test_clean_file_passes(self, tmp_path, capsys):
        good = tmp_path / "good.s"
        good.write_text("when %p == XXXXXXXX:\n    halt;")
        assert analyze_main([str(good)]) == 0
        capsys.readouterr()

    def test_sarif_output(self, tmp_path, capsys):
        bad = tmp_path / "bad.s"
        bad.write_text(UNREACHABLE)
        assert analyze_main([str(bad), "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["results"]

    def test_nothing_to_do_is_usage_error(self):
        with pytest.raises(SystemExit):
            analyze_main([])

    def test_perf_mode(self, capsys):
        assert analyze_main(["--perf", "--workloads", "gcd",
                             "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "partition-bound" in {f["rule"] for f in payload["findings"]}

    def test_perf_excludes_other_modes(self):
        with pytest.raises(SystemExit):
            analyze_main(["--perf", "--check"])
        with pytest.raises(SystemExit):
            analyze_main(["--perf", "--fuzz", "1"])


# ----------------------------------------------------------------------
# The opcode effects table feeding the analyzer.
# ----------------------------------------------------------------------

class TestOpcodeEffects:
    def test_side_effecting_ops(self):
        assert set(SIDE_EFFECTING_OPS) == {"ssw", "halt"}
        assert op_by_name("ssw").effects.stores_scratchpad
        assert op_by_name("halt").effects.halts

    def test_boolean_results(self):
        assert op_by_name("ult").effects.boolean_result
        assert all(op_by_name(name).effects.boolean_result
                   for name in BOOLEAN_OPS_2SRC)
        assert not op_by_name("add").effects.boolean_result

    def test_alu_groups_exclude_scratchpad(self):
        for name in ALU_OPS_1SRC + ALU_OPS_2SRC:
            assert not op_by_name(name).effects.touches_scratchpad
        assert op_by_name("lsw").effects.loads_scratchpad
