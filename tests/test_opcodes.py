"""The 42-operation ISA table."""

import pytest

from repro.isa.opcodes import OPS, Op, OpClass, op_by_code, op_by_name


def test_exactly_42_operations():
    assert len(OPS) == 42


def test_opcodes_are_dense_and_ordered():
    assert [op.opcode for op in OPS] == list(range(42))


def test_mnemonics_unique():
    assert len({op.mnemonic for op in OPS}) == 42


def test_lookup_by_name():
    assert op_by_name("add").op_class is OpClass.ARITH
    assert op_by_name("clz").op_class is OpClass.BITMANIP


def test_lookup_by_code_round_trip():
    for op in OPS:
        assert op_by_code(op.opcode) is op


def test_unknown_name_raises_with_suggestions():
    with pytest.raises(KeyError, match="valid operations"):
        op_by_name("div")   # deliberately omitted from the ISA


def test_unknown_code_raises():
    with pytest.raises(KeyError):
        op_by_code(42)


def test_multiplies_are_late_result():
    for name in ("mul", "mulh", "mulhu"):
        assert op_by_name(name).late_result


def test_scratchpad_load_is_late_result():
    assert op_by_name("lsw").late_result


def test_simple_alu_ops_are_early_result():
    for name in ("add", "sub", "xor", "ult", "clz", "shl"):
        assert not op_by_name(name).late_result


def test_ops_without_destinations():
    no_dst = {op.mnemonic for op in OPS if not op.has_dst}
    assert no_dst == {"nop", "ssw", "halt"}


def test_comparison_complement():
    """The ISA carries the full signed/unsigned comparison complement."""
    compares = {op.mnemonic for op in OPS if op.op_class is OpClass.COMPARE}
    assert {"eq", "ne", "slt", "sle", "sgt", "sge",
            "ult", "ule", "ugt", "uge", "eqz", "nez"} == compares


def test_division_and_float_omitted():
    mnemonics = {op.mnemonic for op in OPS}
    for absent in ("div", "udiv", "rem", "fadd", "fmul"):
        assert absent not in mnemonics
