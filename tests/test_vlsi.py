"""The calibrated 65 nm VLSI model: every published anchor plus physics."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError, SynthesisError
from repro.pipeline.config import all_configs, config_by_name
from repro.vlsi.components import (
    COMPONENTS,
    INSTRUCTION_STORAGE,
    front_back_split,
)
from repro.vlsi.synthesis import (
    critical_path_fo4,
    effective_capacitance,
    fmax,
    sizing_factor,
    stage_fo4,
    synthesize,
)
from repro.vlsi.technology import TECH65, VtFlavor

SVT, LVT, HVT = VtFlavor.SVT, VtFlavor.LVT, VtFlavor.HVT

vdds = st.floats(min_value=0.4, max_value=1.0)


class TestTechnology:
    def test_fo4_anchors(self):
        assert TECH65.fo4_delay(1.0, SVT) == pytest.approx(15.76e-12, rel=1e-3)
        assert TECH65.fo4_delay(1.0, LVT) == pytest.approx(9.44e-12, rel=1e-3)

    def test_vt_ordering_at_any_voltage(self):
        for vdd in (0.5, 0.7, 1.0):
            assert (TECH65.fo4_delay(vdd, LVT)
                    < TECH65.fo4_delay(vdd, SVT)
                    < TECH65.fo4_delay(vdd, HVT))

    @given(v1=vdds, v2=vdds)
    def test_delay_monotonically_decreases_with_supply(self, v1, v2):
        lo, hi = sorted((v1, v2))
        if hi - lo < 1e-6:
            return
        for vt in VtFlavor:
            assert TECH65.fo4_delay(lo, vt) >= TECH65.fo4_delay(hi, vt)

    @given(v=vdds)
    def test_leakage_ordering(self, v):
        assert (TECH65.leakage_power(v, HVT)
                < TECH65.leakage_power(v, SVT)
                < TECH65.leakage_power(v, LVT))

    @given(v1=vdds, v2=vdds)
    def test_leakage_increases_with_supply(self, v1, v2):
        lo, hi = sorted((v1, v2))
        assert TECH65.leakage_power(lo, SVT) <= TECH65.leakage_power(hi, SVT)

    def test_subthreshold_hvt_is_very_slow(self):
        """0.4 V is below the high-VT threshold: ~100x slowdown."""
        ratio = TECH65.fo4_delay(0.4, HVT) / TECH65.fo4_delay(1.0, HVT)
        assert ratio > 40

    def test_out_of_range_supply_rejected(self):
        with pytest.raises(ConfigError):
            TECH65.fo4_delay(0.2, SVT)


class TestFigure3Budgets:
    def test_fractions_sum_to_one(self):
        assert sum(c.area_fraction for c in COMPONENTS) == pytest.approx(1.0)
        assert sum(c.power_fraction for c in COMPONENTS) == pytest.approx(1.0)

    def test_paper_component_shares(self):
        shares = {c.name: c for c in COMPONENTS}
        assert shares["instruction_memory"].area_fraction == 0.25
        assert shares["instruction_memory"].power_fraction == 0.41
        assert shares["scheduler"].area_fraction == 0.06
        assert shares["scheduler"].power_fraction == 0.05
        assert shares["queues"].area_fraction == 0.18
        assert shares["queues"].power_fraction == 0.22

    def test_alu_dominates_area_imem_power(self):
        by_area = max(COMPONENTS, key=lambda c: c.area_fraction)
        by_power = max(COMPONENTS, key=lambda c: c.power_fraction)
        assert by_area.name == "alu"
        assert by_power.name == "instruction_memory"

    def test_front_back_split(self):
        split = front_back_split()
        assert split["front_area"] == pytest.approx(0.325, abs=0.01)
        assert split["back_area"] == pytest.approx(0.46, abs=0.01)
        assert split["front_power"] == pytest.approx(0.48, abs=0.01)
        assert split["back_power"] == pytest.approx(0.23, abs=0.01)

    def test_storage_media_tradeoffs(self):
        mixed = INSTRUCTION_STORAGE["mixed_sram"]
        latch = INSTRUCTION_STORAGE["latch"]
        assert mixed[0] == pytest.approx(0.84)      # -16% area vs registers
        assert mixed[1] == pytest.approx(0.76)      # -24% power
        assert mixed[0] / latch[0] == pytest.approx(0.91)   # -9% vs latch
        assert mixed[1] / latch[1] == pytest.approx(0.81)   # -19% vs latch


class TestTiming:
    def test_trigger_stage_fo4(self):
        assert critical_path_fo4(config_by_name("T|D|X1|X2")) == 53.6
        assert critical_path_fo4(config_by_name("T|D|X1|X2 +P")) == pytest.approx(64.3)

    def test_four_stage_closes_at_1184mhz(self):
        f = fmax(config_by_name("T|D|X1|X2"), 1.0, SVT)
        assert f == pytest.approx(1184e6, rel=0.001)

    def test_tdx1x2_lvt_closes_at_1157mhz(self):
        f = fmax(config_by_name("TDX1|X2"), 1.0, LVT)
        assert f == pytest.approx(1157e6, rel=0.001)

    def test_stage_balance_in_50_60_fo4_range(self):
        """Balanced pipelines land where the paper observed them."""
        for name in ("T|D|X", "T|D|X1|X2", "T|DX1|X2"):
            assert 50 <= critical_path_fo4(config_by_name(name)) <= 60

    def test_deeper_pipelines_are_never_slower(self):
        assert (critical_path_fo4(config_by_name("TDX"))
                >= critical_path_fo4(config_by_name("TD|X"))
                >= critical_path_fo4(config_by_name("T|D|X")))

    def test_stage_budget_sum_is_partition_invariant(self):
        totals = {
            name: sum(stage_fo4(config_by_name(name)))
            for name in ("TDX", "TD|X", "T|DX", "T|D|X")
        }
        assert len(set(totals.values())) == 1


class TestSection54Anchors:
    @pytest.mark.parametrize("name,area,power_mw", [
        ("T|D|X1|X2", 63_991.4, 2.852),
        ("T|D|X1|X2 +P", 64_278.4, 3.048),
        ("T|D|X1|X2 +Q", 64_131.8, 2.852),
        ("T|D|X1|X2 +P+Q", 64_895.4, 3.077),
        ("T|D|X1|X2 +pad", 72_439.4, 3.194),
    ])
    def test_feature_overheads(self, name, area, power_mw):
        r = synthesize(config_by_name(name), 1.0, SVT, 500e6)
        assert r.area_um2 == pytest.approx(area, rel=0.001)
        assert r.power_w * 1e3 == pytest.approx(power_mw, rel=0.005)

    def test_single_cycle_anchor(self):
        r = synthesize(config_by_name("TDX"), 1.0, SVT, 500e6)
        assert r.area_um2 == pytest.approx(64_435, rel=0.002)
        assert r.power_w * 1e3 == pytest.approx(1.95, rel=0.005)

    def test_power_grows_linearly_per_pipeline_register(self):
        """+0.301 mW per pipeline register, iso-frequency iso-VDD."""
        powers = {
            depth: synthesize(config, 1.0, SVT, 500e6).power_w * 1e3
            for config, depth in (
                (config_by_name("TDX"), 1),
                (config_by_name("TD|X"), 2),
                (config_by_name("T|D|X"), 3),
                (config_by_name("T|D|X1|X2"), 4),
            )
        }
        for depth in (2, 3, 4):
            increment = powers[depth] - powers[depth - 1]
            assert increment == pytest.approx(0.301, abs=0.002)

    def test_padding_is_much_costlier_than_accounting(self):
        """The Section 5.3 argument: +Q's adders vs a 13% area reject buffer."""
        base = synthesize(config_by_name("T|D|X1|X2"), 1.0, SVT, 500e6)
        accounting = synthesize(config_by_name("T|D|X1|X2 +Q"), 1.0, SVT, 500e6)
        padded = synthesize(config_by_name("T|D|X1|X2 +pad"), 1.0, SVT, 500e6)
        overhead_q = accounting.area_um2 / base.area_um2 - 1
        overhead_pad = padded.area_um2 / base.area_um2 - 1
        assert overhead_q < 0.01
        assert overhead_pad > 0.10


class TestSynthesisBehavior:
    def test_infeasible_target_rejected(self):
        with pytest.raises(SynthesisError, match="cannot close"):
            synthesize(config_by_name("TDX"), 1.0, SVT, 1.5e9)

    def test_speculation_costs_timing_closure(self):
        base = fmax(config_by_name("T|D|X1|X2"), 1.0, SVT)
        spec = fmax(config_by_name("T|D|X1|X2 +P"), 1.0, SVT)
        assert spec < base

    def test_queue_status_is_timing_neutral(self):
        base = fmax(config_by_name("T|D|X1|X2"), 1.0, SVT)
        accounting = fmax(config_by_name("T|D|X1|X2 +Q"), 1.0, SVT)
        assert accounting == base

    def test_relaxed_targets_use_smaller_cells(self):
        assert sizing_factor(50e6) < sizing_factor(400e6) < sizing_factor(500e6)
        assert sizing_factor(500e6) == pytest.approx(1.0)
        assert sizing_factor(1.2e9) > 1.0

    def test_pipeline_registers_add_capacitance(self):
        assert (effective_capacitance(config_by_name("T|D|X1|X2"))
                > effective_capacitance(config_by_name("TDX")))

    @pytest.mark.parametrize("config", all_configs()[:8], ids=lambda c: c.name)
    def test_power_increases_with_frequency(self, config):
        ceiling = fmax(config, 1.0, SVT)
        low = synthesize(config, 1.0, SVT, ceiling * 0.3)
        high = synthesize(config, 1.0, SVT, ceiling * 0.9)
        assert high.power_w > low.power_w

    def test_power_density_computed(self):
        r = synthesize(config_by_name("TDX"), 1.0, SVT, 500e6)
        assert r.power_density_mw_per_mm2 == pytest.approx(
            (r.power_w * 1e3) / (r.area_um2 * 1e-6), rel=1e-9)
