"""Static CPI bounds: cycle means, graph weights, bracket validation."""

import json
from pathlib import Path

import pytest

from repro.analyze.graph import (
    Edge,
    FIRING,
    FiringGraph,
    PREDICATE,
    SPECULATION,
    _writer_gap_ok,
    build_firing_graph,
    cycle_mean,
)
from repro.analyze.abstract import explore
from repro.analyze.perf import (
    PerfAnalyzer,
    bracket_check,
    config_lower_bounds,
    program_bounds,
    workload_bounds,
)
from repro.asm import assemble
from repro.errors import ReproError
from repro.fabric.system import System
from repro.arch import FunctionalPE
from repro.params import DEFAULT_PARAMS as P
from repro.pipeline.config import all_configs, config_by_name


# ----------------------------------------------------------------------
# Cycle-mean analysis (Karp).
# ----------------------------------------------------------------------

class TestCycleMean:
    def test_two_node_cycle(self):
        edges = [Edge(0, 1, 1.0), Edge(1, 0, 4.0)]
        assert cycle_mean([0, 1], edges) == pytest.approx(2.5)
        assert cycle_mean([0, 1], edges, maximize=True) == pytest.approx(2.5)

    def test_min_and_max_pick_different_cycles(self):
        edges = [
            Edge(0, 0, 1.0),              # cheap self-loop
            Edge(0, 1, 2.0), Edge(1, 0, 6.0),   # heavy two-cycle, mean 4
        ]
        assert cycle_mean([0, 1], edges) == pytest.approx(1.0)
        assert cycle_mean([0, 1], edges, maximize=True) == pytest.approx(4.0)

    def test_acyclic_is_none(self):
        edges = [Edge(0, 1, 3.0), Edge(1, 2, 5.0)]
        assert cycle_mean([0, 1, 2], edges) is None
        assert cycle_mean([0, 1, 2], edges, maximize=True) is None

    def test_empty(self):
        assert cycle_mean([], []) is None
        assert cycle_mean([0], []) is None

    def test_exact_on_rational_tie(self):
        # Two cycles with the same mean must not wobble on float noise.
        edges = [Edge(0, 1, 1.0), Edge(1, 0, 2.0),
                 Edge(0, 2, 2.0), Edge(2, 0, 1.0)]
        assert cycle_mean([0, 1, 2], edges) == pytest.approx(1.5)

    def test_graph_helpers(self):
        graph = FiringGraph(nodes=[0, 1],
                            edges=[Edge(0, 1, 1.0, FIRING),
                                   Edge(1, 0, 4.0, PREDICATE)])
        assert graph.min_cycle_mean() == pytest.approx(2.5)
        relaxed = graph.relaxed(PREDICATE)
        assert relaxed.min_cycle_mean() == pytest.approx(1.0)
        # The original graph is untouched.
        assert graph.min_cycle_mean() == pytest.approx(2.5)


# ----------------------------------------------------------------------
# The speculation-soundness gate.
# ----------------------------------------------------------------------

class TestWriterGap:
    def test_tight_writer_loop_fails(self):
        # writer(0) -> 1 -> writer(0): refire distance 2 <= window 3.
        pairs = [(0, 1), (1, 0)]
        assert not _writer_gap_ok(pairs, {0}, window=3)

    def test_long_loop_passes(self):
        pairs = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]
        assert _writer_gap_ok(pairs, {0}, window=3)

    def test_window_one_is_always_sound(self):
        assert _writer_gap_ok([(0, 0)], {0}, window=1)

    def test_two_writers_close_fails(self):
        pairs = [(0, 1), (1, 2), (2, 3), (3, 0)]
        assert not _writer_gap_ok(pairs, {0, 2}, window=3)


# ----------------------------------------------------------------------
# Firing-graph weights per mechanism.
# ----------------------------------------------------------------------

#: A predicate writer whose watcher fires right after it: the non-+P
#: lower graph must carry a depth-weight PREDICATE edge.
WATCHER_LOOP = """
.start %p = 00000000
when %p == X0000000:
    ult %p7, %r0, %r1; set %p = Z0000001;
when %p == 0XXXXXX1:
    add %r0, %r0, $1; set %p = Z0000000;
"""

#: A five-slot loop: +P speculation weight is sound (no writer refires
#: inside any result window) and the dequeue sits right in the window.
SPEC_LOOP = """
.start %p = 00000000
when %p == X0000000 with %i0.0:
    ult %p7, %r0, %r1; set %p = Z0000001;
when %p == X0000001 with %i0.0:
    mov %r2, %i0; deq %i0; set %p = Z0000010;
when %p == X0000010:
    add %r0, %r0, $1; set %p = Z0000011;
when %p == X0000011:
    add %r1, %r1, $1; set %p = Z0000100;
when %p == X0000100:
    add %r3, %r3, $1; set %p = Z0000000;
"""


def _graph(source, config, bound):
    program = assemble(source, P)
    reach = explore(program.instructions, program.initial_predicates, P)
    return program.instructions, build_firing_graph(
        program.instructions, reach, config, bound=bound)


class TestGraphWeights:
    def test_nonspeculative_watcher_carries_depth(self):
        config = config_by_name("T|D|X1|X2")         # depth 4, no +P
        _, graph = _graph(WATCHER_LOOP, config, "lower")
        kinds = {(e.src, e.dst): (e.weight, e.kind) for e in graph.edges}
        assert kinds[(0, 1)] == (float(config.depth), PREDICATE)
        assert graph.min_cycle_mean() == pytest.approx((config.depth + 1) / 2)

    def test_shallow_pipeline_has_no_penalty(self):
        _, graph = _graph(WATCHER_LOOP, config_by_name("TDX"), "lower")
        assert graph.min_cycle_mean() == pytest.approx(1.0)

    def test_speculation_weight_when_writers_are_far_apart(self):
        config = config_by_name("T|D|X1|X2 +P")
        _, graph = _graph(SPEC_LOOP, config, "lower")
        spec = [e for e in graph.edges if e.kind == SPECULATION]
        assert spec and spec[0].src == 0 and spec[0].dst == 1
        assert spec[0].weight == pytest.approx(
            max(1, config.result_stage(False)))
        assert graph.min_cycle_mean() > 1.0

    def test_speculation_weight_withheld_for_adjacent_writers(self):
        # Back-to-back predicate writers: the second issues while the
        # first's speculation may still be unresolved, so it does not
        # predict and its dependent dequeue can slip in early — the
        # lower bound must not charge the serialization.
        source = """
        .start %p = 00000000
        when %p == X0000000 with %i0.0:
            ult %p7, %r0, %r1; set %p = Z0000001;
        when %p == X0000001 with %i0.0:
            ult %p6, %r2, %i0; deq %i0; set %p = ZZ000000;
        """
        config = config_by_name("T|D|X1|X2 +P")
        _, graph = _graph(source, config, "lower")
        assert [e for e in graph.edges if e.kind == SPECULATION] == []
        assert graph.min_cycle_mean() == pytest.approx(1.0)

    def test_speculation_weight_kept_at_exact_window_distance(self):
        # A writer that refires exactly `window` firings later is still
        # sound: the previous speculation resolves (phase 2) before the
        # next write issues (phase 3) in the same cycle.
        source = """
        .start %p = 00000000
        when %p == X0000000 with %i0.0:
            ult %p7, %r0, %r1; set %p = Z0000001;
        when %p == X0000001 with %i0.0:
            mov %r2, %i0; deq %i0; set %p = Z0000000;
        """
        config = config_by_name("T|D|X1|X2 +P")
        _, graph = _graph(source, config, "lower")
        spec = [e for e in graph.edges if e.kind == SPECULATION]
        assert spec and spec[0].weight == pytest.approx(
            max(1, config.result_stage(False)))

    def test_upper_weights_dominate_lower(self):
        for name in ("TDX", "T|D|X +P", "T|D|X1|X2 +P+Q"):
            config = config_by_name(name)
            _, lower = _graph(SPEC_LOOP, config, "lower")
            _, upper = _graph(SPEC_LOOP, config, "upper")
            lo = {(e.src, e.dst): e.weight for e in lower.edges}
            up = {(e.src, e.dst): e.weight for e in upper.edges}
            assert set(lo) == set(up)
            for pair, weight in lo.items():
                assert up[pair] >= weight

    def test_bound_arg_is_checked(self):
        program = assemble(WATCHER_LOOP, P)
        reach = explore(program.instructions, program.initial_predicates, P)
        with pytest.raises(ValueError):
            build_firing_graph(program.instructions, reach,
                               config_by_name("TDX"), bound="middle")


# ----------------------------------------------------------------------
# Program-level bounds cross-validated against the pipelined simulator.
# ----------------------------------------------------------------------

class TestProgramBounds:
    CONFIG_NAMES = ("TDX", "TD|X +Q", "T|D|X +P", "T|D|X1|X2",
                    "T|D|X1|X2 +P+pad")

    def test_lower_bound_holds_on_corpus(self):
        """The proved floor must never exceed measured CPI — for every
        corpus case, under every sampled config, in the cooperative
        environment the bound's premises assume."""
        from repro.verify.generator import case_source
        from repro.verify.harness import measured_case_cpi

        corpus = sorted((Path(__file__).parent / "corpus").glob("*.json"))
        assert corpus, "fuzz corpus is missing"
        checked = 0
        for path in corpus:
            case = json.loads(path.read_text())
            try:
                program = assemble(case_source(case), P, name=case["name"])
            except ReproError:
                continue      # shrunk cases may not assemble
            for name in self.CONFIG_NAMES:
                config = config_by_name(name)
                measured = measured_case_cpi(case, config, P)
                if measured is None:
                    continue
                bounds = program_bounds(program, config, P)
                assert bounds.lower <= measured + 1e-9, (
                    f"{case['name']} under {name}: static floor "
                    f"{bounds.lower} > measured {measured}")
                checked += 1
        assert checked >= 10

    def test_bounds_are_ordered(self):
        program = assemble(SPEC_LOOP, P)
        for config in all_configs(include_padded=True):
            bounds = program_bounds(program, config, P)
            assert 1.0 <= bounds.lower <= bounds.upper
            assert bounds.width >= 0
            assert bounds.brackets(bounds.lower)
            assert bounds.brackets(bounds.upper)
            assert not bounds.brackets(bounds.upper + 1.0)


# ----------------------------------------------------------------------
# System-level bounds on the Table 3 workloads.
# ----------------------------------------------------------------------

class TestWorkloadBounds:
    SAMPLE = ("TDX", "TD|X +P+Q", "T|D|X", "T|D|X1|X2 +P")

    def test_brackets_simulator(self):
        configs = [config_by_name(n) for n in self.SAMPLE]
        rows, violations = bracket_check(
            workloads=["gcd", "stream"], configs=configs, scale=8)
        assert violations == [], [f.message for f in violations]
        assert len(rows) == 2 * len(configs)
        for row in rows:
            assert row["bracketed"]
            assert row["lower"] <= row["measured"] <= row["upper"]

    def test_deeper_pipelines_raise_the_gcd_floor(self):
        shallow = workload_bounds("gcd", config_by_name("TDX"), scale=8)
        deep = workload_bounds("gcd", config_by_name("T|D|X1|X2"), scale=8)
        assert deep.lower > shallow.lower

    def test_config_lower_bounds_cover_and_floor(self):
        configs = [config_by_name(n) for n in self.SAMPLE]
        bounds = config_lower_bounds(configs, P, workloads=["gcd", "stream"],
                                     scale=8)
        assert set(bounds) == {c.name for c in configs}
        assert all(value >= 1.0 for value in bounds.values())

    def test_oracle_mean_under_measured_mean(self, cpi_table):
        """The pruning oracle's contract: workload-mean static floor
        <= workload-mean measured CPI (the quantity CpiTable records)."""
        configs = [config_by_name("TDX"), config_by_name("T|D|X1|X2")]
        bounds = config_lower_bounds(configs, P, scale=cpi_table.scale)
        for config in configs:
            assert bounds[config.name] <= cpi_table.cpi(config) + 1e-9


# ----------------------------------------------------------------------
# The three perf finding rules.
# ----------------------------------------------------------------------

def _solo_system(source, name="solo"):
    system = System()
    pe = FunctionalPE(P, name=name)
    system.add_pe(pe)
    assemble(source, P).configure(pe)
    return system


class TestPerfFindings:
    def test_partition_bound_on_gcd(self):
        from repro.analyze.perf import workload_analyzer

        analyzer, worker = workload_analyzer("gcd", scale=8)
        findings = analyzer.findings(worker)
        by_rule = {f.rule: f for f in findings}
        partition = by_rule["partition-bound"]
        assert partition.severity.label == "note"
        assert partition.slot is not None and partition.line is not None
        assert "CPI floor" in partition.message
        assert by_rule["throughput-capped-by-queue-depth"].pe.startswith("gcd")

    def test_speculation_serialized_on_long_loop(self):
        analyzer = PerfAnalyzer(_solo_system(SPEC_LOOP))
        findings = analyzer.findings("solo")
        rules = {f.rule for f in findings}
        assert "speculation-serialized" in rules
        finding = next(f for f in findings
                       if f.rule == "speculation-serialized")
        assert finding.slot == 0
        assert "+P" in finding.message

    def test_clean_program_has_no_perf_findings(self):
        analyzer = PerfAnalyzer(_solo_system(
            "when %p == XXXXXXXX:\n    add %r0, %r0, $1;"))
        assert analyzer.findings("solo") == []

    def test_findings_flow_through_sarif(self):
        from repro.analyze.findings import render_sarif

        analyzer = PerfAnalyzer(_solo_system(SPEC_LOOP))
        log = json.loads(render_sarif(analyzer.findings("solo")))
        results = log["runs"][0]["results"]
        assert any(r["ruleId"] == "speculation-serialized" for r in results)
        for result in results:
            assert result["level"] == "note"
            assert result["message"]["text"]
