"""Memory, memory ports, channel wiring, and the system run loop."""

import pytest

from repro.arch import FunctionalPE
from repro.arch.queue import TaggedQueue
from repro.asm import assemble
from repro.errors import ConfigError, SimMemoryError, SimulationError
from repro.fabric import Memory, MemoryReadPort, MemoryWritePort, System


class TestMemory:
    def test_load_store(self):
        mem = Memory(64)
        mem.store(5, 42)
        assert mem.load(5) == 42
        assert mem.loads == 1 and mem.stores == 1

    def test_bounds(self):
        mem = Memory(8)
        with pytest.raises(SimMemoryError):
            mem.load(8)
        with pytest.raises(SimMemoryError):
            mem.store(-1, 0)

    def test_preload_and_dump(self):
        mem = Memory(16)
        mem.preload([1, 2, 3], base=4)
        assert mem.dump(4, 3) == [1, 2, 3]

    def test_store_truncates_to_word(self):
        mem = Memory(4)
        mem.store(0, 1 << 33)
        assert mem.load(0) == 0


class TestReadPort:
    def _wire(self, latency=4):
        mem = Memory(16)
        mem.preload(list(range(16)))
        port = MemoryReadPort(mem, latency=latency)
        port.request = TaggedQueue(4, "req")
        port.response = TaggedQueue(4, "rsp")
        return mem, port

    def test_latency_is_observed(self):
        __, port = self._wire(latency=4)
        port.request.enqueue(7, tag=0)
        port.request.commit()
        for cycle in range(1, 6):
            port.step()
            port.response.commit()
            if cycle < 5:
                assert port.response.is_empty, f"response too early at {cycle}"
        assert port.response.dequeue().value == 7

    def test_tag_propagates_to_response(self):
        __, port = self._wire()
        port.request.enqueue(3, tag=1)
        port.request.commit()
        for _ in range(8):
            port.step()
            port.response.commit()
        assert port.response.dequeue().tag == 1

    def test_pipelined_requests(self):
        """Initiation interval one: N loads finish in latency + N cycles."""
        __, port = self._wire(latency=4)
        values = []
        for cycle in range(12):
            if cycle < 3 and not port.request.is_full:
                port.request.enqueue(cycle, tag=0)
            port.request.commit()
            port.step()
            port.response.commit()
            while not port.response.is_empty:
                values.append(port.response.dequeue().value)
        assert values == [0, 1, 2]

    def test_rejects_zero_latency(self):
        with pytest.raises(SimMemoryError):
            MemoryReadPort(Memory(4), latency=0)

    def test_idle_flag(self):
        __, port = self._wire()
        assert port.idle
        port.request.enqueue(0, 0)
        port.request.commit()
        assert not port.idle


class TestWritePort:
    def test_pairs_address_and_data(self):
        mem = Memory(16)
        port = MemoryWritePort(mem)
        port.address = TaggedQueue(4, "addr")
        port.data = TaggedQueue(4, "data")
        port.address.enqueue(3, 0)
        port.address.commit()
        port.step()                      # data missing: nothing happens
        assert mem.stores == 0
        port.data.enqueue(99, 0)
        port.data.commit()
        port.step()
        assert mem.load(3) == 99
        assert port.stores_accepted == 1


def _producer_consumer_system():
    system = System(memory_words=64)
    producer = FunctionalPE(name="producer")
    consumer = FunctionalPE(name="consumer")
    assemble("""
    when %p == XXXXXXX0:
        mov %o0.1, $42; set %p = ZZZZZZZ1;
    when %p == XXXXXXX1:
        halt;
    """).configure(producer)
    assemble("""
    when %p == XXXXXXX0 with %i0.1:
        mov %r0, %i0; deq %i0; set %p = ZZZZZZZ1;
    when %p == XXXXXXX1:
        halt;
    """).configure(consumer)
    system.add_pe(producer)
    system.add_pe(consumer)
    system.connect(producer, 0, consumer, 0)
    return system, producer, consumer


class TestSystem:
    def test_producer_consumer(self):
        system, __, consumer = _producer_consumer_system()
        system.run()
        assert consumer.regs.read(0) == 42

    def test_channel_is_shared_object(self):
        system, producer, consumer = _producer_consumer_system()
        assert producer.outputs[0] is consumer.inputs[0]

    def test_duplicate_pe_name_rejected(self):
        system = System()
        system.add_pe(FunctionalPE(name="x"))
        with pytest.raises(ConfigError, match="duplicate"):
            system.add_pe(FunctionalPE(name="x"))

    def test_pe_lookup(self):
        system, producer, __ = _producer_consumer_system()
        assert system.pe("producer") is producer
        with pytest.raises(ConfigError):
            system.pe("nobody")

    def test_empty_system_rejected(self):
        with pytest.raises(ConfigError, match="no PEs"):
            System().run()

    def test_deadlock_detected_with_dump(self):
        system = System()
        pe = FunctionalPE(name="stuck")
        # Waits forever for input that never comes.
        assemble("""
        when %p == XXXXXXXX with %i0.0:
            halt;
        """).configure(pe)
        system.add_pe(pe)
        with pytest.raises(SimulationError, match="deadlock"):
            system.run(stall_limit=100)

    def test_final_stores_are_flushed(self):
        """A store issued on the halting instruction's cycle must land."""
        system = System(memory_words=16)
        pe = FunctionalPE(name="w")
        assemble("""
        when %p == XXXXXX00:
            mov %o0.0, $5; set %p = ZZZZZZ01;
        when %p == XXXXXX01:
            mov %o1.0, $77; set %p = ZZZZZZ11;
        when %p == XXXXXX11:
            halt;
        """).configure(pe)
        system.add_pe(pe)
        system.add_write_port(pe, 0, pe, 1)
        system.run()
        assert system.memory.load(5) == 77

    def test_memory_round_trip_through_ports(self):
        system = System(memory_words=32, memory_latency=4)
        pe = FunctionalPE(name="copier")
        # Load memory[2], store the value doubled at memory[3].
        assemble("""
        when %p == XXXXX000:
            mov %o0.0, $2; set %p = ZZZZZ001;
        when %p == XXXXX001 with %i0.0:
            add %r0, %i0, %i0; deq %i0; set %p = ZZZZZ011;
        when %p == XXXXX011:
            mov %o1.0, $3; set %p = ZZZZZ010;
        when %p == XXXXX010:
            mov %o2.0, %r0; set %p = ZZZZZ110;
        when %p == XXXXX110:
            halt;
        """).configure(pe)
        system.add_pe(pe)
        system.add_read_port(pe, request_out=0, response_in=0)
        system.add_write_port(pe, 1, pe, 2)
        system.memory.preload([0, 0, 21])
        system.run()
        assert system.memory.load(3) == 42

    def test_cycle_count_includes_memory_latency(self):
        system = System(memory_words=32, memory_latency=4)
        fast = System(memory_words=32, memory_latency=1)
        for s in (system, fast):
            pe = FunctionalPE(name="loader")
            assemble("""
            when %p == XXXXXX00:
                mov %o0.0, $0; set %p = ZZZZZZ01;
            when %p == XXXXXX01 with %i0.0:
                mov %r0, %i0; deq %i0; set %p = ZZZZZZ11;
            when %p == XXXXXX11:
                halt;
            """).configure(pe)
            s.add_pe(pe)
            s.add_read_port(pe, request_out=0, response_in=0)
            s.run()
        assert system.cycles > fast.cycles
