"""Instruction structure and validation rules."""

import pytest

from repro.errors import EncodingError
from repro.isa.instruction import (
    DatapathOp,
    Destination,
    Instruction,
    Operand,
    PredUpdate,
    TagCheck,
    Trigger,
    make_nop,
)
from repro.isa.opcodes import op_by_name
from repro.params import DEFAULT_PARAMS as P


def make(op="add", srcs=(Operand.reg(0), Operand.reg(1)),
         dst=Destination.reg(2), trigger=Trigger(), deq=(),
         pred_update=PredUpdate(), imm=0):
    return Instruction(
        trigger=trigger,
        dp=DatapathOp(op=op_by_name(op), srcs=tuple(srcs), dst=dst,
                      deq=tuple(deq), pred_update=pred_update, imm=imm),
    )


class TestTrigger:
    def test_predicates_match_on_and_off(self):
        t = Trigger(pred_on=0b0001, pred_off=0b0010)
        assert t.predicates_match(0b0001)
        assert t.predicates_match(0b1101)
        assert not t.predicates_match(0b0011)   # p1 must be off
        assert not t.predicates_match(0b0000)   # p0 must be on

    def test_watched_predicates(self):
        t = Trigger(pred_on=0b0100, pred_off=0b0010)
        assert t.watched_predicates == 0b0110

    def test_tag_check_matching(self):
        assert TagCheck(queue=0, tag=2).matches(2)
        assert not TagCheck(queue=0, tag=2).matches(1)
        assert TagCheck(queue=0, tag=2, negate=True).matches(1)
        assert not TagCheck(queue=0, tag=2, negate=True).matches(2)


class TestPredUpdate:
    def test_apply_sets_and_clears(self):
        u = PredUpdate(set_mask=0b0001, clear_mask=0b0100)
        assert u.apply(0b0110) == 0b0011

    def test_touched(self):
        assert PredUpdate(set_mask=0b01, clear_mask=0b10).touched == 0b11


class TestValidation:
    def test_valid_instruction_passes(self):
        make().validate(P)

    def test_rejects_register_out_of_range(self):
        with pytest.raises(EncodingError, match="out of range"):
            make(srcs=(Operand.reg(8), Operand.reg(0))).validate(P)

    def test_rejects_destination_for_no_result_op(self):
        with pytest.raises(EncodingError, match="produces no result"):
            make(op="halt", srcs=(), dst=Destination.reg(0)).validate(P)

    def test_requires_destination_for_result_op(self):
        with pytest.raises(EncodingError, match="needs a destination"):
            make(op="add", dst=Destination.none()).validate(P)

    def test_rejects_too_few_sources(self):
        with pytest.raises(EncodingError, match="needs 2 sources"):
            make(srcs=(Operand.reg(0),)).validate(P)

    def test_rejects_too_many_tag_checks(self):
        trigger = Trigger(tag_checks=(TagCheck(0, 0), TagCheck(1, 0), TagCheck(2, 0)))
        with pytest.raises(EncodingError, match="MaxCheck"):
            make(trigger=trigger).validate(P)

    def test_rejects_duplicate_tag_check_queue(self):
        trigger = Trigger(tag_checks=(TagCheck(1, 0), TagCheck(1, 1)))
        with pytest.raises(EncodingError, match="checked twice"):
            make(trigger=trigger).validate(P)

    def test_rejects_conflicting_predicate_requirements(self):
        with pytest.raises(EncodingError, match="both on and off"):
            make(trigger=Trigger(pred_on=0b1, pred_off=0b1)).validate(P)

    def test_rejects_conflicting_pred_update(self):
        with pytest.raises(EncodingError, match="force-set and force-cleared"):
            make(pred_update=PredUpdate(set_mask=0b1, clear_mask=0b1)).validate(P)

    def test_rejects_too_many_dequeues(self):
        with pytest.raises(EncodingError, match="MaxDeq"):
            make(deq=(0, 1, 2)).validate(P)

    def test_rejects_duplicate_dequeues(self):
        with pytest.raises(EncodingError, match="duplicate dequeue"):
            make(deq=(1, 1)).validate(P)

    def test_rejects_pred_update_conflicting_with_pred_destination(self):
        with pytest.raises(EncodingError, match="force-updated at issue"):
            make(op="ult", dst=Destination.predicate(3),
                 pred_update=PredUpdate(set_mask=0b1000)).validate(P)

    def test_allows_pred_update_on_other_bits(self):
        make(op="ult", dst=Destination.predicate(3),
             pred_update=PredUpdate(set_mask=0b0001)).validate(P)

    def test_rejects_two_immediates(self):
        with pytest.raises(EncodingError, match="one immediate"):
            make(srcs=(Operand.imm(), Operand.imm())).validate(P)

    def test_rejects_oversized_tag(self):
        trigger = Trigger(tag_checks=(TagCheck(0, tag=4),))
        with pytest.raises(EncodingError, match="tag"):
            make(trigger=trigger).validate(P)


class TestDerivedProperties:
    def test_required_input_queues_union(self):
        ins = make(
            op="add",
            srcs=(Operand.input_queue(2), Operand.reg(0)),
            trigger=Trigger(tag_checks=(TagCheck(0, 1),)),
            deq=(3,),
        )
        assert ins.required_input_queues == frozenset({0, 2, 3})

    def test_output_queue(self):
        ins = make(dst=Destination.output_queue(1, tag=2))
        assert ins.output_queue == 1
        assert make().output_queue is None

    def test_side_effects_are_dequeues_only(self):
        assert make(deq=(0,)).dp.has_side_effects_before_retire
        assert not make(dst=Destination.output_queue(0, 0)).dp.has_side_effects_before_retire

    def test_writes_predicate(self):
        assert make(op="eq", dst=Destination.predicate(0)).dp.writes_predicate
        assert not make().dp.writes_predicate

    def test_make_nop_is_invalid_slot(self):
        empty = make_nop()
        assert not empty.valid
