"""Tests for the bounded equivalence checker (``repro.analyze.check``)."""

import copy
import json
import os

import repro.pipeline.queue_status as qs
from repro.analyze.check import (
    CheckBounds,
    check_case,
    check_program,
    checkable_workloads,
    checker_oracle,
    confirm_speculation_window,
)
from repro.analyze.encode import describe_pe_state, node_digest, roundtrips
from repro.analyze.lints import speculation_pairs
from repro.analyze.witness import Witness, replay_witness, schedule_step
from repro.analyze.crossval import crossval_case, stream_tag_sets
from repro.arch import FunctionalPE
from repro.asm.assembler import assemble
from repro.params import DEFAULT_PARAMS
from repro.pipeline import PipelinedPE, all_configs
from repro.verify.corpus import load_case, load_corpus
from repro.verify.generator import case_source, case_streams, generate_case
from repro.verify.shrinker import shrink_case

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

#: Small bounds shared by most tests: depth-1 queues keep every space
#: under a few thousand states.
BOUNDS = CheckBounds(queue_capacity=1, max_states=20_000)
BOUNDS2 = CheckBounds(queue_capacity=2, max_states=30_000)

ALL_CONFIGS = all_configs(include_padded=True)


def _corpus_case(name):
    for _, case in load_corpus(CORPUS_DIR):
        if case["name"] == name:
            return case
    raise AssertionError(f"corpus case {name!r} missing")


def _inject_effective_tag_bug(monkeypatch):
    """Revert the Section 5.3 fix: +Q tag inspection reads the physical
    position, ignoring in-flight dequeues and the visibility window."""
    def bugged(self, queue, position=0):
        q = self.inputs[queue]
        if position >= q.occupancy:
            return None
        return q.peek(position).tag
    monkeypatch.setattr(qs.EffectiveQueueView, "input_tag", bugged)


def _inject_conservative_suppression_bug(monkeypatch):
    """Conservative view loses its scheduled-dequeue suppression."""
    def bugged_tag(self, queue, position=0):
        q = self.inputs[queue]
        if position >= q.occupancy:
            return None
        return q.peek(position).tag
    monkeypatch.setattr(qs.ConservativeQueueView, "input_tag", bugged_tag)
    monkeypatch.setattr(qs.ConservativeQueueView, "input_count",
                        lambda self, queue: self.inputs[queue].occupancy)


class TestCanonicalState:
    """The snapshot/restore seam the whole checker stands on."""

    def test_functional_roundtrip_mid_run(self):
        case = _corpus_case("neck-tag-visibility")
        program = assemble(case_source(case, DEFAULT_PARAMS),
                           DEFAULT_PARAMS, name=case["name"])
        pe = FunctionalPE(DEFAULT_PARAMS, name="rt")
        program.configure(pe)
        for q, tokens in case_streams(case).items():
            for value, tag in tokens[:1]:
                pe.inputs[q].enqueue(value, tag)
        pe.commit_queues()
        pe.step()
        assert roundtrips(pe)

    def test_pipelined_roundtrip_every_config(self):
        case = _corpus_case("neck-tag-visibility")
        program = assemble(case_source(case, DEFAULT_PARAMS),
                           DEFAULT_PARAMS, name=case["name"])
        streams = case_streams(case)
        for config in ALL_CONFIGS:
            pe = PipelinedPE(config, DEFAULT_PARAMS, name="rt")
            program.configure(pe)
            for q, tokens in streams.items():
                for value, tag in tokens:
                    pe.inputs[q].enqueue(value, tag)
            pe.commit_queues()
            for _ in range(3):      # leave work genuinely in flight
                pe.step()
                pe.commit_queues()
            assert roundtrips(pe), config.name

    def test_restore_then_replay_is_deterministic(self):
        """Continuing from a restored snapshot matches the original
        run cycle for cycle — restore must be exact, not just
        fingerprint-equal."""
        case = _corpus_case("fuzz-125-min")
        program = assemble(case_source(case, DEFAULT_PARAMS),
                           DEFAULT_PARAMS, name=case["name"])
        streams = case_streams(case)
        config = next(c for c in ALL_CONFIGS if c.name == "T|D|X +P+Q")
        pe = PipelinedPE(config, DEFAULT_PARAMS, name="a")
        program.configure(pe)
        for q, tokens in streams.items():
            for value, tag in tokens:
                pe.inputs[q].enqueue(value, tag)
        pe.commit_queues()
        pe.step()
        pe.commit_queues()
        snap = pe.snapshot_arch_state()
        trace_a = []
        for _ in range(6):
            pe.step()
            pe.commit_queues()
            trace_a.append(pe.snapshot_arch_state())
        pe.restore_arch_state(snap)
        trace_b = []
        for _ in range(6):
            pe.step()
            pe.commit_queues()
            trace_b.append(pe.snapshot_arch_state())
        assert trace_a == trace_b

    def test_describe_and_digest(self):
        pe = FunctionalPE(DEFAULT_PARAMS, name="d")
        state = pe.snapshot_arch_state()
        view = describe_pe_state(state)
        assert view["halted"] is False and view["regs"] == [0] * 8
        digest = node_digest((state, (0,) * 4, ((),) * 4))
        assert len(digest) == 12 and digest == node_digest(
            (state, (0,) * 4, ((),) * 4))


class TestProofs:
    def test_known_equivalent_microprogram_proves(self):
        """A corpus case (already fuzz-clean) must prove outright on the
        full 48-configuration matrix."""
        report = check_case(_corpus_case("neck-tag-visibility"),
                            DEFAULT_PARAMS, bounds=BOUNDS2)
        assert report.verdict == "proved"
        assert len(report.configs) == 48
        assert all(c.verdict == "proved" for c in report.configs)
        assert report.states_total > 48     # actually explored something

    def test_workloads_prove(self):
        for name, program, streams, params in checkable_workloads():
            report = check_program(program, streams, params,
                                   bounds=BOUNDS, name=name)
            assert report.verdict == "proved", (name, report.detail)

    def test_depth_knob_changes_the_world(self):
        """Raising the queue-capacity bound grows the explored space —
        the knob is real, not decorative."""
        case = _corpus_case("neck-tag-visibility")
        shallow = check_case(case, DEFAULT_PARAMS, bounds=BOUNDS)
        deep = check_case(case, DEFAULT_PARAMS, bounds=BOUNDS2)
        assert shallow.verdict == deep.verdict == "proved"
        assert deep.states_total > shallow.states_total

    def test_state_budget_yields_inconclusive_not_false_proof(self):
        report = check_case(_corpus_case("neck-tag-visibility"),
                            DEFAULT_PARAMS,
                            bounds=CheckBounds(queue_capacity=2,
                                               max_states=5))
        assert report.verdict == "inconclusive"

    def test_stream_bound_refuses_not_checkable(self):
        case = copy.deepcopy(_corpus_case("neck-tag-visibility"))
        case["streams"]["1"] = [[1, 0]] * 40
        report = check_case(case, DEFAULT_PARAMS, bounds=BOUNDS)
        assert report.verdict == "not-checkable"

    def test_deterministic_across_runs(self):
        case = _corpus_case("rotate-edges")
        a = check_case(case, DEFAULT_PARAMS, bounds=BOUNDS)
        b = check_case(case, DEFAULT_PARAMS, bounds=BOUNDS)
        assert a.as_dict() == b.as_dict()


class TestMutationWitnesses:
    """Deliberately broken models must yield replayable witnesses —
    mutation-testing the checker itself."""

    def test_effective_tag_bug_caught_and_replayed(self, monkeypatch):
        _inject_effective_tag_bug(monkeypatch)
        case = _corpus_case("neck-tag-visibility")
        report = check_case(case, DEFAULT_PARAMS, bounds=BOUNDS2)
        assert report.verdict == "diverged"
        assert all("+Q" in c.config for c in report.divergences)
        for verdict in report.divergences:
            replay = replay_witness(case, verdict.witness)
            assert replay["reproduced"], verdict.config

    def test_conservative_suppression_bug_caught(self, monkeypatch):
        _inject_conservative_suppression_bug(monkeypatch)
        case = _corpus_case("neck-tag-visibility")
        report = check_case(case, DEFAULT_PARAMS, bounds=BOUNDS)
        assert report.verdict == "diverged"
        assert all("+Q" not in c.config for c in report.divergences)
        replay = replay_witness(case, report.divergences[0].witness)
        assert replay["reproduced"]

    def test_checker_beats_fuzzer_on_occupancy(self, monkeypatch):
        """The historical neck-tag bug needed occupancy >= 3: the fuzzer
        found it only at capacity 4, but adversarial schedules build the
        occupancy at capacity 3 too."""
        _inject_effective_tag_bug(monkeypatch)
        report = check_case(_corpus_case("neck-tag-visibility"),
                            DEFAULT_PARAMS,
                            bounds=CheckBounds(queue_capacity=3,
                                               max_states=60_000))
        assert report.verdict == "diverged"

    def test_witness_json_roundtrip(self, monkeypatch):
        _inject_effective_tag_bug(monkeypatch)
        case = _corpus_case("neck-tag-visibility")
        report = check_case(case, DEFAULT_PARAMS, bounds=BOUNDS2)
        witness = report.divergences[0].witness
        back = Witness.from_dict(json.loads(json.dumps(witness.as_dict())))
        assert back == witness
        assert replay_witness(case, back)["reproduced"]


class TestCrossValidation:
    """Bidirectional gate: fuzzer-visible divergences are checker-visible
    and checker witnesses reproduce through the fuzzer harness."""

    def test_agreement_on_clean_corpus(self):
        verdict = crossval_case(_corpus_case("rotate-edges"),
                                DEFAULT_PARAMS, bounds=BOUNDS)
        assert verdict["agreed"], verdict["problems"]
        assert verdict["checker_verdict"] == "proved"
        assert verdict["fuzzer_divergences"] == 0

    def test_agreement_on_injected_bug(self, monkeypatch):
        """With a real model bug injected, both tools must see it — and
        the witnesses must replay."""
        _inject_effective_tag_bug(monkeypatch)
        verdict = crossval_case(_corpus_case("neck-tag-visibility"),
                                DEFAULT_PARAMS, bounds=BOUNDS2)
        assert verdict["agreed"], verdict["problems"]
        assert verdict["checker_verdict"] == "diverged"
        assert verdict["fuzzer_divergences"] > 0

    def test_historical_divergence_seed_rediscovered(self, monkeypatch):
        """Fuzzer-found seed 125 (the tag-visibility detector) must be
        rediscoverable by the checker when the old bug is re-injected."""
        _inject_effective_tag_bug(monkeypatch)
        report = check_case(_corpus_case("fuzz-125-min"), DEFAULT_PARAMS,
                            bounds=CheckBounds(queue_capacity=3,
                                               max_states=80_000))
        assert report.verdict == "diverged"
        assert all("+Q" in c.config for c in report.divergences)


class TestWitnessShrinking:
    def test_shrinker_minimizes_checker_witness(self, monkeypatch):
        """shrink_case with the checker oracle minimizes a witness case
        and is idempotent on the result."""
        _inject_effective_tag_bug(monkeypatch)
        case = _corpus_case("neck-tag-visibility")
        oracle = checker_oracle(DEFAULT_PARAMS, bounds=BOUNDS2)
        assert oracle(case)
        small = shrink_case(copy.deepcopy(case), DEFAULT_PARAMS,
                            oracle=oracle, max_checks=200)
        assert small["name"].endswith("-min")
        assert len(small["entries"]) <= len(case["entries"])
        assert oracle(small)
        again = shrink_case(copy.deepcopy(small), DEFAULT_PARAMS,
                            oracle=oracle, max_checks=200)
        assert again == small
        # The minimal case still yields a replayable witness.
        report = check_case(small, DEFAULT_PARAMS, bounds=BOUNDS2)
        assert report.verdict == "diverged"
        assert replay_witness(small,
                              report.divergences[0].witness)["reproduced"]


class TestSpeculationWindowHardening:
    """The speculation-window lint is checker-backed: every forbidden
    cycle the checker observes must be flagged by the lint."""

    def test_observed_pairs_are_flagged(self):
        for seed in (3, 32, 55):
            case = generate_case(seed, DEFAULT_PARAMS)
            program = assemble(case_source(case, DEFAULT_PARAMS),
                               DEFAULT_PARAMS, name=case["name"])
            verdict = confirm_speculation_window(
                program, case_streams(case), DEFAULT_PARAMS, bounds=BOUNDS)
            assert verdict["verdict"] == "proved"
            assert verdict["observed"], seed  # the seeds actually forbid
            assert verdict["unflagged"] == [], (seed, verdict)

    def test_lint_catches_unwatched_side_effects(self):
        """Fail-on-pre-fix regression: the pre-fix lint only flagged
        dequeues *watching* the written bit, but the pipeline forbids
        every side-effecting issue during any speculation
        (``forbid = bool(self._specs)``).  Seed 3's observed pairs
        (5, 0) and (12, 0) don't watch the written bits at all."""
        case = generate_case(3, DEFAULT_PARAMS)
        program = assemble(case_source(case, DEFAULT_PARAMS),
                           DEFAULT_PARAMS, name=case["name"])
        tags = stream_tag_sets(case_streams(case),
                               DEFAULT_PARAMS.num_input_queues)
        pairs = speculation_pairs(program, DEFAULT_PARAMS, tags)
        assert (5, 0) in pairs and (12, 0) in pairs

    def test_lint_follows_window_drift(self):
        """Fail-on-pre-fix regression: seed 32's pair (3, 6) is only
        reachable after a pure issue moves the predicate state inside
        the window — the closure must follow it."""
        case = generate_case(32, DEFAULT_PARAMS)
        program = assemble(case_source(case, DEFAULT_PARAMS),
                           DEFAULT_PARAMS, name=case["name"])
        tags = stream_tag_sets(case_streams(case),
                               DEFAULT_PARAMS.num_input_queues)
        assert (3, 6) in speculation_pairs(program, DEFAULT_PARAMS, tags)


class TestCheckerCorpusProbes:
    """The two corpus cases added alongside the checker stay pinned to
    the behaviour that motivated them."""

    def test_speculation_forbidden_probe(self):
        """A minimal mispredicted window: slot 1's ``ult`` writes %p1
        (actual 1, predicted 0 by the weak-not-taken counter), and the
        mispredicted path's dequeue at slot 2 must be held — the
        checker observes the forbidden cycle, proves equivalence, and
        the hardened lint flags exactly the observed pair."""
        case = _corpus_case("speculation-forbidden")
        report = check_case(case, DEFAULT_PARAMS, bounds=BOUNDS)
        assert report.verdict == "proved"
        assert (1, 2) in report.forbidden_pairs
        program = assemble(case_source(case, DEFAULT_PARAMS),
                           DEFAULT_PARAMS, name=case["name"])
        verdict = confirm_speculation_window(
            program, case_streams(case), DEFAULT_PARAMS, bounds=BOUNDS)
        assert verdict["confirmed"] == [(1, 2)]
        assert verdict["unflagged"] == [] and verdict["unconfirmed"] == []

    def test_deep_tag_occupancy_probe(self):
        """Tag check at position 1 behind a pending dequeue, with
        enough stream tokens to fill three queue slots — proved at
        capacity 3 where the wrap actually happens."""
        case = _corpus_case("deep-tag-occupancy")
        report = check_case(
            case, DEFAULT_PARAMS,
            bounds=CheckBounds(queue_capacity=3, max_states=60_000))
        assert report.verdict == "proved"
        assert report.states_total > 0


class TestScheduleStep:
    def test_sparse_encoding(self):
        step = schedule_step((0, 2, 0, 0), (1, 0, 0, 0))
        assert step == {"deliver": {1: 2}, "drain": {0: 1}}
