"""Error paths: source attribution, queue errors per status mode, and
PE/cycle attribution on errors crossing the fabric boundary."""

import pytest

from repro.arch import FunctionalPE
from repro.asm import assemble
from repro.errors import (
    AssemblerError,
    ConfigError,
    MemoryError_,
    QueueError,
    SimMemoryError,
    SimulationError,
    attribute_error,
)
from repro.fabric import System
from repro.params import DEFAULT_PARAMS
from repro.pipeline.config import PipelineConfig, QueuePolicy, config_by_name
from repro.pipeline.core import PipelinedPE


class TestAssemblerErrors:
    def test_line_and_column_render_in_message(self):
        err = AssemblerError("bad token", line=3, column=7)
        assert err.line == 3 and err.column == 7
        assert str(err).startswith("line 3:7: ")

    def test_line_only(self):
        err = AssemblerError("bad token", line=3)
        assert err.column is None
        assert str(err).startswith("line 3: ")

    def test_unparseable_operand_reports_line(self):
        with pytest.raises(AssemblerError, match="line") as info:
            assemble("""
            when %p == XXXXXXX0:
                mov %q9, $1;
            """)
        assert info.value.line is not None

    def test_duplicate_set_reports_line(self):
        with pytest.raises(AssemblerError, match="duplicate") as info:
            assemble("""
            when %p == XXXXXXX0:
                mov %r0, $1; set %p = ZZZZZZZ1; set %p = ZZZZZZZ0;
            """)
        assert info.value.line is not None

    def test_empty_program_rejected(self):
        with pytest.raises(AssemblerError, match="no instructions"):
            assemble("")


class TestConfigErrors:
    def test_duplicate_pe_names_rejected_with_name(self):
        system = System()
        system.add_pe(FunctionalPE(name="twin"))
        with pytest.raises(ConfigError, match="duplicate.*twin"):
            system.add_pe(FunctionalPE(name="twin"))

    def test_unknown_partition_rejected(self):
        with pytest.raises(ConfigError, match="unknown"):
            config_by_name("TX|D")

    def test_bad_stage_partition_rejected(self):
        with pytest.raises(ConfigError, match="partition"):
            PipelineConfig(stages=(("T", "X"), ("D",)))

    def test_bad_speculative_depth_rejected(self):
        with pytest.raises(ConfigError, match="speculative_depth"):
            PipelineConfig(stages=(("T", "D", "X"),), speculative_depth=0)


POLICY_CONFIGS = {
    QueuePolicy.CONSERVATIVE: "TD|X",
    QueuePolicy.EFFECTIVE: "TD|X +Q",
    QueuePolicy.PADDED: "TD|X +pad",
}


class TestQueueErrorsPerStatusMode:
    """The raw queue guards hold under every scheduler accounting policy,
    and their errors name the offending channel."""

    @pytest.mark.parametrize(
        "policy", list(POLICY_CONFIGS), ids=lambda p: p.value
    )
    def test_dequeue_empty_and_enqueue_full(self, policy):
        config = config_by_name(POLICY_CONFIGS[policy])
        assert config.queue_policy is policy
        pe = PipelinedPE(config, DEFAULT_PARAMS, name="w")

        with pytest.raises(QueueError, match="empty") as info:
            pe.inputs[0].dequeue()
        assert info.value.queue_name == "w.i0"

        with pytest.raises(QueueError, match="peek") as info:
            pe.inputs[1].peek(0)
        assert info.value.queue_name == "w.i1"

        out = pe.outputs[0]
        for _ in range(out.capacity):    # staged entries count against space
            out.enqueue(1)
        with pytest.raises(QueueError, match="full") as info:
            out.enqueue(2)
        assert info.value.queue_name == "w.o0"

    def test_bad_capacity_rejected(self):
        from repro.arch.queue import TaggedQueue

        with pytest.raises(QueueError, match="capacity"):
            TaggedQueue(0, "q")


class TestMemoryErrorRename:
    def test_deprecated_alias_is_the_new_class(self):
        assert MemoryError_ is SimMemoryError
        assert issubclass(SimMemoryError, SimulationError)


class TestAttribution:
    def test_attribute_error_annotates_once(self):
        exc = QueueError("overflow somewhere")
        attributed = attribute_error(exc, "worker", 41)
        assert attributed is exc
        assert exc.pe_name == "worker" and exc.cycle == 41
        assert "[pe=worker, cycle=41]" in str(exc)
        # Re-attribution (an error crossing two boundaries) is a no-op.
        attribute_error(exc, "other", 99)
        assert exc.pe_name == "worker" and exc.cycle == 41
        assert str(exc).count("[pe=") == 1

    def test_error_escaping_system_step_names_pe_and_cycle(self, monkeypatch):
        system = System()
        pe = FunctionalPE(name="solo")
        assemble("""
        when %p == XXXXXXX0:
            halt;
        """).configure(pe)
        system.add_pe(pe)

        def bad_step():
            raise SimulationError("synthetic failure")

        monkeypatch.setattr(pe, "step", bad_step)
        with pytest.raises(SimulationError, match="synthetic") as info:
            system.run()
        assert info.value.pe_name == "solo"
        assert info.value.cycle == 0
        assert "[pe=solo, cycle=0]" in str(info.value)
