"""The resilience layer: fault injection, invariants, forensics, and the
hardened campaign machinery (``resilient_map`` / ``Checkpoint``)."""

import os
import signal
import time

import pytest

from repro.arch import FunctionalPE
from repro.arch.queue import QueueEntry, TaggedQueue
from repro.asm import assemble
from repro.errors import (
    CampaignError,
    DeadlockError,
    DivergenceError,
    InvariantViolation,
    SimulationError,
)
from repro.fabric import System
from repro.parallel import Checkpoint, resilient_map
from repro.pipeline.config import config_by_name
from repro.pipeline.core import PipelinedPE
from repro.resilience import (
    DivergenceReport,
    FaultClass,
    FaultSpec,
    FaultTrial,
    InvariantChecker,
    check_divergence,
    fault_campaign,
    format_summary,
    inject,
    plan_faults,
    run_trial,
    summarize,
)
from repro.resilience.campaign import (
    CORRUPTED,
    DETECTED,
    HUNG,
    MASKED,
    NOT_APPLIED,
)
from repro.resilience.forensics import forensic_report, format_report
from repro.workloads.suite import get_workload

OUTCOMES = {DETECTED, HUNG, CORRUPTED, MASKED, NOT_APPLIED}


# ---------------------------------------------------------------------------
# Process-pool worker functions (module level so they pickle)
# ---------------------------------------------------------------------------

def _double(x):
    return x * 2


def _boom(x):
    raise ValueError(f"bad input {x}")


def _kill_once(task):
    """SIGKILL the worker on the very first attempt, then behave."""
    value, flag_dir = task
    flag = os.path.join(flag_dir, "killed")
    if not os.path.exists(flag):
        open(flag, "w").close()
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 2


def _kill_in_pool(task):
    """Die whenever running in a pool child; succeed only in-process."""
    value, main_pid = task
    if os.getpid() != main_pid:
        os.kill(os.getpid(), signal.SIGKILL)
    return value + 10


def _stall_once(task):
    """Stall far past the task timeout on the first attempt only."""
    value, flag_dir = task
    flag = os.path.join(flag_dir, f"stalled-{value}")
    if not os.path.exists(flag):
        open(flag, "w").close()
        time.sleep(5)
    return value + 1


def _trial_kill_once(task):
    """Run one campaign trial, SIGKILLing the first worker that tries."""
    trial, flag_dir = task
    flag = os.path.join(flag_dir, "killed")
    if not os.path.exists(flag):
        open(flag, "w").close()
        os.kill(os.getpid(), signal.SIGKILL)
    return run_trial(trial)


# ---------------------------------------------------------------------------
# Shared builders
# ---------------------------------------------------------------------------

def _pipelined_system(config_name: str, scale: int = 4, seed: int = 0):
    workload = get_workload("gcd")
    config = config_by_name(config_name)

    def factory(name):
        return PipelinedPE(config, workload.params, name=name)

    system = workload.build(factory, scale, seed)
    return system, system.pe(workload.worker_name), workload


def _deadlocked_pair() -> System:
    """Two PEs, each waiting forever on a token the other never sends."""
    system = System()
    source = """
    when %p == XXXXXXX0 with %i0.0:
        mov %r0, %i0; deq %i0; set %p = ZZZZZZZ1;
    when %p == XXXXXXX1:
        halt;
    """
    a = FunctionalPE(name="a")
    b = FunctionalPE(name="b")
    assemble(source).configure(a)
    assemble(source).configure(b)
    system.add_pe(a)
    system.add_pe(b)
    system.connect(a, 0, b, 0)
    system.connect(b, 0, a, 0)
    return system


# ---------------------------------------------------------------------------
# Fault planning and injection
# ---------------------------------------------------------------------------

class TestFaultInjection:
    def test_plans_are_deterministic(self):
        plan = plan_faults(FaultClass.REG_BIT_FLIP, 7, key="k", count=3)
        again = plan_faults(FaultClass.REG_BIT_FLIP, 7, key="k", count=3)
        assert plan == again
        assert plan != plan_faults(FaultClass.REG_BIT_FLIP, 7, key="j", count=3)

    def test_plans_respect_window(self):
        plan = plan_faults(FaultClass.QUEUE_DROP, 0, key="w",
                           count=16, window=(3, 9))
        assert all(3 <= spec.cycle <= 9 for spec in plan)

    def test_register_flip_lands(self):
        pe = FunctionalPE(name="x")
        assemble("""
        when %p == XXXXXXX0:
            mov %r1, $5;
        """).configure(pe)
        injector = inject(pe, [FaultSpec(FaultClass.REG_BIT_FLIP,
                                         cycle=1, index=0, bit=3)])
        for _ in range(3):
            pe.step()
        assert injector.applied
        assert pe.regs.read(0) == 1 << 3

    def test_predicate_flip_lands(self):
        pe = FunctionalPE(name="x")
        assemble("""
        when %p == XXXXXXX0:
            mov %r1, $5;
        """).configure(pe)
        inject(pe, [FaultSpec(FaultClass.PRED_BIT_FLIP,
                              cycle=1, index=2, bit=0)])
        pe.step()
        assert pe.preds.read_bit(2) == 1

    def test_queue_fault_against_empty_queues_does_not_land(self):
        pe = FunctionalPE(name="x")
        assemble("""
        when %p == XXXXXXX0:
            mov %r1, $5;
        """).configure(pe)
        injector = inject(pe, [FaultSpec(FaultClass.QUEUE_DROP, cycle=1)])
        pe.step()
        assert not injector.applied
        assert injector.log == [(injector.specs[0], False)]

    def test_forced_mispredict_is_architecturally_invisible(self):
        """Rollback completeness: inverting a +P prediction never changes
        the architectural result."""
        system, pe, workload = _pipelined_system("T|DX +P")
        injector = inject(pe, [FaultSpec(FaultClass.FORCE_MISPREDICT, cycle=2)])
        system.run()
        assert injector.applied
        workload.check(system, 4, 0)

    def test_forced_mispredict_excluded_from_accuracy(self):
        """Minimized repro: an injected inversion rolls back like a real
        misprediction but must not count as one — the genuine prediction
        stream here is perfectly predictable, so accuracy stays 1.0."""
        pe = PipelinedPE(config_by_name("T|DX +P"), name="forced")
        # eqz on nonzero inputs writes p1 := 0 forever; the two-bit
        # counter starts at weak-not, so every real prediction is correct.
        assemble("""
        when %p == XXXXXXX0 with %i0.0:
            eqz %p1, %i0; deq %i0;
        when %p == XXXXXXX0 with %i0.1:
            halt;
        """).configure(pe)
        backlog = [(5, 0), (5, 0), (5, 0), (5, 0), (0, 1)]
        injector = inject(pe, [FaultSpec(FaultClass.FORCE_MISPREDICT, cycle=2)])
        for _ in range(200):
            if pe.halted:
                break
            while backlog and not pe.inputs[0].is_full:
                value, tag = backlog.pop(0)
                pe.inputs[0].enqueue(value, tag)
            pe.step()
            pe.commit_queues()
        assert pe.halted and injector.applied
        assert pe.counters.forced_predictions == 1
        assert pe.predictor.forced == 1
        assert pe.counters.mispredictions == 0
        assert pe.counters.predictions > 0
        assert pe.counters.prediction_accuracy == 1.0
        assert pe.predictor.accuracy == 1.0

    def test_disarm(self):
        pe = FunctionalPE(name="x")
        injector = inject(pe, [FaultSpec(FaultClass.REG_BIT_FLIP, cycle=1)])
        assert pe.fault_hook is not None
        injector.disarm(pe)
        assert pe.fault_hook is None


class TestQueueMutators:
    def _loaded(self):
        queue = TaggedQueue(4, "q")
        queue.enqueue(1, tag=0)
        queue.enqueue(2, tag=1)
        queue.commit()
        return queue

    def test_tag_flip(self):
        queue = self._loaded()
        before = queue.version
        assert queue.inject_tag_flip(0, 1)
        assert queue.peek(0).tag == 2
        assert queue.peek(0).value == 1
        assert queue.version > before

    def test_value_flip(self):
        queue = self._loaded()
        assert queue.inject_value_flip(1, 4)
        assert queue.peek(1).value == 2 ^ (1 << 4)

    def test_drop(self):
        queue = self._loaded()
        assert queue.inject_drop(0)
        assert queue.occupancy == 1
        assert queue.peek(0).value == 2

    def test_duplicate(self):
        queue = self._loaded()
        assert queue.inject_duplicate(0)
        assert queue.occupancy == 3
        assert queue.peek(0).value == queue.peek(1).value == 1

    def test_duplicate_refused_when_full(self):
        queue = self._loaded()
        queue.enqueue(3)
        queue.enqueue(4)
        queue.commit()
        assert queue.is_full
        assert not queue.inject_duplicate(0)

    def test_mutators_refuse_empty_queue(self):
        queue = TaggedQueue(4, "q")
        assert not queue.inject_tag_flip(0, 0)
        assert not queue.inject_value_flip(0, 0)
        assert not queue.inject_drop(0)
        assert not queue.inject_duplicate(0)


# ---------------------------------------------------------------------------
# Invariant checking and forensics
# ---------------------------------------------------------------------------

class TestInvariantChecker:
    def test_clean_pe_passes(self):
        __, pe, __ = _pipelined_system("TD|X +Q")
        checker = InvariantChecker()
        checker.check_pe(pe)
        assert checker.checks == 1
        assert not checker.violations

    def test_corrupted_bookkeeping_is_caught(self):
        __, pe, __ = _pipelined_system("TD|X +Q")
        pe._queue_state.pending_enqs[0] = 99
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation, match="pending_enqs"):
            checker.check_pe(pe, cycle=0)
        assert checker.violations

    def test_predicate_overflow_is_caught(self):
        __, pe, __ = _pipelined_system("TD|X +Q")
        pe.preds.state = 1 << pe.params.num_preds
        with pytest.raises(InvariantViolation, match="NPreds"):
            InvariantChecker().check_pe(pe)

    def test_queue_overflow_is_caught(self):
        __, pe, __ = _pipelined_system("TDX")
        queue = pe.inputs[0]
        for _ in range(queue.capacity + 1):    # bypass enqueue's guard
            queue._live.append(QueueEntry(0, 0))
        with pytest.raises(InvariantViolation, match="capacity"):
            InvariantChecker().check_pe(pe)

    def test_attached_checker_runs_every_cycle(self):
        system, __, workload = _pipelined_system("T|DX +P")
        checker = InvariantChecker()
        system.attach_invariant_checker(checker)
        system.run()
        assert checker.checks >= system.cycles
        assert not checker.violations
        workload.check(system, 4, 0)

    def test_violation_carries_pe_and_cycle(self):
        system, pe, __ = _pipelined_system("TD|X +Q")
        checker = InvariantChecker()
        system.attach_invariant_checker(checker)
        pe._queue_state.pending_enqs[0] = 99
        with pytest.raises(InvariantViolation) as info:
            system.run()
        assert info.value.pe_name == pe.name
        assert info.value.cycle is not None


class TestForensics:
    def test_deadlock_raises_structured_report(self):
        system = _deadlocked_pair()
        with pytest.raises(DeadlockError, match="deadlock") as info:
            system.run(stall_limit=50)
        report = info.value.report
        assert isinstance(report, dict)
        assert {pe["name"] for pe in report["pes"]} == {"a", "b"}
        assert report["cycle"] >= 50
        assert not report["all_halted"]

    def test_deadlock_error_is_a_simulation_error(self):
        system = _deadlocked_pair()
        with pytest.raises(SimulationError):
            system.run(stall_limit=50)

    def test_format_report_renders(self):
        system = _deadlocked_pair()
        try:
            system.run(stall_limit=50)
        except DeadlockError as exc:
            text = format_report(exc.report)
        assert text.startswith("forensic dump at cycle")
        assert "a (" in text and "b (" in text

    def test_report_includes_pipeline_state(self):
        system, __, __ = _pipelined_system("T|D|X1|X2 +P+Q")
        for _ in range(3):
            system.step()
        report = forensic_report(system)
        worker = next(pe for pe in report["pes"] if pe["name"] == "worker")
        assert worker["model"] == "pipelined"
        assert "pipeline" in worker and "speculations" in worker
        assert all("occupancy" in queue for queue in worker["inputs"])


# ---------------------------------------------------------------------------
# Divergence detection
# ---------------------------------------------------------------------------

class TestDivergence:
    def test_fast_path_matches_reference(self):
        report = check_divergence(config_by_name("T|DX +P"), "gcd", scale=4)
        assert not report.diverged
        report.raise_if_diverged()    # no-op when clean

    def test_divergence_raises(self):
        report = DivergenceReport(
            config="T|DX +P",
            workload="gcd",
            mismatches=["cycles: fast=10 reference=11"],
        )
        assert report.diverged
        with pytest.raises(DivergenceError, match="cycles"):
            report.raise_if_diverged()


# ---------------------------------------------------------------------------
# Campaigns
# ---------------------------------------------------------------------------

CAMPAIGN_KWARGS = dict(
    configs=("TDX", "T|DX +P"),
    faults=(FaultClass.REG_BIT_FLIP, FaultClass.PRED_BIT_FLIP,
            FaultClass.QUEUE_DROP),
    workloads=("gcd",),
    trials=1,
    scale=4,
    seed=1,
    # Hung trials cost stall_limit extra cycles each; keep them cheap.
    stall_limit=500,
    max_cycles=60_000,
)

SMALL_CAMPAIGN_KWARGS = dict(
    CAMPAIGN_KWARGS,
    configs=("TDX",),
    faults=(FaultClass.REG_BIT_FLIP, FaultClass.QUEUE_DROP),
)


class TestFaultCampaign:
    def test_bit_identical_across_runs_and_worker_counts(self):
        serial = fault_campaign(workers=1, **CAMPAIGN_KWARGS)
        rerun = fault_campaign(workers=1, **CAMPAIGN_KWARGS)
        pooled = fault_campaign(workers=2, **CAMPAIGN_KWARGS)
        assert serial == rerun
        assert serial == pooled
        assert len(serial) == 6
        assert all(result.outcome in OUTCOMES for result in serial)

    def test_killed_worker_retried_with_identical_results(self, tmp_path):
        tasks = [
            FaultTrial(config="T|DX +P", workload="gcd",
                       fault="reg-bit-flip", trial=i, scale=4, seed=0)
            for i in range(3)
        ]
        serial = [run_trial(trial) for trial in tasks]
        survived = resilient_map(
            _trial_kill_once,
            [(trial, str(tmp_path)) for trial in tasks],
            workers=2,
            retries=3,
        )
        assert os.path.exists(tmp_path / "killed")    # a worker really died
        assert survived == serial

    def test_summary_covers_every_cell(self):
        results = fault_campaign(workers=1, **SMALL_CAMPAIGN_KWARGS)
        summary = summarize(results)
        assert set(summary) == {
            (config, fault.value)
            for config in SMALL_CAMPAIGN_KWARGS["configs"]
            for fault in SMALL_CAMPAIGN_KWARGS["faults"]
        }
        text = format_summary(results)
        assert "reg-bit-flip" in text and "TDX" in text

    def test_checkpoint_cleared_after_completion(self, tmp_path):
        path = str(tmp_path / "campaign.json")
        results = fault_campaign(
            workers=1, checkpoint_path=path, **SMALL_CAMPAIGN_KWARGS
        )
        assert results == fault_campaign(workers=1, **SMALL_CAMPAIGN_KWARGS)
        assert not os.path.exists(path)

    def test_trial_key_is_stable(self):
        trial = FaultTrial(config="TDX", workload="gcd",
                           fault="queue-drop", trial=3, scale=4, seed=0)
        assert trial.key == "TDX/gcd/queue-drop/t3"


# ---------------------------------------------------------------------------
# resilient_map and Checkpoint
# ---------------------------------------------------------------------------

class TestResilientMap:
    def test_matches_serial_at_any_worker_count(self):
        items = list(range(8))
        expected = [_double(item) for item in items]
        assert resilient_map(_double, items, workers=1) == expected
        assert resilient_map(_double, items, workers=3) == expected

    def test_killed_worker_is_retried(self, tmp_path):
        items = [(value, str(tmp_path)) for value in range(4)]
        results = resilient_map(_kill_once, items, workers=2, retries=3)
        assert results == [0, 2, 4, 6]

    def test_degrades_to_serial_when_pool_keeps_dying(self):
        items = [(value, os.getpid()) for value in range(3)]
        results = resilient_map(_kill_in_pool, items, workers=2,
                                retries=0, backoff=0.01)
        assert results == [10, 11, 12]

    def test_task_timeout_triggers_retry(self, tmp_path):
        items = [(value, str(tmp_path)) for value in range(2)]
        results = resilient_map(_stall_once, items, workers=2,
                                timeout=0.5, retries=2, backoff=0.01)
        assert results == [1, 2]

    def test_worker_exception_carries_traceback(self):
        with pytest.raises(CampaignError) as info:
            resilient_map(_boom, list(range(4)), workers=2)
        assert "ValueError" in info.value.worker_traceback
        assert "_boom" in info.value.worker_traceback
        assert "bad input" in str(info.value)

    def test_serial_exception_carries_traceback_too(self):
        with pytest.raises(CampaignError) as info:
            resilient_map(_boom, [1], workers=1)
        assert "ValueError" in info.value.worker_traceback

    def test_checkpoint_resume_skips_completed_work(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        first = Checkpoint(path, fingerprint="f")
        items = [1, 2, 3]
        resilient_map(_double, items, workers=1, checkpoint=first, key=str)
        resumed = Checkpoint(path, fingerprint="f")
        assert len(resumed) == 3
        # Every item is checkpointed, so the poison task never runs.
        results = resilient_map(_boom, items, workers=1,
                                checkpoint=resumed, key=str)
        assert results == [2, 4, 6]

    def test_checkpoint_fingerprint_mismatch_discards_results(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        stale = Checkpoint(path, fingerprint="old")
        stale.put("1", 2)
        assert len(Checkpoint(path, fingerprint="new")) == 0
        assert len(Checkpoint(path, fingerprint="old")) == 1

    def test_checkpoint_clear_removes_file(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        checkpoint = Checkpoint(path, fingerprint="f")
        checkpoint.put("a", 1)
        assert os.path.exists(path)
        checkpoint.clear()
        assert not os.path.exists(path)
        assert len(checkpoint) == 0
