"""Host controller: driving a system purely from binary artifacts."""

import pytest

from repro.arch import FunctionalPE
from repro.asm import assemble
from repro.errors import ConfigError
from repro.fabric import System
from repro.params import DEFAULT_PARAMS as P
from repro.pipeline import PipelinedPE, config_by_name
from repro.toolchain.host import HostController

SOURCE = """
when %p == XXXXX000:
    mov %o0.0, $4; set %p = ZZZZZ001;
when %p == XXXXX001 with %i0.0:
    add %r0, %i0, $1; deq %i0; set %p = ZZZZZ011;
when %p == XXXXX011:
    mov %o1.0, $5; set %p = ZZZZZ010;
when %p == XXXXX010:
    mov %o2.0, %r0; set %p = ZZZZZ110;
when %p == XXXXX110:
    halt;
"""


def build(pipelined=False):
    system = System(memory_words=64)
    if pipelined:
        pe = PipelinedPE(config_by_name("T|D|X1|X2 +P+Q"), name="worker")
    else:
        pe = FunctionalPE(name="worker")
    system.add_pe(pe)
    system.add_read_port(pe, request_out=0, response_in=0)
    system.add_write_port(pe, 1, pe, 2)
    return system


def test_full_binary_driven_flow():
    """assemble -> bytes -> program_pe -> run -> read results/counters."""
    binary = assemble(SOURCE).binary(P)
    host = HostController(build())
    host.program_pe("worker", binary)
    host.write_buffer([0, 0, 0, 0, 41], base=0)
    cycles = host.start_and_wait()
    assert cycles > 0
    assert host.read_buffer(5, 1) == [42]
    status = host.status("worker")
    assert status.halted and status.retired == 5


def test_counters_block_functional_vs_pipelined():
    binary = assemble(SOURCE).binary(P)
    functional = HostController(build(pipelined=False))
    functional.program_pe("worker", binary)
    functional.write_buffer([0, 0, 0, 0, 1], base=0)
    functional.start_and_wait()
    block = functional.read_counters("worker")
    assert block["retired"] == 5
    assert "quashed" not in block     # architectural counters only

    pipelined = HostController(build(pipelined=True))
    pipelined.program_pe("worker", binary)
    pipelined.write_buffer([0, 0, 0, 0, 1], base=0)
    pipelined.start_and_wait()
    block = pipelined.read_counters("worker")
    assert block["retired"] == 5
    assert "quashed" in block         # the Figure 5 taxonomy

    # Five classification buckets tile the cycle count.
    assert block["cycles"] == (
        block["issued"] + block["pred_hazard_cycles"]
        + block["data_hazard_cycles"] + block["forbidden_cycles"]
        + block["none_triggered_cycles"]
    )


def test_initial_predicates_applied():
    binary = assemble("when %p == XXXXXXX1:\n    halt;").binary(P)
    host = HostController(build())
    host.program_pe("worker", binary, initial_predicates=0b1)
    host.start_and_wait()
    assert host.status("worker").halted


def test_scratchpad_preload():
    source = """
    when %p == XXXXXX00:
        lsw %r0, $3; set %p = ZZZZZZ01;
    when %p == XXXXXX01:
        halt;
    """
    host = HostController(build())
    host.program_pe("worker", assemble(source).binary(P))
    host.preload_scratchpad("worker", [0, 0, 0, 777])
    host.start_and_wait()
    assert host.system.pe("worker").regs.read(0) == 777


def test_reconfiguration_after_start_rejected():
    binary = assemble("when %p == XXXXXXXX:\n    halt;").binary(P)
    host = HostController(build())
    host.program_pe("worker", binary)
    host.start_and_wait()
    with pytest.raises(ConfigError, match="already running"):
        host.program_pe("worker", binary)


def test_reset_allows_a_second_run():
    binary = assemble(SOURCE).binary(P)
    host = HostController(build())
    host.program_pe("worker", binary)
    host.write_buffer([0, 0, 0, 0, 10], base=0)
    host.start_and_wait()
    first = host.read_buffer(5, 1)
    host.reset()
    host.write_buffer([0, 0, 0, 0, 20], base=0)
    host.start_and_wait()
    assert host.read_buffer(5, 1) == [21]
    assert first == [11]
