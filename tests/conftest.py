"""Shared fixtures: a session-scoped CPI table so the expensive cycle
simulation campaign runs at most once per test session."""

from __future__ import annotations

import pytest
from hypothesis import settings

from repro.dse.cpi import CpiTable
from repro.params import DEFAULT_PARAMS

# Deterministic property tests for release CI; run with
# ``--hypothesis-profile=default`` locally to explore fresh examples.
settings.register_profile("ci", derandomize=True, deadline=None)
settings.load_profile("ci")


@pytest.fixture(scope="session")
def cpi_table(tmp_path_factory) -> CpiTable:
    cache = tmp_path_factory.mktemp("cpi") / "cpi_cache.json"
    return CpiTable(scale=12, cache_path=str(cache))


@pytest.fixture()
def params():
    return DEFAULT_PARAMS
