"""Design-space exploration: grids, sweep feasibility, Pareto extraction."""

import pytest

from repro.dse.cpi import CpiTable
from repro.dse.design_point import DesignPoint
from repro.dse.pareto import frontier_span, pareto_frontier
from repro.dse.sweep import frequency_grid, sweep, voltage_grid
from repro.pipeline.config import config_by_name
from repro.vlsi.synthesis import synthesize
from repro.vlsi.technology import VtFlavor


class TestGrids:
    def test_svt_voltages(self):
        assert voltage_grid(VtFlavor.SVT) == [0.6, 0.7, 0.8, 0.9, 1.0]

    def test_lvt_hvt_voltages(self):
        for vt in (VtFlavor.LVT, VtFlavor.HVT):
            assert voltage_grid(vt) == [0.4, 0.6, 0.8, 1.0]

    def test_main_frequency_grid(self):
        grid = frequency_grid(VtFlavor.SVT, 1.0)
        assert grid[0] == 100e6 and grid[-1] == 1.5e9
        assert len(grid) == 15

    def test_near_threshold_refinement(self):
        grid = frequency_grid(VtFlavor.SVT, 0.6)
        assert 150e6 in grid and 250e6 in grid   # 50 MHz steps

    def test_subthreshold_hvt_refinement(self):
        grid = frequency_grid(VtFlavor.HVT, 0.4)
        assert 10e6 in grid and 90e6 in grid     # 10 MHz steps
        assert 10e6 not in frequency_grid(VtFlavor.LVT, 0.4)


class TestDesignPoint:
    def _point(self, cpi=2.0):
        r = synthesize(config_by_name("T|D|X"), 1.0, VtFlavor.SVT, 500e6)
        return DesignPoint(synthesis=r, cpi=cpi)

    def test_delay_per_instruction(self):
        point = self._point(cpi=2.0)
        assert point.ns_per_instruction == pytest.approx(2.0 / 500e6 * 1e9)

    def test_energy_per_instruction(self):
        point = self._point(cpi=2.0)
        expected = point.synthesis.power_w * 2.0 / 500e6 * 1e12
        assert point.pj_per_instruction == pytest.approx(expected)

    def test_ed_product(self):
        point = self._point()
        assert point.energy_delay_product == pytest.approx(
            point.pj_per_instruction * point.ns_per_instruction)

    def test_row_has_figure8_columns(self):
        row = self._point().row()
        for column in ("design", "vt", "vdd", "mhz", "ns_per_instruction",
                       "pj_per_instruction", "mw", "mm2", "mw_per_mm2", "ed"):
            assert column in row


class TestPareto:
    def _points(self, cpi_table):
        configs = [config_by_name(n) for n in ("TDX", "T|DX +P+Q", "T|D|X1|X2")]
        return sweep(configs=configs, cpi_table=cpi_table)

    def test_frontier_points_are_nondominated(self, cpi_table):
        points = self._points(cpi_table)
        frontier = pareto_frontier(points)
        for a in frontier:
            for b in points:
                dominates = (
                    b.ns_per_instruction <= a.ns_per_instruction
                    and b.pj_per_instruction <= a.pj_per_instruction
                    and (b.ns_per_instruction < a.ns_per_instruction
                         or b.pj_per_instruction < a.pj_per_instruction)
                )
                assert not dominates, f"{b.row()} dominates {a.row()}"

    def test_frontier_sorted_fastest_first(self, cpi_table):
        frontier = pareto_frontier(self._points(cpi_table))
        delays = [p.ns_per_instruction for p in frontier]
        assert delays == sorted(delays)
        energies = [p.pj_per_instruction for p in frontier]
        assert energies == sorted(energies, reverse=True)

    def test_span_report(self, cpi_table):
        span = frontier_span(pareto_frontier(self._points(cpi_table)))
        assert span["energy_span"] > 1
        assert span["delay_span"] > 1
        assert span["min_ns"] < span["max_ns"]

    def test_empty_frontier(self):
        assert pareto_frontier([]) == []
        assert frontier_span([]) == {}


class TestSweep:
    def test_every_point_is_feasible(self, cpi_table):
        points = sweep(configs=[config_by_name("TD|X +Q")], cpi_table=cpi_table)
        for point in points:
            assert point.frequency_hz <= point.synthesis.fmax_hz * (1 + 1e-9)

    def test_fmax_points_included(self, cpi_table):
        config = config_by_name("TD|X +Q")
        points = sweep(configs=[config], cpi_table=cpi_table)
        fmax_values = {round(p.synthesis.fmax_hz) for p in points}
        frequencies = {round(p.frequency_hz) for p in points}
        assert fmax_values & frequencies

    def test_cpi_constant_across_voltage(self, cpi_table):
        points = sweep(configs=[config_by_name("TDX")], cpi_table=cpi_table)
        assert len({p.cpi for p in points}) == 1


class TestCpiTable:
    def test_caches_across_instances(self, tmp_path):
        cache = tmp_path / "cpi.json"
        table = CpiTable(scale=8, cache_path=str(cache))
        config = config_by_name("TDX")
        first = table.cpi(config)
        # A new table with the same cache must not re-simulate (and must agree).
        again = CpiTable(scale=8, cache_path=str(cache))
        assert config.name in again._cpi
        assert again.cpi(config) == first

    def test_cache_invalidated_by_scale_change(self, tmp_path):
        cache = tmp_path / "cpi.json"
        CpiTable(scale=8, cache_path=str(cache)).cpi(config_by_name("TDX"))
        other = CpiTable(scale=10, cache_path=str(cache))
        assert not other._cpi

    def test_stack_components_sum_to_cpi(self, cpi_table):
        config = config_by_name("T|D|X +P")
        stack = cpi_table.stack(config)
        assert sum(stack.values()) == pytest.approx(cpi_table.cpi(config), rel=1e-9)
