"""Design-space exploration: grids, sweep feasibility, Pareto extraction."""

import pytest

from repro.dse.cpi import CpiTable
from repro.dse.design_point import DesignPoint
from repro.dse.pareto import frontier_span, pareto_frontier
from repro.dse.prune import PruneOracle
from repro.dse.sweep import close_grid, frequency_grid, sweep, voltage_grid
from repro.pipeline.config import config_by_name
from repro.vlsi.synthesis import synthesize
from repro.vlsi.technology import VtFlavor


class TestGrids:
    def test_svt_voltages(self):
        assert voltage_grid(VtFlavor.SVT) == [0.6, 0.7, 0.8, 0.9, 1.0]

    def test_lvt_hvt_voltages(self):
        for vt in (VtFlavor.LVT, VtFlavor.HVT):
            assert voltage_grid(vt) == [0.4, 0.6, 0.8, 1.0]

    def test_main_frequency_grid(self):
        grid = frequency_grid(VtFlavor.SVT, 1.0)
        assert grid[0] == 100e6 and grid[-1] == 1.5e9
        assert len(grid) == 15

    def test_near_threshold_refinement(self):
        grid = frequency_grid(VtFlavor.SVT, 0.6)
        assert 150e6 in grid and 250e6 in grid   # 50 MHz steps

    def test_subthreshold_hvt_refinement(self):
        grid = frequency_grid(VtFlavor.HVT, 0.4)
        assert 10e6 in grid and 90e6 in grid     # 10 MHz steps
        assert 10e6 not in frequency_grid(VtFlavor.LVT, 0.4)


class TestDesignPoint:
    def _point(self, cpi=2.0):
        r = synthesize(config_by_name("T|D|X"), 1.0, VtFlavor.SVT, 500e6)
        return DesignPoint(synthesis=r, cpi=cpi)

    def test_delay_per_instruction(self):
        point = self._point(cpi=2.0)
        assert point.ns_per_instruction == pytest.approx(2.0 / 500e6 * 1e9)

    def test_energy_per_instruction(self):
        point = self._point(cpi=2.0)
        expected = point.synthesis.power_w * 2.0 / 500e6 * 1e12
        assert point.pj_per_instruction == pytest.approx(expected)

    def test_ed_product(self):
        point = self._point()
        assert point.energy_delay_product == pytest.approx(
            point.pj_per_instruction * point.ns_per_instruction)

    def test_row_has_figure8_columns(self):
        row = self._point().row()
        for column in ("design", "vt", "vdd", "mhz", "ns_per_instruction",
                       "pj_per_instruction", "mw", "mm2", "mw_per_mm2", "ed"):
            assert column in row


class TestPareto:
    def _points(self, cpi_table):
        configs = [config_by_name(n) for n in ("TDX", "T|DX +P+Q", "T|D|X1|X2")]
        return sweep(configs=configs, cpi_table=cpi_table)

    def test_frontier_points_are_nondominated(self, cpi_table):
        points = self._points(cpi_table)
        frontier = pareto_frontier(points)
        for a in frontier:
            for b in points:
                dominates = (
                    b.ns_per_instruction <= a.ns_per_instruction
                    and b.pj_per_instruction <= a.pj_per_instruction
                    and (b.ns_per_instruction < a.ns_per_instruction
                         or b.pj_per_instruction < a.pj_per_instruction)
                )
                assert not dominates, f"{b.row()} dominates {a.row()}"

    def test_frontier_sorted_fastest_first(self, cpi_table):
        frontier = pareto_frontier(self._points(cpi_table))
        delays = [p.ns_per_instruction for p in frontier]
        assert delays == sorted(delays)
        energies = [p.pj_per_instruction for p in frontier]
        assert energies == sorted(energies, reverse=True)

    def test_span_report(self, cpi_table):
        span = frontier_span(pareto_frontier(self._points(cpi_table)))
        assert span["energy_span"] > 1
        assert span["delay_span"] > 1
        assert span["min_ns"] < span["max_ns"]

    def test_empty_frontier(self):
        assert pareto_frontier([]) == []
        assert frontier_span([]) == {}


class TestSweep:
    def test_every_point_is_feasible(self, cpi_table):
        points = sweep(configs=[config_by_name("TD|X +Q")], cpi_table=cpi_table)
        for point in points:
            assert point.frequency_hz <= point.synthesis.fmax_hz * (1 + 1e-9)

    def test_fmax_points_included(self, cpi_table):
        config = config_by_name("TD|X +Q")
        points = sweep(configs=[config], cpi_table=cpi_table)
        fmax_values = {round(p.synthesis.fmax_hz) for p in points}
        frequencies = {round(p.frequency_hz) for p in points}
        assert fmax_values & frequencies

    def test_cpi_constant_across_voltage(self, cpi_table):
        points = sweep(configs=[config_by_name("TDX")], cpi_table=cpi_table)
        assert len({p.cpi for p in points}) == 1


def _point_key(point):
    return (point.config_name, point.vt.value, point.vdd,
            round(point.frequency_hz), point.cpi)


class TestPruning:
    """Soundness of sweep(prune=...) on a small exhaustive sweep: no
    Pareto-frontier member may ever be dropped, and pruning must carry
    its weight (the ISSUE floor is 20% of points removed)."""

    NAMES = ("TDX", "TD|X", "T|DX +P", "TD|X +Q",
             "T|D|X", "T|D|X1|X2", "T|D|X1|X2 +P+pad")

    def _configs(self):
        return [config_by_name(name) for name in self.NAMES]

    def test_pruned_sweep_preserves_frontier(self, cpi_table):
        configs = self._configs()
        full = sweep(configs=configs, cpi_table=cpi_table)
        oracle = PruneOracle.from_workloads(configs, scale=cpi_table.scale)
        pruned = sweep(configs=configs, cpi_table=cpi_table, prune=oracle)

        full_keys = set(map(_point_key, full))
        pruned_keys = set(map(_point_key, pruned))
        assert pruned_keys <= full_keys          # never invents points
        assert sorted(map(_point_key, pareto_frontier(pruned))) == \
            sorted(map(_point_key, pareto_frontier(full)))

        stats = oracle.stats
        assert stats.points_total == len(full)
        assert stats.points_evaluated == len(pruned)
        assert stats.point_rate >= 0.20, stats.as_dict()

    def test_config_level_pruning_skips_simulation(self, tmp_path):
        # A config whose entire best-case grid is dominated must never
        # reach the simulator.  A synthetic huge floor forces the case
        # (mechanism test only — an unsound oracle voids the frontier
        # guarantee, so nothing else is asserted about the output).
        fast, slow = config_by_name("TDX"), config_by_name("T|D|X1|X2")
        table = CpiTable(scale=8, cache_path=str(tmp_path / "cpi.json"))
        oracle = PruneOracle({fast.name: 1.0, slow.name: 1000.0}, batch=1)
        points = sweep(configs=[fast, slow], cpi_table=table, prune=oracle)
        assert oracle.stats.configs_pruned == 1
        assert slow.name not in table._cpi       # no simulation spent
        assert {p.config_name for p in points} == {fast.name}

    def test_unknown_config_defaults_to_universal_floor(self):
        oracle = PruneOracle({})
        assert oracle.lower_bound(config_by_name("TDX")) == 1.0

    def test_oracle_floors_are_sound(self, cpi_table):
        # The static floor the pruning relies on: per config, the
        # workload-mean lower bound never exceeds the measured mean CPI.
        configs = self._configs()
        oracle = PruneOracle.from_workloads(configs, scale=cpi_table.scale)
        for config in configs:
            assert oracle.lower_bound(config) <= \
                cpi_table.cpi(config) + 1e-9, config.name

    def test_close_grid_matches_unpruned_sweep(self, cpi_table):
        config = config_by_name("TDX")
        grid = close_grid(config)
        points = sweep(configs=[config], cpi_table=cpi_table)
        assert len(grid) == len(points)
        assert [round(s.f_target_hz) for s in grid] == \
            [round(p.frequency_hz) for p in points]


class TestCpiTable:
    def test_caches_across_instances(self, tmp_path):
        cache = tmp_path / "cpi.json"
        table = CpiTable(scale=8, cache_path=str(cache))
        config = config_by_name("TDX")
        first = table.cpi(config)
        # A new table with the same cache must not re-simulate (and must agree).
        again = CpiTable(scale=8, cache_path=str(cache))
        assert config.name in again._cpi
        assert again.cpi(config) == first

    def test_cache_invalidated_by_scale_change(self, tmp_path):
        cache = tmp_path / "cpi.json"
        CpiTable(scale=8, cache_path=str(cache)).cpi(config_by_name("TDX"))
        other = CpiTable(scale=10, cache_path=str(cache))
        assert not other._cpi

    def test_stack_components_sum_to_cpi(self, cpi_table):
        config = config_by_name("T|D|X +P")
        stack = cpi_table.stack(config)
        assert sum(stack.values()) == pytest.approx(cpi_table.cpi(config), rel=1e-9)
