"""The state-machine program builder macro layer."""

import pytest

from repro.arch import FunctionalPE
from repro.errors import AssemblerError
from repro.workloads.builder import ProgramBuilder


class TestBuilding:
    def test_simple_counter_program_runs(self):
        b = ProgramBuilder(start_state="cmp")
        b.add(state="cmp", op="ult %p1, %r0, $3", next="act")
        b.add(state="act", flags={1: True}, op="add %r0, %r0, $1", next="cmp")
        b.add(state="act", flags={1: False}, op="halt")
        pe = FunctionalPE(name="t")
        b.program("counter").configure(pe)
        pe.run()
        assert pe.regs.read(0) == 3

    def test_source_is_valid_assembly(self):
        b = ProgramBuilder(start_state="a")
        b.add(state="a", op="nop", next="b")
        b.add(state="b", op="halt")
        source = b.source()
        assert ".start %p" in source
        assert "when %p ==" in source
        # Assembles without error.
        b.program()

    def test_stateless_instruction_matches_any_state(self):
        b = ProgramBuilder(start_state="main")
        b.add(checks=["%i0.0"], deq=["%i0"], op="mov %r1, %i0",
              set_flags={0: True})
        b.add(state="main", flags={0: True}, op="halt")
        pe = FunctionalPE(name="t")
        b.program().configure(pe)
        pe.inputs[0].enqueue(9, 0)
        pe.inputs[0].commit()
        pe.run()
        assert pe.regs.read(1) == 9

    def test_start_state_encoded_in_directive(self):
        b = ProgramBuilder(start_state="second")
        b.add(state="first", op="halt")        # state code 0
        b.add(state="second", op="halt")       # state code 1
        program = b.program()
        # state_bits[0] (predicate 7) is the LSB of the state encoding.
        assert program.initial_predicates == 1 << 7

    def test_priority_is_insertion_order(self):
        b = ProgramBuilder()
        b.add(op="halt")
        b.add(op="nop")
        program = b.program()
        assert program.instructions[0].dp.op.mnemonic == "halt"


class TestErrors:
    def test_too_many_states(self):
        b = ProgramBuilder(state_bits=(7,))
        b.add(state="s0", op="nop", next="s1")
        b.add(state="s1", op="nop", next="s2")
        b.add(state="s2", op="halt")
        with pytest.raises(AssemblerError, match="state bits"):
            b.source()

    def test_flag_colliding_with_state_bit(self):
        b = ProgramBuilder(state_bits=(7, 6, 5, 4))
        with pytest.raises(AssemblerError, match="collides"):
            b.add(state="s", flags={7: True}, op="nop")

    def test_transition_forcing_datapath_predicate(self):
        b = ProgramBuilder()
        with pytest.raises(AssemblerError, match="forces it"):
            b.add(op="eq %p1, %r0, %r1", set_flags={1: True})
            b.source()
