"""Disassembler round trips: source -> binary -> source -> binary."""

from hypothesis import given

from repro.asm import assemble
from repro.asm.disassembler import (
    disassemble,
    disassemble_binary,
    disassemble_instruction,
)
from repro.isa.encoding import encode_instruction
from repro.isa.instruction import make_nop
from repro.params import DEFAULT_PARAMS as P

from tests.test_encoding import instructions


SOURCE = """
.start %p = 00000001
when %p == XXXXXXX1 with %i0.0, %i1.!2:
    add %r1, %r1, %i0; set %p = ZZZZZZ10; deq %i0, %i1;
when %p == XXXXXX1X:
    mov %o2.3, %r1; set %p = ZZZZZ1ZZ;
when %p == XXXXX1XX:
    halt;
"""


def test_program_round_trip_through_text():
    program = assemble(SOURCE)
    text = disassemble(program.instructions, P, program.initial_predicates)
    again = assemble(text)
    assert again.initial_predicates == program.initial_predicates
    for a, b in zip(program.instructions, again.instructions):
        assert a.trigger == b.trigger
        assert a.dp == b.dp


def test_binary_round_trip_through_text():
    program = assemble(SOURCE)
    text = disassemble_binary(program.binary(P), P)
    again = assemble(text)
    assert again.binary(P) == program.binary(P)


def test_empty_slot_renders_as_comment():
    assert disassemble_instruction(make_nop(), P).startswith("#")


def test_immediates_survive():
    program = assemble("when %p == XXXXXXXX:\n    add %r0, %r1, $-7;")
    text = disassemble(program.instructions, P)
    again = assemble(text)
    assert again.instructions[0].dp.imm == program.instructions[0].dp.imm


@given(instructions())
def test_any_valid_instruction_round_trips(ins):
    """Disassembly of any encodable instruction re-assembles identically."""
    text = disassemble_instruction(ins, P)
    again = assemble(text).instructions[0]
    assert encode_instruction(again, P) == encode_instruction(ins, P)
