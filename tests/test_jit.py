"""Differential tests for the ``repro.jit`` specialization backend.

The JIT emits straight-line per-trigger Python for a fixed (program,
partition, ±P, queue-policy) tuple and dispatches it instead of the
generic compiled-trigger walk.  Nothing about it may be architecturally
observable: every test here holds the JIT to bit-identical state,
cycles, and counters against the interpreter fast path (itself held to
the reference dataclass walk by ``test_pipeline_equivalence``).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.asm import assemble
from repro.jit import (
    CODEGEN_VERSION,
    JitBatch,
    cache_stats,
    clear_cache,
    fingerprint,
    generate_source,
)
from repro.params import DEFAULT_PARAMS as P
from repro.pipeline import PipelinedPE, config_by_name
from repro.pipeline.config import all_configs
from repro.workloads.suite import WORKLOADS, run_workload
from tests.test_pipeline_equivalence import _run, chain_programs
from tests.test_pipeline_equivalence import (
    _workload_fingerprint as workload_fingerprint,
)

_DIFF_SCALE = 6

#: All 48 microarchitectures: 8 partitions x {-P, +P} x {conservative,
#: effective, padded} queue accounting.
ALL_CONFIGS = all_configs(include_padded=True)


@pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.name)
def test_jit_is_bit_identical_across_the_workload_suite(config):
    """48 configs x 10 workloads: the JIT backend must reproduce the
    interpreter fast path bit for bit — same CPI stacks, counters,
    cycle counts, and final architectural state — through the fused
    ``System`` loop, block delegation, and quiescent-wait batching."""
    for name in WORKLOADS():
        jit = run_workload(
            name, scale=_DIFF_SCALE,
            make_pe=lambda n: PipelinedPE(config, P, name=n, backend="jit"),
        )
        interp = run_workload(
            name, scale=_DIFF_SCALE,
            make_pe=lambda n: PipelinedPE(config, P, name=n, backend="interp"),
        )
        assert workload_fingerprint(jit) == workload_fingerprint(interp), (
            f"{config.name} / {name}: jit diverged from the interpreter"
        )


@settings(max_examples=25, deadline=None)
@given(chain_programs())
def test_jit_matches_interpreter_on_random_programs(generated):
    instructions, pushes = generated
    for name in ("T|D|X1|X2 +P+Q", "TD|X", "T|DX +P+Q", "T|D|X1|X2 +P+pad"):
        jit = PipelinedPE(config_by_name(name), P, name="jit", backend="jit")
        interp = PipelinedPE(config_by_name(name), P, name="int",
                             backend="interp")
        jit_result = _run(jit, instructions, pushes)
        interp_result = _run(interp, instructions, pushes)
        assert jit_result == interp_result, f"{name}: state diverged"
        assert jit.counters == interp.counters, f"{name}: counters diverged"


def test_corpus_replays_clean_through_the_jit_backend():
    """Every saved fuzz regression stays clean with the jit leg enabled
    (all 48 configs per case, bit-identical to the interpreter)."""
    from repro.verify.corpus import DEFAULT_CORPUS, load_corpus
    from repro.verify.harness import check_case

    pairs = load_corpus(DEFAULT_CORPUS)
    assert pairs, "saved corpus is missing"
    for path, case in pairs:
        result = check_case(case, P, ref_configs=0, jit=True)
        assert not result["divergences"], (
            f"corpus case {path} diverged: {result['divergences']}"
        )


def test_fresh_fuzz_round_through_the_jit_backend():
    """A deterministic fresh-fuzz round with the jit leg: generated
    cases run golden vs interpreter vs JIT on all 48 configs."""
    from repro.verify.generator import generate_case
    from repro.verify.harness import check_case, real_divergences

    for seed in range(7700, 7706):
        case = generate_case(seed, P)
        result = check_case(case, P, ref_configs=0, jit=True)
        assert not real_divergences(result), (
            f"seed {seed} diverged: {real_divergences(result)}"
        )


# ---------------------------------------------------------------------------
# Backend selection, fallback rules, and the specialization cache.
# ---------------------------------------------------------------------------

#: The perf-harness predicate loop, scaled down: count to 40 and halt.
_LOOP = """
when %p == XXXXXXX0:
    ult %p1, %r0, $40; set %p = ZZZZZZZ1;
when %p == XXXXXX11:
    add %r0, %r0, $1; set %p = ZZZZZZ00;
when %p == XXXXXX01:
    halt;
"""


def test_backend_selector_and_fallback_to_interpreter():
    cfg = config_by_name("T|D|X1|X2 +P+Q")
    program = assemble(_LOOP, P)
    jit = PipelinedPE(cfg, P, name="jit", backend="jit")
    interp = PipelinedPE(cfg, P, name="interp", backend="interp")
    program.configure(jit)
    program.configure(interp)
    assert jit._jit is not None
    assert interp._jit is None
    while not interp.halted:
        interp.step()
        interp.commit_queues()
    while not jit.halted:
        jit.step()
        jit.commit_queues()
    assert jit.counters == interp.counters
    assert jit.regs.snapshot() == interp.regs.snapshot()
    assert jit.preds.state == interp.preds.state


def test_attached_hooks_defer_to_the_interpreter_bit_identically():
    """A fault hook must see exactly the interpreter schedule: the
    generated step defers while it is attached, and results match."""
    cfg = config_by_name("T|D|X1|X2 +P")
    program = assemble(_LOOP, P)
    seen = {"jit": [], "interp": []}
    pes = {}
    for backend in ("jit", "interp"):
        pe = PipelinedPE(cfg, P, name=backend, backend=backend)
        program.configure(pe)
        pe.fault_hook = (
            lambda p, key=backend: seen[key].append(p.counters.cycles)
        )
        while not pe.halted:
            pe.step()
            pe.commit_queues()
        pes[backend] = pe
    assert seen["jit"] == seen["interp"]
    assert pes["jit"].counters == pes["interp"].counters


def test_block_run_refuses_staged_entries_and_still_completes():
    """``run_cycles`` must fall back to per-cycle stepping when entries
    are staged on a queue (the generated block loop refuses), without
    losing cycles or diverging."""
    cfg = config_by_name("T|D|X1|X2 +P+Q")
    program = assemble(_LOOP, P)
    results = {}
    for backend in ("jit", "interp"):
        pe = PipelinedPE(cfg, P, name=backend, backend=backend)
        program.configure(pe)
        pe.inputs[0].enqueue(7, 0)   # staged, deliberately uncommitted
        ran = pe.run_cycles(10_000)
        results[backend] = (ran, pe.halted, pe.counters.as_dict())
    assert results["jit"] == results["interp"]


def test_fingerprint_caching_makes_recompiles_free():
    clear_cache()
    cfg = config_by_name("T|D|X1|X2 +P+Q")
    program = assemble(_LOOP, P)
    first = PipelinedPE(cfg, P, name="pe0", backend="jit")
    program.configure(first)
    base = cache_stats()
    others = []
    for i in (1, 2):
        pe = PipelinedPE(cfg, P, name=f"pe{i}", backend="jit")
        program.configure(pe)
        others.append(pe)
    stats = cache_stats()
    assert stats["misses"] == base["misses"], "recompile was not a cache hit"
    assert stats["hits"] >= base["hits"] + 2
    key = fingerprint(first.instructions, cfg, P)
    assert first._jit.key == key == others[0]._jit.key
    src = generate_source(first.instructions, cfg, P)
    assert f"codegen v{CODEGEN_VERSION}" in src.splitlines()[0]


def test_jit_batch_steps_lanes_in_lockstep():
    """SoA batch mode: N lanes advance together and match a solo PE
    running the same program exactly."""
    cfg = config_by_name("T|D|X1|X2 +P+Q")
    program = assemble(_LOOP, P)
    batch = JitBatch(cfg, P)
    for lane in range(4):
        batch.add(program.instructions, name=f"lane{lane}")
    cycles = batch.run(10_000)
    assert batch.halted
    solo = PipelinedPE(cfg, P, name="solo", backend="jit")
    program.configure(solo)
    solo.run_cycles(10_000)
    assert solo.halted
    for pe in batch.pes:
        assert pe.counters == solo.counters
        assert pe.regs.snapshot() == solo.regs.snapshot()
        assert pe.counters.cycles <= cycles
