"""Figure 5: CPI stacks of the seven pipelines with +P / +P+Q."""

from repro.eval import figure5


def test_figure5(benchmark, cpi_table):
    stacks = benchmark.pedantic(
        lambda: figure5.compute(cpi_table), rounds=1, iterations=1)

    assert len(stacks) == 8

    # Predicate hazards: identical across the depth-2 partitions and
    # growing with depth (paper: 0.18 / 0.24 / 0.27 CPI at depths 2/3/4).
    depth2 = [stacks[n]["base"]["predicate_hazard"]
              for n in ("TD|X", "T|DX", "TDX1|X2")]
    assert max(depth2) - min(depth2) < 0.01
    depth3 = [stacks[n]["base"]["predicate_hazard"]
              for n in ("TD|X1|X2", "T|DX1|X2", "T|D|X")]
    d4 = stacks["T|D|X1|X2"]["base"]["predicate_hazard"]
    assert 0 < max(depth2) < min(depth3)
    assert max(depth3) < d4
    # Depth-3 partitions agree closely (queue-timing second-order effects
    # give a small spread; the paper reports them as identical).
    assert (max(depth3) - min(depth3)) / min(depth3) < 0.25

    # +P eliminates predicate hazards almost entirely, with virtually no
    # quashed instructions, at the cost of forbidden cycles.
    for partition in ("TD|X", "T|DX1|X2", "T|D|X1|X2"):
        base = stacks[partition]["base"]
        predicted = stacks[partition]["+P"]
        assert predicted["predicate_hazard"] < base["predicate_hazard"] * 0.15
        assert predicted["quashed"] < 0.1
        assert predicted["forbidden"] >= base["forbidden"]

    # +Q pulls the no-triggered component down toward the single-cycle
    # constant.
    single_cycle = sum(stacks["TDX"]["base"].values())
    for partition in ("TD|X1|X2", "T|DX1|X2", "T|D|X1|X2"):
        with_p = stacks[partition]["+P"]["none_triggered"]
        with_pq = stacks[partition]["+P+Q"]["none_triggered"]
        assert with_pq <= with_p

    # Headline: both optimizations cut 4-stage CPI by ~35% (paper: 35%).
    improvement = figure5.four_stage_improvement(cpi_table)
    assert 0.25 <= improvement <= 0.45

    print()
    print(figure5.render(cpi_table))
    print(f"\n4-stage CPI reduction from +P+Q: {improvement:.0%} (paper: 35%)")
