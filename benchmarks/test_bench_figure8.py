"""Figure 8: parametric analysis of the Pareto-optimal designs."""

from repro.eval import figure8


def test_figure8(benchmark, design_points):
    data = benchmark.pedantic(
        lambda: figure8.compute(points=design_points), rounds=1, iterations=1)
    frontier = data["frontier"]
    rows = data["rows"]

    assert len(frontier) >= 10

    # Two-stage pipelines with both optimizations trace most of the
    # frontier (the paper's T|DX +P+Q observation).
    two_stage_pq = [r for r in rows if r["design"] in
                    ("T|DX +P+Q", "TD|X +P+Q", "TDX1|X2 +P+Q", "TDX1|X2 +Q")]
    assert len(two_stage_pq) >= len(rows) * 0.4

    # The single-cycle TDX stays competitive through the low-power region.
    tdx_rows = [r for r in rows if r["design"] == "TDX"]
    assert tdx_rows, "TDX should appear on the frontier"
    assert all(r["pj_per_instruction"] < 5 for r in tdx_rows)

    # The performance extreme is a two-stage low-VT design...
    fastest = rows[0]
    assert fastest["vt"] == "lvt"
    assert fastest["ns_per_instruction"] < 2.0
    # ...and the low-power extreme is high-VT at sub-picojoule energy
    # (paper: 0.89 pJ for the frontier design, 0.67 pJ space minimum).
    low_power = data["low_power"].row()
    assert low_power["vt"] == "hvt"
    assert low_power["pj_per_instruction"] < 1.5

    # Little area variance across the frontier (paper observation).
    areas = [r["mm2"] for r in rows]
    assert max(areas) / min(areas) < 2.0

    # All power densities sit below the 65 nm CPU/GPU envelopes.
    assert data["max_density"] < figure8.PAPER["cpu_density_mean"]

    print()
    print(figure8.render(points=design_points))
