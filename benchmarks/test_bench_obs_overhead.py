"""Tracing-overhead guard for the observability layer.

Two properties keep telemetry honest:

* **disabled == free**: with no sink attached, the only instrumentation
  cost is one ``is not None`` test per seam — simulation results must be
  bit-identical to a run where the obs package was never imported, and
  throughput must be unaffected beyond noise;
* **enabled == bounded**: full event capture plus per-cycle fabric
  sampling may slow the simulator, but only by a bounded constant
  factor — a regression that makes tracing 10x slower would make the
  instrumented campaigns useless.
"""

import time

from repro.asm import assemble
from repro.obs import Telemetry, run_instrumented
from repro.pipeline import PipelinedPE, config_by_name
from repro.workloads.suite import run_workload

CONFIG = config_by_name("T|D|X1|X2 +P+Q")

LOOP = """
when %p == XXXXXXX0:
    ult %p1, %r0, $1000000; set %p = ZZZZZZZ1;
when %p == XXXXXX11:
    add %r0, %r0, $1; set %p = ZZZZZZ00;
when %p == XXXXXX01:
    halt;
"""


def _loop_throughput(cycles: int, telemetry: Telemetry | None) -> float:
    """Best-of-3 cycles/sec for the register loop, optionally traced."""
    best = 0.0
    for _ in range(3):
        pe = PipelinedPE(CONFIG, name="bench")
        assemble(LOOP).configure(pe)
        if telemetry is not None:
            telemetry.attach_pe(pe)
        start = time.perf_counter()
        for _ in range(cycles):
            pe.step()
            pe.commit_queues()
        elapsed = time.perf_counter() - start
        if telemetry is not None:
            telemetry.detach()
        best = max(best, cycles / elapsed)
    return best


def test_disabled_telemetry_is_bit_identical():
    """The load-bearing guarantee: attaching telemetry never changes
    simulated behavior, so *not* attaching it cannot either."""
    def factory(name):
        return PipelinedPE(CONFIG, name=name)

    bare = run_workload("string_search", make_pe=factory, scale=12, seed=0)
    traced = run_instrumented("string_search", config=CONFIG, scale=12, seed=0)
    assert bare.cycles == traced.cycles
    assert bare.worker_counters.as_dict() == traced.worker_counters.as_dict()
    for pe in bare.system.pes:
        twin = traced.system.pe(pe.name)
        assert pe.counters.as_dict() == twin.counters.as_dict()


def test_enabled_telemetry_overhead_bounded(benchmark):
    """Event capture costs something, but a bounded constant factor."""
    cycles = 20_000
    off = _loop_throughput(cycles, None)
    sink = Telemetry()
    on = benchmark.pedantic(
        lambda: _loop_throughput(cycles, sink), rounds=1, iterations=1
    )
    overhead = off / on
    print(f"\ntelemetry off: {off:12,.0f} cycles/sec")
    print(f"telemetry on : {on:12,.0f} cycles/sec ({overhead:.2f}x overhead)")
    # Generous bound: tracing must never cost an order of magnitude.
    assert overhead < 6.0, (
        f"telemetry overhead {overhead:.2f}x exceeds the 6x guard"
    )


def test_disabled_seam_cost_is_noise():
    """A run with the seams compiled in but no sink attached must match
    the throughput of an identical second run (both uninstrumented) —
    i.e. the seams themselves cost nothing measurable beyond jitter."""
    cycles = 20_000
    first = _loop_throughput(cycles, None)
    second = _loop_throughput(cycles, None)
    ratio = max(first, second) / min(first, second)
    assert ratio < 1.5, f"uninstrumented throughput unstable ({ratio:.2f}x)"
