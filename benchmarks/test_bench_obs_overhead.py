"""Tracing-overhead guard for the observability layer.

Two properties keep telemetry honest:

* **disabled == free**: with no sink attached, the only instrumentation
  cost is one ``is not None`` test per seam — simulation results must be
  bit-identical to a run where the obs package was never imported, and
  throughput must be unaffected beyond noise;
* **enabled == bounded**: full event capture plus per-cycle fabric
  sampling may slow the simulator, but only by a bounded constant
  factor — a regression that makes tracing 10x slower would make the
  instrumented campaigns useless.
"""

import time

from repro.asm import assemble
from repro.obs import Telemetry, run_instrumented
from repro.pipeline import PipelinedPE, config_by_name
from repro.workloads.suite import run_workload

CONFIG = config_by_name("T|D|X1|X2 +P+Q")

LOOP = """
when %p == XXXXXXX0:
    ult %p1, %r0, $1000000; set %p = ZZZZZZZ1;
when %p == XXXXXX11:
    add %r0, %r0, $1; set %p = ZZZZZZ00;
when %p == XXXXXX01:
    halt;
"""


def _loop_throughput(cycles: int, telemetry: Telemetry | None) -> float:
    """Best-of-3 cycles/sec for the register loop, optionally traced."""
    best = 0.0
    for _ in range(3):
        pe = PipelinedPE(CONFIG, name="bench")
        assemble(LOOP).configure(pe)
        if telemetry is not None:
            telemetry.attach_pe(pe)
        start = time.perf_counter()
        for _ in range(cycles):
            pe.step()
            pe.commit_queues()
        elapsed = time.perf_counter() - start
        if telemetry is not None:
            telemetry.detach()
        best = max(best, cycles / elapsed)
    return best


def test_disabled_telemetry_is_bit_identical():
    """The load-bearing guarantee: attaching telemetry never changes
    simulated behavior, so *not* attaching it cannot either."""
    def factory(name):
        return PipelinedPE(CONFIG, name=name)

    bare = run_workload("string_search", make_pe=factory, scale=12, seed=0)
    traced = run_instrumented("string_search", config=CONFIG, scale=12, seed=0)
    assert bare.cycles == traced.cycles
    assert bare.worker_counters.as_dict() == traced.worker_counters.as_dict()
    for pe in bare.system.pes:
        twin = traced.system.pe(pe.name)
        assert pe.counters.as_dict() == twin.counters.as_dict()


def test_enabled_telemetry_overhead_bounded(benchmark):
    """Event capture costs something, but a bounded constant factor."""
    cycles = 20_000
    off = _loop_throughput(cycles, None)
    sink = Telemetry()
    on = benchmark.pedantic(
        lambda: _loop_throughput(cycles, sink), rounds=1, iterations=1
    )
    overhead = off / on
    print(f"\ntelemetry off: {off:12,.0f} cycles/sec")
    print(f"telemetry on : {on:12,.0f} cycles/sec ({overhead:.2f}x overhead)")
    # Generous bound: tracing must never cost an order of magnitude.
    assert overhead < 6.0, (
        f"telemetry overhead {overhead:.2f}x exceeds the 6x guard"
    )


def test_disabled_seam_cost_is_noise():
    """A run with the seams compiled in but no sink attached must match
    the throughput of an identical second run (both uninstrumented) —
    i.e. the seams themselves cost nothing measurable beyond jitter."""
    cycles = 20_000
    first = _loop_throughput(cycles, None)
    second = _loop_throughput(cycles, None)
    ratio = max(first, second) / min(first, second)
    assert ratio < 1.5, f"uninstrumented throughput unstable ({ratio:.2f}x)"


# ----------------------------------------------------------------------
# Service-tier seam (repro.obs.svc): disabled == free there too
# ----------------------------------------------------------------------

_SERVICE_PAYLOADS = [
    {"workload": "gcd", "config": name, "scale": 4, "seed": 0}
    for name in ("TDX", "TDX +Q", "T|DX +P", "T|D|X1|X2 +P+Q")
]


def _service_campaign(obs):
    """One small serial campaign; returns its canonical result text."""
    from repro.serve import CampaignService
    from repro.serve.store import canonical_json

    with CampaignService(None, workers=1, serial=True, obs=obs) as service:
        results = service.run_job(
            "workload-run", _SERVICE_PAYLOADS, timeout=300.0
        )
    return canonical_json(results)


def test_disabled_service_obs_is_bit_identical():
    """The serve-tier guarantee: attaching ServiceObs (spans, metrics,
    sim stage tracing) never changes campaign results, so the
    ``obs=None`` path cannot either."""
    from repro.obs import ServiceObs

    bare = _service_campaign(None)
    traced = _service_campaign(ServiceObs(sim_trace=True))
    assert bare == traced


def test_service_obs_overhead_bounded(benchmark):
    """Spans + histograms + sim stage capture cost a bounded factor."""
    from repro.obs import ServiceObs

    def best_of(factory, rounds=3):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            _service_campaign(factory())
            best = min(best, time.perf_counter() - start)
        return best

    off = best_of(lambda: None)
    on = benchmark.pedantic(
        lambda: best_of(lambda: ServiceObs(sim_trace=True)),
        rounds=1, iterations=1,
    )
    overhead = on / off
    print(f"\nservice obs off: {off:8.3f}s")
    print(f"service obs on : {on:8.3f}s ({overhead:.2f}x overhead)")
    assert overhead < 6.0, (
        f"service obs overhead {overhead:.2f}x exceeds the 6x guard"
    )
