"""Figure 7: frontier benefit of +P and +Q in the balanced region."""

from repro.eval import figure7


def test_figure7(benchmark, cpi_table):
    data = benchmark.pedantic(
        lambda: figure7.compute(cpi_table), rounds=1, iterations=1)

    assert set(data["frontiers"]) == {"none", "+P", "+Q", "+P+Q"}

    # Both optimizations together improve the balanced frontier (paper:
    # 20-25%; our CPI campaign lands in the same tens-of-percent regime).
    combined = data["improvements"]["+P+Q"]
    assert combined is not None and combined > 0.08

    # +P alone carries most of the CPI benefit; +Q alone is smaller but
    # never harmful.
    assert data["improvements"]["+P"] is not None
    assert data["improvements"]["+Q"] is not None
    assert data["improvements"]["+Q"] >= -0.01
    assert combined >= data["improvements"]["+Q"]

    # Every feature frontier is at least as fast at its extreme as the
    # unoptimized one (the optimizations never lose throughput headroom
    # beyond the +P trigger-path cost, which CPI wins back).
    fastest_none = data["frontiers"]["none"][0].ns_per_instruction
    fastest_pq = data["frontiers"]["+P+Q"][0].ns_per_instruction
    assert fastest_pq <= fastest_none * 1.1

    print()
    print(figure7.render(cpi_table))
