"""Static-bound economics (not a paper exhibit).

Guards the two claims that make ``repro.analyze.perf`` useful as a
DSE pruning oracle for ROADMAP item 5's large sweeps: the analytic
bounds are orders of magnitude cheaper than simulation (a full
ten-workload x 48-config bound sweep costs seconds), and routing the
Section 3 sweep through ``sweep(prune=...)`` removes a large share of
the point evaluations while reproducing the exhaustive Pareto
frontier exactly.
"""

from __future__ import annotations

import time

from repro.dse.pareto import pareto_frontier
from repro.dse.prune import PruneOracle
from repro.dse.sweep import sweep
from repro.pipeline.config import all_configs


def _key(point):
    return (point.config_name, point.vt.value, point.vdd,
            round(point.frequency_hz))


def test_static_bound_sweep_costs_seconds():
    """Bounds for every workload x every config, no simulation: the
    price that makes prune-before-simulate viable at sweep scale."""
    configs = all_configs(include_padded=True)
    start = time.perf_counter()
    oracle = PruneOracle.from_workloads(configs, scale=12)
    elapsed = time.perf_counter() - start
    assert set(oracle.lower_bounds) == {c.name for c in configs}
    assert all(floor >= 1.0 for floor in oracle.lower_bounds.values())
    assert elapsed < 60.0, f"static bound sweep took {elapsed:.1f}s"


def test_pruned_sweep_reproduces_the_frontier(cpi_table):
    """Full Section 3 sweep vs the pruned one: identical frontier,
    with the majority of point evaluations skipped."""
    configs = all_configs()
    full = sweep(configs=configs, cpi_table=cpi_table)
    oracle = PruneOracle.from_workloads(configs, scale=cpi_table.scale)
    pruned = sweep(configs=configs, cpi_table=cpi_table, prune=oracle)

    assert sorted(map(_key, pareto_frontier(pruned))) == \
        sorted(map(_key, pareto_frontier(full)))
    stats = oracle.stats
    assert stats.points_total == len(full)
    assert stats.point_rate >= 0.5, stats.as_dict()
