"""Ablations of the design choices the paper calls out.

Not paper exhibits per se, but the knobs Sections 4-6 discuss:

* nested speculation (Section 6's proposed extension);
* queue-management policy: conservative vs +Q accounting vs the padded
  reject buffer (Section 5.3);
* instruction storage media (Section 4's CACTI analysis);
* memory latency sensitivity (the Section 6 caveat that the testbed
  emulates perfect caching);
* hardware queue depth (the operand-buffer sizing every spatial fabric
  must pick).
"""

import pytest

from repro.pipeline import PipelinedPE, config_by_name
from repro.pipeline.config import QueuePolicy
from repro.vlsi.components import INSTRUCTION_STORAGE, component
from repro.vlsi.synthesis import synthesize
from repro.vlsi.technology import VtFlavor
from repro.params import ArchParams
from repro.workloads import run_workload

WORKLOADS_SUBSET = ("bst", "merge", "udiv", "stream")


def _suite_cpi(config, scale=24, params=None, **system_kwargs):
    total = 0.0
    for name in WORKLOADS_SUBSET:
        run = run_workload(
            name,
            make_pe=lambda n: PipelinedPE(config, params or config_params(), name=n),
            scale=scale,
            params=params or config_params(),
        )
        total += run.worker_counters.cpi
    return total / len(WORKLOADS_SUBSET)


def config_params():
    from repro.params import DEFAULT_PARAMS
    return DEFAULT_PARAMS


def test_nested_speculation_ablation(benchmark):
    """Section 6: nested speculation should relieve the deep pipeline's
    pending-predicate stalls that the non-nested scheme leaves behind."""
    flat = config_by_name("T|D|X1|X2 +P+Q")
    nested = flat.with_options(speculative_depth=2)

    def measure():
        return _suite_cpi(flat), _suite_cpi(nested)

    flat_cpi, nested_cpi = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert nested_cpi <= flat_cpi * 1.02   # never meaningfully worse
    print(f"\n4-stage +P+Q CPI: non-nested {flat_cpi:.3f}, "
          f"nested(depth 2) {nested_cpi:.3f}")


def test_queue_policy_ablation(benchmark):
    """Effective accounting strictly dominates the padded reject buffer.

    Padding only removes *output*-side conservatism; on the Table 3
    suite the stalls come from the dequeue side (every enqueue-heavy
    loop also dequeues), so padding buys nothing while +Q accounting
    does — and padding still costs 13% more silicon.  This is exactly
    the Section 5.3 argument that pipeline inspection "may be dealt with
    more effectively and efficiently" than padding."""
    base = config_by_name("T|D|X1|X2 +P")
    effective = base.with_options(queue_policy=QueuePolicy.EFFECTIVE)
    padded = base.with_options(queue_policy=QueuePolicy.PADDED)

    def measure():
        return {
            "conservative": _suite_cpi(base),
            "effective": _suite_cpi(effective),
            "padded": _suite_cpi(padded),
        }

    cpis = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert cpis["effective"] < cpis["conservative"]
    # Padding addresses a hazard our deq-coupled workloads never hit alone.
    assert cpis["padded"] == pytest.approx(cpis["conservative"], rel=0.02)

    # And its silicon cost is an order of magnitude above the adders.
    svt = VtFlavor.SVT
    area_q = synthesize(effective, 1.0, svt, 500e6).area_um2
    area_pad = synthesize(padded, 1.0, svt, 500e6).area_um2
    assert area_pad > area_q * 1.10
    print(f"\nCPI: {cpis}; area +Q {area_q:.0f} um2 vs padded {area_pad:.0f} um2")


def test_padding_helps_pure_emit_loops(benchmark):
    """The one shape padding does fix: a tight enqueue loop with no
    dequeues, where in-flight enqueues alone block the trigger."""
    from repro.asm import assemble

    source = """
    when %p == XXXXXXX0:
        mov %o0.0, %r0; set %p = ZZZZZZZ1;
    when %p == XXXXXXX1:
        add %r0, %r0, $1; set %p = ZZZZZZZ0;
    """

    def run_policy(policy):
        config = config_by_name("T|D|X1|X2").with_options(queue_policy=policy)
        pe = PipelinedPE(config, name="emitter")
        assemble(source).configure(pe)
        emitted = 0
        for _ in range(400):
            pe.step()
            pe.commit_queues()
            while not pe.outputs[0].is_empty:   # a perfect consumer
                pe.outputs[0].dequeue()
                emitted += 1
        return emitted

    def measure():
        return {
            policy.value: run_policy(policy)
            for policy in (QueuePolicy.CONSERVATIVE, QueuePolicy.EFFECTIVE,
                           QueuePolicy.PADDED)
        }

    emitted = benchmark.pedantic(measure, rounds=1, iterations=1)
    # Both padding and accounting sustain the 2-cycle loop; conservative
    # accounting inserts an extra stall per iteration.
    assert emitted["padded"] > emitted["conservative"] * 1.2
    assert emitted["effective"] > emitted["conservative"] * 1.2
    print(f"\nwords emitted in 400 cycles: {emitted}")


def test_instruction_storage_ablation(benchmark):
    """Section 4: what each storage medium would do to the PE budget."""
    def measure():
        imem = component("instruction_memory")
        rows = {}
        for medium, (area_rel, power_rel) in INSTRUCTION_STORAGE.items():
            rows[medium] = {
                "imem_area_um2": imem.area_um2 * area_rel,
                "imem_power_mw": imem.power_w * 1e3 * power_rel,
            }
        return rows

    rows = benchmark(measure)
    register = rows["register"]
    mixed = rows["mixed_sram"]
    assert mixed["imem_area_um2"] == pytest.approx(
        register["imem_area_um2"] * 0.84)
    assert mixed["imem_power_mw"] == pytest.approx(
        register["imem_power_mw"] * 0.76)
    # The synthesis-observed latch store is the cheapest — the paper
    # rejected it on trigger-path timing, not on cost.
    assert rows["latch_synthesis"]["imem_power_mw"] < mixed["imem_power_mw"]


def test_memory_latency_sensitivity(benchmark):
    """The testbed's 4-cycle loads emulate perfect caching (Section 6);
    serial-load workloads degrade roughly linearly with latency."""
    from repro.workloads import get_workload
    config = config_by_name("TDX")

    def measure():
        cycles = {}
        for latency in (1, 4, 8):
            workload = get_workload("mean")
            system = workload.build(
                lambda n: PipelinedPE(config, name=n), 64, 0)
            system.memory_latency = latency
            for port in system.read_ports:
                port.latency = latency
            cycles[latency] = system.run()
            workload.check(system, 64, 0)
        return cycles

    cycles = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert cycles[1] < cycles[4] < cycles[8]
    print(f"\nmean workload cycles vs load latency: {cycles}")


def test_queue_depth_ablation(benchmark):
    """Deeper operand queues smooth producer/consumer rate mismatches."""
    def measure():
        cycles = {}
        for capacity in (1, 2, 4, 8):
            params = ArchParams(queue_capacity=capacity)
            run = run_workload(
                "merge",
                make_pe=lambda n: PipelinedPE(
                    config_by_name("T|D|X +P+Q"), params, name=n),
                scale=32,
                params=params,
            )
            cycles[capacity] = run.cycles
        return cycles

    cycles = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert cycles[4] <= cycles[1]
    assert cycles[8] <= cycles[2]
    print(f"\nmerge workload cycles vs queue capacity: {cycles}")


def test_decoupled_lsq_extension(benchmark):
    """Section 6 future work: per-PE load-store queues instead of
    separate read/write ports.  Same program, same results; the unified
    endpoint adds a store buffer with store-to-load forwarding."""
    from repro.arch import FunctionalPE
    from repro.fabric import System
    from repro.workloads.builder import ProgramBuilder

    count, cells, base = 64, 8, 16

    def histogram_program():
        b = ProgramBuilder(start_state="cmp")
        b.add(state="cmp", op=f"ult %p1, %r0, ${count}", next="act")
        b.add(state="act", flags={1: False}, op="halt")
        b.add(state="act", flags={1: True}, op=f"and %r2, %r0, ${cells - 1}",
              next="addr", comment="cell = i mod cells")
        b.add(state="addr", op=f"add %r3, %r2, ${base}", next="req")
        b.add(state="req", op="mov %o0.0, %r3", next="recv",
              comment="load request")
        b.add(state="recv", checks=["%i0.0"], op="add %r4, %i0, $1",
              deq=["%i0"], next="sa", comment="increment the cell")
        b.add(state="sa", op="mov %o1.0, %r3", next="sd")
        b.add(state="sd", op="mov %o2.0, %r4", next="inc")
        b.add(state="inc", op="add %r0, %r0, $1", next="cmp")
        return b.program("histogram")

    def run(use_lsq):
        system = System(memory_words=64, memory_latency=4)
        pe = FunctionalPE(name="histogram")
        histogram_program().configure(pe)
        system.add_pe(pe)
        if use_lsq:
            system.add_load_store_queue(
                pe, load_request_out=0, load_response_in=0,
                store_address_out=1, store_data_out=2)
        else:
            system.add_read_port(pe, request_out=0, response_in=0)
            system.add_write_port(pe, 1, pe, 2)
        cycles = system.run()
        return cycles, system.memory.dump(base, cells)

    def measure():
        return {"ports": run(False), "lsq": run(True)}

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    port_cycles, port_cells = results["ports"]
    lsq_cycles, lsq_cells = results["lsq"]
    expected = [count // cells] * cells
    assert port_cells == expected
    assert lsq_cells == expected
    # The unified endpoint matches the two-port fabric's performance.
    assert lsq_cycles == pytest.approx(port_cycles, rel=0.1)
    print(f"\nhistogram RMW: ports {port_cycles} cycles, LSQ {lsq_cycles} cycles")
