"""JIT economics: codegen amortization and cache reuse (not a paper
exhibit).

Guards the claim that makes the ``repro.jit`` backend usable by
default in campaigns: specialization pays for itself within the first
workload-scale run (cold cache, codegen time included in the JIT
side), and content fingerprinting makes every later instantiation of
the same (program, config, params) tuple a free cache hit — zero
recompiles across a whole suite re-run.
"""

from __future__ import annotations

import time

from repro.jit import cache_stats, clear_cache
from repro.params import DEFAULT_PARAMS
from repro.pipeline import PipelinedPE, config_by_name
from repro.workloads.suite import WORKLOADS, get_workload

CONFIG = "T|D|X1|X2 +P+Q"


def _run_suite(backend: str, scale: int) -> float:
    """Wall-clock for one full Table 3 suite pass, build + run + check.

    Deliberately *includes* program load (and therefore codegen, when
    the cache is cold) so the JIT side pays its own compile bill.
    """
    cfg = config_by_name(CONFIG)
    start = time.perf_counter()
    for name in WORKLOADS():
        workload = get_workload(name)
        system = workload.build(
            lambda n: PipelinedPE(cfg, DEFAULT_PARAMS, name=n,
                                  backend=backend),
            scale, 1,
        )
        system.run(max_cycles=8_000_000)
        workload.check(system, scale, 1)
    return time.perf_counter() - start


def test_jit_amortizes_within_one_suite_run(bench_scale):
    """Cold-cache JIT (codegen included) beats the interpreter within a
    single workload-scale suite pass."""
    scale = max(bench_scale, 48)
    interp = min(_run_suite("interp", scale) for _ in range(2))
    clear_cache()
    jit_cold = _run_suite("jit", scale)
    assert jit_cold < interp, (
        f"cold JIT pass ({jit_cold:.2f}s incl codegen) did not amortize "
        f"within one scale-{scale} suite run (interp {interp:.2f}s)"
    )


def test_fingerprint_cache_makes_suite_recompiles_free(bench_scale):
    """A second suite pass compiles nothing: every program resolves to
    a cache hit by content fingerprint."""
    clear_cache()
    _run_suite("jit", bench_scale)
    after_first = cache_stats()
    assert after_first["misses"] > 0
    _run_suite("jit", bench_scale)
    after_second = cache_stats()
    assert after_second["misses"] == after_first["misses"], (
        "second suite pass recompiled programs that were already cached"
    )
    assert after_second["hits"] > after_first["hits"]
    assert after_second["entries"] == after_first["entries"]
