"""Figure 6: energy-delay frontiers per supply voltage."""

from repro.eval import figure6


def test_figure6(benchmark, design_points):
    data = benchmark.pedantic(
        lambda: figure6.compute(points=design_points), rounds=1, iterations=1)

    # A large characterized space (paper: over 4,000 points across the
    # 32-microarchitecture matrix; including the padded alternates used in
    # Section 5.4 pushes the modeled space past that).
    assert len(data["points"]) > 3000

    # One frontier per characterized supply voltage.
    assert set(data["frontiers"]) == {0.4, 0.6, 0.7, 0.8, 0.9, 1.0}

    # Lower supplies trace lower-energy, slower frontiers.
    fastest_1v = data["frontiers"][1.0][0].ns_per_instruction
    fastest_04v = data["frontiers"][0.4][0].ns_per_instruction
    assert fastest_1v < fastest_04v
    leanest_1v = min(p.pj_per_instruction for p in data["frontiers"][1.0])
    leanest_04v = min(p.pj_per_instruction for p in data["frontiers"][0.4])
    assert leanest_04v < leanest_1v

    # The whole-space span: paper reports 71x energy and 225x delay.
    span = data["span"]
    assert 30 <= span["energy_span"] <= 200
    assert 100 <= span["delay_span"] <= 600
    assert span["min_pj"] < 1.5        # sub-picojoule territory (paper 0.67)
    assert span["max_ns"] > 200        # hundreds of ns at the slow extreme

    # The performance extreme is low-VT; the low-power tail is high-VT.
    fastest = min(data["points"], key=lambda p: p.ns_per_instruction)
    leanest = min(data["points"], key=lambda p: p.pj_per_instruction)
    assert fastest.vt.value == "lvt"
    assert leanest.vt.value == "hvt"

    print()
    print(figure6.render(points=design_points))
