"""Simulator performance harness: throughput and campaign wall-clock.

Measures the quantities the fast path, the ``repro.jit`` specialization
backend, and the parallel campaigns were built for, and writes them to
a JSON baseline (``benchmarks/BENCH_simulator.json``) so regressions
show up as diffs:

* **cycles/sec** of the pipelined PE on a register-loop microbenchmark,
  for the reference dataclass walk (fast path off), the compiled-trigger
  + memoized fast path, and the JIT backend in per-cycle and block
  dispatch modes;
* **Table 3 suite cycles/sec**: the full ten-workload suite run
  end-to-end through the fused ``System`` loop, interpreter vs JIT,
  with simulation time isolated from workload build/validation;
* **campaign wall-clock** for a CPI campaign over several configs.  The
  parallel-vs-serial comparison is only measured (and the speedup only
  claimed) when the host actually has more than one CPU; on 1-core
  hosts the harness records the serial number and says so instead of
  reporting a vacuous ``speedup: 1.0``.

Usage::

    PYTHONPATH=src python benchmarks/perf_harness.py [--quick]
        [--cycles N] [--scale N] [--suite-scale N] [--workers N]
        [--out PATH]

``--quick`` shrinks every measurement for CI smoke runs (the JSON is
then written only if ``--out`` is given explicitly).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.asm import assemble
from repro.dse.cpi import CpiTable
from repro.jit import clear_cache
from repro.parallel import resolve_workers
from repro.params import DEFAULT_PARAMS
from repro.pipeline import PipelinedPE, config_by_name
from repro.pipeline.config import all_configs
from repro.workloads.suite import WORKLOADS, get_workload

LOOP = """
when %p == XXXXXXX0:
    ult %p1, %r0, $1000000; set %p = ZZZZZZZ1;
when %p == XXXXXX11:
    add %r0, %r0, $1; set %p = ZZZZZZ00;
when %p == XXXXXX01:
    halt;
"""

BENCH_CONFIG = "T|D|X1|X2 +P+Q"


def _make_pe(fast_path: bool = True, backend: str = "interp") -> PipelinedPE:
    pe = PipelinedPE(
        config_by_name(BENCH_CONFIG), name="bench", fast_path=fast_path,
        backend=backend,
    )
    assemble(LOOP).configure(pe)
    return pe


def measure_throughput(cycles: int, fast_path: bool, repeats: int = 3) -> float:
    """Best-of-N cycles/sec for per-cycle stepping on the loop program."""
    best = 0.0
    for _ in range(repeats):
        pe = _make_pe(fast_path=fast_path)
        start = time.perf_counter()
        for _ in range(cycles):
            pe.step()
            pe.commit_queues()
        elapsed = time.perf_counter() - start
        best = max(best, cycles / elapsed)
    return best


def measure_jit_throughput(cycles: int, repeats: int = 3) -> tuple[float, float]:
    """Best-of-N (step_mode, block_mode) cycles/sec for the JIT backend.

    *step mode* drives the generated per-cycle ``step`` through the same
    step/commit loop as the interpreter; *block mode* dispatches the
    generated ``run`` block loop via ``run_cycles`` — the form the fused
    ``System`` loop uses.  Codegen happens outside the timed region
    (amortization is covered separately by ``test_bench_jit``).
    """
    best_step = best_block = 0.0
    for _ in range(repeats):
        pe = _make_pe(backend="jit")
        start = time.perf_counter()
        for _ in range(cycles):
            pe.step()
            pe.commit_queues()
        elapsed = time.perf_counter() - start
        best_step = max(best_step, cycles / elapsed)

        pe = _make_pe(backend="jit")
        start = time.perf_counter()
        ran = pe.run_cycles(cycles)
        elapsed = time.perf_counter() - start
        best_block = max(best_block, ran / elapsed)
    return best_step, best_block


def measure_suite(scale: int, repeats: int = 2) -> dict:
    """Table 3 suite cycles/sec, interpreter vs JIT, simulation time only.

    Each workload is built (and validated) outside the timed region;
    only ``System.run`` is timed.  The aggregate is cycle-weighted:
    total simulated cycles over total simulation seconds, best of N
    whole-suite passes.
    """
    cfg = config_by_name(BENCH_CONFIG)

    def one_pass(backend: str) -> tuple[int, float, dict[str, float]]:
        total_cycles, total_seconds, per = 0, 0.0, {}
        for name in WORKLOADS():
            workload = get_workload(name)
            system = workload.build(
                lambda n: PipelinedPE(cfg, DEFAULT_PARAMS, name=n,
                                      backend=backend),
                scale, 1,
            )
            start = time.perf_counter()
            cycles = system.run(max_cycles=8_000_000)
            elapsed = time.perf_counter() - start
            workload.check(system, scale, 1)
            total_cycles += cycles
            total_seconds += elapsed
            per[name] = cycles / elapsed
        return total_cycles, total_seconds, per

    results = {}
    for backend in ("interp", "jit"):
        best = None
        for _ in range(repeats):
            cycles, seconds, per = one_pass(backend)
            if best is None or cycles / seconds > best[0]:
                best = (cycles / seconds, cycles, per)
        results[backend] = best
    speedup = results["jit"][0] / results["interp"][0]
    return {
        "scale": scale,
        "total_cycles": results["interp"][1],
        "interp_cycles_per_sec": round(results["interp"][0]),
        "jit_cycles_per_sec": round(results["jit"][0]),
        "speedup": round(speedup, 2),
        "per_workload_speedup": {
            name: round(results["jit"][2][name] / results["interp"][2][name], 2)
            for name in results["interp"][2]
        },
    }


def measure_campaign(
    scale: int, num_configs: int, workers: int
) -> tuple[float, float | None]:
    """(serial_seconds, parallel_seconds or None) for a CPI campaign.

    The parallel leg only runs when the pool is actually wider than one
    worker; otherwise it would measure the same serial execution plus
    pool overhead and invite a meaningless "speedup" ratio.
    """
    configs = all_configs()[:num_configs]

    os.environ["REPRO_SERIAL"] = "1"
    try:
        table = CpiTable(scale=scale)
        start = time.perf_counter()
        table.populate(configs)
        serial = time.perf_counter() - start
    finally:
        del os.environ["REPRO_SERIAL"]

    if workers <= 1:
        return serial, None

    table = CpiTable(scale=scale)
    start = time.perf_counter()
    table.populate(configs, workers=workers)
    parallel = time.perf_counter() - start
    return serial, parallel


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cycles", type=int, default=60_000,
                        help="simulated cycles per throughput repeat")
    parser.add_argument("--scale", type=int, default=12,
                        help="workload scale for the campaign measurement")
    parser.add_argument("--suite-scale", type=int, default=96,
                        help="workload scale for the Table 3 suite "
                             "interp-vs-JIT measurement")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool width for the parallel campaign "
                             "(default: repro.parallel policy)")
    parser.add_argument("--quick", action="store_true",
                        help="tiny measurements for CI smoke runs")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: "
                             "benchmarks/BENCH_simulator.json; quick runs "
                             "only write when given explicitly)")
    args = parser.parse_args(argv)

    cycles = 5_000 if args.quick else args.cycles
    scale = 6 if args.quick else args.scale
    suite_scale = 12 if args.quick else args.suite_scale
    num_configs = 2 if args.quick else 8
    repeats = 1 if args.quick else 3
    workers = resolve_workers(args.workers)

    clear_cache()
    reference = measure_throughput(cycles, fast_path=False, repeats=repeats)
    fast = measure_throughput(cycles, fast_path=True, repeats=repeats)
    jit_step, jit_block = measure_jit_throughput(cycles, repeats=repeats)
    print(f"throughput reference : {reference:12,.0f} cycles/sec")
    print(f"throughput fast path : {fast:12,.0f} cycles/sec "
          f"({fast / reference:.2f}x)")
    print(f"throughput jit step  : {jit_step:12,.0f} cycles/sec "
          f"({jit_step / fast:.2f}x over fast path)")
    print(f"throughput jit block : {jit_block:12,.0f} cycles/sec "
          f"({jit_block / fast:.2f}x over fast path)")

    suite = measure_suite(suite_scale, repeats=max(2, repeats - 1))
    print(f"suite interp         : {suite['interp_cycles_per_sec']:12,} "
          f"cycles/sec (scale {suite['scale']}, "
          f"{suite['total_cycles']:,} cycles)")
    print(f"suite jit            : {suite['jit_cycles_per_sec']:12,} "
          f"cycles/sec ({suite['speedup']:.2f}x)")

    serial_s, parallel_s = measure_campaign(scale, num_configs, workers)
    print(f"campaign serial      : {serial_s:8.2f} s "
          f"({num_configs} configs, scale {scale})")
    if parallel_s is None:
        print(f"campaign parallel    : skipped (1 worker on a "
              f"{os.cpu_count()}-CPU host; no parallelism to measure)")
        sweep_speedup = None
    else:
        sweep_speedup = serial_s / parallel_s if parallel_s else float("inf")
        print(f"campaign {workers:2d} workers  : {parallel_s:8.2f} s "
              f"({sweep_speedup:.2f}x)")

    payload = {
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "throughput": {
            "config": BENCH_CONFIG,
            "cycles": cycles,
            "reference_cycles_per_sec": round(reference),
            "fast_path_cycles_per_sec": round(fast),
            "jit_step_cycles_per_sec": round(jit_step),
            "jit_block_cycles_per_sec": round(jit_block),
            "fast_path_speedup": round(fast / reference, 2),
            "jit_speedup_over_fast_path": round(jit_block / fast, 2),
        },
        "suite": suite,
        "campaign": {
            "scale": scale,
            "configs": num_configs,
            "workers": workers,
            "serial_seconds": round(serial_s, 3),
            "parallel_seconds": (
                None if parallel_s is None else round(parallel_s, 3)
            ),
            "speedup": (
                None if sweep_speedup is None else round(sweep_speedup, 2)
            ),
            "note": (
                "parallel leg skipped: single-CPU host"
                if parallel_s is None else ""
            ),
        },
    }
    out = args.out
    if out is None and not args.quick:
        out = os.path.join(os.path.dirname(__file__), "BENCH_simulator.json")
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
