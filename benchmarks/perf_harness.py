"""Simulator performance harness: throughput and campaign wall-clock.

Measures the two quantities the fast path and the parallel campaigns
were built for, and writes them to a JSON baseline
(``benchmarks/BENCH_simulator.json``) so regressions show up as diffs:

* **cycles/sec** of the pipelined PE on a register-loop microbenchmark,
  with the compiled-trigger + memoized fast path on and off (the *off*
  path is the original per-cycle dataclass walk, kept as the reference
  for the differential tests);
* **campaign wall-clock** for a CPI campaign over several configs, run
  serially and through the process pool, plus the resulting speedup.

Usage::

    PYTHONPATH=src python benchmarks/perf_harness.py [--quick]
        [--cycles N] [--scale N] [--workers N] [--out PATH]

``--quick`` shrinks every measurement for CI smoke runs (the JSON is
then written only if ``--out`` is given explicitly).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.asm import assemble
from repro.dse.cpi import CpiTable
from repro.parallel import resolve_workers
from repro.pipeline import PipelinedPE, config_by_name
from repro.pipeline.config import all_configs

LOOP = """
when %p == XXXXXXX0:
    ult %p1, %r0, $1000000; set %p = ZZZZZZZ1;
when %p == XXXXXX11:
    add %r0, %r0, $1; set %p = ZZZZZZ00;
when %p == XXXXXX01:
    halt;
"""

BENCH_CONFIG = "T|D|X1|X2 +P+Q"


def measure_throughput(cycles: int, fast_path: bool, repeats: int = 3) -> float:
    """Best-of-N cycles/sec for the pipelined PE on the loop program."""
    best = 0.0
    for _ in range(repeats):
        pe = PipelinedPE(
            config_by_name(BENCH_CONFIG), name="bench", fast_path=fast_path
        )
        assemble(LOOP).configure(pe)
        start = time.perf_counter()
        for _ in range(cycles):
            pe.step()
            pe.commit_queues()
        elapsed = time.perf_counter() - start
        best = max(best, cycles / elapsed)
    return best


def measure_campaign(
    scale: int, num_configs: int, workers: int
) -> tuple[float, float]:
    """(serial_seconds, parallel_seconds) for a CPI campaign."""
    configs = all_configs()[:num_configs]

    os.environ["REPRO_SERIAL"] = "1"
    try:
        table = CpiTable(scale=scale)
        start = time.perf_counter()
        table.populate(configs)
        serial = time.perf_counter() - start
    finally:
        del os.environ["REPRO_SERIAL"]

    table = CpiTable(scale=scale)
    start = time.perf_counter()
    table.populate(configs, workers=workers)
    parallel = time.perf_counter() - start
    return serial, parallel


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cycles", type=int, default=60_000,
                        help="simulated cycles per throughput repeat")
    parser.add_argument("--scale", type=int, default=12,
                        help="workload scale for the campaign measurement")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool width for the parallel campaign "
                             "(default: repro.parallel policy)")
    parser.add_argument("--quick", action="store_true",
                        help="tiny measurements for CI smoke runs")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: "
                             "benchmarks/BENCH_simulator.json; quick runs "
                             "only write when given explicitly)")
    args = parser.parse_args(argv)

    cycles = 5_000 if args.quick else args.cycles
    scale = 6 if args.quick else args.scale
    num_configs = 2 if args.quick else 8
    repeats = 1 if args.quick else 3
    workers = resolve_workers(args.workers)

    reference = measure_throughput(cycles, fast_path=False, repeats=repeats)
    fast = measure_throughput(cycles, fast_path=True, repeats=repeats)
    print(f"throughput reference : {reference:12,.0f} cycles/sec")
    print(f"throughput fast path : {fast:12,.0f} cycles/sec "
          f"({fast / reference:.2f}x)")

    serial_s, parallel_s = measure_campaign(scale, num_configs, workers)
    sweep_speedup = serial_s / parallel_s if parallel_s else float("inf")
    print(f"campaign serial      : {serial_s:8.2f} s "
          f"({num_configs} configs, scale {scale})")
    print(f"campaign {workers:2d} workers  : {parallel_s:8.2f} s "
          f"({sweep_speedup:.2f}x)")

    payload = {
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "throughput": {
            "config": BENCH_CONFIG,
            "cycles": cycles,
            "reference_cycles_per_sec": round(reference),
            "fast_path_cycles_per_sec": round(fast),
            "speedup": round(fast / reference, 2),
        },
        "campaign": {
            "scale": scale,
            "configs": num_configs,
            "workers": workers,
            "serial_seconds": round(serial_s, 3),
            "parallel_seconds": round(parallel_s, 3),
            "speedup": round(sweep_speedup, 2),
        },
    }
    out = args.out
    if out is None and not args.quick:
        out = os.path.join(os.path.dirname(__file__), "BENCH_simulator.json")
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
