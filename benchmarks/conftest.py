"""Benchmark fixtures.

The CPI campaign (32 microarchitectures x 10 workloads on the
cycle-accurate simulator) backs Figures 5-8; it runs once per session at
a moderate workload scale and is cached on disk next to the benchmarks
so repeated runs skip straight to the analysis.

``REPRO_BENCH_SCALE`` overrides the campaign scale (smaller for smoke
runs, larger for publication-grade numbers).  The disk cache is keyed by
a fingerprint over the scale, seed, architectural parameters and config
set, so results from different scales never alias.
"""

from __future__ import annotations

import os

import pytest

from repro.dse.cpi import CpiTable
from repro.dse.sweep import sweep
from repro.pipeline.config import all_configs

BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "24"))
_CACHE = os.path.join(os.path.dirname(__file__), ".cpi_cache.json")


@pytest.fixture(scope="session")
def bench_scale() -> int:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def cpi_table() -> CpiTable:
    return CpiTable(
        scale=BENCH_SCALE, cache_path=_CACHE, configs=all_configs()
    )


@pytest.fixture(scope="session")
def design_points(cpi_table):
    return sweep(cpi_table=cpi_table)
