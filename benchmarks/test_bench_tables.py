"""Tables 1-3: parameters, instruction encoding, and the workload suite."""

from repro.asm import assemble
from repro.eval import table1, table2, table3
from repro.params import ArchParams, DEFAULT_PARAMS
from repro.workloads import run_workload


def test_table1(benchmark):
    """Table 1: parameter derivation (and the paper's fixed values)."""
    rows = benchmark(lambda: table1.compute(ArchParams()))
    values = {name: value for name, __, value in rows}
    for name, expected in table1.PAPER_VALUES.items():
        assert values[name] == expected


def test_table2(benchmark):
    """Table 2: field widths summing to the 106-bit instruction."""
    widths = benchmark(table2.compute)
    assert widths == table2.PAPER_WIDTHS
    assert sum(widths.values()) == table2.PAPER_TOTAL_BITS
    assert DEFAULT_PARAMS.padded_instruction_width == table2.PAPER_PADDED_BITS


def test_table2_encode_throughput(benchmark):
    """Assembling and encoding a full 16-instruction PE program."""
    source = "\n".join(
        f"when %p == XXXXXX{i % 4:02b} with %i0.0:\n"
        f"    add %r{i % 8}, %r{(i + 1) % 8}, %i0; deq %i0;"
        for i in range(DEFAULT_PARAMS.num_instructions)
    )
    blob = benchmark(lambda: assemble(source).binary(DEFAULT_PARAMS))
    assert len(blob) == 16 * 16   # sixteen 128-bit instructions


def test_table3(benchmark):
    """Table 3: the whole suite runs and validates on the functional model."""
    reports = benchmark.pedantic(
        lambda: table3.compute(scale=24), rounds=1, iterations=1)
    assert len(reports) == 10
    assert all(r.validated for r in reports)
    # The paper's behavioral contrast: stream hits CPI 1, bst is
    # memory-bound, merge/filter are branchy but flowing.
    by_name = {r.name: r for r in reports}
    assert by_name["stream"].worker_cpi < 1.2
    assert by_name["bst"].worker_cpi > 1.5


def test_table3_single_workload_run(benchmark):
    """Cost of one representative workload execution (bst, the paper's
    activity-extraction workload)."""
    run = benchmark.pedantic(
        lambda: run_workload("bst", scale=24), rounds=1, iterations=1)
    assert run.worker_counters.retired > 0
