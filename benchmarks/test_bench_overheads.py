"""Sections 4 / 5.4: every scalar area/power/timing claim."""

import pytest

from repro.eval import overheads


def test_overheads(benchmark):
    data = benchmark(overheads.compute)
    paper = overheads.PAPER
    features = data["features"]

    assert features["base"]["area_um2"] == pytest.approx(
        paper["pipe4_area_um2"], rel=1e-3)
    assert features["base"]["power_mw"] == pytest.approx(
        paper["pipe4_power_mw"], rel=0.005)
    assert features["+P"]["area_um2"] == pytest.approx(
        paper["p_area_um2"], rel=1e-3)
    assert features["+P"]["power_mw"] == pytest.approx(
        paper["p_power_mw"], rel=0.005)
    assert features["+Q"]["area_um2"] == pytest.approx(
        paper["q_area_um2"], rel=1e-3)
    assert features["+P+Q"]["area_um2"] == pytest.approx(
        paper["pq_area_um2"], rel=1e-3)
    assert features["+P+Q"]["power_mw"] == pytest.approx(
        paper["pq_power_mw"], rel=0.005)
    assert features["padded"]["area_um2"] == pytest.approx(
        paper["padded_area_um2"], rel=1e-3)
    assert features["padded"]["power_mw"] == pytest.approx(
        paper["padded_power_mw"], rel=0.005)

    # Combined features: +1.4% area, +8% power (Section 5.4).
    assert features["+P+Q"]["area_um2"] / features["base"]["area_um2"] - 1 == \
        pytest.approx(0.014, abs=0.002)
    assert features["+P+Q"]["power_mw"] / features["base"]["power_mw"] - 1 == \
        pytest.approx(0.08, abs=0.01)

    # Padding instead: +13% area, +12% power.
    assert features["padded"]["area_um2"] / features["base"]["area_um2"] - 1 == \
        pytest.approx(0.13, abs=0.01)

    assert data["pipe_register_mw"] == pytest.approx(
        paper["pipe_register_mw"], abs=0.002)
    assert data["trigger_fo4"] == pytest.approx(paper["trigger_fo4"])
    assert data["trigger_fo4_with_p"] == pytest.approx(
        paper["trigger_fo4_with_p"])
    assert data["pipe4_fmax_mhz"] == pytest.approx(
        paper["pipe4_fmax_mhz"], rel=0.001)

    storage = data["storage"]
    assert storage["mixed_vs_register_area"] == pytest.approx(-0.16, abs=0.005)
    assert storage["mixed_vs_register_power"] == pytest.approx(-0.24, abs=0.005)
    assert storage["mixed_vs_latch_area"] == pytest.approx(-0.09, abs=0.005)
    assert storage["mixed_vs_latch_power"] == pytest.approx(-0.19, abs=0.005)

    print()
    print(overheads.render())
