"""Paper-scale validation run (Section 3).

The authors extracted VLSI activity from a bst execution of roughly
90,000-160,000 cycles depending on the microarchitecture.  This bench
runs bst at a comparable scale on the single-cycle baseline and on the
deepest pipeline with and without the optimizations, checking that the
cycle counts land in the paper's order-of-magnitude band and that the
microarchitectural ordering holds at full scale, not just on the small
test inputs.
"""

from repro.pipeline import PipelinedPE, config_by_name
from repro.workloads import run_workload

SCALE = 400   # keys searched; ~10 tree levels -> ~100k cycles baseline


def _run(config_name):
    config = config_by_name(config_name)
    return run_workload(
        "bst",
        make_pe=lambda name: PipelinedPE(config, name=name),
        scale=SCALE,
    )


def test_bst_at_paper_scale(benchmark):
    def measure():
        return {
            "TDX": _run("TDX"),
            "T|D|X1|X2": _run("T|D|X1|X2"),
            "T|D|X1|X2 +P+Q": _run("T|D|X1|X2 +P+Q"),
        }

    runs = benchmark.pedantic(measure, rounds=1, iterations=1)
    cycles = {name: run.cycles for name, run in runs.items()}

    # Order-of-magnitude band of the paper's activity-extraction runs.
    for name, count in cycles.items():
        assert 50_000 <= count <= 400_000, (name, count)

    # The microarchitectural ordering survives at full scale.
    assert cycles["TDX"] < cycles["T|D|X1|X2 +P+Q"] < cycles["T|D|X1|X2"]

    # The optimizations recover a large share of the pipelining loss.
    loss = cycles["T|D|X1|X2"] - cycles["TDX"]
    recovered = cycles["T|D|X1|X2"] - cycles["T|D|X1|X2 +P+Q"]
    assert recovered > 0.35 * loss

    retired = runs["TDX"].worker_counters.retired
    print(f"\nbst at scale {SCALE}: {retired} worker instructions retired")
    for name, count in cycles.items():
        print(f"  {name:18s} {count:7d} cycles "
              f"(CPI {runs[name].worker_counters.cpi:.2f})")
