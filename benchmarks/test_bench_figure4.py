"""Figure 4: predicate write frequency and prediction accuracy."""

from repro.eval import figure4


def test_figure4(benchmark, bench_scale):
    reports = benchmark.pedantic(
        lambda: figure4.compute(scale=bench_scale * 2), rounds=1, iterations=1)
    by_name = {r.name: r for r in reports}

    assert len(reports) == 10

    # dot_product's worker does not rely on predicates for control flow.
    assert by_name["dot_product"].predicate_write_rate == 0
    assert by_name["dot_product"].accuracy is None

    # filter and merge: high-entropy data-dependent control, worst-case
    # accuracy around 50%.
    for name in ("filter", "merge"):
        assert by_name[name].accuracy < 0.75, name

    # gcd, stream, mean: long predictable loops, near-perfect.
    for name in ("gcd", "stream", "mean"):
        assert by_name[name].accuracy > 0.85, name

    # bst and udiv: unpredictable branches nested in predictable loops.
    for name in ("bst", "udiv"):
        assert 0.6 < by_name[name].accuracy < 0.95, name

    # Every benchmark except dot_product writes predicates dynamically.
    rates = [r.predicate_write_rate for r in reports if r.name != "dot_product"]
    assert all(rate > 0.1 for rate in rates)

    print()
    print(figure4.render(scale=bench_scale * 2))
