"""Figure 3: single-cycle PE area/power breakdown."""

import pytest

from repro.eval import figure3


def test_figure3(benchmark):
    data = benchmark(figure3.compute)

    assert data["total_area_um2"] == pytest.approx(
        figure3.PAPER["total_area_um2"])
    assert data["total_power_mw"] == pytest.approx(
        figure3.PAPER["total_power_mw"])

    imem = data["components"]["instruction_memory"]
    assert imem["area_fraction"] == pytest.approx(
        figure3.PAPER["instruction_memory_area"])
    assert imem["power_fraction"] == pytest.approx(
        figure3.PAPER["instruction_memory_power"])

    sched = data["components"]["scheduler"]
    assert sched["area_fraction"] == pytest.approx(figure3.PAPER["scheduler_area"])
    assert sched["power_fraction"] == pytest.approx(figure3.PAPER["scheduler_power"])

    queues = data["components"]["queues"]
    assert queues["area_fraction"] == pytest.approx(figure3.PAPER["queues_area"])
    assert queues["power_fraction"] == pytest.approx(figure3.PAPER["queues_power"])

    split = data["split"]
    assert split["front_area"] == pytest.approx(figure3.PAPER["front_area"], abs=0.01)
    assert split["back_area"] == pytest.approx(figure3.PAPER["back_area"], abs=0.01)
    assert split["front_power"] == pytest.approx(figure3.PAPER["front_power"], abs=0.01)
    assert split["back_power"] == pytest.approx(figure3.PAPER["back_power"], abs=0.01)

    print()
    print(figure3.render())
