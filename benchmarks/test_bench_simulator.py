"""Simulator throughput microbenchmarks (not a paper exhibit).

Tracks the cost of the building blocks so performance regressions in the
simulators show up in benchmark runs.
"""

from repro.arch import FunctionalPE
from repro.asm import assemble
from repro.isa.encoding import decode_program
from repro.params import DEFAULT_PARAMS
from repro.pipeline import PipelinedPE, config_by_name

LOOP = """
when %p == XXXXXXX0:
    ult %p1, %r0, $1000000; set %p = ZZZZZZZ1;
when %p == XXXXXX11:
    add %r0, %r0, $1; set %p = ZZZZZZ00;
when %p == XXXXXX01:
    halt;
"""


def _run_cycles(pe, cycles):
    for _ in range(cycles):
        pe.step()
        pe.commit_queues()
    return pe.counters.retired


def test_functional_simulator_throughput(benchmark):
    pe = FunctionalPE(name="bench")
    assemble(LOOP).configure(pe)
    retired = benchmark(_run_cycles, pe, 2_000)
    assert retired > 0


def test_pipelined_simulator_throughput(benchmark):
    pe = PipelinedPE(config_by_name("T|D|X1|X2 +P+Q"), name="bench")
    assemble(LOOP).configure(pe)
    retired = benchmark(_run_cycles, pe, 2_000)
    assert retired > 0


def test_assembler_throughput(benchmark):
    source = "\n".join(
        f"when %p == XXXXXX{i % 4:02b} with %i{i % 4}.1:\n"
        f"    add %r{i % 8}, %r{(i + 3) % 8}, %i{i % 4}; deq %i{i % 4};"
        for i in range(16)
    )
    program = benchmark(assemble, source)
    assert len(program) == 16


def test_decoder_throughput(benchmark):
    source = "\n".join(
        "when %p == XXXXXXXX:\n    add %r0, %r1, %r2;" for _ in range(16)
    )
    blob = assemble(source).binary(DEFAULT_PARAMS)
    instructions = benchmark(decode_program, blob, DEFAULT_PARAMS)
    assert len(instructions) == 16
