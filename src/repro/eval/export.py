"""CSV export of every exhibit's data (for external plotting).

``python -m repro.eval.export OUTDIR`` writes one CSV per exhibit:

* ``table1.csv``, ``table2.csv``, ``table3.csv``
* ``figure3_breakdown.csv``
* ``figure4_prediction.csv``
* ``figure5_cpi_stacks.csv``
* ``figure6_points.csv`` (the full design space, one row per point)
* ``figure8_frontier.csv``
"""

from __future__ import annotations

import csv
import os
import sys

from repro.dse.cpi import CpiTable
from repro.dse.pareto import pareto_frontier
from repro.dse.sweep import sweep
from repro.eval import figure3, figure4, figure5, table1, table2, table3


def _write(path: str, header: list[str], rows: list[list]) -> None:
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def export_all(outdir: str, scale: int = 24,
               cache_path: str | None = None) -> list[str]:
    """Regenerate everything and write the CSVs; returns written paths."""
    os.makedirs(outdir, exist_ok=True)
    written = []

    def path(name: str) -> str:
        full = os.path.join(outdir, name)
        written.append(full)
        return full

    _write(path("table1.csv"), ["parameter", "description", "value"],
           [list(row) for row in table1.compute()])

    _write(path("table2.csv"), ["field", "bits"],
           [[name, bits] for name, bits in table2.compute().items()])

    _write(
        path("table3.csv"),
        ["benchmark", "pes", "cycles", "worker_retired", "worker_cpi"],
        [[r.name, r.pe_count, r.cycles, r.worker_retired,
          round(r.worker_cpi, 4)] for r in table3.compute(scale=scale)],
    )

    data = figure3.compute()
    _write(
        path("figure3_breakdown.csv"),
        ["component", "area_fraction", "power_fraction", "area_um2", "power_mw"],
        [[name, entry["area_fraction"], entry["power_fraction"],
          round(entry["area_um2"], 1), round(entry["power_mw"], 4)]
         for name, entry in data["components"].items()],
    )

    _write(
        path("figure4_prediction.csv"),
        ["benchmark", "predicate_write_rate", "prediction_accuracy"],
        [[r.name, round(r.predicate_write_rate, 4),
          "" if r.accuracy is None else round(r.accuracy, 4)]
         for r in figure4.compute(scale=scale)],
    )

    cpi_table = CpiTable(scale=scale, cache_path=cache_path)
    stacks = figure5.compute(cpi_table)
    rows = []
    for partition, variants in stacks.items():
        for variant, stack in variants.items():
            rows.append([partition, variant] +
                        [round(stack[key], 4) for key in figure5.STACK_KEYS])
    _write(
        path("figure5_cpi_stacks.csv"),
        ["partition", "variant"] + list(figure5.STACK_KEYS),
        rows,
    )

    points = sweep(cpi_table=cpi_table)
    columns = ["design", "vt", "vdd", "mhz", "ns_per_instruction",
               "pj_per_instruction", "mw", "mm2", "mw_per_mm2", "ed", "cpi"]
    _write(
        path("figure6_points.csv"), columns,
        [[point.row()[column] for column in columns] for point in points],
    )
    _write(
        path("figure8_frontier.csv"), columns,
        [[point.row()[column] for column in columns]
         for point in pareto_frontier(points)],
    )
    return written


def main() -> None:
    outdir = sys.argv[1] if len(sys.argv) > 1 else "exhibits"
    for written in export_all(outdir):
        print(f"wrote {written}")


if __name__ == "__main__":
    main()
