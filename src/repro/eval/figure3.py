"""Figure 3: single-cycle PE area/power breakdown.

Paper anchors: 64,435 um^2 and 1.95 mW total; instruction memory 25% of
area and 41% of power; scheduler 6% / 5%; queues 18% / 22%; front end
32% area vs 46% back end; power reversed at 48% front vs 23% back.
"""

from __future__ import annotations

from repro.vlsi.components import COMPONENTS, TDX_AREA_UM2, TDX_POWER_W, front_back_split

PAPER = {
    "total_area_um2": 64_435.0,
    "total_power_mw": 1.95,
    "instruction_memory_area": 0.25,
    "instruction_memory_power": 0.41,
    "scheduler_area": 0.06,
    "scheduler_power": 0.05,
    "queues_area": 0.18,
    "queues_power": 0.22,
    "front_area": 0.32,
    "back_area": 0.46,
    "front_power": 0.48,
    "back_power": 0.23,
}


def compute() -> dict:
    breakdown = {
        budget.name: {
            "area_fraction": budget.area_fraction,
            "power_fraction": budget.power_fraction,
            "area_um2": budget.area_um2,
            "power_mw": budget.power_w * 1e3,
        }
        for budget in COMPONENTS
    }
    return {
        "total_area_um2": TDX_AREA_UM2,
        "total_power_mw": TDX_POWER_W * 1e3,
        "components": breakdown,
        "split": front_back_split(),
    }


def render() -> str:
    data = compute()
    lines = [
        "Figure 3: single-cycle PE breakdown "
        f"({data['total_area_um2']:.0f} um2, {data['total_power_mw']:.2f} mW)",
        "",
        f"{'component':20s} {'area %':>7s} {'power %':>8s}",
    ]
    for name, entry in data["components"].items():
        lines.append(
            f"{name:20s} {entry['area_fraction'] * 100:6.1f}% "
            f"{entry['power_fraction'] * 100:7.1f}%"
        )
    split = data["split"]
    lines.append("")
    lines.append(
        f"front end: {split['front_area'] * 100:.0f}% area / "
        f"{split['front_power'] * 100:.0f}% power   "
        f"back end: {split['back_area'] * 100:.0f}% area / "
        f"{split['back_power'] * 100:.0f}% power"
    )
    return "\n".join(lines)
