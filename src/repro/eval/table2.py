"""Table 2: instruction field widths under the default parameterization."""

from __future__ import annotations

from repro.params import ArchParams, DEFAULT_PARAMS

PAPER_WIDTHS = {
    "Val": 1,
    "PredMask": 16,
    "QueueIndices": 6,
    "NotTags": 2,
    "TagVals": 4,
    "Op": 6,
    "SrcTypes": 4,
    "SrcIDs": 6,
    "DstTypes": 2,
    "DstIDs": 3,
    "OutTag": 2,
    "IQueueDeq": 6,
    "PredUpdate": 16,
    "Imm": 32,
}
PAPER_TOTAL_BITS = 106
PAPER_PADDED_BITS = 128


def compute(params: ArchParams = DEFAULT_PARAMS) -> dict[str, int]:
    return params.field_widths()


def render(params: ArchParams = DEFAULT_PARAMS) -> str:
    widths = compute(params)
    lines = ["Table 2: instruction field widths", ""]
    for name, width in widths.items():
        marker = "" if PAPER_WIDTHS.get(name) == width else "  (paper: %d)" % PAPER_WIDTHS[name]
        lines.append(f"{name:14s} {width:3d}{marker}")
    lines.append("")
    lines.append(f"{'total':14s} {params.instruction_width:3d}  (paper: {PAPER_TOTAL_BITS})")
    lines.append(f"{'padded':14s} {params.padded_instruction_width:3d}  (paper: {PAPER_PADDED_BITS})")
    return "\n".join(lines)
