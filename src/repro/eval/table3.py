"""Table 3: the ten PE-centric microbenchmarks, run and validated."""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.suite import WORKLOADS, get_workload, run_workload


@dataclass(frozen=True)
class WorkloadReport:
    name: str
    description: str
    pe_count: int
    cycles: int
    worker_retired: int
    worker_cpi: float
    validated: bool


def compute(scale: int | None = None, seed: int = 0) -> list[WorkloadReport]:
    """Run every workload on the functional model; golden checks included."""
    reports = []
    for name in WORKLOADS():
        workload = get_workload(name)
        run = run_workload(name, scale=scale, seed=seed)
        reports.append(
            WorkloadReport(
                name=name,
                description=workload.description,
                pe_count=workload.pe_count,
                cycles=run.cycles,
                worker_retired=run.worker_counters.retired,
                worker_cpi=run.worker_counters.cpi,
                validated=True,   # run_workload raises on golden mismatch
            )
        )
    return reports


def render(scale: int | None = None, seed: int = 0) -> str:
    lines = ["Table 3: microbenchmark suite (functional model)", ""]
    lines.append(f"{'benchmark':14s} {'PEs':>3s} {'cycles':>8s} {'retired':>8s} {'CPI':>6s}  ok")
    for report in compute(scale, seed):
        lines.append(
            f"{report.name:14s} {report.pe_count:3d} {report.cycles:8d} "
            f"{report.worker_retired:8d} {report.worker_cpi:6.2f}  {report.validated}"
        )
    return "\n".join(lines)
