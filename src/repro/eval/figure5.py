"""Figure 5: CPI stacks of the seven pipelines x {base, +P, +P+Q}.

Paper shape claims, all checked by the benches:

* predicate-hazard CPI is identical for pipelines of the same depth and
  grows superlinearly with depth (0.18 / 0.24 / 0.27 in the paper);
* predicate prediction (+P) removes predicate hazards almost entirely,
  with virtually no quashed instructions, at the cost of a
  forbidden-instruction component that grows with pipeline depth;
* queue-status accounting (+Q) pulls the no-triggered-instruction
  component back toward the single-cycle constant;
* together the optimizations cut 4-stage CPI by ~35%.
"""

from __future__ import annotations

from repro.dse.cpi import CpiTable
from repro.pipeline.config import (
    ALL_PARTITIONS,
    PipelineConfig,
    QueuePolicy,
    partition_name,
)

VARIANTS = ("base", "+P", "+P+Q")

STACK_KEYS = (
    "retired",
    "quashed",
    "predicate_hazard",
    "data_hazard",
    "forbidden",
    "none_triggered",
)


def _variant(stages, variant: str) -> PipelineConfig:
    return PipelineConfig(
        stages=stages,
        predicate_prediction=variant in ("+P", "+P+Q"),
        queue_policy=QueuePolicy.EFFECTIVE if variant == "+P+Q" else QueuePolicy.CONSERVATIVE,
    )


def compute(cpi_table: CpiTable | None = None) -> dict[str, dict[str, dict[str, float]]]:
    """{partition: {variant: stack}} over all eight partitions."""
    if cpi_table is None:
        cpi_table = CpiTable()
    stacks: dict[str, dict[str, dict[str, float]]] = {}
    for stages in ALL_PARTITIONS:
        name = partition_name(stages)
        stacks[name] = {}
        variants = ("base",) if name == "TDX" else VARIANTS
        for variant in variants:
            stacks[name][variant] = cpi_table.stack(_variant(stages, variant))
    return stacks


def render(cpi_table: CpiTable | None = None) -> str:
    stacks = compute(cpi_table)
    lines = [
        "Figure 5: CPI stacks (average worker behavior over ten workloads)",
        "",
        f"{'design':22s} {'CPI':>6s} {'ret':>5s} {'qsh':>5s} {'pred':>5s} "
        f"{'data':>5s} {'forb':>5s} {'none':>5s}",
    ]
    for partition, variants in stacks.items():
        for variant, stack in variants.items():
            label = partition if variant == "base" else f"{partition} {variant}"
            cpi = sum(stack.values())
            lines.append(
                f"{label:22s} {cpi:6.2f} {stack['retired']:5.2f} "
                f"{stack['quashed']:5.2f} {stack['predicate_hazard']:5.2f} "
                f"{stack['data_hazard']:5.2f} {stack['forbidden']:5.2f} "
                f"{stack['none_triggered']:5.2f}"
            )
    return "\n".join(lines)


def four_stage_improvement(cpi_table: CpiTable | None = None) -> float:
    """Fractional CPI reduction of T|D|X1|X2 from both optimizations.

    The paper reports 35%.
    """
    if cpi_table is None:
        cpi_table = CpiTable()
    stages = ALL_PARTITIONS[-1]
    base = cpi_table.cpi(_variant(stages, "base"))
    optimized = cpi_table.cpi(_variant(stages, "+P+Q"))
    return (base - optimized) / base
