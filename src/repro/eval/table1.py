"""Table 1: architectural and microarchitectural parameters."""

from __future__ import annotations

from repro.params import ArchParams, DEFAULT_PARAMS

PAPER_VALUES = {
    "NRegs": 8,
    "NIQueues": 4,
    "NOQueues": 4,
    "MaxDeq": 2,
    "NPreds": 8,
    "Word": 32,
    "TagWidth": 2,
    "NIns": 16,
    "NOps*": 42,
    "NSrcs*": 2,
    "NDsts*": 1,
    # MaxCheck prints as 4 in the paper's Table 1, but Table 2's field
    # arithmetic and the quoted 106-bit total require 2 (see repro.params).
    "MaxCheck": 2,
}


def compute(params: ArchParams = DEFAULT_PARAMS) -> list[tuple[str, str, int]]:
    return params.table1()


def render(params: ArchParams = DEFAULT_PARAMS) -> str:
    lines = ["Table 1: architectural parameters", ""]
    lines.append(f"{'Parameter':10s} {'Description':34s} {'Value':>5s}")
    for name, description, value in compute(params):
        lines.append(f"{name:10s} {description:34s} {value:5d}")
    return "\n".join(lines)
