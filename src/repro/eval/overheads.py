"""Sections 4 and 5.4: scalar area/power/timing claims.

Everything the paper states as a number about the VLSI results of the
optional features, gathered in one place and regenerated from the model:

* instruction-storage medium tradeoffs (CACTI analysis, Section 4);
* feature overheads on the deepest pipeline at 500 MHz / 1.0 V / SVT;
* +0.301 mW per pipeline register, iso-frequency and iso-VDD;
* trigger critical path 53.6 FO4, 64.3 FO4 with speculation;
* the four-stage pipeline closing at 1184 MHz at nominal voltage.
"""

from __future__ import annotations

from repro.pipeline.config import config_by_name
from repro.vlsi.components import INSTRUCTION_STORAGE
from repro.vlsi.synthesis import critical_path_fo4, fmax, synthesize
from repro.vlsi.technology import VtFlavor

PAPER = {
    "pipe4_area_um2": 63_991.4,
    "pipe4_power_mw": 2.852,
    "p_area_um2": 64_278.4,
    "p_power_mw": 3.048,
    "q_area_um2": 64_131.8,
    "pq_area_um2": 64_895.4,
    "pq_power_mw": 3.077,
    "padded_area_um2": 72_439.4,
    "padded_power_mw": 3.194,
    "pipe_register_mw": 0.301,
    "trigger_fo4": 53.6,
    "trigger_fo4_with_p": 64.3,
    "pipe4_fmax_mhz": 1184.0,
    "mixed_vs_register_area": -0.16,
    "mixed_vs_register_power": -0.24,
    "mixed_vs_latch_area": -0.09,
    "mixed_vs_latch_power": -0.19,
}


def compute() -> dict:
    svt = VtFlavor.SVT
    results = {}
    for label, name in [
        ("base", "T|D|X1|X2"),
        ("+P", "T|D|X1|X2 +P"),
        ("+Q", "T|D|X1|X2 +Q"),
        ("+P+Q", "T|D|X1|X2 +P+Q"),
        ("padded", "T|D|X1|X2 +pad"),
    ]:
        config = config_by_name(name)
        r = synthesize(config, 1.0, svt, 500e6)
        results[label] = {
            "area_um2": r.area_um2,
            "power_mw": r.power_w * 1e3,
            "critical_fo4": r.critical_fo4,
        }

    tdx = synthesize(config_by_name("TDX"), 1.0, svt, 500e6)
    per_register = (
        (results["base"]["power_mw"] - tdx.power_w * 1e3)
        / (config_by_name("T|D|X1|X2").depth - 1)
    )

    base4 = config_by_name("T|D|X1|X2")
    spec4 = config_by_name("T|D|X1|X2 +P")
    mixed = INSTRUCTION_STORAGE["mixed_sram"]
    latch = INSTRUCTION_STORAGE["latch"]
    return {
        "features": results,
        "pipe_register_mw": per_register,
        "trigger_fo4": critical_path_fo4(base4),
        "trigger_fo4_with_p": critical_path_fo4(spec4),
        "pipe4_fmax_mhz": fmax(base4, 1.0, svt) / 1e6,
        "pipe4_fmax_with_p_mhz": fmax(spec4, 1.0, svt) / 1e6,
        "storage": {
            "mixed_vs_register_area": mixed[0] - 1.0,
            "mixed_vs_register_power": mixed[1] - 1.0,
            "mixed_vs_latch_area": mixed[0] / latch[0] - 1.0,
            "mixed_vs_latch_power": mixed[1] / latch[1] - 1.0,
        },
    }


def render() -> str:
    data = compute()
    lines = ["Sections 4 / 5.4: scalar overheads", ""]
    lines.append(f"{'variant':8s} {'area um2':>10s} {'power mW':>9s}")
    for label, entry in data["features"].items():
        lines.append(
            f"{label:8s} {entry['area_um2']:10.1f} {entry['power_mw']:9.3f}"
        )
    lines.append("")
    lines.append(f"per pipeline register: +{data['pipe_register_mw']:.3f} mW "
                 f"(paper +{PAPER['pipe_register_mw']})")
    lines.append(
        f"trigger critical path: {data['trigger_fo4']:.1f} FO4, "
        f"{data['trigger_fo4_with_p']:.1f} with speculation "
        f"(paper {PAPER['trigger_fo4']} / {PAPER['trigger_fo4_with_p']})"
    )
    lines.append(
        f"T|D|X1|X2 closes at {data['pipe4_fmax_mhz']:.0f} MHz nominal "
        f"(paper {PAPER['pipe4_fmax_mhz']:.0f}); {data['pipe4_fmax_with_p_mhz']:.0f} with +P"
    )
    storage = data["storage"]
    lines.append(
        "mixed register/latch-SRAM instruction store: "
        f"{storage['mixed_vs_register_area']:+.0%} area / "
        f"{storage['mixed_vs_register_power']:+.0%} power vs registers; "
        f"{storage['mixed_vs_latch_area']:+.0%} / "
        f"{storage['mixed_vs_latch_power']:+.0%} vs latches"
    )
    return "\n".join(lines)
