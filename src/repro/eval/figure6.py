"""Figure 6: energy-delay frontiers for each supply voltage.

Each characterized supply traces its own frontier; the paper's full
design space spans 71x in energy (0.67 - 47.59 pJ/instruction) and 225x
in delay (1.37 - 309.03 ns/instruction), with low-VT designs dominating
the fast end, standard-VT the middle, and high-VT the low-power tail.
"""

from __future__ import annotations

from collections import defaultdict

from repro.dse.cpi import CpiTable
from repro.dse.design_point import DesignPoint
from repro.dse.pareto import pareto_frontier
from repro.dse.sweep import sweep

PAPER_SPAN = {
    "min_pj": 0.67,
    "max_pj": 47.59,
    "energy_span": 71.0,
    "min_ns": 1.37,
    "max_ns": 309.03,
    "delay_span": 225.0,
}


def compute(
    points: list[DesignPoint] | None = None,
    cpi_table: CpiTable | None = None,
) -> dict:
    """Per-voltage frontiers plus the whole-space span."""
    if points is None:
        points = sweep(cpi_table=cpi_table)
    by_vdd: dict[float, list[DesignPoint]] = defaultdict(list)
    for point in points:
        by_vdd[point.vdd].append(point)
    frontiers = {
        vdd: pareto_frontier(candidates) for vdd, candidates in sorted(by_vdd.items())
    }
    energies = [p.pj_per_instruction for p in points]
    delays = [p.ns_per_instruction for p in points]
    span = {
        "min_pj": min(energies),
        "max_pj": max(energies),
        "energy_span": max(energies) / min(energies),
        "min_ns": min(delays),
        "max_ns": max(delays),
        "delay_span": max(delays) / min(delays),
    }
    return {"points": points, "frontiers": frontiers, "span": span}


def render(points: list[DesignPoint] | None = None,
           cpi_table: CpiTable | None = None) -> str:
    data = compute(points, cpi_table)
    span = data["span"]
    lines = [
        "Figure 6: per-supply-voltage energy-delay frontiers",
        "",
        f"design space: {len(data['points'])} points "
        f"(paper: over 4,000 across 32 microarchitectures)",
        f"energy span {span['min_pj']:.2f} - {span['max_pj']:.2f} pJ/ins "
        f"({span['energy_span']:.0f}x; paper 71x)",
        f"delay span  {span['min_ns']:.2f} - {span['max_ns']:.2f} ns/ins "
        f"({span['delay_span']:.0f}x; paper 225x)",
        "",
    ]
    for vdd, frontier in data["frontiers"].items():
        fastest = frontier[0]
        leanest = min(frontier, key=lambda p: p.pj_per_instruction)
        lines.append(
            f"{vdd:.1f} V frontier ({len(frontier):2d} pts): fastest "
            f"{fastest.ns_per_instruction:7.2f} ns @ {fastest.pj_per_instruction:6.2f} pJ "
            f"({fastest.config_name}, {fastest.vt.value}); leanest "
            f"{leanest.pj_per_instruction:6.2f} pJ ({leanest.config_name}, {leanest.vt.value})"
        )
    return "\n".join(lines)
