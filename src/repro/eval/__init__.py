"""Per-exhibit reproduction harness: one module per paper table/figure."""

from repro.eval import (
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    overheads,
    table1,
    table2,
    table3,
)

__all__ = [
    "table1",
    "table2",
    "table3",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "overheads",
]
