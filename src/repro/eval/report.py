"""Render every exhibit into one text report (feeds EXPERIMENTS.md)."""

from __future__ import annotations

from repro.dse.cpi import CpiTable
from repro.dse.sweep import sweep
from repro.eval import (
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    overheads,
    table1,
    table2,
    table3,
)


def full_report(scale: int = 24, cache_path: str | None = None) -> str:
    """Regenerate every table and figure; heavy (minutes of simulation)."""
    cpi_table = CpiTable(scale=scale, cache_path=cache_path)
    points = sweep(cpi_table=cpi_table)
    sections = [
        table1.render(),
        table2.render(),
        table3.render(scale=scale),
        figure3.render(),
        figure4.render(scale=scale),
        figure5.render(cpi_table),
        figure6.render(points),
        figure7.render(cpi_table),
        figure8.render(points),
        overheads.render(),
    ]
    separator = "\n\n" + "=" * 72 + "\n\n"
    return separator.join(sections)


def main() -> None:
    print(full_report())


if __name__ == "__main__":
    main()
