"""Figure 8: parametric analysis of the Pareto-optimal designs.

Paper observations the benches check for:

* the single-cycle TDX remains competitive through the low-power region;
* a two-stage pipeline with both optimizations traces most of the
  balanced/low-power frontier;
* the high-performance extreme is a two-stage split-ALU design, and the
  second-fastest point is a three-stage pipeline with both optimizations
  at roughly half the energy;
* every Pareto design's power density sits below 65 nm CPU/GPU envelopes
  (paper max: 167.6 mW/mm2 vs ~300-1000 mW/mm2 for GPUs/CPUs).
"""

from __future__ import annotations

from repro.dse.cpi import CpiTable
from repro.dse.design_point import DesignPoint
from repro.dse.pareto import pareto_frontier
from repro.dse.sweep import sweep

PAPER = {
    "fastest_ns": 1.37,
    "fastest_pj": 21.42,
    "runner_up_ns": 1.43,
    "runner_up_pj": 11.91,
    "low_power_pj": 0.89,
    "max_density_mw_mm2": 167.6,
    "cpu_density_mean": 500.0,
    "gpu_density_max": 300.0,
}


def compute(points: list[DesignPoint] | None = None,
            cpi_table: CpiTable | None = None) -> dict:
    if points is None:
        points = sweep(cpi_table=cpi_table)
    frontier = pareto_frontier(points)
    return {
        "frontier": frontier,
        "rows": [point.row() for point in frontier],
        "fastest": frontier[0],
        "low_power": min(frontier, key=lambda p: p.pj_per_instruction),
        "max_density": max(p.power_density_mw_per_mm2 for p in frontier),
    }


def render(points: list[DesignPoint] | None = None,
           cpi_table: CpiTable | None = None) -> str:
    data = compute(points, cpi_table)
    lines = [
        "Figure 8: Pareto-optimal designs (fastest first)",
        "",
        f"{'design':20s} {'vt':>3s} {'Vdd':>4s} {'MHz':>7s} {'ns/ins':>7s} "
        f"{'pJ/ins':>7s} {'mW':>7s} {'mm2':>6s} {'mW/mm2':>7s} {'ED':>8s}",
    ]
    for row in data["rows"]:
        lines.append(
            f"{row['design']:20s} {row['vt']:>3s} {row['vdd']:4.1f} "
            f"{row['mhz']:7.1f} {row['ns_per_instruction']:7.2f} "
            f"{row['pj_per_instruction']:7.2f} {row['mw']:7.3f} "
            f"{row['mm2']:6.4f} {row['mw_per_mm2']:7.1f} {row['ed']:8.2f}"
        )
    lines.append("")
    lines.append(
        f"max frontier power density: {data['max_density']:.1f} mW/mm2 "
        f"(paper {PAPER['max_density_mw_mm2']}; 65nm CPU mean ~500, GPU max ~300)"
    )
    return "\n".join(lines)
