"""Figure 7: benefit of +P and +Q at the balanced region of the frontier.

The paper reports that enabling both optimizations improves the frontier
by 20-25% in both energy and delay near the origin of the energy-delay
tradeoff, with +Q alone best at the extreme high-performance end.

We quantify the improvement with the hypervolume-style measure natural
to this plot: for matched delays in the balanced region, the energy of
the feature frontier relative to the baseline frontier (and vice versa).
"""

from __future__ import annotations

from repro.dse.cpi import CpiTable
from repro.dse.design_point import DesignPoint
from repro.dse.pareto import pareto_frontier
from repro.dse.sweep import sweep
from repro.pipeline.config import PIPELINED_PARTITIONS, PipelineConfig, QueuePolicy

FEATURE_SETS = {
    "none": (False, QueuePolicy.CONSERVATIVE),
    "+P": (True, QueuePolicy.CONSERVATIVE),
    "+Q": (False, QueuePolicy.EFFECTIVE),
    "+P+Q": (True, QueuePolicy.EFFECTIVE),
}


def _configs(feature: str) -> list[PipelineConfig]:
    """The seven pipelined partitions under one feature setting.

    The single-cycle TDX has no pipeline to optimize and is identical in
    every feature set, so it is excluded — the comparison isolates what
    the optimizations buy a pipelined design.
    """
    prediction, policy = FEATURE_SETS[feature]
    return [
        PipelineConfig(stages=stages, predicate_prediction=prediction,
                       queue_policy=policy)
        for stages in PIPELINED_PARTITIONS
    ]


def _frontier_energy_at(frontier: list[DesignPoint], delay_ns: float) -> float | None:
    """Lowest energy achievable at or below a delay target."""
    feasible = [p for p in frontier if p.ns_per_instruction <= delay_ns]
    if not feasible:
        return None
    return min(p.pj_per_instruction for p in feasible)


def compute(cpi_table: CpiTable | None = None,
            balanced_delays_ns: tuple[float, ...] = (2.0, 3.0, 4.0, 6.0, 8.0)) -> dict:
    if cpi_table is None:
        cpi_table = CpiTable()
    frontiers = {}
    for feature in FEATURE_SETS:
        points = sweep(configs=_configs(feature), cpi_table=cpi_table)
        frontiers[feature] = pareto_frontier(points)

    improvements = {}
    for feature in ("+P", "+Q", "+P+Q"):
        ratios = []
        for delay in balanced_delays_ns:
            base = _frontier_energy_at(frontiers["none"], delay)
            opt = _frontier_energy_at(frontiers[feature], delay)
            if base is not None and opt is not None:
                ratios.append(1.0 - opt / base)
        improvements[feature] = sum(ratios) / len(ratios) if ratios else None
    return {"frontiers": frontiers, "improvements": improvements}


def render(cpi_table: CpiTable | None = None) -> str:
    data = compute(cpi_table)
    lines = [
        "Figure 7: frontier benefit of the pipeline optimizations "
        "(balanced region)",
        "",
    ]
    for feature, frontier in data["frontiers"].items():
        fastest = frontier[0]
        lines.append(
            f"{feature:5s} frontier: {len(frontier):2d} points, fastest "
            f"{fastest.ns_per_instruction:5.2f} ns ({fastest.config_name})"
        )
    lines.append("")
    for feature, improvement in data["improvements"].items():
        shown = "n/a" if improvement is None else f"{improvement:.0%}"
        lines.append(
            f"energy improvement at matched balanced delays, {feature:5s}: {shown}"
        )
    lines.append("(paper: +P+Q improves the balanced frontier 20-25% in energy and delay)")
    return "\n".join(lines)
