"""Figure 4: datapath predicate write frequency and prediction accuracy.

Paper shape: dot_product writes no predicates at all; filter and merge
sit near 50% accuracy (high-entropy data-dependent control); gcd, stream
and mean approach perfect accuracy (long predictable loops); bst and
udiv land in between (unpredictable branches nested inside predictable
loops).  Average dynamic predicate-write rate is about 20%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pipeline.config import config_by_name
from repro.pipeline.core import PipelinedPE
from repro.workloads.suite import WORKLOADS, run_workload

DEFAULT_CONFIG = "T|D|X1|X2 +P+Q"


@dataclass(frozen=True)
class PredictionReport:
    name: str
    predicate_write_rate: float
    accuracy: float | None     # None when the worker never writes predicates


def compute(scale: int | None = None, seed: int = 0,
            config_name: str = DEFAULT_CONFIG) -> list[PredictionReport]:
    config = config_by_name(config_name)

    def factory(name: str) -> PipelinedPE:
        return PipelinedPE(config, name=name)

    reports = []
    for name in WORKLOADS():
        run = run_workload(name, make_pe=factory, scale=scale, seed=seed)
        counters = run.worker_counters
        reports.append(
            PredictionReport(
                name=name,
                predicate_write_rate=counters.predicate_write_rate,
                accuracy=counters.prediction_accuracy,
            )
        )
    return reports


def render(scale: int | None = None, seed: int = 0) -> str:
    lines = [
        f"Figure 4: predicate write frequency and prediction accuracy "
        f"({DEFAULT_CONFIG} worker PE)",
        "",
        f"{'benchmark':14s} {'write rate':>10s} {'accuracy':>9s}",
    ]
    reports = compute(scale, seed)
    for report in reports:
        accuracy = "n/a" if report.accuracy is None else f"{report.accuracy:8.0%}"
        lines.append(
            f"{report.name:14s} {report.predicate_write_rate:9.0%} {accuracy:>9s}"
        )
    rates = [r.predicate_write_rate for r in reports]
    lines.append("")
    lines.append(f"average write rate: {sum(rates) / len(rates):.0%} (paper: ~20%)")
    return "\n".join(lines)
