"""Deterministic process-level parallelism for simulation campaigns.

The CPI campaign and the design-space sweep are embarrassingly parallel
across microarchitectures: each config's simulation shares nothing with
the others, and every input (configs, parameters, workload generators)
is a frozen dataclass or pure function of the seed.  This module is the
one place that decides *whether* to fan out and *how wide*, so every
campaign obeys the same two environment switches:

* ``REPRO_SERIAL=1`` — force in-process serial execution (useful under
  debuggers, coverage, and profilers, and the documented escape hatch
  when process pools are unavailable);
* ``REPRO_WORKERS=N`` — cap the pool size without touching call sites.

:func:`parallel_map` preserves input order, so a campaign produces
byte-identical results at any worker count — the differential tests in
``tests/test_parallel.py`` hold it to that.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from typing import TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_workers(workers: int | None = None) -> int:
    """Resolve an effective worker count (always at least 1).

    Precedence: ``REPRO_SERIAL`` (forces 1) > explicit ``workers``
    argument > ``REPRO_WORKERS`` > ``os.cpu_count()``.
    """
    if os.environ.get("REPRO_SERIAL"):
        return 1
    if workers is None:
        env = os.environ.get("REPRO_WORKERS")
        if env:
            try:
                workers = int(env)
            except ValueError:
                workers = None
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, int(workers))


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    workers: int | None = None,
) -> list[_R]:
    """Map ``fn`` over ``items``, preserving input order.

    Runs serially in-process when the resolved worker count is 1 (or
    there is at most one item); otherwise fans out over a
    ``ProcessPoolExecutor``.  ``fn`` and every item must be picklable in
    the parallel case — which is why the campaign workers live at module
    level in :mod:`repro.dse.cpi` and :mod:`repro.dse.sweep`.
    """
    work: Sequence[_T] = list(items)
    count = min(resolve_workers(workers), len(work))
    if count <= 1:
        return [fn(item) for item in work]
    # Imported lazily: the serial path must work even where process
    # pools cannot (restricted sandboxes without semaphores).
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=count) as pool:
        return list(pool.map(fn, work))
