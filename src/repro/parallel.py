"""Deterministic, fault-tolerant process-level parallelism for campaigns.

The CPI campaign, the design-space sweep, and the fault-injection
campaign are embarrassingly parallel: each task shares nothing with the
others, and every input is a frozen dataclass or pure function of the
seed.  This module is the one place that decides *whether* to fan out,
*how wide*, and *what happens when workers die*.  Every campaign obeys
the same two environment switches:

* ``REPRO_SERIAL=1`` — force in-process serial execution (useful under
  debuggers, coverage, and profilers, and the documented escape hatch
  when process pools are unavailable);
* ``REPRO_WORKERS=N`` — cap the pool size without touching call sites.

Two entry points:

* :func:`parallel_map` — the original order-preserving map; minimal
  machinery, exceptions propagate as-is.
* :func:`resilient_map` — hardened for long campaigns: per-task
  timeouts, bounded retry with exponential backoff when the pool dies,
  graceful degradation to in-process serial execution as a last resort,
  worker exceptions re-raised with their original tracebacks
  (:class:`~repro.errors.CampaignError`), and optional checkpointing of
  partial results (:class:`Checkpoint`) so an interrupted campaign
  resumes instead of restarting.

Both preserve input order, so a campaign produces byte-identical
results at any worker count — ``tests/test_parallel.py`` and
``tests/test_resilience.py`` hold them to that.
"""

from __future__ import annotations

import json
import os
import random
import tempfile
import time
import traceback
from collections.abc import Callable, Iterable, Sequence
from typing import TypeVar

from repro.errors import CampaignError

_T = TypeVar("_T")
_R = TypeVar("_R")

_UNSET = object()


def retry_delay(
    base: float,
    attempt: int,
    cap: float | None = None,
    token: str = "",
    seed: int = 0,
) -> float:
    """Capped exponential backoff with *deterministic* seeded jitter.

    The jitter (up to +25% of the exponential delay) decorrelates
    retries that would otherwise stampede in lockstep, but is a pure
    function of ``(seed, token, attempt)`` — replaying a campaign
    replays the exact same sleep schedule, which keeps retry behaviour
    reproducible in tests and chaos runs.  ``attempt`` is 1-based.
    """
    rng = random.Random(f"{seed}:{token}:{attempt}")
    delay = base * (2 ** max(0, attempt - 1))
    delay *= 1.0 + rng.uniform(0.0, 0.25)
    if cap is not None:
        delay = min(delay, cap)
    return delay


def resolve_workers(workers: int | None = None) -> int:
    """Resolve an effective worker count (always at least 1).

    Precedence: ``REPRO_SERIAL`` (forces 1) > explicit ``workers``
    argument > ``REPRO_WORKERS`` > ``os.cpu_count()``.
    """
    if os.environ.get("REPRO_SERIAL"):
        return 1
    if workers is None:
        env = os.environ.get("REPRO_WORKERS")
        if env:
            try:
                workers = int(env)
            except ValueError:
                workers = None
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, int(workers))


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    workers: int | None = None,
) -> list[_R]:
    """Map ``fn`` over ``items``, preserving input order.

    Runs serially in-process when the resolved worker count is 1 (or
    there is at most one item); otherwise fans out over a
    ``ProcessPoolExecutor``.  ``fn`` and every item must be picklable in
    the parallel case — which is why the campaign workers live at module
    level in :mod:`repro.dse.cpi` and :mod:`repro.dse.sweep`.
    """
    work: Sequence[_T] = list(items)
    count = min(resolve_workers(workers), len(work))
    if count <= 1:
        return [fn(item) for item in work]
    # Imported lazily: the serial path must work even where process
    # pools cannot (restricted sandboxes without semaphores).
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=count) as pool:
        return list(pool.map(fn, work))


def _fsync_directory(directory: str) -> None:
    """Best-effort durability for a rename within ``directory``."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class Checkpoint:
    """Fingerprinted partial results of one campaign, on disk.

    Results are stored as a JSON object keyed by a caller-chosen task
    key; a stored ``fingerprint`` guards against resuming with results
    computed under different inputs (same discipline as the CPI disk
    cache).  ``encode``/``decode`` adapt non-JSON-native result types
    (tuples, dataclasses) on the way in and out.
    """

    def __init__(
        self,
        path: str,
        fingerprint: str = "",
        encode: Callable | None = None,
        decode: Callable | None = None,
    ) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self._encode = encode or (lambda value: value)
        self._decode = decode or (lambda value: value)
        self._results: dict[str, object] = {}
        if os.path.exists(path):
            # A corrupt or truncated checkpoint (torn by a crash before
            # the atomic-replace discipline existed, or plain disk
            # garbage) must never wedge a resume: treat anything
            # unreadable or mis-shapen as an empty checkpoint and
            # recompute.  Fingerprint mismatches are likewise ignored.
            try:
                with open(path, encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                payload = {}
            if not isinstance(payload, dict):
                payload = {}
            if payload.get("fingerprint") == fingerprint:
                results = payload.get("results", {})
                if isinstance(results, dict):
                    self._results = results

    def __contains__(self, key: str) -> bool:
        return key in self._results

    def __len__(self) -> int:
        return len(self._results)

    def get(self, key: str):
        return self._decode(self._results[key])

    def put(self, key: str, value) -> None:
        self._results[key] = self._encode(value)
        self._save()

    def _save(self) -> None:
        # Crash-safe write: temp file in the same directory, fsync'd
        # before an atomic ``os.replace``, then the directory fsync'd so
        # the rename itself is durable.  A campaign killed (SIGKILL
        # included) at any instant leaves either the old checkpoint or
        # the complete new one — never a torn file.
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, temp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(
                    {"fingerprint": self.fingerprint, "results": self._results},
                    handle,
                )
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp, self.path)
            _fsync_directory(directory)
        except BaseException:
            if os.path.exists(temp):
                os.unlink(temp)
            raise

    def clear(self) -> None:
        """Remove the checkpoint (call once the campaign has fully landed)."""
        self._results = {}
        if os.path.exists(self.path):
            os.unlink(self.path)


def _call_traced(fn, item):
    """Worker-side wrapper: capture the full traceback and the task's
    wall-clock across the pickle boundary (module level so it pickles).

    The timing rides back with every result so campaign profiling
    (:class:`repro.obs.campaign.CampaignProfile`) measures task cost
    inside the worker, unpolluted by pool scheduling; it is dropped on
    the floor when no profile is attached.
    """
    start = time.perf_counter()
    try:
        return (True, fn(item), time.perf_counter() - start)
    except Exception as exc:
        return (
            False,
            (type(exc).__name__, str(exc), traceback.format_exc()),
            time.perf_counter() - start,
        )


class WorkerTraceback(Exception):
    """Carrier for a worker process's original traceback text.

    Set as the ``__cause__`` of the :class:`~repro.errors.CampaignError`
    a failed task raises, so the worker-side traceback survives the
    pickle boundary *in the exception chain* (the same trick
    ``concurrent.futures`` uses with ``_RemoteTraceback``) — ``raise``
    displays the original frames under "direct cause" instead of
    flattening them into message text only.
    """

    def __init__(self, tb: str) -> None:
        self.tb = tb
        super().__init__(tb)

    def __str__(self) -> str:
        return f"\n{self.tb}"


def _raise_task_failure(index: int, failure) -> None:
    name, message, tb = failure[:3]
    raise CampaignError(
        f"campaign task {index} failed: {name}: {message}",
        worker_traceback=tb,
    ) from WorkerTraceback(tb)


def resilient_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    workers: int | None = None,
    *,
    timeout: float | None = None,
    retries: int = 2,
    backoff: float = 0.25,
    checkpoint: Checkpoint | None = None,
    key: Callable[[_T], str] | None = None,
    profile=None,
) -> list[_R]:
    """Hardened order-preserving map for long campaigns.

    * ``timeout`` bounds the wait for any single task's result; a stall
      abandons the pool and counts as one retry.
    * Pool failures (a killed worker breaks the whole pool) retry up to
      ``retries`` times with exponential backoff, resubmitting only the
      tasks that have not produced results yet.
    * When retries are exhausted the remaining tasks degrade to
      in-process serial execution, so a campaign finishes even on a host
      where process pools are unreliable.
    * A task that *raises* is not retried — the exception is
      deterministic campaign input — and propagates as
      :class:`~repro.errors.CampaignError` carrying the worker's
      original traceback.
    * With ``checkpoint`` and ``key``, completed results are persisted
      as they land and skipped on resume; results computed before an
      interruption are never re-simulated.
    * With ``profile`` (a :class:`repro.obs.campaign.CampaignProfile`),
      per-task wall-clock, worker utilization, retry/timeout counts and
      checkpoint hits are recorded — observation only, results are
      unchanged.

    Results are identical to ``[fn(x) for x in items]`` at any worker
    count, on any retry path.
    """
    work: Sequence[_T] = list(items)
    keys: list[str | None] = [
        key(item) if (key is not None and checkpoint is not None) else None
        for item in work
    ]
    results: list = [_UNSET] * len(work)
    if checkpoint is not None:
        for index, task_key in enumerate(keys):
            if task_key is not None and task_key in checkpoint:
                results[index] = checkpoint.get(task_key)
                if profile is not None:
                    profile.checkpoint_hit()
    pending = [index for index in range(len(work)) if results[index] is _UNSET]

    def record(index: int, value, seconds: float) -> None:
        results[index] = value
        if checkpoint is not None and keys[index] is not None:
            checkpoint.put(keys[index], value)
        if profile is not None:
            profile.task_done(index, keys[index], seconds)

    count = min(resolve_workers(workers), len(pending))
    if profile is not None:
        profile.begin(total=len(work), workers=max(count, 1))
    try:
        if count > 1:
            pending = _pool_rounds(
                fn, work, pending, record, count, timeout, retries, backoff,
                profile,
            )
            if pending and profile is not None:
                profile.degraded_to_serial()
        # Serial path: first choice at one worker, last resort when the
        # pool kept dying.  Failures still carry a traceback for parity
        # with the pool path.
        for index in pending:
            ok, payload, seconds = _call_traced(fn, work[index])
            if not ok:
                _raise_task_failure(index, payload)
            record(index, payload, seconds)
    finally:
        if profile is not None:
            profile.finish()
    return results


def _pool_rounds(
    fn, work, pending, record, count, timeout, retries, backoff, profile=None
) -> list[int]:
    """Run pool attempts with bounded retry; returns indices still unrun."""
    from concurrent.futures import ProcessPoolExecutor, TimeoutError as PoolTimeout
    from concurrent.futures.process import BrokenProcessPool

    attempt = 0
    while pending:
        pool = ProcessPoolExecutor(max_workers=min(count, len(pending)))
        done: list[int] = []
        try:
            futures = [
                (index, pool.submit(_call_traced, fn, work[index]))
                for index in pending
            ]
            for index, future in futures:
                ok, payload, seconds = future.result(timeout=timeout)
                if not ok:
                    _raise_task_failure(index, payload)
                record(index, payload, seconds)
                done.append(index)
        except (BrokenProcessPool, PoolTimeout, OSError) as exc:
            if profile is not None:
                if isinstance(exc, PoolTimeout):
                    profile.timeout()
                profile.pool_retry()
            pending = [index for index in pending if index not in set(done)]
            attempt += 1
            if attempt > retries:
                return pending    # degrade to serial in the caller
            # Deterministic schedule: the same campaign retries sleep
            # the same jittered delays on every run (seeded by attempt).
            time.sleep(retry_delay(backoff, attempt, token="pool"))
            continue
        finally:
            # Never block on a wedged worker; lingering processes are
            # reaped by the OS when they finish or die.
            pool.shutdown(wait=False, cancel_futures=True)
        return []
    return []
