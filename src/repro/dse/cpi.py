"""Average CPI per microarchitecture, measured by the cycle simulator.

CPI depends only on the microarchitecture (not on voltage or frequency),
so the design-space sweep needs one simulation campaign per config: all
ten Table 3 workloads, counters read from the designated worker PE,
averaged — exactly how Figure 5's stacks are built.  Results are cached
in memory and optionally on disk, because a full 32-config campaign is
the expensive part of regenerating Figures 6-8.

The campaign is embarrassingly parallel across configs — nothing is
shared between two microarchitectures' simulations — so
:meth:`CpiTable.populate` fans the per-config work across a process
pool (see :mod:`repro.parallel` for the worker-count policy and the
``REPRO_SERIAL`` escape hatch).  Parallel and serial populations
produce identical tables: the per-config worker is a pure function of
``(config, scale, seed, params)``.

The disk cache is keyed by a fingerprint over everything the numbers
depend on (scale, seed, every architectural parameter, and the config
set), so a stale cache written at another scale or under edited
parameters can never be mistaken for current results.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os

from repro.parallel import Checkpoint, resilient_map
from repro.params import ArchParams, DEFAULT_PARAMS
from repro.pipeline.config import PipelineConfig
from repro.pipeline.core import PipelinedPE
from repro.workloads.suite import WORKLOADS, run_workload


def table_fingerprint(
    scale: int,
    seed: int,
    params: ArchParams,
    configs: list[PipelineConfig] | None = None,
) -> str:
    """Digest of every input the cached CPI numbers depend on."""
    blob = json.dumps(
        {
            "scale": scale,
            "seed": seed,
            "params": dataclasses.asdict(params),
            "configs": (
                None if configs is None else sorted(c.name for c in configs)
            ),
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _campaign(
    config: PipelineConfig, scale: int, seed: int, params: ArchParams
) -> tuple[float, dict[str, float]]:
    """Run all workloads under one config; workload-average (CPI, stack)."""

    def factory(name: str) -> PipelinedPE:
        return PipelinedPE(config, params, name=name)

    totals: dict[str, float] = {}
    cpi_sum = 0.0
    names = WORKLOADS()
    for workload in names:
        run = run_workload(
            workload, make_pe=factory, scale=scale, seed=seed, params=params,
        )
        counters = run.worker_counters
        counters.check_consistency()
        cpi_sum += counters.cpi
        for key, value in counters.stack().items():
            totals[key] = totals.get(key, 0.0) + value
    return (
        cpi_sum / len(names),
        {key: value / len(names) for key, value in totals.items()},
    )


def _simulate_config(
    task: tuple[PipelineConfig, int, int, ArchParams],
) -> tuple[str, float, dict[str, float]]:
    """Process-pool worker: one config's full campaign (module level so
    it pickles)."""
    config, scale, seed, params = task
    cpi, stack = _campaign(config, scale, seed, params)
    return config.name, cpi, stack


class CpiTable:
    """Lazily simulated, cached per-config CPI (and CPI stacks)."""

    def __init__(
        self,
        scale: int = 24,
        seed: int = 0,
        params: ArchParams = DEFAULT_PARAMS,
        cache_path: str | None = None,
        configs: list[PipelineConfig] | None = None,
    ) -> None:
        self.scale = scale
        self.seed = seed
        self.params = params
        self.cache_path = cache_path
        self.fingerprint = table_fingerprint(scale, seed, params, configs)
        self._cpi: dict[str, float] = {}
        self._stacks: dict[str, dict[str, float]] = {}
        if cache_path and os.path.exists(cache_path):
            with open(cache_path, encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("fingerprint") == self.fingerprint:
                self._cpi = payload["cpi"]
                self._stacks = payload["stacks"]

    def _save(self) -> None:
        if not self.cache_path:
            return
        with open(self.cache_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "fingerprint": self.fingerprint,
                    "scale": self.scale,
                    "seed": self.seed,
                    "cpi": self._cpi,
                    "stacks": self._stacks,
                },
                handle,
                indent=1,
            )

    def populate(
        self,
        configs: list[PipelineConfig],
        workers: int | None = None,
        profile=None,
        service=None,
    ) -> None:
        """Simulate every config not already in the table, in parallel.

        Results are identical to serial lazy evaluation (the worker is a
        pure function and results are merged in input order); the disk
        cache is written once at the end rather than per config.

        The campaign is hardened: killed workers are retried with the
        pool rebuilt (degrading to serial execution as a last resort),
        and when a disk cache path is configured, per-config results are
        checkpointed beside it so an interrupted campaign resumes from
        the configs already simulated instead of restarting.

        ``profile`` (a :class:`repro.obs.campaign.CampaignProfile`)
        records per-config wall-clock and worker utilization without
        changing any result.

        ``service`` (a :class:`repro.serve.client.InProcessClient` or
        :class:`~repro.serve.client.HttpClient`) routes the campaign
        through the supervised campaign service instead of a private
        process pool: identical results, but deduped against the
        service's durable store and supervised for worker crashes and
        hangs (``cpi-config`` task kind).
        """
        missing = [c for c in configs if c.name not in self._cpi]
        if not missing:
            return
        if service is not None:
            import dataclasses

            results = service.map("cpi-config", [
                {
                    "config": c.name,
                    "scale": self.scale,
                    "seed": self.seed,
                    "params": dataclasses.asdict(self.params),
                }
                for c in missing
            ])
            for name, cpi, stack in results:
                self._cpi[name] = cpi
                self._stacks[name] = stack
            self._save()
            return
        tasks = [(c, self.scale, self.seed, self.params) for c in missing]
        checkpoint = None
        if self.cache_path:
            checkpoint = Checkpoint(
                self.cache_path + ".partial",
                fingerprint=self.fingerprint,
                decode=tuple,
            )
        results = resilient_map(
            _simulate_config,
            tasks,
            workers,
            checkpoint=checkpoint,
            key=lambda task: task[0].name,
            profile=profile,
        )
        for name, cpi, stack in results:
            self._cpi[name] = cpi
            self._stacks[name] = stack
        self._save()
        if checkpoint is not None:
            checkpoint.clear()

    def _simulate(self, config: PipelineConfig) -> None:
        cpi, stack = _campaign(config, self.scale, self.seed, self.params)
        self._cpi[config.name] = cpi
        self._stacks[config.name] = stack
        self._save()

    def cpi(self, config: PipelineConfig) -> float:
        """Workload-average worker CPI for one microarchitecture."""
        if config.name not in self._cpi:
            self._simulate(config)
        return self._cpi[config.name]

    def stack(self, config: PipelineConfig) -> dict[str, float]:
        """Workload-average CPI stack (the Figure 5 bar) for one config."""
        if config.name not in self._stacks:
            self._simulate(config)
        return self._stacks[config.name]
