"""Average CPI per microarchitecture, measured by the cycle simulator.

CPI depends only on the microarchitecture (not on voltage or frequency),
so the design-space sweep needs one simulation campaign per config: all
ten Table 3 workloads, counters read from the designated worker PE,
averaged — exactly how Figure 5's stacks are built.  Results are cached
in memory and optionally on disk, because a full 32-config campaign is
the expensive part of regenerating Figures 6-8.
"""

from __future__ import annotations

import json
import os

from repro.params import ArchParams, DEFAULT_PARAMS
from repro.pipeline.config import PipelineConfig
from repro.pipeline.core import PipelinedPE
from repro.workloads.suite import WORKLOADS, run_workload


class CpiTable:
    """Lazily simulated, cached per-config CPI (and CPI stacks)."""

    def __init__(
        self,
        scale: int = 24,
        seed: int = 0,
        params: ArchParams = DEFAULT_PARAMS,
        cache_path: str | None = None,
    ) -> None:
        self.scale = scale
        self.seed = seed
        self.params = params
        self.cache_path = cache_path
        self._cpi: dict[str, float] = {}
        self._stacks: dict[str, dict[str, float]] = {}
        if cache_path and os.path.exists(cache_path):
            with open(cache_path, encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("scale") == scale and payload.get("seed") == seed:
                self._cpi = payload["cpi"]
                self._stacks = payload["stacks"]

    def _simulate(self, config: PipelineConfig) -> None:
        def factory(name: str) -> PipelinedPE:
            return PipelinedPE(config, self.params, name=name)

        totals: dict[str, float] = {}
        cpi_sum = 0.0
        names = WORKLOADS()
        for workload in names:
            run = run_workload(
                workload, make_pe=factory, scale=self.scale, seed=self.seed,
                params=self.params,
            )
            counters = run.worker_counters
            counters.check_consistency()
            cpi_sum += counters.cpi
            for key, value in counters.stack().items():
                totals[key] = totals.get(key, 0.0) + value
        self._cpi[config.name] = cpi_sum / len(names)
        self._stacks[config.name] = {
            key: value / len(names) for key, value in totals.items()
        }
        if self.cache_path:
            with open(self.cache_path, "w", encoding="utf-8") as handle:
                json.dump(
                    {
                        "scale": self.scale,
                        "seed": self.seed,
                        "cpi": self._cpi,
                        "stacks": self._stacks,
                    },
                    handle,
                    indent=1,
                )

    def cpi(self, config: PipelineConfig) -> float:
        """Workload-average worker CPI for one microarchitecture."""
        if config.name not in self._cpi:
            self._simulate(config)
        return self._cpi[config.name]

    def stack(self, config: PipelineConfig) -> dict[str, float]:
        """Workload-average CPI stack (the Figure 5 bar) for one config."""
        if config.name not in self._stacks:
            self._simulate(config)
        return self._stacks[config.name]
