"""One evaluated design point of the energy-delay space."""

from __future__ import annotations

from dataclasses import dataclass

from repro.vlsi.synthesis import SynthesisResult
from repro.vlsi.technology import VtFlavor


@dataclass(frozen=True)
class DesignPoint:
    """A closed (microarchitecture, VT, VDD, frequency) point plus CPI.

    The paper's headline metrics fall out directly: delay per instruction
    (CPI over clock frequency) and energy per instruction (power times
    delay per instruction).
    """

    synthesis: SynthesisResult
    cpi: float

    @property
    def config_name(self) -> str:
        return self.synthesis.config_name

    @property
    def vt(self) -> VtFlavor:
        return self.synthesis.vt

    @property
    def vdd(self) -> float:
        return self.synthesis.vdd

    @property
    def frequency_hz(self) -> float:
        return self.synthesis.f_target_hz

    @property
    def ns_per_instruction(self) -> float:
        return self.cpi / self.synthesis.f_target_hz * 1e9

    @property
    def pj_per_instruction(self) -> float:
        return (
            self.synthesis.power_w * self.cpi / self.synthesis.f_target_hz * 1e12
        )

    @property
    def energy_delay_product(self) -> float:
        """ED in pJ * ns."""
        return self.pj_per_instruction * self.ns_per_instruction

    @property
    def power_mw(self) -> float:
        return self.synthesis.power_w * 1e3

    @property
    def area_mm2(self) -> float:
        return self.synthesis.area_mm2

    @property
    def power_density_mw_per_mm2(self) -> float:
        return self.synthesis.power_density_mw_per_mm2

    def row(self) -> dict:
        """Flat record for reports (the Figure 8 parametric columns)."""
        return {
            "design": self.config_name,
            "vt": self.vt.value,
            "vdd": self.vdd,
            "mhz": self.frequency_hz / 1e6,
            "ns_per_instruction": self.ns_per_instruction,
            "pj_per_instruction": self.pj_per_instruction,
            "mw": self.power_mw,
            "mm2": self.area_mm2,
            "mw_per_mm2": self.power_density_mw_per_mm2,
            "ed": self.energy_delay_product,
            "cpi": self.cpi,
        }
