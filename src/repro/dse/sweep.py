"""The Section 3 design-space sweep.

Characterization grids (paper Section 3):

* standard-VT cells at 0.6 / 0.7 / 0.8 / 0.9 / 1.0 V;
* low- and high-VT cells at 0.4 / 0.6 / 0.8 / 1.0 V;
* target frequencies 100 MHz - 1.5 GHz at 100 MHz granularity,
  refined to 50 MHz steps up through 500 MHz in near-threshold regimes,
  plus 10 MHz steps through 100 MHz for subthreshold high-VT corners;
* each microarchitecture's exact f_max at each (V, VT) is also closed,
  which is how points like "TDX1|X2 at 1157 MHz" enter the space.

Crossed with the 32 microarchitectures this yields the paper's >4,000
closed design points.
"""

from __future__ import annotations

from repro.dse.cpi import CpiTable
from repro.dse.design_point import DesignPoint
from repro.errors import SynthesisError
from repro.parallel import resilient_map
from repro.pipeline.config import PipelineConfig, all_configs
from repro.vlsi.synthesis import fmax, synthesize
from repro.vlsi.technology import TECH65, Technology, VtFlavor

_NEAR_THRESHOLD_VDD = 0.7    # refinement kicks in at and below this supply
_SUBTHRESHOLD_VDD = 0.45     # high-VT cells below their threshold voltage


def voltage_grid(vt: VtFlavor) -> list[float]:
    """Characterized supply voltages for one VT flavor."""
    if vt is VtFlavor.SVT:
        return [0.6, 0.7, 0.8, 0.9, 1.0]
    return [0.4, 0.6, 0.8, 1.0]


def frequency_grid(vt: VtFlavor, vdd: float) -> list[float]:
    """Characterized target frequencies (Hz) at one (VT, VDD) corner."""
    targets = {100e6 * step for step in range(1, 16)}       # 100 MHz - 1.5 GHz
    if vdd <= _NEAR_THRESHOLD_VDD:
        targets.update(50e6 * step for step in range(2, 11))  # 100-500 by 50
    if vt is VtFlavor.HVT and vdd <= _SUBTHRESHOLD_VDD:
        targets.update(10e6 * step for step in range(1, 11))  # 10-100 by 10
    return sorted(targets)


def close_grid(
    config: PipelineConfig,
    tech: Technology = TECH65,
    include_fmax_points: bool = True,
):
    """Close one config's (VT, VDD, f) synthesis grid — no CPI needed.

    Synthesis depends only on the microarchitecture and the electrical
    corner, so the grid can be closed before (or without) the expensive
    CPI campaign; :mod:`repro.dse.prune` exploits exactly that to
    project best-case metrics from static CPI lower bounds.
    """
    results = []
    for vt in VtFlavor:
        for vdd in voltage_grid(vt):
            targets = list(frequency_grid(vt, vdd))
            if include_fmax_points:
                targets.append(fmax(config, vdd, vt, tech))
            for f_target in targets:
                try:
                    results.append(synthesize(config, vdd, vt, f_target, tech))
                except SynthesisError:
                    continue
    return results


def _close_config(
    task: tuple[PipelineConfig, float, Technology, bool],
) -> list[DesignPoint]:
    """Process-pool worker: close one config's (VT, VDD, f) grid.

    Module level so it pickles; the point order within a config is the
    serial loop's order, so config-major concatenation of the per-config
    lists reproduces the serial sweep exactly.
    """
    config, cpi, tech, include_fmax_points = task
    return [
        DesignPoint(synthesis=result, cpi=cpi)
        for result in close_grid(config, tech, include_fmax_points)
    ]


def sweep(
    configs: list[PipelineConfig] | None = None,
    cpi_table: CpiTable | None = None,
    tech: Technology = TECH65,
    include_fmax_points: bool = True,
    workers: int | None = None,
    profile=None,
    service=None,
    prune=None,
) -> list[DesignPoint]:
    """Close every feasible design point in the characterized space.

    The per-config work (the CPI campaign and the synthesis grid) fans
    out across a process pool; ``workers`` follows the
    :func:`repro.parallel.resolve_workers` policy (``REPRO_SERIAL=1``
    forces the in-process serial path).  The returned point list is
    identical at any worker count; killed workers are retried (the
    :func:`repro.parallel.resilient_map` policy), degrading to serial
    execution if the pool keeps dying.

    ``profile`` (a :class:`repro.obs.campaign.CampaignProfile`)
    accumulates per-task timing across *both* phases — the CPI campaign
    and the synthesis closure — into one structured campaign report.

    ``service`` (a :mod:`repro.serve` client) routes both phases —
    ``cpi-config`` and ``dse-close`` task kinds — through the
    supervised campaign service: results are unchanged, but identical
    work is deduped against the durable store and an interrupted sweep
    resumes from its completed tasks.

    ``prune`` (a :class:`repro.dse.prune.PruneOracle`) short-circuits
    the CPI campaign for configs whose entire best-case grid — projected
    from the static CPI lower bound of :mod:`repro.analyze.perf` — is
    already dominated by measured points.  Pruned points are omitted
    from the returned list, but the Pareto frontier of the result is
    identical to the unpruned sweep's (see :mod:`repro.dse.prune` for
    the argument); pruned/evaluated counts land in ``prune.stats`` and
    the ``repro.dse.prune`` logger.
    """
    if configs is None:
        configs = all_configs()
    if cpi_table is None:
        cpi_table = CpiTable()
    if prune is not None:
        from repro.dse.prune import pruned_sweep

        return pruned_sweep(
            configs, cpi_table, prune, tech=tech,
            include_fmax_points=include_fmax_points, workers=workers,
            profile=profile, service=service,
        )
    # Fill the CPI table first (parallel across configs) so the closure
    # tasks below are cheap, pure and picklable.
    cpi_table.populate(configs, workers=workers, profile=profile,
                       service=service)
    if service is not None:
        per_config = service.map("dse-close", [
            {
                "config": config.name,
                "cpi": cpi_table.cpi(config),
                "tech": tech.name,
                "include_fmax": include_fmax_points,
            }
            for config in configs
        ])
    else:
        tasks = [
            (config, cpi_table.cpi(config), tech, include_fmax_points)
            for config in configs
        ]
        per_config = resilient_map(
            _close_config, tasks, workers, profile=profile
        )
    points: list[DesignPoint] = []
    for sublist in per_config:
        points.extend(sublist)
    return points
