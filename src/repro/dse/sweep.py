"""The Section 3 design-space sweep.

Characterization grids (paper Section 3):

* standard-VT cells at 0.6 / 0.7 / 0.8 / 0.9 / 1.0 V;
* low- and high-VT cells at 0.4 / 0.6 / 0.8 / 1.0 V;
* target frequencies 100 MHz - 1.5 GHz at 100 MHz granularity,
  refined to 50 MHz steps up through 500 MHz in near-threshold regimes,
  plus 10 MHz steps through 100 MHz for subthreshold high-VT corners;
* each microarchitecture's exact f_max at each (V, VT) is also closed,
  which is how points like "TDX1|X2 at 1157 MHz" enter the space.

Crossed with the 32 microarchitectures this yields the paper's >4,000
closed design points.
"""

from __future__ import annotations

from repro.dse.cpi import CpiTable
from repro.dse.design_point import DesignPoint
from repro.errors import SynthesisError
from repro.pipeline.config import PipelineConfig, all_configs
from repro.vlsi.synthesis import fmax, synthesize
from repro.vlsi.technology import TECH65, Technology, VtFlavor

_NEAR_THRESHOLD_VDD = 0.7    # refinement kicks in at and below this supply
_SUBTHRESHOLD_VDD = 0.45     # high-VT cells below their threshold voltage


def voltage_grid(vt: VtFlavor) -> list[float]:
    """Characterized supply voltages for one VT flavor."""
    if vt is VtFlavor.SVT:
        return [0.6, 0.7, 0.8, 0.9, 1.0]
    return [0.4, 0.6, 0.8, 1.0]


def frequency_grid(vt: VtFlavor, vdd: float) -> list[float]:
    """Characterized target frequencies (Hz) at one (VT, VDD) corner."""
    targets = {100e6 * step for step in range(1, 16)}       # 100 MHz - 1.5 GHz
    if vdd <= _NEAR_THRESHOLD_VDD:
        targets.update(50e6 * step for step in range(2, 11))  # 100-500 by 50
    if vt is VtFlavor.HVT and vdd <= _SUBTHRESHOLD_VDD:
        targets.update(10e6 * step for step in range(1, 11))  # 10-100 by 10
    return sorted(targets)


def sweep(
    configs: list[PipelineConfig] | None = None,
    cpi_table: CpiTable | None = None,
    tech: Technology = TECH65,
    include_fmax_points: bool = True,
) -> list[DesignPoint]:
    """Close every feasible design point in the characterized space."""
    if configs is None:
        configs = all_configs()
    if cpi_table is None:
        cpi_table = CpiTable()
    points: list[DesignPoint] = []
    for config in configs:
        cpi = cpi_table.cpi(config)
        for vt in VtFlavor:
            for vdd in voltage_grid(vt):
                targets = list(frequency_grid(vt, vdd))
                if include_fmax_points:
                    targets.append(fmax(config, vdd, vt, tech))
                for f_target in targets:
                    try:
                        result = synthesize(config, vdd, vt, f_target, tech)
                    except SynthesisError:
                        continue
                    points.append(DesignPoint(synthesis=result, cpi=cpi))
    return points
