"""Design-space exploration: the paper's >4,000-point energy-delay study."""

from repro.dse.design_point import DesignPoint
from repro.dse.cpi import CpiTable
from repro.dse.prune import PruneOracle, PruneStats
from repro.dse.sweep import close_grid, sweep, voltage_grid, frequency_grid
from repro.dse.pareto import pareto_frontier

__all__ = [
    "DesignPoint",
    "CpiTable",
    "PruneOracle",
    "PruneStats",
    "close_grid",
    "sweep",
    "voltage_grid",
    "frequency_grid",
    "pareto_frontier",
]
