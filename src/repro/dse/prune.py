"""Static-bound pruning for the design-space sweep.

The sweep's cost is the CPI campaign: every microarchitecture pays a
full ten-workload simulation before any of its (VT, VDD, f) points can
be placed on the energy-delay plane.  At the ROADMAP's 10^5-10^6 point
scale that is the budget.  This module skips the campaign for configs
that provably cannot contribute to the Pareto frontier, using the
static CPI lower bounds of :mod:`repro.analyze.perf`.

Soundness argument (why no frontier member is ever dropped):

* both sweep metrics are strictly increasing in CPI at a fixed
  synthesis point — ``delay = cpi / f`` and ``energy = power * cpi / f``
  — so projecting a point with a CPI **lower bound** yields an
  *optimistic* (delay, energy) pair, component-wise <= the true pair;
* a candidate point is pruned only when some **already-measured, kept**
  point is <= its optimistic projection on both axes and strictly below
  on at least one.  Chaining ``measured <= projection <= true`` (with
  the strict axis staying strict), the kept point strictly dominates
  the candidate's *true* metrics;
* :func:`repro.dse.pareto.pareto_frontier` never admits a point that
  some other point in the set strictly dominates, so the pruned point
  could not have been a frontier member — and its dominator remains in
  the returned set.

Configs are evaluated in ascending order of their static lower bound:
the likely-fastest microarchitectures are measured first, so their real
points dominate away as much of the remaining space as possible before
it is ever simulated.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from repro.params import ArchParams, DEFAULT_PARAMS
from repro.pipeline.config import PipelineConfig

log = logging.getLogger("repro.dse.prune")

#: No program retires more than one instruction per cycle, so 1.0 is a
#: universal CPI floor — the projection for configs the oracle has no
#: bound for (still sound, never helpful).
_UNIVERSAL_FLOOR = 1.0


@dataclass
class PruneStats:
    """Pruned/evaluated accounting for one oracle's lifetime."""

    configs_total: int = 0
    configs_pruned: int = 0
    points_total: int = 0
    points_pruned: int = 0

    @property
    def configs_evaluated(self) -> int:
        return self.configs_total - self.configs_pruned

    @property
    def points_evaluated(self) -> int:
        return self.points_total - self.points_pruned

    @property
    def point_rate(self) -> float:
        """Fraction of candidate points pruned."""
        return self.points_pruned / self.points_total if self.points_total \
            else 0.0

    def as_dict(self) -> dict:
        return {
            "configs_total": self.configs_total,
            "configs_pruned": self.configs_pruned,
            "configs_evaluated": self.configs_evaluated,
            "points_total": self.points_total,
            "points_pruned": self.points_pruned,
            "points_evaluated": self.points_evaluated,
            "point_rate": round(self.point_rate, 4),
        }


class PruneOracle:
    """Per-config static CPI lower bounds, packaged for ``sweep(prune=)``.

    ``lower_bounds`` maps config names to proved workload-average CPI
    floors (:func:`repro.analyze.perf.config_lower_bounds` produces
    exactly this).  ``batch`` controls how many surviving configs are
    simulated per :meth:`~repro.dse.cpi.CpiTable.populate` call — larger
    batches parallelize better, smaller ones prune harder because each
    batch's measured points cut down the next.
    """

    def __init__(self, lower_bounds: dict[str, float],
                 batch: int = 8) -> None:
        self.lower_bounds = dict(lower_bounds)
        self.batch = max(1, batch)
        self.stats = PruneStats()

    def lower_bound(self, config: PipelineConfig) -> float:
        return self.lower_bounds.get(config.name, _UNIVERSAL_FLOOR)

    @classmethod
    def from_workloads(
        cls,
        configs: list[PipelineConfig],
        params: ArchParams = DEFAULT_PARAMS,
        workloads: list[str] | None = None,
        scale: int = 8,
        seed: int = 0,
        batch: int = 8,
    ) -> "PruneOracle":
        """Build the oracle by static analysis — no simulation."""
        from repro.analyze.perf import config_lower_bounds

        return cls(
            config_lower_bounds(configs, params, workloads=workloads,
                                scale=scale, seed=seed),
            batch=batch,
        )


def _projection(synthesis, lower: float) -> tuple[float, float]:
    """Optimistic (delay ns, energy pJ) for one synthesis point at the
    config's CPI lower bound — the same formulas as
    :class:`~repro.dse.design_point.DesignPoint` with CPI replaced by
    its floor."""
    per_instruction = lower / synthesis.f_target_hz
    return per_instruction * 1e9, synthesis.power_w * per_instruction * 1e12


def _dominated(delay: float, energy: float,
               measured: list[tuple[float, float]]) -> bool:
    return any(
        m_delay <= delay and m_energy <= energy
        and (m_delay < delay or m_energy < energy)
        for m_delay, m_energy in measured)


def pruned_sweep(
    configs: list[PipelineConfig],
    cpi_table,
    oracle: PruneOracle,
    tech=None,
    include_fmax_points: bool = True,
    workers: int | None = None,
    profile=None,
    service=None,
):
    """The ``sweep(prune=...)`` evaluation loop.

    Points arrive in ascending-static-lower-bound config order (not the
    caller's order — documented on :func:`repro.dse.sweep.sweep`).  The
    CPI campaign for each batch of surviving configs goes through
    ``cpi_table.populate`` unchanged, so parallel workers, campaign
    profiling, and the ``service=`` path all compose with pruning.
    """
    from repro.dse.design_point import DesignPoint
    from repro.dse.sweep import close_grid
    from repro.vlsi.technology import TECH65

    tech = TECH65 if tech is None else tech
    stats = oracle.stats
    stats.configs_total += len(configs)
    ordered = sorted(configs, key=oracle.lower_bound)
    measured: list[tuple[float, float]] = []
    points: list[DesignPoint] = []
    for start in range(0, len(ordered), oracle.batch):
        batch = ordered[start:start + oracle.batch]
        survivors = []
        for config in batch:
            lower = oracle.lower_bound(config)
            grid = close_grid(config, tech, include_fmax_points)
            stats.points_total += len(grid)
            alive = any(
                not _dominated(*_projection(s, lower), measured)
                for s in grid
            )
            if not alive:
                stats.configs_pruned += 1
                stats.points_pruned += len(grid)
                log.info(
                    "pruned config %s: all %d grid points dominated at "
                    "static CPI floor %.3f", config.name, len(grid), lower)
                continue
            survivors.append((config, lower, grid))
        if not survivors:
            continue
        cpi_table.populate([config for config, _, _ in survivors],
                           workers=workers, profile=profile, service=service)
        for config, lower, grid in survivors:
            cpi = cpi_table.cpi(config)
            kept = 0
            for synthesis in grid:
                if _dominated(*_projection(synthesis, lower), measured):
                    stats.points_pruned += 1
                    continue
                point = DesignPoint(synthesis=synthesis, cpi=cpi)
                points.append(point)
                measured.append(
                    (point.ns_per_instruction, point.pj_per_instruction))
                kept += 1
            log.info("evaluated config %s: kept %d of %d points "
                     "(measured CPI %.3f, static floor %.3f)",
                     config.name, kept, len(grid), cpi, lower)
    log.info(
        "prune summary: %d of %d configs pruned, %d of %d points pruned "
        "(%.1f%%)", stats.configs_pruned, stats.configs_total,
        stats.points_pruned, stats.points_total, 100 * stats.point_rate)
    return points
