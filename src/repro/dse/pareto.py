"""Pareto frontier extraction over the energy-delay plane."""

from __future__ import annotations

from typing import Callable, Sequence

from repro.dse.design_point import DesignPoint


def pareto_frontier(
    points: Sequence[DesignPoint],
    energy: Callable[[DesignPoint], float] = lambda p: p.pj_per_instruction,
    delay: Callable[[DesignPoint], float] = lambda p: p.ns_per_instruction,
) -> list[DesignPoint]:
    """Points not dominated in (energy, delay), sorted fastest first.

    A point dominates another when it is no worse on both axes and
    strictly better on at least one.
    """
    ordered = sorted(points, key=lambda p: (delay(p), energy(p)))
    frontier: list[DesignPoint] = []
    best_energy = float("inf")
    for point in ordered:
        e = energy(point)
        if e < best_energy:
            frontier.append(point)
            best_energy = e
    return frontier


def frontier_span(frontier: Sequence[DesignPoint]) -> dict[str, float]:
    """The energy and delay extremes and their ratios (the 71x / 225x claim)."""
    if not frontier:
        return {}
    energies = [p.pj_per_instruction for p in frontier]
    delays = [p.ns_per_instruction for p in frontier]
    return {
        "min_pj": min(energies),
        "max_pj": max(energies),
        "energy_span": max(energies) / min(energies),
        "min_ns": min(delays),
        "max_ns": max(delays),
        "delay_span": max(delays) / min(delays),
    }
