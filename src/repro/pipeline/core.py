"""Cycle-accurate model of a pipelined triggered PE (paper Section 5).

The model is an in-order, single-issue pipeline over the configured
stage partition.  Timing semantics:

* **Issue (T stage)** — trigger resolution against live predicate state
  and the configured queue-status view.  The issue-time
  :class:`~repro.isa.instruction.PredUpdate` applies immediately (the
  ``PC = PC + 4`` analogue), so it never hazards.
* **Decode (exit of the D stage)** — operands are captured (with full
  register forwarding) and input-queue dequeues take effect, matching
  the paper's decision to move dequeues out of the trigger stage.
* **Results** — single-stage ALU operations produce (forwardable)
  results at the end of the stage containing X (or X1); multiplies and
  scratchpad loads at the end of X2.  A consumer stuck in decode behind
  an unready producer is a *data hazard*.
* **Retire (exit of the last stage)** — register writes, output-queue
  enqueues, scratchpad stores and datapath *predicate* writes commit.
  Predicates resolve only here — bypassing them into the scheduler is
  exactly what the trigger critical path cannot afford — which is why
  the predicate-hazard penalty depends only on pipeline depth, as the
  paper observes.

Predicate prediction (+P) follows Section 5.2: a two-bit saturating
counter per predicate offers a value when a predicate-writing
instruction issues, provided no speculation is outstanding (the paper's
scheme is non-nested; ``speculative_depth`` > 1 models the Section 6
extension).  While unresolved, instructions with pre-retirement side
effects (dequeues) are recognized but forbidden from issue.  On
misprediction the pipeline is flushed and the saved predicate state is
restored with the actual outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.predicates import PredicateFile
from repro.arch.queue import TaggedQueue
from repro.arch.regfile import RegisterFile
from repro.arch.scheduler import Scheduler, TriggerKind
from repro.arch.scratchpad import Scratchpad
from repro.errors import SimulationError
from repro.isa.alu import AluResult, alu_execute
from repro.isa.instruction import DestinationType, Instruction, OperandType
from repro.params import ArchParams, DEFAULT_PARAMS
from repro.pipeline.config import PipelineConfig, QueuePolicy, SINGLE_CYCLE
from repro.pipeline.counters import PipelineCounters
from repro.pipeline.predictor import PredicatePredictor
from repro.pipeline.queue_status import InFlightQueueState, make_queue_view


@dataclass
class _InFlight:
    """One instruction travelling down the pipe."""

    ins: Instruction
    slot: int
    seq: int
    stage: int
    captured: bool = False
    operands: tuple[int, int] = (0, 0)
    result: AluResult | None = None
    result_ready: bool = False
    pred_committed: bool = False   # predicate write already applied (+P)

    @property
    def writes_reg(self) -> bool:
        return self.ins.dp.dst.kind is DestinationType.REG

    @property
    def writes_pred(self) -> bool:
        return self.ins.dp.writes_predicate


@dataclass
class _Speculation:
    """One outstanding predicate prediction."""

    owner_seq: int
    pred_index: int
    predicted: int
    fallback: int   # predicate state to restore on misprediction


class PipelinedPE:
    """A triggered PE with a configurable pipeline microarchitecture."""

    def __init__(
        self,
        config: PipelineConfig = SINGLE_CYCLE,
        params: ArchParams = DEFAULT_PARAMS,
        name: str = "pe",
        has_scratchpad: bool = True,
        initial_predicates: int = 0,
    ) -> None:
        self.config = config
        self.params = params
        self.name = name
        capacity = params.queue_capacity
        out_capacity = capacity
        if config.queue_policy is QueuePolicy.PADDED:
            # The reject buffer: one extra physical slot per pipeline stage.
            out_capacity = capacity + config.depth
        self.inputs = [
            TaggedQueue(capacity, f"{name}.i{i}")
            for i in range(params.num_input_queues)
        ]
        self.outputs = [
            TaggedQueue(out_capacity, f"{name}.o{i}")
            for i in range(params.num_output_queues)
        ]
        self.regs = RegisterFile(params)
        self.preds = PredicateFile(params, initial_predicates)
        self.scratchpad = Scratchpad(params) if has_scratchpad else None
        self.scheduler = Scheduler(params)
        self.predictor = PredicatePredictor(params)
        self.instructions: list[Instruction] = []
        self.counters = PipelineCounters()
        self.halted = False
        self._initial_predicates = initial_predicates
        self._pipe: list[_InFlight | None] = [None] * config.depth
        self._queue_state = InFlightQueueState(
            params.num_input_queues, params.num_output_queues
        )
        self._specs: list[_Speculation] = []
        self._next_seq = 0
        self._halt_pending = False

    # ------------------------------------------------------------------
    # Host interface
    # ------------------------------------------------------------------

    def load_program(self, instructions: list[Instruction]) -> None:
        if len(instructions) > self.params.num_instructions:
            raise SimulationError(
                f"{self.name}: program of {len(instructions)} instructions "
                f"exceeds NIns = {self.params.num_instructions}"
            )
        for ins in instructions:
            if ins.valid:
                ins.validate(self.params)
        self.instructions = list(instructions)

    def reset(self) -> None:
        for queue in self.inputs:
            queue.reset()
        for queue in self.outputs:
            queue.reset()
        self.regs.reset()
        self.preds.reset(self._initial_predicates)
        if self.scratchpad is not None:
            self.scratchpad.reset()
        self.predictor.reset()
        self.counters = PipelineCounters()
        self.halted = False
        self._pipe = [None] * self.config.depth
        self._queue_state.reset()
        self._specs = []
        self._next_seq = 0
        self._halt_pending = False

    def commit_queues(self) -> None:
        for queue in self.inputs:
            queue.commit()
        for queue in self.outputs:
            queue.commit()

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Advance one cycle; True when an instruction issued or retired."""
        if self.halted:
            return False
        self.counters.cycles += 1
        config = self.config
        depth = config.depth
        progressed = False
        data_stall = False

        # 1. Advance the pipe back to front; retire from the last stage.
        for stage in reversed(range(depth)):
            entry = self._pipe[stage]
            if entry is None:
                continue
            if stage == depth - 1:
                self._retire(entry)
                self._pipe[stage] = None
                progressed = True
                if self.halted:
                    # The halting cycle issues nothing; keep the CPI stack
                    # tiling exact by classifying it as an idle cycle.
                    self.counters.none_triggered_cycles += 1
                    return True
                continue
            if self._pipe[stage + 1] is not None:
                continue  # structural stall behind a blocked stage
            if stage == config.decode_stage and not entry.captured:
                continue  # data hazard: operands not captured yet
            self._pipe[stage] = None
            entry.stage = stage + 1
            self._pipe[stage + 1] = entry

        # 2. End-of-stage work: operand capture in D, results where due.
        decode_entry = self._pipe[config.decode_stage]
        if decode_entry is not None and not decode_entry.captured:
            if self._operands_ready(decode_entry):
                self._capture(decode_entry)
            else:
                data_stall = True
        # Oldest first: a mispredicting owner must flush younger entries
        # before any of them commits an early predicate write of its own.
        for entry in reversed(self._pipe):
            if entry is None or entry.result_ready or not entry.captured:
                continue
            late = entry.ins.dp.op.late_result
            if entry.stage >= config.result_stage(late):
                self._compute(entry)

        # 3. Trigger stage: issue a new instruction if the slot is free.
        if self._pipe[0] is not None:
            # The front is blocked; only data hazards stall this pipeline.
            self.counters.data_hazard_cycles += 1
            return progressed
        if self._halt_pending:
            self.counters.none_triggered_cycles += 1
            return progressed
        outcome = self.scheduler.evaluate(
            self.instructions,
            self.preds.state,
            make_queue_view(config, self.inputs, self.outputs, self._queue_state),
            pending_predicates=self._pending_predicates(),
            forbid_side_effects=bool(self._specs),
        )
        if outcome.kind is TriggerKind.FIRED:
            self._issue(self.instructions[outcome.index], outcome.index)
            # When decode is coalesced into the trigger stage, operand
            # capture and dequeues belong to the issue cycle itself.
            entry = self._pipe[0]
            if self.config.decode_stage == 0 and self._operands_ready(entry):
                self._capture(entry)
                late = entry.ins.dp.op.late_result
                if self.config.result_stage(late) == 0:
                    self._compute(entry)
            progressed = True
        elif outcome.kind is TriggerKind.PREDICATE_HAZARD:
            self.counters.pred_hazard_cycles += 1
        elif outcome.kind is TriggerKind.FORBIDDEN:
            self.counters.forbidden_cycles += 1
        else:
            self.counters.none_triggered_cycles += 1
        return progressed

    # ------------------------------------------------------------------
    # Issue
    # ------------------------------------------------------------------

    def _pending_predicates(self) -> int:
        """Predicate bits with in-flight, *unpredicted* datapath writes."""
        predicted_seqs = {spec.owner_seq for spec in self._specs}
        mask = 0
        for entry in self._pipe:
            if entry is None or not entry.writes_pred or entry.pred_committed:
                continue
            if entry.seq in predicted_seqs:
                continue
            mask |= 1 << entry.ins.dp.dst.index
        return mask

    def _issue(self, ins: Instruction, slot: int) -> None:
        entry = _InFlight(ins=ins, slot=slot, seq=self._next_seq, stage=0)
        self._next_seq += 1
        self._pipe[0] = entry
        self.counters.issued += 1

        # Issue-time atomic predicate update (never survives a flush of
        # this instruction, so it touches only the live state).
        self.preds.apply_update(ins.dp.pred_update)

        # Book pending queue activity for the status views.
        for queue in ins.dp.deq:
            self._queue_state.pending_deqs[queue] += 1
            self._queue_state.sched_deqs[queue] += 1
        out = ins.output_queue
        if out is not None:
            self._queue_state.pending_enqs[out] += 1

        # Offer a prediction for a predicate-writing instruction.
        if (
            ins.dp.writes_predicate
            and self.config.predicate_prediction
            and len(self._specs) < self.config.speculative_depth
        ):
            index = ins.dp.dst.index
            predicted = self.predictor.predict(index)
            self._specs.append(
                _Speculation(
                    owner_seq=entry.seq,
                    pred_index=index,
                    predicted=predicted,
                    fallback=self.preds.state,
                )
            )
            self.preds.write_bit(index, predicted)

        if ins.dp.op.mnemonic == "halt":
            self._halt_pending = True

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------

    def _youngest_producer(self, reg: int, before_seq: int) -> _InFlight | None:
        best = None
        for entry in self._pipe:
            if entry is None or entry.seq >= before_seq:
                continue
            if entry.writes_reg and entry.ins.dp.dst.index == reg:
                if best is None or entry.seq > best.seq:
                    best = entry
        return best

    def _operands_ready(self, entry: _InFlight) -> bool:
        for src in entry.ins.dp.srcs:
            if src.kind is OperandType.REG:
                producer = self._youngest_producer(src.index, entry.seq)
                if producer is not None and not producer.result_ready:
                    return False
        return True

    def _capture(self, entry: _InFlight) -> None:
        """Read operands (with forwarding) and perform dequeues."""
        dp = entry.ins.dp
        operands = []
        for src in dp.srcs:
            if src.kind is OperandType.REG:
                producer = self._youngest_producer(src.index, entry.seq)
                if producer is not None:
                    operands.append(producer.result.value)
                else:
                    operands.append(self.regs.read(src.index))
            elif src.kind is OperandType.IN:
                operands.append(self.inputs[src.index].peek(0).value)
            elif src.kind is OperandType.IMM:
                operands.append(dp.imm & self.params.word_mask)
            else:
                operands.append(0)
        while len(operands) < 2:
            operands.append(0)
        entry.operands = (operands[0], operands[1])
        entry.captured = True
        for queue in dp.deq:
            self.inputs[queue].dequeue()
            self._queue_state.pending_deqs[queue] -= 1
            self.counters.dequeues += 1

    # ------------------------------------------------------------------
    # Execute / retire
    # ------------------------------------------------------------------

    def _compute(self, entry: _InFlight) -> None:
        entry.result = alu_execute(
            entry.ins.dp.op,
            entry.operands[0],
            entry.operands[1],
            self.params,
            self.scratchpad,
        )
        entry.result_ready = True
        # The speculative predicate unit (+P) sees computed predicates as
        # soon as the ALU produces them: predictions verify here, and
        # unpredicted writes bypass into its live state early.  Without
        # +P there is no such unit, and predicates resolve at retirement.
        if entry.writes_pred and self.config.predicate_prediction:
            self._commit_predicate_write(entry, entry.result.value & 1)
            entry.pred_committed = True

    def _retire(self, entry: _InFlight) -> None:
        if not entry.captured:
            self._capture(entry)    # D coalesced into the final stage
        if not entry.result_ready:
            self._compute(entry)
        result = entry.result
        dp = entry.ins.dp
        dst = dp.dst

        # The scheduler-visible dequeue window closes only at retirement.
        for queue in dp.deq:
            self._queue_state.sched_deqs[queue] -= 1

        if result.store is not None:
            if self.scratchpad is None:
                raise SimulationError(f"{self.name}: store without a scratchpad")
            self.scratchpad.store(*result.store)

        if dst.kind is DestinationType.REG:
            self.regs.write(dst.index, result.value)
        elif dst.kind is DestinationType.OUT:
            self.outputs[dst.index].enqueue(result.value, dst.out_tag)
            self._queue_state.pending_enqs[dst.index] -= 1
            self.counters.enqueues += 1
        elif dst.kind is DestinationType.PRED and not entry.pred_committed:
            self._commit_predicate_write(entry, result.value & 1)

        if result.halt:
            self.halted = True

        self.counters.retired += 1
        self.counters.retired_by_op[dp.op.mnemonic] += 1
        self.counters.retired_by_slot[entry.slot] += 1

    def _commit_predicate_write(self, entry: _InFlight, actual: int) -> None:
        self.counters.predicate_writes += 1
        index = entry.ins.dp.dst.index
        self.predictor.record_outcome(index, actual)

        spec = next((s for s in self._specs if s.owner_seq == entry.seq), None)
        if spec is None:
            # Unpredicted write: lands in the live state — unless a
            # *younger* in-flight prediction already holds this bit, in
            # which case program order makes the predicted value current
            # and this older write only feeds the rollback state.
            younger_prediction_holds_bit = any(
                s.pred_index == index and s.owner_seq > entry.seq
                for s in self._specs
            )
            if not younger_prediction_holds_bit:
                self.preds.write_bit(index, actual)
            # The write must survive the rollback of any younger
            # speculation (their fallbacks absorb it), but a speculation
            # older than this writer would flush it, so its fallback
            # must not change.
            for other in self._specs:
                if other.owner_seq > entry.seq:
                    if actual:
                        other.fallback |= 1 << index
                    else:
                        other.fallback &= ~(1 << index)
            return

        correct = spec.predicted == actual
        self.counters.predictions += 1
        self.predictor.record_resolution(correct)
        if correct:
            self._specs.remove(spec)
            return
        self.counters.mispredictions += 1
        self._flush_younger_than(spec.owner_seq)
        self._specs = [s for s in self._specs if s.owner_seq < spec.owner_seq]
        restored = spec.fallback
        if actual:
            restored |= 1 << index
        else:
            restored &= ~(1 << index)
        self.preds.state = restored

    def _flush_younger_than(self, owner_seq: int) -> None:
        """Quash every in-flight instruction issued after the owner."""
        for stage, entry in enumerate(self._pipe):
            if entry is None or entry.seq <= owner_seq:
                continue
            if entry.ins.dp.deq and not entry.captured:
                # Cannot happen: dequeues are forbidden during speculation.
                raise SimulationError(
                    f"{self.name}: flushing an uncaptured dequeue instruction"
                )
            out = entry.ins.output_queue
            if out is not None:
                self._queue_state.pending_enqs[out] -= 1
            self._pipe[stage] = None
            self.counters.quashed += 1
        self._halt_pending = any(
            entry is not None and entry.ins.dp.op.mnemonic == "halt"
            for entry in self._pipe
        )
