"""Cycle-accurate model of a pipelined triggered PE (paper Section 5).

The model is an in-order, single-issue pipeline over the configured
stage partition.  Timing semantics:

* **Issue (T stage)** — trigger resolution against live predicate state
  and the configured queue-status view.  The issue-time
  :class:`~repro.isa.instruction.PredUpdate` applies immediately (the
  ``PC = PC + 4`` analogue), so it never hazards.
* **Decode (exit of the D stage)** — operands are captured (with full
  register forwarding) and input-queue dequeues take effect, matching
  the paper's decision to move dequeues out of the trigger stage.
* **Results** — single-stage ALU operations produce (forwardable)
  results at the end of the stage containing X (or X1); multiplies and
  scratchpad loads at the end of X2.  A consumer stuck in decode behind
  an unready producer is a *data hazard*.
* **Retire (exit of the last stage)** — register writes, output-queue
  enqueues, scratchpad stores and datapath *predicate* writes commit.
  Predicates resolve only here — bypassing them into the scheduler is
  exactly what the trigger critical path cannot afford — which is why
  the predicate-hazard penalty depends only on pipeline depth, as the
  paper observes.

Predicate prediction (+P) follows Section 5.2: a two-bit saturating
counter per predicate offers a value when a predicate-writing
instruction issues, provided no speculation is outstanding (the paper's
scheme is non-nested; ``speculative_depth`` > 1 models the Section 6
extension).  While unresolved, instructions with pre-retirement side
effects (dequeues) are recognized but forbidden from issue.  On
misprediction the pipeline is flushed and the saved predicate state is
restored with the actual outcome.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field

from repro.arch.predicates import PredicateFile
from repro.arch.queue import TaggedQueue
from repro.arch.regfile import RegisterFile
from repro.arch.scheduler import Scheduler, TriggerKind
from repro.arch.scratchpad import Scratchpad
from repro.arch.trigger_cache import (
    DST_OUT,
    DST_PRED,
    DST_REG,
    IN,
    LIT,
    REG,
    CompiledDatapath,
    compile_datapaths,
    compile_program,
)
from repro.errors import SimulationError
from repro.isa.alu import AluResult, alu_execute
from repro.isa.instruction import Instruction
from repro.params import ArchParams, DEFAULT_PARAMS
from repro.pipeline.config import PipelineConfig, QueuePolicy, SINGLE_CYCLE
from repro.pipeline.counters import PipelineCounters
from repro.pipeline.predictor import PredicatePredictor
from repro.pipeline.queue_status import InFlightQueueState, make_queue_view

_DECISION_CACHE_LIMIT = 1 << 16
"""Entries kept in the memoized trigger-decision cache before it is
dropped wholesale (decision spaces are tiny in practice; the bound only
guards degenerate programs)."""


class _InFlight:
    """One instruction travelling down the pipe."""

    __slots__ = (
        "ins", "meta", "slot", "seq", "stage", "captured", "operands",
        "result", "result_ready", "pred_committed", "writes_reg",
        "writes_pred",
    )

    def __init__(self, ins: Instruction, meta: CompiledDatapath, slot: int,
                 seq: int, stage: int) -> None:
        self.ins = ins
        self.meta = meta
        self.slot = slot
        self.seq = seq
        self.stage = stage
        self.captured = False
        self.operands = (0, 0)
        self.result: AluResult | None = None
        self.result_ready = False
        self.pred_committed = False   # predicate write already applied (+P)
        # Destination kind, flattened once at issue — these are chased
        # every cycle by hazard checks, where enum traffic is measurable.
        self.writes_reg = meta.writes_reg
        self.writes_pred = meta.writes_pred


@dataclass(frozen=True, slots=True)
class StageOccupant:
    """Public view of one pipeline stage's occupant (see
    :meth:`PipelinedPE.stage_snapshot`)."""

    stage: int
    slot: int
    seq: int
    op: str
    label: str
    captured: bool
    result_ready: bool


@dataclass(slots=True)
class _Speculation:
    """One outstanding predicate prediction."""

    owner_seq: int
    pred_index: int
    predicted: int
    fallback: int   # predicate state to restore on misprediction
    forced: bool = False   # injected inversion; excluded from accuracy stats


def _resolve_backend(backend: str) -> str:
    """Validate the executor choice, honoring the ``REPRO_JIT`` override.

    ``REPRO_JIT=1`` forces the specialization backend process-wide and
    ``REPRO_JIT=0`` forces the interpreter, regardless of what callers
    request — the escape hatches the differential harnesses use to run
    one corpus through both executors without threading a flag through
    every constructor.
    """
    if backend not in ("interp", "jit"):
        raise SimulationError(
            f"unknown backend {backend!r}; choose 'interp' or 'jit'"
        )
    override = os.environ.get("REPRO_JIT")
    if override == "1":
        return "jit"
    if override == "0":
        return "interp"
    return backend


class PipelinedPE:
    """A triggered PE with a configurable pipeline microarchitecture."""

    def __init__(
        self,
        config: PipelineConfig = SINGLE_CYCLE,
        params: ArchParams = DEFAULT_PARAMS,
        name: str = "pe",
        has_scratchpad: bool = True,
        initial_predicates: int = 0,
        fast_path: bool = True,
        backend: str = "interp",
    ) -> None:
        self.config = config
        self.params = params
        self.name = name
        capacity = params.queue_capacity
        out_capacity = capacity
        if config.queue_policy is QueuePolicy.PADDED:
            # The reject buffer: one extra physical slot per pipeline stage.
            out_capacity = capacity + config.depth
        self.inputs = [
            TaggedQueue(capacity, f"{name}.i{i}")
            for i in range(params.num_input_queues)
        ]
        self.outputs = [
            TaggedQueue(out_capacity, f"{name}.o{i}")
            for i in range(params.num_output_queues)
        ]
        self.regs = RegisterFile(params)
        self.preds = PredicateFile(params, initial_predicates)
        self.scratchpad = Scratchpad(params) if has_scratchpad else None
        self.scheduler = Scheduler(params)
        self.predictor = PredicatePredictor(params)
        self.instructions: list[Instruction] = []
        self.counters = PipelineCounters()
        self.halted = False
        self._initial_predicates = initial_predicates
        self._pipe: list[_InFlight | None] = [None] * config.depth
        self._queue_state = InFlightQueueState(
            params.num_input_queues, params.num_output_queues
        )
        self._specs: list[_Speculation] = []
        self._next_seq = 0
        self._halt_pending = False
        # Stage indices are immutable per config but cost a property-chain
        # walk per access; flatten them once.
        self._depth = config.depth
        self._decode_stage = config.decode_stage
        self._early_stage = config.early_result_stage
        self._late_stage = config.late_result_stage
        self._predicts = config.predicate_prediction
        self._spec_depth = config.speculative_depth
        # One queue-status view per PE, reading live state — rebuilding it
        # every cycle was pure allocation churn.
        self._view = make_queue_view(config, self.inputs, self.outputs,
                                     self._queue_state)
        # Fast path: triggers compiled at load time plus a memoized
        # trigger decision keyed on everything `evaluate` can observe.
        self.fast_path = fast_path
        self.backend = _resolve_backend(backend)
        self._jit = None          # compiled specialization (repro.jit)
        self._jit_block = None    # bound block-stepping entry point
        self._compiled = None
        self._dp_meta: list[CompiledDatapath] = []
        self._decision_cache: dict[tuple, object] = {}
        self._state_version = 0   # bumps when in-flight queue bookings change
        self._sig_queues = self.inputs + self.outputs
        #: Resilience seam: called with this PE at the top of every live
        #: cycle (see :mod:`repro.resilience.faults`).  None costs one
        #: attribute test per cycle.
        self.fault_hook = None
        #: Observability seam: a :class:`repro.obs.events.Telemetry` sink
        #: receiving issue/retire/quash/rollback events, or ``None``
        #: (one attribute test per cycle, like ``fault_hook``).
        self.telemetry = None
        #: Ring of the most recent (cycle, slot) issues, for forensic dumps.
        self.recent_fires: deque[tuple[int, int]] = deque(maxlen=8)

    # ------------------------------------------------------------------
    # Host interface
    # ------------------------------------------------------------------

    def load_program(self, instructions: list[Instruction]) -> None:
        if len(instructions) > self.params.num_instructions:
            raise SimulationError(
                f"{self.name}: program of {len(instructions)} instructions "
                f"exceeds NIns = {self.params.num_instructions}"
            )
        for ins in instructions:
            if ins.valid:
                ins.validate(self.params)
        self.instructions = list(instructions)
        self._compiled = compile_program(self.instructions) if self.fast_path else None
        self._dp_meta = compile_datapaths(self.instructions, self.params)
        self._decision_cache.clear()
        self._bind_backend()

    def _bind_backend(self) -> None:
        """Attach (or detach) the specialized executor for this program.

        On the ``jit`` backend the content-cached generated ``step``
        shadows the interpreter via an instance binding, and the block
        entry point becomes available to drivers through ``_jit_block``.
        Both defer to the interpreter whenever a fault hook or telemetry
        sink is attached, so instrumented runs stay bit-identical.
        """
        if self.backend == "jit" and self.instructions:
            from repro.jit.cache import get_compiled

            jit = get_compiled(self.instructions, self.config, self.params)
            self._jit = jit
            self.step = jit.step.__get__(self)
            self._jit_block = jit.run.__get__(self)
        else:
            self._jit = None
            self._jit_block = None
            self.__dict__.pop("step", None)

    def invalidate_schedule_cache(self) -> None:
        """Drop memoized trigger decisions (call after external rewiring).

        Queue-version signatures are only monotone for the queue objects
        the PE currently holds; swapping a queue object (as fabric wiring
        does) could otherwise let a stale signature alias a new state.
        """
        self._decision_cache.clear()
        self._state_version += 1
        self._sig_queues = self.inputs + self.outputs

    def reset(self) -> None:
        for queue in self.inputs:
            queue.reset()
        for queue in self.outputs:
            queue.reset()
        self.regs.reset()
        self.preds.reset(self._initial_predicates)
        if self.scratchpad is not None:
            self.scratchpad.reset()
        self.predictor.reset()
        self.counters = PipelineCounters()
        self.halted = False
        self._pipe = [None] * self.config.depth
        self._queue_state.reset()
        self._specs = []
        self._next_seq = 0
        self._halt_pending = False
        self._decision_cache.clear()
        self._state_version += 1
        self.recent_fires.clear()

    def commit_queues(self) -> None:
        for queue in self._sig_queues:
            if queue._staged:
                queue.commit()

    def run_cycles(self, max_cycles: int, stop_on_enqueue: bool = False) -> int:
        """Drive this PE standalone for up to ``max_cycles`` cycles.

        Queues commit after every cycle (the same schedule the fabric
        drivers follow); returns the number of cycles consumed.  On the
        jit backend this dispatches to the generated block loop; with a
        fault hook or telemetry sink attached — or on the interpreter
        backend — it steps cycle by cycle through :meth:`step`.
        """
        before = self.counters.cycles
        if (
            self._jit_block is not None
            and self.fault_hook is None
            and self.telemetry is None
        ):
            self._jit_block(max_cycles, stop_on_enqueue)
            ran = self.counters.cycles - before
            # Zero cycles means the block refused (entries were already
            # staged on a queue); fall through to the per-cycle loop.
            if ran or self.halted:
                return ran
        for _ in range(max_cycles):
            if self.halted:
                break
            self.step()
            stop = False
            for queue in self._sig_queues:
                if queue._staged:
                    queue.commit()
                    stop = True
            if stop and stop_on_enqueue:
                break
        return self.counters.cycles - before

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Advance one cycle; True when an instruction issued or retired."""
        if self.halted:
            return False
        self.counters.cycles += 1
        if self.fault_hook is not None:
            self.fault_hook(self)
        if self.telemetry is not None:
            self.telemetry.now = self.counters.cycles
        depth = self._depth
        decode_stage = self._decode_stage
        pipe = self._pipe
        progressed = False

        # 1. Advance the pipe back to front; retire from the last stage.
        for stage in reversed(range(depth)):
            entry = pipe[stage]
            if entry is None:
                continue
            if stage == depth - 1:
                self._retire(entry)
                pipe[stage] = None
                progressed = True
                if self.halted:
                    # The halting cycle issues nothing; keep the CPI stack
                    # tiling exact by classifying it as an idle cycle.
                    self.counters.none_triggered_cycles += 1
                    return True
                continue
            if pipe[stage + 1] is not None:
                continue  # structural stall behind a blocked stage
            if stage == decode_stage and not entry.captured:
                continue  # data hazard: operands not captured yet
            pipe[stage] = None
            entry.stage = stage + 1
            pipe[stage + 1] = entry

        # 2. End-of-stage work: operand capture in D, results where due.
        decode_entry = pipe[decode_stage]
        if (decode_entry is not None and not decode_entry.captured
                and self._operands_ready(decode_entry)):
            self._capture(decode_entry)
        # Oldest first: a mispredicting owner must flush younger entries
        # before any of them commits an early predicate write of its own.
        for entry in reversed(pipe):
            if entry is None or entry.result_ready or not entry.captured:
                continue
            if entry.stage >= (
                self._late_stage if entry.meta.late_result else self._early_stage
            ):
                self._compute(entry)

        # 3. Trigger stage: issue a new instruction if the slot is free.
        if pipe[0] is not None:
            # The front is blocked; only data hazards stall this pipeline.
            self.counters.data_hazard_cycles += 1
            return progressed
        if self._halt_pending:
            self.counters.none_triggered_cycles += 1
            return progressed
        pending = self._pending_predicates()
        forbid = bool(self._specs)
        if self.fast_path:
            # Memoize the decision on everything `evaluate` observes: the
            # predicate state, the hazard inputs, and a queue-status
            # signature maintained from monotone version counters.  Stall
            # and idle cycles re-present an unchanged key and skip the
            # program walk entirely.
            signature = self._state_version
            for queue in self._sig_queues:
                signature += queue.version
            key = (self.preds.state, pending, forbid, signature)
            outcome = self._decision_cache.get(key)
            if outcome is None:
                outcome = self.scheduler.evaluate(
                    self.instructions,
                    self.preds.state,
                    self._view,
                    pending_predicates=pending,
                    forbid_side_effects=forbid,
                    compiled=self._compiled,
                )
                if len(self._decision_cache) >= _DECISION_CACHE_LIMIT:
                    self._decision_cache.clear()
                self._decision_cache[key] = outcome
        else:
            outcome = self.scheduler.evaluate(
                self.instructions,
                self.preds.state,
                self._view,
                pending_predicates=pending,
                forbid_side_effects=forbid,
            )
        if outcome.kind is TriggerKind.FIRED:
            self._issue(self.instructions[outcome.index], outcome.index)
            # When decode is coalesced into the trigger stage, operand
            # capture and dequeues belong to the issue cycle itself.
            entry = pipe[0]
            if decode_stage == 0 and self._operands_ready(entry):
                self._capture(entry)
                late = entry.meta.late_result
                if (self._late_stage if late else self._early_stage) == 0:
                    self._compute(entry)
            progressed = True
        elif outcome.kind is TriggerKind.PREDICATE_HAZARD:
            self.counters.pred_hazard_cycles += 1
        elif outcome.kind is TriggerKind.FORBIDDEN:
            self.counters.forbidden_cycles += 1
        else:
            self.counters.none_triggered_cycles += 1
        return progressed

    # ------------------------------------------------------------------
    # Issue
    # ------------------------------------------------------------------

    def _pending_predicates(self) -> int:
        """Predicate bits with in-flight, *unpredicted* datapath writes."""
        mask = 0
        specs = self._specs
        for entry in self._pipe:
            if entry is None or not entry.writes_pred or entry.pred_committed:
                continue
            if specs and any(spec.owner_seq == entry.seq for spec in specs):
                continue
            mask |= 1 << entry.meta.dst_index
        return mask

    def _issue(self, ins: Instruction, slot: int) -> None:
        meta = self._dp_meta[slot]
        entry = _InFlight(ins, meta, slot, self._next_seq, 0)
        self._next_seq += 1
        self._pipe[0] = entry
        self.counters.issued += 1
        self.recent_fires.append((self.counters.cycles, slot))
        if self.telemetry is not None:
            self.telemetry.emit(
                "issue", self.name, slot=slot, op=meta.op.mnemonic,
                seq=entry.seq,
            )

        # Issue-time atomic predicate update (never survives a flush of
        # this instruction, so it touches only the live state).
        self.preds.apply_update(meta.pred_update)

        # Book pending queue activity for the status views.  The state
        # version only moves when the scheduler-visible in-flight
        # bookkeeping does — queue-free instructions leave the memoized
        # decision signature untouched.
        for queue in meta.deq:
            self._queue_state.pending_deqs[queue] += 1
            self._queue_state.sched_deqs[queue] += 1
            self._state_version += 1
        out = meta.out_queue
        if out >= 0:
            self._queue_state.pending_enqs[out] += 1
            self._state_version += 1

        # Offer a prediction for a predicate-writing instruction.
        if (
            entry.writes_pred
            and self._predicts
            and len(self._specs) < self._spec_depth
        ):
            index = meta.dst_index
            predicted = self.predictor.predict(index)
            self._specs.append(
                _Speculation(
                    owner_seq=entry.seq,
                    pred_index=index,
                    predicted=predicted,
                    fallback=self.preds.state,
                    forced=self.predictor.last_forced,
                )
            )
            self.preds.write_bit(index, predicted)

        if meta.is_halt:
            self._halt_pending = True

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------

    def _youngest_producer(self, reg: int, before_seq: int) -> _InFlight | None:
        best = None
        for entry in self._pipe:
            if entry is None or entry.seq >= before_seq:
                continue
            if (entry.writes_reg and entry.ins.dp.dst.index == reg
                    and (best is None or entry.seq > best.seq)):
                best = entry
        return best

    def _operands_ready(self, entry: _InFlight) -> bool:
        for reg in entry.meta.reg_srcs:
            producer = self._youngest_producer(reg, entry.seq)
            if producer is not None and not producer.result_ready:
                return False
        return True

    def _capture(self, entry: _InFlight) -> None:
        """Read operands (with forwarding) and perform dequeues."""
        meta = entry.meta
        operands = []
        for code, payload in meta.operand_plan:
            if code == REG:
                producer = self._youngest_producer(payload, entry.seq)
                if producer is not None:
                    operands.append(producer.result.value)
                else:
                    operands.append(self.regs.read(payload))
            elif code == IN:
                operands.append(self.inputs[payload].peek(0).value)
            else:   # LIT: an immediate (pre-masked) or an absent source
                operands.append(payload)
        entry.operands = (operands[0], operands[1])
        entry.captured = True
        for queue in meta.deq:
            self.inputs[queue].dequeue()
            self._queue_state.pending_deqs[queue] -= 1
            self.counters.dequeues += 1
            self._state_version += 1

    # ------------------------------------------------------------------
    # Execute / retire
    # ------------------------------------------------------------------

    def _compute(self, entry: _InFlight) -> None:
        meta = entry.meta
        semantics = meta.semantics
        a, b = entry.operands
        if semantics is not None:
            params = self.params
            mask = params.word_mask
            entry.result = semantics(
                a & mask, b & mask, params, mask, params.word_width,
                self.scratchpad,
            )
        else:
            entry.result = alu_execute(
                meta.op, a, b, self.params, self.scratchpad
            )
        entry.result_ready = True
        # The speculative predicate unit (+P) sees computed predicates as
        # soon as the ALU produces them: predictions verify here, and
        # unpredicted writes bypass into its live state early.  Without
        # +P there is no such unit, and predicates resolve at retirement.
        if entry.writes_pred and self._predicts:
            self._commit_predicate_write(entry, entry.result.value & 1)
            entry.pred_committed = True

    def _retire(self, entry: _InFlight) -> None:
        if not entry.captured:
            self._capture(entry)    # D coalesced into the final stage
        if not entry.result_ready:
            self._compute(entry)
        result = entry.result
        meta = entry.meta
        dst_kind = meta.dst_kind

        # The scheduler-visible dequeue window closes only at retirement.
        for queue in meta.deq:
            self._queue_state.sched_deqs[queue] -= 1
            self._state_version += 1

        if result.store is not None:
            if self.scratchpad is None:
                raise SimulationError(f"{self.name}: store without a scratchpad")
            self.scratchpad.store(*result.store)

        if dst_kind == DST_REG:
            self.regs.write(meta.dst_index, result.value)
        elif dst_kind == DST_OUT:
            self.outputs[meta.dst_index].enqueue(result.value, meta.out_tag)
            self._queue_state.pending_enqs[meta.dst_index] -= 1
            self.counters.enqueues += 1
            self._state_version += 1
        elif dst_kind == DST_PRED and not entry.pred_committed:
            self._commit_predicate_write(entry, result.value & 1)

        if result.halt:
            self.halted = True

        self.counters.retired += 1
        self.counters.retired_by_op[meta.op.mnemonic] += 1
        self.counters.retired_by_slot[entry.slot] += 1
        if self.telemetry is not None:
            self.telemetry.emit(
                "retire", self.name, slot=entry.slot, op=meta.op.mnemonic,
                seq=entry.seq,
            )

    def _commit_predicate_write(self, entry: _InFlight, actual: int) -> None:
        self.counters.predicate_writes += 1
        index = entry.meta.dst_index
        self.predictor.record_outcome(index, actual)

        spec = next((s for s in self._specs if s.owner_seq == entry.seq), None)
        if spec is None:
            # Unpredicted write: lands in the live state — unless a
            # *younger* in-flight prediction already holds this bit, in
            # which case program order makes the predicted value current
            # and this older write only feeds the rollback state.
            younger_prediction_holds_bit = any(
                s.pred_index == index and s.owner_seq > entry.seq
                for s in self._specs
            )
            if not younger_prediction_holds_bit:
                self.preds.write_bit(index, actual)
            # The write must survive the rollback of any younger
            # speculation (their fallbacks absorb it), but a speculation
            # older than this writer would flush it, so its fallback
            # must not change.
            for other in self._specs:
                if other.owner_seq > entry.seq:
                    if actual:
                        other.fallback |= 1 << index
                    else:
                        other.fallback &= ~(1 << index)
            return

        correct = spec.predicted == actual
        self.predictor.record_resolution(correct, forced=spec.forced)
        if spec.forced:
            self.counters.forced_predictions += 1
        else:
            self.counters.predictions += 1
        if correct:
            self._specs.remove(spec)
            return
        if not spec.forced:
            self.counters.mispredictions += 1
        if self.telemetry is not None:
            self.telemetry.emit(
                "rollback", self.name, pred_index=index,
                predicted=spec.predicted, actual=actual,
                owner_seq=spec.owner_seq,
            )
        self._flush_younger_than(spec.owner_seq)
        self._specs = [s for s in self._specs if s.owner_seq < spec.owner_seq]
        restored = spec.fallback
        if actual:
            restored |= 1 << index
        else:
            restored &= ~(1 << index)
        self.preds.state = restored

    def _flush_younger_than(self, owner_seq: int) -> None:
        """Quash every in-flight instruction issued after the owner."""
        for stage, entry in enumerate(self._pipe):
            if entry is None or entry.seq <= owner_seq:
                continue
            if entry.meta.deq and not entry.captured:
                # Cannot happen: dequeues are forbidden during speculation.
                raise SimulationError(
                    f"{self.name}: flushing an uncaptured dequeue instruction"
                )
            out = entry.meta.out_queue
            if out >= 0:
                self._queue_state.pending_enqs[out] -= 1
                self._state_version += 1
            self._pipe[stage] = None
            self.counters.quashed += 1
            if self.telemetry is not None:
                self.telemetry.emit(
                    "quash", self.name, slot=entry.slot, seq=entry.seq,
                    stage=stage,
                )
        self._halt_pending = any(
            entry is not None and entry.meta.is_halt
            for entry in self._pipe
        )

    # ------------------------------------------------------------------
    # Canonical state (the bounded model checker seam)
    # ------------------------------------------------------------------

    def snapshot_arch_state(self) -> tuple:
        """Canonical, hashable microarchitectural state.

        Everything a future cycle's behavior can depend on, as one
        nested tuple: registers, predicates, non-zero scratchpad words,
        the halt flags, queue contents (live and staged), the in-flight
        queue bookkeeping, the pipeline registers, outstanding
        speculations, and the predictor's two-bit counters.

        Sequence numbers are renumbered to their *relative* order — only
        age comparisons between in-flight entries and speculation owners
        matter, so two states reached after different issue counts but
        with identical relative structure canonicalize identically.
        That (plus excluding monotone cycle/retire counters and the
        predictor's accuracy tallies, which never feed back into
        execution) is what keeps the checker's frontier finite.  The
        inverse is :meth:`restore_arch_state`.
        """
        seqs = sorted(
            {e.seq for e in self._pipe if e is not None}
            | {s.owner_seq for s in self._specs}
        )
        rank = {seq: index for index, seq in enumerate(seqs)}
        pipe = []
        for entry in self._pipe:
            if entry is None:
                pipe.append(None)
                continue
            result = entry.result
            pipe.append((
                entry.slot,
                rank[entry.seq],
                entry.captured,
                entry.operands,
                None if result is None
                else (result.value, result.halt, result.store),
                entry.result_ready,
                entry.pred_committed,
            ))
        scratch = ()
        if self.scratchpad is not None:
            scratch = tuple(
                (address, word)
                for address, word in enumerate(self.scratchpad.dump())
                if word
            )
        return (
            self.regs.snapshot(),
            self.preds.state,
            scratch,
            self.halted,
            self._halt_pending,
            tuple(queue.arch_state() for queue in self.inputs),
            tuple(queue.arch_state() for queue in self.outputs),
            (
                tuple(self._queue_state.pending_deqs),
                tuple(self._queue_state.sched_deqs),
                tuple(self._queue_state.pending_enqs),
            ),
            tuple(pipe),
            tuple(
                (rank[s.owner_seq], s.pred_index, s.predicted, s.fallback,
                 s.forced)
                for s in self._specs
            ),
            (tuple(self.predictor.counters), self.predictor.force_invert_next),
        )

    def restore_arch_state(self, state: tuple) -> None:
        """Restore a :meth:`snapshot_arch_state` snapshot onto this PE.

        The loaded program must be the one the snapshot was taken under
        (pipeline entries are rebuilt from instruction slots).  Counters
        and forensic rings are left untouched; the memoized decision
        cache is dropped so stale decisions cannot alias restored state.
        """
        (regs, preds, scratch, halted, halt_pending, inputs, outputs,
         queue_state, pipe, specs, predictor) = state
        for index, value in enumerate(regs):
            self.regs.write(index, value)
        self.preds.state = preds
        if self.scratchpad is not None:
            self.scratchpad.reset()
            for address, word in scratch:
                self.scratchpad.store(address, word)
        self.halted = halted
        self._halt_pending = halt_pending
        for queue, enc in zip(self.inputs, inputs):
            queue.restore_arch(enc)
        for queue, enc in zip(self.outputs, outputs):
            queue.restore_arch(enc)
        pending_deqs, sched_deqs, pending_enqs = queue_state
        self._queue_state.pending_deqs[:] = pending_deqs
        self._queue_state.sched_deqs[:] = sched_deqs
        self._queue_state.pending_enqs[:] = pending_enqs
        self._pipe = [None] * self._depth
        next_seq = 0
        for stage, enc in enumerate(pipe):
            if enc is None:
                continue
            (slot, seq, captured, operands, result, result_ready,
             pred_committed) = enc
            entry = _InFlight(self.instructions[slot], self._dp_meta[slot],
                              slot, seq, stage)
            entry.captured = captured
            entry.operands = operands
            if result is not None:
                entry.result = AluResult(*result)
            entry.result_ready = result_ready
            entry.pred_committed = pred_committed
            self._pipe[stage] = entry
            next_seq = max(next_seq, seq + 1)
        self._specs = []
        for owner_seq, pred_index, predicted, fallback, forced in specs:
            self._specs.append(_Speculation(
                owner_seq=owner_seq, pred_index=pred_index,
                predicted=predicted, fallback=fallback, forced=forced,
            ))
            next_seq = max(next_seq, owner_seq + 1)
        self._next_seq = next_seq
        counters, force_invert = predictor
        self.predictor.counters[:] = counters
        self.predictor.force_invert_next = force_invert
        self._decision_cache.clear()
        self._state_version += 1

    # ------------------------------------------------------------------
    # Observability / forensics
    # ------------------------------------------------------------------

    def stage_snapshot(self) -> tuple[StageOccupant | None, ...]:
        """Public read-only view of the pipeline registers, one entry per
        stage (``None`` for an empty stage).

        This is the supported way to inspect in-flight state — the
        tracer, the telemetry sampler, and the trace exporters all read
        it — so external tooling never reaches into the private pipe.
        Sampling is non-invasive: nothing simulated changes.
        """
        snapshot = []
        for stage, entry in enumerate(self._pipe):
            if entry is None:
                snapshot.append(None)
                continue
            snapshot.append(
                StageOccupant(
                    stage=stage,
                    slot=entry.slot,
                    seq=entry.seq,
                    op=entry.meta.op.mnemonic,
                    label=entry.ins.label.split("@")[0] or "?",
                    captured=entry.captured,
                    result_ready=entry.result_ready,
                )
            )
        return tuple(snapshot)

    def snapshot_state(self) -> dict:
        """Structured microarchitectural state for forensic dumps.

        Includes what the deadlock watchdog needs to explain a hang: the
        in-flight pipeline registers, outstanding speculations, and the
        scheduler-visible queue bookkeeping.
        """
        pipe = []
        for occupant in self.stage_snapshot():
            if occupant is None:
                pipe.append(None)
                continue
            pipe.append(
                {
                    "stage": occupant.stage,
                    "slot": occupant.slot,
                    "op": occupant.op,
                    "seq": occupant.seq,
                    "captured": occupant.captured,
                    "result_ready": occupant.result_ready,
                }
            )
        return {
            "name": self.name,
            "model": "pipelined",
            "config": self.config.name,
            "halted": self.halted,
            "halt_pending": self._halt_pending,
            "cycles": self.counters.cycles,
            "retired": self.counters.retired,
            "issued": self.counters.issued,
            "predicates": f"{self.preds.state:0{self.params.num_preds}b}",
            "registers": list(self.regs.snapshot()),
            "recent_fires": list(self.recent_fires),
            "pipeline": pipe,
            "speculations": [
                {
                    "owner_seq": spec.owner_seq,
                    "pred_index": spec.pred_index,
                    "predicted": spec.predicted,
                }
                for spec in self._specs
            ],
            "pending_deqs": list(self._queue_state.pending_deqs),
            "sched_deqs": list(self._queue_state.sched_deqs),
            "pending_enqs": list(self._queue_state.pending_enqs),
            "inputs": [queue.snapshot() for queue in self.inputs],
            "outputs": [queue.snapshot() for queue in self.outputs],
        }
