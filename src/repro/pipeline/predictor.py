"""The speculative predicate unit (paper Section 5.2).

A bank of two-bit saturating counters, one per predicate register.  When
a program assigns semantic significance to particular predicates —
writing each only for one binary decision, as the paper's hand-written
benchmarks do — this bank acts as a per-branch predictor without the
usual cost of indexing a predictor table by instruction pointer.
"""

from __future__ import annotations

from repro.params import ArchParams


class PredicatePredictor:
    """Two-bit saturating predictor per predicate bit."""

    STRONG_NOT = 0
    WEAK_NOT = 1
    WEAK_TAKEN = 2
    STRONG_TAKEN = 3

    def __init__(self, params: ArchParams, initial: int = WEAK_NOT) -> None:
        self._params = params
        self._initial = initial
        self.counters = [initial] * params.num_preds
        self.predictions = 0
        self.correct = 0
        #: Forced inversions resolved so far (fault campaigns only).
        self.forced = 0
        #: Fault-injection seam: when set, the next prediction is inverted
        #: (and the flag consumed), forcing a misprediction/rollback at a
        #: chosen cycle without touching the training state.
        self.force_invert_next = False
        #: Whether the most recent ``predict`` consumed a forced inversion.
        #: The issue logic reads this to tag the speculation it creates, so
        #: the resolution can be excluded from the accuracy figures.
        self.last_forced = False

    def predict(self, index: int) -> int:
        """Predicted value (0/1) for one predicate bit."""
        predicted = int(self.counters[index] >= self.WEAK_TAKEN)
        if self.force_invert_next:
            self.force_invert_next = False
            self.last_forced = True
            return predicted ^ 1
        self.last_forced = False
        return predicted

    def record_outcome(self, index: int, actual: int) -> None:
        """Train on an actual datapath predicate write outcome.

        Called for *every* resolved predicate write, whether or not a
        prediction was outstanding — the counters track the stream of
        outcomes exactly like a branch history counter.
        """
        self.counters[index] = (
            min(self.STRONG_TAKEN, self.counters[index] + 1) if actual
            else max(self.STRONG_NOT, self.counters[index] - 1))

    def record_resolution(self, correct: bool, forced: bool = False) -> None:
        """Account one resolved prediction (Figure 4 accuracy).

        Forced inversions are injected faults, not predictor decisions:
        they are tallied separately (``forced``) for the resilience
        report and excluded from the accuracy statistics, so a fault
        campaign cannot pollute the Figure 4 reproduction.
        """
        if forced:
            self.forced += 1
            return
        self.predictions += 1
        if correct:
            self.correct += 1

    @property
    def accuracy(self) -> float | None:
        """Fraction of resolved predictions that were correct."""
        if self.predictions == 0:
            return None
        return self.correct / self.predictions

    def reset(self) -> None:
        self.counters = [self._initial] * self._params.num_preds
        self.predictions = 0
        self.correct = 0
        self.forced = 0
        self.force_invert_next = False
        self.last_forced = False
