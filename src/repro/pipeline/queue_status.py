"""Queue status accounting policies (paper Section 5.3).

Queue hazards straddle the control/data hazard dichotomy: in-flight
dequeues and enqueues make the architectural queue state stale by the
time the scheduler reads it.  Three policies are modeled:

* :class:`ConservativeQueueView` — RAW-style binary accounting: a queue
  with any pending dequeue is treated as empty, one with any pending
  enqueue as full.  Safe, cheap, and responsible for the growing
  "no triggered instruction" CPI component in unoptimized pipelines.
* :class:`EffectiveQueueView` — the paper's +Q: subtract in-flight
  dequeues from input occupancy (peeking past the head to the "neck"
  when needed) and add in-flight enqueues to output occupancy.  Costs
  only a couple of narrow adders.
* :class:`PaddedQueueView` — the WaveScalar "reject buffer": output
  queues get one extra physical slot per pipeline stage so in-flight
  enqueues always have somewhere to land; inputs stay conservative.
  Used in the Section 5.4 area/power comparison.
"""

from __future__ import annotations

from repro.arch.queue import TaggedQueue
from repro.arch.scheduler import QueueStatusView
from repro.pipeline.config import PipelineConfig, QueuePolicy


class InFlightQueueState:
    """Pending queue activity of instructions currently in the pipeline.

    Two horizons matter.  ``pending_deqs`` counts dequeues issued but not
    yet *physically performed* (they land in decode) — this is what the
    effective view corrects occupancy by.  ``sched_deqs`` counts dequeues
    of instructions that have not yet *retired*: without pipeline-register
    inspection a scheduler only learns about a dequeue at writeback, so
    the conservative policy keys off this longer window.  Enqueues land
    at retirement, so a single count serves both roles.
    """

    def __init__(self, num_inputs: int, num_outputs: int) -> None:
        self.pending_deqs = [0] * num_inputs     # issued, not yet past decode
        self.sched_deqs = [0] * num_inputs       # issued, not yet retired
        self.pending_enqs = [0] * num_outputs    # issued, not yet retired

    def reset(self) -> None:
        for i in range(len(self.pending_deqs)):
            self.pending_deqs[i] = 0
            self.sched_deqs[i] = 0
        for i in range(len(self.pending_enqs)):
            self.pending_enqs[i] = 0


class ConservativeQueueView(QueueStatusView):
    """Binary full/empty treatment of queues with pending operations."""

    def __init__(
        self,
        inputs: list[TaggedQueue],
        outputs: list[TaggedQueue],
        in_flight: InFlightQueueState,
    ) -> None:
        super().__init__(inputs, outputs)
        self.in_flight = in_flight

    def input_count(self, queue: int) -> int:
        if self.in_flight.sched_deqs[queue]:
            return 0
        return self.inputs[queue].occupancy

    def input_tag(self, queue: int, position: int = 0) -> int | None:
        if self.in_flight.sched_deqs[queue]:
            return None
        q = self.inputs[queue]
        if position >= q.occupancy:
            return None
        return q.peek(position).tag

    def output_space(self, queue: int) -> int:
        if self.in_flight.pending_enqs[queue]:
            return 0
        return self.outputs[queue].free_slots


#: Queue entries whose tags the +Q trigger hardware can inspect: the head
#: and the "neck" (Section 5.3).  Deeper entries have no tag comparators.
TAG_VISIBILITY = 2


class EffectiveQueueView(QueueStatusView):
    """The paper's +Q accounting: occupancy corrected for the pipeline."""

    def __init__(
        self,
        inputs: list[TaggedQueue],
        outputs: list[TaggedQueue],
        in_flight: InFlightQueueState,
        visible_depth: int = TAG_VISIBILITY,
    ) -> None:
        super().__init__(inputs, outputs)
        self.in_flight = in_flight
        self.visible_depth = visible_depth

    def input_count(self, queue: int) -> int:
        return max(
            0, self.inputs[queue].occupancy - self.in_flight.pending_deqs[queue]
        )

    def input_tag(self, queue: int, position: int = 0) -> int | None:
        """Tag at the effective position: skip entries being dequeued.

        With a split trigger/decode this inspects the "neck" of the queue
        as well as the head, exactly as Section 5.3 describes.  The
        hardware exposes *only* head and neck tag comparators, so an
        effective position beyond the visibility window reads as unknown
        (``None``) and the trigger conservatively does not fire — it
        cannot peek arbitrarily deep the way a software model could.
        """
        q = self.inputs[queue]
        effective = position + self.in_flight.pending_deqs[queue]
        if effective >= self.visible_depth:
            return None
        if effective >= q.occupancy:
            return None
        return q.peek(effective).tag

    def output_space(self, queue: int) -> int:
        return max(
            0,
            self.outputs[queue].free_slots - self.in_flight.pending_enqs[queue],
        )


class PaddedQueueView(ConservativeQueueView):
    """Reject-buffer policy: outputs never conservatively block.

    The physical padding (depth extra slots per output queue, applied by
    the PE at configuration time) guarantees capacity for every in-flight
    enqueue, so the scheduler checks only the real occupancy against the
    *unpadded* capacity; inputs remain conservative.
    """

    def __init__(
        self,
        inputs: list[TaggedQueue],
        outputs: list[TaggedQueue],
        in_flight: InFlightQueueState,
        padding: int,
    ) -> None:
        super().__init__(inputs, outputs, in_flight)
        self.padding = padding

    def output_space(self, queue: int) -> int:
        q = self.outputs[queue]
        return max(0, (q.capacity - self.padding) - q.occupancy)


def make_queue_view(
    config: PipelineConfig,
    inputs: list[TaggedQueue],
    outputs: list[TaggedQueue],
    in_flight: InFlightQueueState,
) -> QueueStatusView:
    """The scheduler's queue view for a given microarchitecture."""
    if config.queue_policy is QueuePolicy.EFFECTIVE:
        return EffectiveQueueView(inputs, outputs, in_flight)
    if config.queue_policy is QueuePolicy.PADDED:
        return PaddedQueueView(inputs, outputs, in_flight, config.depth)
    return ConservativeQueueView(inputs, outputs, in_flight)
