"""Per-cycle pipeline performance counters and CPI stacks (Figure 5).

Every simulated cycle of a pipelined PE is attributed to exactly one of
the paper's six categories:

* **retired** — an instruction issued this cycle and eventually retired;
* **quashed** — an instruction issued this cycle but was flushed by a
  predicate misprediction;
* **predicate hazard** — no issue: the highest-priority candidate's
  trigger inspects a predicate with an unresolved in-flight write;
* **data hazard** — no issue: the pipeline front is stalled behind a
  register/functional-unit dependence;
* **forbidden** — no issue: the triggered instruction has pre-retirement
  side effects and a speculation is unresolved;
* **no triggered instruction** — no trigger condition matched (includes
  conservative queue-status stalls, which +Q removes).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class PipelineCounters:
    """Counter block of one pipelined PE (the paper's in-vivo counters)."""

    cycles: int = 0
    issued: int = 0
    retired: int = 0
    quashed: int = 0
    pred_hazard_cycles: int = 0
    data_hazard_cycles: int = 0
    forbidden_cycles: int = 0
    none_triggered_cycles: int = 0
    predicate_writes: int = 0      # retired datapath predicate writes
    predictions: int = 0
    mispredictions: int = 0
    forced_predictions: int = 0    # injected inversions (fault campaigns)
    enqueues: int = 0
    dequeues: int = 0
    retired_by_op: Counter = field(default_factory=Counter)
    retired_by_slot: Counter = field(default_factory=Counter)

    # ------------------------------------------------------------------

    @property
    def cpi(self) -> float:
        if self.retired == 0:
            return float("inf")
        return self.cycles / self.retired

    @property
    def predicate_write_rate(self) -> float:
        if self.retired == 0:
            return 0.0
        return self.predicate_writes / self.retired

    @property
    def prediction_accuracy(self) -> float | None:
        if self.predictions == 0:
            return None
        return (self.predictions - self.mispredictions) / self.predictions

    def stack(self) -> dict[str, float]:
        """The Figure 5 CPI stack: cycles per retired instruction by class."""
        if self.retired == 0:
            return {}
        issued_cycles = self.issued
        quashed_cycles = self.quashed
        retired_cycles = issued_cycles - quashed_cycles
        return {
            "retired": retired_cycles / self.retired,
            "quashed": quashed_cycles / self.retired,
            "predicate_hazard": self.pred_hazard_cycles / self.retired,
            "data_hazard": self.data_hazard_cycles / self.retired,
            "forbidden": self.forbidden_cycles / self.retired,
            "none_triggered": self.none_triggered_cycles / self.retired,
        }

    def as_dict(self) -> dict:
        """JSON-ready view (Counters become plain dicts)."""
        return {
            "cycles": self.cycles,
            "issued": self.issued,
            "retired": self.retired,
            "quashed": self.quashed,
            "pred_hazard_cycles": self.pred_hazard_cycles,
            "data_hazard_cycles": self.data_hazard_cycles,
            "forbidden_cycles": self.forbidden_cycles,
            "none_triggered_cycles": self.none_triggered_cycles,
            "predicate_writes": self.predicate_writes,
            "predictions": self.predictions,
            "mispredictions": self.mispredictions,
            "forced_predictions": self.forced_predictions,
            "enqueues": self.enqueues,
            "dequeues": self.dequeues,
            "retired_by_op": dict(self.retired_by_op),
            "retired_by_slot": {
                str(slot): count
                for slot, count in self.retired_by_slot.items()
            },
        }

    def check_consistency(self) -> None:
        """The six categories must tile the cycle count exactly."""
        total = (
            self.issued
            + self.pred_hazard_cycles
            + self.data_hazard_cycles
            + self.forbidden_cycles
            + self.none_triggered_cycles
        )
        if total != self.cycles:
            raise AssertionError(
                f"cycle accounting leak: {total} classified vs {self.cycles} cycles"
            )
