"""Per-PE debug monitor: cycle-by-cycle pipeline traces.

The paper's FPGA prototype exposes per-PE debug monitors next to the
performance counters; this is the simulator-side equivalent.  A
:class:`PipelineTracer` wraps a :class:`~repro.pipeline.core.PipelinedPE`,
samples its state after every cycle, and renders classic pipeline
diagrams::

    cycle  T           D           X1          X2          event
       12  ins3        ins0        ins1        -           issued
       13  -           ins3        ins0        ins1        predicate hazard

Sampling is non-invasive (read-only inspection of the pipe), so tracing
never perturbs timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pipeline.core import PipelinedPE


@dataclass(frozen=True)
class TraceRecord:
    """State snapshot at the end of one cycle."""

    cycle: int
    stages: tuple[str, ...]        # instruction label per stage ('-' if empty)
    predicates: int
    event: str                     # classification of the trigger cycle
    speculating: bool
    retired_total: int

    def occupancy(self) -> int:
        return sum(1 for label in self.stages if label != "-")


_EVENT_FIELDS = (
    ("issued", "issued"),
    ("pred_hazard_cycles", "predicate hazard"),
    ("data_hazard_cycles", "data hazard"),
    ("forbidden_cycles", "forbidden"),
    ("none_triggered_cycles", "no trigger"),
)


class PipelineTracer:
    """Records and renders a PE's pipeline activity.

    ``limit`` bounds the stored per-cycle records; once reached,
    further cycles are still *classified* (so :meth:`event_histogram`
    stays accurate over the whole run) but their stage snapshots are
    dropped, ``truncated`` is set, and ``dropped`` counts the loss —
    :meth:`render` reports it instead of ending silently.
    """

    def __init__(self, pe: PipelinedPE, limit: int = 100_000) -> None:
        self.pe = pe
        self.limit = limit
        self.records: list[TraceRecord] = []
        self.truncated = False
        self.dropped = 0
        self._event_counts: dict[str, int] = {}
        self._last_counts = {name: 0 for name, __ in _EVENT_FIELDS}

    def step(self) -> bool:
        """Advance the PE one cycle and record the outcome."""
        progressed = self.pe.step()
        self._record()
        return progressed

    def run(self, max_cycles: int = 100_000) -> None:
        """Trace until halt (committing queues, single-PE style)."""
        for _ in range(max_cycles):
            if self.pe.halted:
                return
            self.step()
            self.pe.commit_queues()
        raise AssertionError(f"{self.pe.name} did not halt while tracing")

    def _classify(self) -> str:
        counters = self.pe.counters
        for name, label in _EVENT_FIELDS:
            value = getattr(counters, name)
            if value > self._last_counts[name]:
                self._last_counts[name] = value
                return label
        return "halted" if self.pe.halted else "-"

    def _record(self) -> None:
        event = self._classify()
        self._event_counts[event] = self._event_counts.get(event, 0) + 1
        if len(self.records) >= self.limit:
            self.truncated = True
            self.dropped += 1
            return
        stages = tuple(
            "-" if occupant is None else occupant.label
            for occupant in self.pe.stage_snapshot()
        )
        self.records.append(
            TraceRecord(
                cycle=self.pe.counters.cycles,
                stages=stages,
                predicates=self.pe.preds.state,
                event=event,
                speculating=bool(self.pe._specs),
                retired_total=self.pe.counters.retired,
            )
        )

    # ------------------------------------------------------------------

    def stage_names(self) -> list[str]:
        return ["".join(stage) for stage in self.pe.config.stages]

    def render(self, first: int = 0, count: int | None = None) -> str:
        """A pipeline diagram over a window of recorded cycles."""
        names = self.stage_names()
        width = max(8, max(len(n) for n in names) + 2)
        header = f"{'cycle':>6}  " + "".join(f"{n:<{width}}" for n in names)
        header += f"{'preds':>10}  event"
        lines = [header]
        window = self.records[first:first + count if count else None]
        for record in window:
            row = f"{record.cycle:>6}  "
            row += "".join(f"{label:<{width}}" for label in record.stages)
            row += f"{record.predicates:>10b}  {record.event}"
            if record.speculating:
                row += " (spec)"
            lines.append(row)
        if self.truncated:
            lines.append(
                f"... trace truncated: {self.dropped} later cycles not "
                f"recorded (limit={self.limit})"
            )
        return "\n".join(lines)

    def utilization(self) -> float:
        """Mean fraction of pipeline slots occupied across the trace."""
        if not self.records:
            return 0.0
        depth = len(self.pe.config.stages)
        filled = sum(record.occupancy() for record in self.records)
        return filled / (depth * len(self.records))

    def event_histogram(self) -> dict[str, int]:
        """Event counts over *every* traced cycle.

        Classification continues past the record ``limit``, so the
        histogram tiles the full run even when the stored trace was
        truncated (check ``truncated``/``dropped`` for that).
        """
        return dict(self._event_counts)
