"""Pipeline microarchitecture configurations.

The paper divides a PE's work into three conceptual stages — trigger (T),
decode (D) and execute (X, optionally split X1|X2) — and considers every
pipeline formed by placing registers between them (Section 5.4).  With
the single-cycle TDX that yields eight partitions; crossed with the two
optional hazard optimizations (+P predicate prediction, +Q effective
queue status) the paper's 32 microarchitectures fall out of
:func:`all_configs`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace

from repro.errors import ConfigError


class QueuePolicy(enum.Enum):
    """How the scheduler accounts for in-flight queue activity."""

    CONSERVATIVE = "conservative"   # pending dequeue => empty; pending enqueue => full
    EFFECTIVE = "effective"         # the paper's +Q accounting (Section 5.3)
    PADDED = "padded"               # WaveScalar-style reject buffer on outputs


ALL_PARTITIONS: tuple[tuple[tuple[str, ...], ...], ...] = (
    (("T", "D", "X"),),
    (("T", "D"), ("X",)),
    (("T",), ("D", "X")),
    (("T", "D", "X1"), ("X2",)),
    (("T", "D"), ("X1",), ("X2",)),
    (("T",), ("D", "X1"), ("X2",)),
    (("T",), ("D",), ("X",)),
    (("T",), ("D",), ("X1",), ("X2",)),
)
"""All eight stage partitions, single-cycle TDX first."""

PIPELINED_PARTITIONS = ALL_PARTITIONS[1:]
"""The seven pipelined designs of Figure 5."""


def partition_name(stages: tuple[tuple[str, ...], ...]) -> str:
    return "|".join("".join(stage) for stage in stages)


@dataclass(frozen=True)
class PipelineConfig:
    """One microarchitecture: a stage partition plus feature flags."""

    stages: tuple[tuple[str, ...], ...]
    predicate_prediction: bool = False          # +P
    queue_policy: QueuePolicy = QueuePolicy.CONSERVATIVE
    speculative_depth: int = 1
    """Maximum simultaneous unresolved predicate speculations.  The paper's
    scheme is non-nested (depth 1); Section 6 floats nested speculation as
    an extension, modeled here by raising this knob."""

    def __post_init__(self) -> None:
        phases = [phase for stage in self.stages for phase in stage]
        if phases not in (["T", "D", "X"], ["T", "D", "X1", "X2"]):
            raise ConfigError(
                f"stages must partition T,D,X or T,D,X1,X2 in order; got {phases}"
            )
        if self.speculative_depth < 1:
            raise ConfigError("speculative_depth must be at least 1")

    # ------------------------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self.stages)

    @property
    def split_alu(self) -> bool:
        return any("X1" in stage for stage in self.stages)

    @property
    def partition(self) -> str:
        return partition_name(self.stages)

    @property
    def effective_queue_status(self) -> bool:
        return self.queue_policy is QueuePolicy.EFFECTIVE

    @property
    def name(self) -> str:
        """Paper-style name, e.g. ``"T|DX1|X2 +P+Q"``."""
        suffix = ""
        if self.predicate_prediction:
            suffix += "+P"
        if self.queue_policy is QueuePolicy.EFFECTIVE:
            suffix += "+Q"
        elif self.queue_policy is QueuePolicy.PADDED:
            suffix += "+pad"
        return f"{self.partition} {suffix}".strip()

    def stage_of(self, phase: str) -> int:
        for index, stage in enumerate(self.stages):
            if phase in stage:
                return index
        raise ConfigError(f"no stage contains phase {phase!r}")

    @property
    def trigger_stage(self) -> int:
        return 0

    @property
    def decode_stage(self) -> int:
        return self.stage_of("D")

    @property
    def early_result_stage(self) -> int:
        """Stage whose end produces single-stage ALU results."""
        return self.stage_of("X1") if self.split_alu else self.stage_of("X")

    @property
    def late_result_stage(self) -> int:
        """Stage whose end produces multi-stage (multiply, load) results."""
        return self.stage_of("X2") if self.split_alu else self.stage_of("X")

    def result_stage(self, late: bool) -> int:
        return self.late_result_stage if late else self.early_result_stage

    def with_options(self, **kwargs) -> "PipelineConfig":
        return replace(self, **kwargs)


def config_by_name(name: str) -> PipelineConfig:
    """Parse a paper-style name like ``"T|DX1|X2 +P+Q"``."""
    parts = name.split()
    partition = parts[0]
    flags = parts[1] if len(parts) > 1 else ""
    for stages in ALL_PARTITIONS:
        if partition_name(stages) == partition:
            policy = QueuePolicy.CONSERVATIVE
            if "+Q" in flags:
                policy = QueuePolicy.EFFECTIVE
            elif "+pad" in flags:
                policy = QueuePolicy.PADDED
            return PipelineConfig(
                stages=stages,
                predicate_prediction="+P" in flags,
                queue_policy=policy,
            )
    raise ConfigError(f"unknown pipeline partition {partition!r}")


def all_configs(include_padded: bool = False) -> list[PipelineConfig]:
    """The paper's design matrix: 8 partitions x {base, +P, +Q, +P+Q}.

    32 microarchitectures (Section 3); ``include_padded`` appends the
    reject-buffer alternative used in the Section 5.4 comparison.
    """
    configs = []
    policies = [QueuePolicy.CONSERVATIVE, QueuePolicy.EFFECTIVE]
    if include_padded:
        policies.append(QueuePolicy.PADDED)
    for stages, prediction, policy in itertools.product(
        ALL_PARTITIONS, (False, True), policies
    ):
        configs.append(
            PipelineConfig(
                stages=stages,
                predicate_prediction=prediction,
                queue_policy=policy,
            )
        )
    return configs


SINGLE_CYCLE = PipelineConfig(stages=ALL_PARTITIONS[0])
"""The TDX baseline of Section 4."""
