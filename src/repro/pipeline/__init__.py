"""Cycle-accurate pipelined triggered-PE models (paper Section 5)."""

from repro.pipeline.config import (
    PipelineConfig,
    QueuePolicy,
    ALL_PARTITIONS,
    PIPELINED_PARTITIONS,
    all_configs,
    config_by_name,
)
from repro.pipeline.counters import PipelineCounters
from repro.pipeline.core import PipelinedPE
from repro.pipeline.predictor import PredicatePredictor

__all__ = [
    "PipelineConfig",
    "QueuePolicy",
    "ALL_PARTITIONS",
    "PIPELINED_PARTITIONS",
    "all_configs",
    "config_by_name",
    "PipelineCounters",
    "PipelinedPE",
    "PredicatePredictor",
]
