"""Differential fuzzing of the pipelined PE models (``repro.verify``).

The paper's equivalence claim — every pipelined microarchitecture is
observably identical to the single-cycle PE — is checked generatively:
a seeded program generator emits well-formed triggered-assembly cases,
a differential harness runs each on the golden functional model and on
all 48 microarchitectures (8 partitions × ±P × 3 queue policies, fast
path and reference walk), and a shrinker minimizes any divergence into
a self-contained repro for ``tests/corpus/``.

Entry points::

    python -m repro.verify --smoke          # the CI gate
    python -m repro.verify --fuzz N --seed S
"""

from repro.verify.corpus import (
    DEFAULT_CORPUS,
    load_case,
    load_corpus,
    save_case,
)
from repro.verify.generator import (
    case_builder,
    case_source,
    case_streams,
    generate_case,
)
from repro.verify.harness import (
    CONFIG_NAMES,
    CONFIGS,
    check_case,
    check_roundtrip,
    real_divergences,
    reference_config_names,
)
from repro.verify.runner import fuzz_run, summarize_run
from repro.verify.shrinker import shrink_case

__all__ = [
    "CONFIGS",
    "CONFIG_NAMES",
    "DEFAULT_CORPUS",
    "case_builder",
    "case_source",
    "case_streams",
    "check_case",
    "check_roundtrip",
    "fuzz_run",
    "generate_case",
    "load_case",
    "load_corpus",
    "real_divergences",
    "reference_config_names",
    "save_case",
    "shrink_case",
    "summarize_run",
]
