"""Campaign driver: fan a batch of fuzz cases over worker processes.

The per-case check is pure (a seed fully determines the case and its
result), so a campaign is an order-preserving :func:`resilient_map`
over seeds — byte-identical results at any worker count, with the
parallel layer's timeout/retry/serial-degradation hardening for free.
"""

from __future__ import annotations

from repro.parallel import resilient_map
from repro.params import DEFAULT_PARAMS
from repro.verify.generator import generate_case
from repro.verify.harness import check_case, real_divergences


def _check_seed(task: tuple[int, int, bool]) -> dict:
    """Module-level worker (must pickle): generate and check one seed."""
    seed, ref_configs, jit = task
    case = generate_case(seed, DEFAULT_PARAMS)
    return check_case(case, DEFAULT_PARAMS, ref_configs=ref_configs, jit=jit)


def fuzz_run(count: int, seed: int = 0, workers: int | None = None,
             ref_configs: int = 4, timeout: float | None = 120.0,
             jit: bool = False, service=None) -> list[dict]:
    """Check ``count`` generated cases; returns per-case result dicts.

    With ``service`` (a :mod:`repro.serve` client) the batch runs as
    ``fuzz-case`` tasks on the supervised campaign service: identical
    per-case dicts, deduped against the durable store, so re-fuzzing an
    overlapping seed range only executes the new seeds.
    """
    if service is not None:
        return service.map("fuzz-case", [
            {"seed": seed + index, "ref_configs": ref_configs, "jit": jit}
            for index in range(count)
        ])
    tasks = [(seed + index, ref_configs, jit) for index in range(count)]
    return resilient_map(_check_seed, tasks, workers, timeout=timeout)


def summarize_run(results: list[dict]) -> dict:
    """Aggregate a campaign: totals plus the divergent cases."""
    divergent = [r for r in results if real_divergences(r)]
    generator_bugs = [
        r for r in results
        if any(d["kind"] in ("golden-timeout", "generator-invalid")
               for d in r["divergences"])
    ]
    return {
        "cases": len(results),
        "configs_checked": sum(r["configs_checked"] for r in results),
        "divergent_cases": [r["name"] for r in divergent],
        "divergences": [d for r in divergent for d in real_divergences(r)],
        "generator_bugs": [r["name"] for r in generator_bugs],
    }
