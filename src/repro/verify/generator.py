"""Seeded random program generator for differential fuzzing.

Programs are generated as *cases*: a JSON-able description holding the
:class:`~repro.workloads.builder.ProgramBuilder` entries plus the input
streams to feed.  Going through the builder (and therefore the real
assembler) guarantees every case is legal machine code and assembler/
disassembler round-trippable; the structural discipline below guarantees
every case is *deterministic by construction* — the sequence of fired
instructions is a pure function of architectural state, so the golden
model and every pipelined microarchitecture must converge to the same
final state no matter how issue timing differs:

* The program is a state machine over the builder's state bits.  Each
  state holds either exactly one instruction, or a pair distinguished by
  one flag predicate (a *flag branch*), or a pair distinguished by the
  head tag of one dispatch queue (a *tag dispatch*).  At most one member
  of a pair is ever eligible, so queue-status timing can only delay an
  instruction, never reorder the architectural sequence.
* Loops are bounded by a reserved counter register, so every program
  halts on the golden model.
* Input streams are sized to the worst-case consumption along any path,
  so a consuming state never starves forever.
* An optional stateless forwarder copies queue 3 to output 3.  It
  shares no register, predicate, scratchpad word, or queue with the
  state machine, so its interleaving with the main thread commutes; a
  trailing sentinel tag on its stream gates ``halt`` so the forwarder
  always drains before the PE stops.
"""

from __future__ import annotations

import random

from repro.isa.opcodes import (
    ALU_OPS_1SRC,
    ALU_OPS_2SRC,
    BOOLEAN_OPS_1SRC,
    BOOLEAN_OPS_2SRC,
)
from repro.params import ArchParams, DEFAULT_PARAMS
from repro.workloads.builder import ProgramBuilder

#: Register discipline: r0..r5 scratch data, r6 spare, r7 loop counter.
_DATA_REGS = (0, 1, 2, 3, 4, 5)
_LOOP_REG = 7
#: Predicate discipline: bits 0..2 are work flags, bit 3 the loop flag;
#: bits 7..4 are the builder's state bits.
_WORK_FLAGS = (0, 1, 2)
_LOOP_FLAG = 3
#: Queue discipline: input queues 0..2 feed the state machine; queue 3
#: and output 3 belong to the forwarder.  Outputs 0..2 take emits.
_MAIN_QUEUES = (0, 1, 2)
_FWD_QUEUE = 3

#: Immediate pool biased toward shift/rotate edge amounts (0, word
#: width, width±1) and sign/mask boundaries, per the ISA's semantics
#: corners (see src/repro/isa/alu.py).
_EDGE_IMMEDIATES = (0, 1, 2, 31, 32, 33, 63, 255, 0x7FFFFFFF,
                    0x80000000, 0xFFFFFFFF)

# Operation groups come from the declarative effects table in
# :mod:`repro.isa.opcodes` — the generator must track the ISA, not a
# private copy of it.  Seed stability note: these tuples are in opcode
# order, exactly the order the hand-written lists used, so existing
# corpus seeds reproduce bit-identically.
_ALU_1SRC = ALU_OPS_1SRC
_ALU_2SRC = ALU_OPS_2SRC
_COMPARE_2SRC = BOOLEAN_OPS_2SRC
_COMPARE_1SRC = BOOLEAN_OPS_1SRC


def _imm(rng: random.Random, params: ArchParams) -> int:
    if rng.random() < 0.5:
        return rng.choice(_EDGE_IMMEDIATES) & params.word_mask
    return rng.getrandbits(params.word_width)


def _src(rng: random.Random, params: ArchParams) -> str:
    if rng.random() < 0.5:
        return f"%r{rng.choice(_DATA_REGS)}"
    return f"${_imm(rng, params)}"


def _src_pair(rng: random.Random, params: ArchParams) -> tuple[str, str]:
    """Two sources with at most one immediate (an encoding constraint)."""
    reg = f"%r{rng.choice(_DATA_REGS)}"
    other = _src(rng, params)
    if rng.random() < 0.5:
        return reg, other
    return other, reg


class _QueuePlan:
    """Allocation of main input queues: uniform-tag or tag-dispatch."""

    def __init__(self, rng: random.Random, params: ArchParams) -> None:
        self.rng = rng
        self.params = params
        self.kinds: dict[int, str] = {}        # queue -> "uniform"|"dispatch"
        self.uniform_tag: dict[int, int] = {}

    def uniform(self) -> int | None:
        free = [q for q in _MAIN_QUEUES if q not in self.kinds]
        taken = [q for q, kind in self.kinds.items() if kind == "uniform"]
        if taken and (not free or self.rng.random() < 0.5):
            return self.rng.choice(taken)
        if not free:
            return None
        queue = self.rng.choice(free)
        self.kinds[queue] = "uniform"
        self.uniform_tag[queue] = self.rng.randrange(
            1 << self.params.tag_width)
        return queue

    def dispatch(self) -> int | None:
        taken = [q for q, kind in self.kinds.items() if kind == "dispatch"]
        if taken:
            return taken[0]
        free = [q for q in _MAIN_QUEUES if q not in self.kinds]
        if not free:
            return None
        queue = self.rng.choice(free)
        self.kinds[queue] = "dispatch"
        return queue


def generate_case(seed: int, params: ArchParams = DEFAULT_PARAMS) -> dict:
    """One random, well-formed, deterministic-by-construction case."""
    rng = random.Random(seed)
    queues = _QueuePlan(rng, params)
    entries: list[dict] = []
    #: Worst-case tokens consumed from each queue per chain traversal.
    consumed_per_pass: dict[int, int] = {}
    #: Queues inspected by non-dequeuing tag checks: their streams carry
    #: a spare token so the peeked head always exists.
    peeked: set[int] = set()

    with_loop = rng.random() < 0.6
    loop_count = rng.randrange(2, 4) if with_loop else 1
    with_forwarder = rng.random() < 0.4
    #: Slots reserved for entries emitted after the work chain: the loop
    #: scaffolding (or the plain chain exit) plus halt.
    tail = (4 if with_loop else 1) + 1

    def emit(entry: dict) -> None:
        entries.append(entry)

    def room() -> int:
        return params.num_instructions - tail - len(entries)

    if with_forwarder:
        emit({"op": f"mov %o{_FWD_QUEUE}.0, %i{_FWD_QUEUE}",
              "checks": [f"%i{_FWD_QUEUE}.0"],
              "deq": [f"%i{_FWD_QUEUE}"]})

    emit({"op": f"mov %r{_LOOP_REG}, $0", "state": "init", "next": "w0"})

    state_index = 0

    def state() -> str:
        return f"w{state_index}"

    def next_state() -> str:
        return f"w{state_index + 1}"

    kinds = ["alu", "alu", "consume", "consume", "emit", "store", "load",
             "branch", "dispatch", "peek"]
    while room() >= 1 and state_index < 10:
        kind = rng.choice(kinds)
        if kind == "alu":
            if rng.random() < 0.4:
                op = rng.choice(_ALU_1SRC)
                text = (f"{op} %r{rng.choice(_DATA_REGS)}, "
                        f"{_src(rng, params)}")
            else:
                op = rng.choice(_ALU_2SRC)
                a, b = _src_pair(rng, params)
                text = f"{op} %r{rng.choice(_DATA_REGS)}, {a}, {b}"
            emit({"op": text, "state": state(), "next": next_state()})
        elif kind == "consume":
            queue = queues.uniform()
            if queue is None:
                continue
            tag = queues.uniform_tag[queue]
            roll = rng.random()
            if roll < 0.25:
                # A satisfiable negated check: the stream's tag is fixed,
                # so any *other* tag negated always matches.
                other = (tag + 1) % (1 << params.tag_width)
                checks = [f"%i{queue}.!{other}"]
            elif roll < 0.6:
                checks = [f"%i{queue}.{tag}"]
            else:
                # A checkless dequeue: eligibility rides purely on the
                # queue-status view's occupancy accounting, the path tag
                # checks would otherwise mask.
                checks = []
            op = rng.choice(("add", "xor", "mov", "sub", "or"))
            text = (f"mov %r{rng.choice(_DATA_REGS)}, %i{queue}"
                    if op == "mov" else
                    f"{op} %r{rng.choice(_DATA_REGS)}, %i{queue}, "
                    f"{_src(rng, params)}")
            entry = {"op": text, "state": state(), "next": next_state(),
                     "deq": [f"%i{queue}"]}
            if checks:
                entry["checks"] = checks
            emit(entry)
            consumed_per_pass[queue] = consumed_per_pass.get(queue, 0) + 1
        elif kind == "emit":
            out = rng.choice(_MAIN_QUEUES)
            tag = rng.randrange(1 << params.tag_width)
            op = rng.choice(("mov", "add", "xor"))
            text = (f"mov %o{out}.{tag}, %r{rng.choice(_DATA_REGS)}"
                    if op == "mov" else
                    f"{op} %o{out}.{tag}, %r{rng.choice(_DATA_REGS)}, "
                    f"{_src(rng, params)}")
            emit({"op": text, "state": state(), "next": next_state()})
        elif kind == "store":
            addr = rng.randrange(16)
            emit({"op": f"ssw ${addr}, %r{rng.choice(_DATA_REGS)}",
                  "state": state(), "next": next_state()})
        elif kind == "load":
            addr = rng.randrange(16)
            emit({"op": f"lsw %r{rng.choice(_DATA_REGS)}, ${addr}",
                  "state": state(), "next": next_state()})
        elif kind == "branch":
            if room() < 3:
                continue
            flag = rng.choice(_WORK_FLAGS)
            if rng.random() < 0.3:
                op = rng.choice(_COMPARE_1SRC)
                text = f"{op} %p{flag}, {_src(rng, params)}"
            else:
                op = rng.choice(_COMPARE_2SRC)
                a, b = _src_pair(rng, params)
                text = f"{op} %p{flag}, {a}, {b}"
            emit({"op": text, "state": state(), "next": next_state()})
            state_index += 1
            # Two arms on the flag; both pure, both to the same successor,
            # so queue timing cannot reorder anything.
            for value in (True, False):
                op = rng.choice(_ALU_2SRC)
                a, b = _src_pair(rng, params)
                text = f"{op} %r{rng.choice(_DATA_REGS)}, {a}, {b}"
                emit({"op": text, "state": state(),
                      "flags": {flag: value}, "next": next_state()})
        elif kind == "dispatch":
            if room() < 2:
                continue
            queue = queues.dispatch()
            if queue is None:
                continue
            # Two arms keyed on the head tag of one queue; identical
            # queue requirements, so stalls hit both arms alike.
            for tag in (0, 1):
                op = rng.choice(("add", "xor", "mov"))
                text = (f"mov %r{rng.choice(_DATA_REGS)}, %i{queue}"
                        if op == "mov" else
                        f"{op} %r{rng.choice(_DATA_REGS)}, "
                        f"%i{queue}, {_src(rng, params)}")
                emit({"op": text, "state": state(),
                      "checks": [f"%i{queue}.{tag}"],
                      "deq": [f"%i{queue}"], "next": next_state()})
            consumed_per_pass[queue] = consumed_per_pass.get(queue, 0) + 1
        elif kind == "peek":
            if room() < 2:
                continue
            queue = queues.dispatch()
            if queue is None:
                continue
            # Two non-dequeuing arms keyed on the head tag of a mixed-tag
            # queue.  Because nothing is dequeued, which arm fires is a
            # pure function of the consumption count — but the tag the
            # trigger hardware must inspect is the *effective* head (the
            # neck, while an in-flight dequeue drains the physical head),
            # so these arms are the Section 5.3 tag-visibility probe.
            out = rng.choice(_MAIN_QUEUES)
            out_tag = rng.randrange(1 << params.tag_width)
            for tag, marker in ((0, rng.randrange(1 << 16)),
                                (1, rng.randrange(1 << 16))):
                emit({"op": f"mov %o{out}.{out_tag}, ${marker}",
                      "state": state(), "checks": [f"%i{queue}.{tag}"],
                      "next": next_state()})
            peeked.add(queue)
        state_index += 1

    last_work = state()     # the successor the final work entry points at

    if with_loop:
        emit({"op": f"add %r{_LOOP_REG}, %r{_LOOP_REG}, $1",
              "state": last_work, "next": "cmp"})
        emit({"op": f"ult %p{_LOOP_FLAG}, %r{_LOOP_REG}, ${loop_count}",
              "state": "cmp", "next": "br"})
        emit({"op": "nop", "state": "br", "flags": {_LOOP_FLAG: True},
              "next": "w0"})
        emit({"op": "nop", "state": "br", "flags": {_LOOP_FLAG: False},
              "next": "end"})
    else:
        emit({"op": "nop", "state": last_work, "next": "end"})

    halt_entry: dict = {"op": "halt", "state": "end"}
    if with_forwarder:
        # The forwarder's sentinel gates halt: the machine stops only
        # after queue 3 is fully forwarded, so leftovers are exact.
        halt_entry["checks"] = [f"%i{_FWD_QUEUE}.1"]
    emit(halt_entry)

    streams: dict[int, list[list[int]]] = {}
    for queue in sorted(set(consumed_per_pass) | peeked):
        need = consumed_per_pass.get(queue, 0) * loop_count
        extra = rng.randrange(3) if rng.random() < 0.3 else 0
        if queue in peeked:
            # The peeked head must exist even after every dequeue of the
            # final pass has drained, so keep one token in reserve.
            extra = max(extra, 1)
        tokens = []
        for _ in range(need + extra):
            value = _imm(rng, params)
            tag = (queues.uniform_tag[queue]
                   if queues.kinds[queue] == "uniform"
                   else rng.randrange(2))
            tokens.append([value, tag])
        streams[queue] = tokens
    if with_forwarder:
        tokens = [[_imm(rng, params), 0]
                  for _ in range(rng.randrange(1, 5))]
        tokens.append([0, 1])     # the halt-gating sentinel
        streams[_FWD_QUEUE] = tokens

    return {
        "name": f"fuzz-{seed}",
        "seed": seed,
        "start": "init",
        "entries": entries,
        "streams": {str(q): tokens for q, tokens in streams.items()},
    }


def case_builder(case: dict,
                 params: ArchParams = DEFAULT_PARAMS) -> ProgramBuilder:
    """Rebuild the :class:`ProgramBuilder` for a case description."""
    builder = ProgramBuilder(params, start_state=case["start"])
    for entry in case["entries"]:
        builder.add(
            op=entry["op"],
            state=entry.get("state"),
            flags={int(bit): bool(value)
                   for bit, value in (entry.get("flags") or {}).items()},
            checks=entry.get("checks"),
            deq=entry.get("deq"),
            next=entry.get("next"),
            set_flags={int(bit): bool(value)
                       for bit, value in (entry.get("set_flags") or {}).items()},
        )
    return builder


def case_source(case: dict, params: ArchParams = DEFAULT_PARAMS) -> str:
    """The case's program as assembly text."""
    return case_builder(case, params).source()


def case_streams(case: dict) -> dict[int, list[tuple[int, int]]]:
    """The case's input streams with queue indices as integers."""
    return {
        int(queue): [(int(value), int(tag)) for value, tag in tokens]
        for queue, tokens in case["streams"].items()
    }
