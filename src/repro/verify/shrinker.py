"""Automatic minimization of divergent fuzz cases.

Given a case the harness flags as divergent, the shrinker repeatedly
tries structural reductions — deleting one program entry, or dropping
one input token — and keeps any reduction under which the case *still*
diverges.  A reduction that breaks the case (it no longer assembles, or
the golden model no longer halts) is simply rejected: the harness
reports those as ``generator-invalid`` / ``golden-timeout``, which
:func:`repro.verify.harness.real_divergences` excludes, so the shrinker
can never wander into degenerate never-halting programs.

The reduction order is deterministic, so shrinking is reproducible and
idempotent: shrinking an already-minimal case returns it unchanged.
"""

from __future__ import annotations

import copy

from repro.params import ArchParams, DEFAULT_PARAMS
from repro.verify.harness import check_case, real_divergences


def _is_divergent(case: dict, params: ArchParams, ref_configs: int,
                  jit: bool) -> bool:
    return bool(real_divergences(check_case(case, params,
                                            ref_configs=ref_configs,
                                            jit=jit)))


def _without_entry(case: dict, index: int) -> dict:
    reduced = copy.deepcopy(case)
    del reduced["entries"][index]
    return reduced


def _without_token(case: dict, queue: str, index: int) -> dict:
    reduced = copy.deepcopy(case)
    del reduced["streams"][queue][index]
    if not reduced["streams"][queue]:
        del reduced["streams"][queue]
    return reduced


def shrink_case(case: dict, params: ArchParams = DEFAULT_PARAMS,
                ref_configs: int = 2, max_checks: int = 400,
                jit: bool = False, oracle=None) -> dict:
    """Minimize a divergent case; returns the smallest still-divergent
    form (the case itself if it is not divergent to begin with).

    ``oracle`` replaces the default "does the fuzz harness still see a
    divergence" predicate.  The bounded equivalence checker passes
    :func:`repro.analyze.check.checker_oracle` here so witness cases
    minimize against *checker* divergence — the checker re-derives a
    fresh schedule for every candidate reduction, so the minimal case
    always carries a valid witness of its own.
    """
    checks = 0
    if oracle is None:
        def oracle(candidate: dict) -> bool:
            return _is_divergent(candidate, params, ref_configs, jit)

    def divergent(candidate: dict) -> bool:
        nonlocal checks
        checks += 1
        return oracle(candidate)

    if not divergent(case):
        return case
    current = copy.deepcopy(case)
    progress = True
    while progress and checks < max_checks:
        progress = False
        # Entries, back to front so indices stay valid across deletions
        # and tails (halt, loop scaffolding) are attacked first.
        for index in reversed(range(len(current["entries"]))):
            if checks >= max_checks:
                break
            candidate = _without_entry(current, index)
            if candidate["entries"] and divergent(candidate):
                current = candidate
                progress = True
        for queue in sorted(current["streams"]):
            for index in reversed(range(len(current["streams"][queue]))):
                if checks >= max_checks:
                    break
                candidate = _without_token(current, queue, index)
                if divergent(candidate):
                    current = candidate
                    progress = True
    if not current["name"].endswith("-min"):
        current["name"] += "-min"
    return current
