"""CLI: differential fuzzing of the pipelined PE models.

``python -m repro.verify --smoke`` is the CI gate: replay the whole
``tests/corpus/`` (every landed regression must stay clean), then fuzz
a fixed-seed batch of generated cases across all 48 microarchitectures
(8 stage partitions x {-P, +P} x {conservative, effective, padded}
queue policies), with a reference trigger walk on a per-case config
subset.  Exit status is non-zero on any divergence, hang, or corpus
regression, so the gate works as a CI step with no extra plumbing.

``python -m repro.verify --fuzz N --seed S`` runs an open-ended
campaign; any divergent case is minimized by the shrinker and written
into the corpus directory for triage.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.params import DEFAULT_PARAMS
from repro.verify.corpus import DEFAULT_CORPUS, load_corpus, save_case
from repro.verify.harness import CONFIGS, check_case, real_divergences
from repro.verify.runner import fuzz_run, summarize_run
from repro.verify.shrinker import shrink_case

#: Cases checked by ``--smoke``; sized so the gate stays inside a small
#: CI wall-clock budget while still crossing the 200-case floor.
SMOKE_CASES = 240
SMOKE_SEED = 20260806


def _print_divergences(results: list[dict], limit: int = 5) -> None:
    shown = 0
    for result in results:
        for div in real_divergences(result):
            if shown >= limit:
                print("  ...", file=sys.stderr)
                return
            print(f"  {result['name']} [{div['config']}] {div['kind']}: "
                  f"{div['detail']}", file=sys.stderr)
            shown += 1


def _replay_corpus(directory: str, ref_configs: int, jit: bool = False) -> int:
    pairs = load_corpus(directory)
    failures = 0
    for path, case in pairs:
        result = check_case(case, DEFAULT_PARAMS, ref_configs=ref_configs,
                            jit=jit)
        bad = result["divergences"]
        if bad:
            failures += 1
            print(f"FAIL corpus {path}:", file=sys.stderr)
            for div in bad:
                print(f"  [{div['config']}] {div['kind']}: {div['detail']}",
                      file=sys.stderr)
    print(f"corpus: {len(pairs)} cases replayed, {failures} failures")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="differential fuzzing of the pipelined PE models",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"run the CI gate (corpus replay + {SMOKE_CASES} fixed-seed "
             f"fuzz cases)",
    )
    parser.add_argument("--fuzz", type=int, default=0, metavar="N",
                        help="fuzz N generated cases")
    parser.add_argument("--seed", type=int, default=0,
                        help="first case seed (cases use seed..seed+N-1)")
    parser.add_argument(
        "--workers", type=int,
        default=int(os.environ.get("REPRO_WORKERS", "0")) or None,
        help="worker processes (default: one per CPU)",
    )
    parser.add_argument("--ref-configs", type=int, default=2,
                        help="configs per case that also run the reference "
                             "trigger walk")
    parser.add_argument("--jit", action="store_true",
                        help="additionally run every config under the "
                             "repro.jit backend, held bit-identical to the "
                             "interpreter fast path")
    parser.add_argument("--corpus", default=DEFAULT_CORPUS,
                        help="corpus directory to replay / shrink into")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report divergent cases without minimizing")
    args = parser.parse_args(argv)

    if not args.smoke and not args.fuzz:
        parser.error("nothing to do: pass --smoke and/or --fuzz N")

    count = SMOKE_CASES if args.smoke else args.fuzz
    seed = SMOKE_SEED if args.smoke else args.seed
    if args.smoke and args.fuzz:
        count = args.fuzz
        seed = args.seed

    started = time.monotonic()
    failures = 0
    suffix = " (+jit leg)" if args.jit else ""
    if args.smoke:
        print(f"[1/2] corpus replay ({args.corpus}){suffix}...")
        failures += _replay_corpus(args.corpus, args.ref_configs, jit=args.jit)
        print(f"\n[2/2] fuzz {count} cases, seed {seed}, "
              f"{len(CONFIGS)} configs each{suffix}...")
    else:
        print(f"fuzz {count} cases, seed {seed}, "
              f"{len(CONFIGS)} configs each{suffix}...")

    results = fuzz_run(count, seed=seed, workers=args.workers,
                       ref_configs=args.ref_configs, jit=args.jit)
    summary = summarize_run(results)
    elapsed = time.monotonic() - started
    print(f"checked {summary['cases']} cases / "
          f"{summary['configs_checked']} config runs in {elapsed:.1f}s")

    if summary["generator_bugs"]:
        failures += len(summary["generator_bugs"])
        print(f"FAIL: {len(summary['generator_bugs'])} generator-invalid "
              f"or never-halting cases: {summary['generator_bugs'][:5]}",
              file=sys.stderr)

    divergent = [r for r in results if real_divergences(r)]
    if divergent:
        failures += len(divergent)
        print(f"FAIL: {len(divergent)} divergent cases", file=sys.stderr)
        _print_divergences(divergent)
        if not args.no_shrink:
            from repro.verify.generator import generate_case
            for result in divergent:
                case = generate_case(result["seed"], DEFAULT_PARAMS)
                small = shrink_case(case, DEFAULT_PARAMS,
                                    ref_configs=args.ref_configs,
                                    jit=args.jit)
                path = save_case(small, args.corpus)
                print(f"  minimized repro written to {path}",
                      file=sys.stderr)

    if failures:
        print(f"\nverify gate FAILED ({failures} failures)", file=sys.stderr)
        return 1
    print("\nverify gate passed: zero divergences")
    return 0


if __name__ == "__main__":
    sys.exit(main())
