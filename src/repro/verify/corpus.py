"""The repro corpus: self-contained divergence cases on disk.

Every minimized divergence the fuzzer finds lands here as one JSON file
in ``tests/corpus/`` — the case description alone rebuilds the program
(through :func:`repro.verify.generator.case_source`) and its input
streams, so a corpus file is a complete, reviewable regression test.
``tests/test_verify.py`` replays the whole corpus on every run.
"""

from __future__ import annotations

import json
import os

#: Default corpus location, relative to the repository root.
DEFAULT_CORPUS = os.path.join("tests", "corpus")


def case_filename(case: dict) -> str:
    safe = "".join(c if (c.isalnum() or c in "-_") else "-"
                   for c in case["name"])
    return f"{safe}.json"


def save_case(case: dict, directory: str = DEFAULT_CORPUS) -> str:
    """Write one case into the corpus; returns the file path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, case_filename(case))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(case, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def load_case(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def load_corpus(directory: str = DEFAULT_CORPUS) -> list[tuple[str, dict]]:
    """All corpus cases as (path, case) pairs, sorted by filename."""
    if not os.path.isdir(directory):
        return []
    pairs = []
    for name in sorted(os.listdir(directory)):
        if name.endswith(".json"):
            path = os.path.join(directory, name)
            pairs.append((path, load_case(path)))
    return pairs
