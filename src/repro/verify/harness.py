"""Differential execution harness: golden model vs. every pipeline.

One *case* (see :mod:`repro.verify.generator`) runs on the
:class:`~repro.arch.FunctionalPE` golden model and on all 8 stage
partitions × {±P} × {conservative, effective, padded} queue policies.
The harness compares, per configuration:

* the retired output streams of every output queue (values and tags, in
  order);
* the final architectural state — registers, the full predicate file,
  the scratchpad, and the unconsumed input tokens;
* termination within a cycle bound derived from the golden run's cycle
  count (a hang is reported with a :mod:`repro.resilience.forensics`
  dump rather than a bare timeout).

A deterministic per-case subset of configurations additionally runs
with the compiled trigger fast path disabled, holding the reference
dataclass walk to bit-identical state *and counters* against the fast
path.  Every case is also pushed through the assembler/disassembler and
binary encode/decode round trips.

Workers return plain dicts (never raise) so a fuzz campaign can fan out
through :func:`repro.parallel.resilient_map` and aggregate failures.
"""

from __future__ import annotations

from repro.analyze.crossval import (
    reachable_slots,
    retired_outside,
    stream_tag_sets,
)
from repro.arch import FunctionalPE
from repro.asm.assembler import assemble
from repro.asm.disassembler import disassemble
from repro.errors import ReproError
from repro.isa.encoding import encode_instruction, encode_program, decode_program
from repro.params import ArchParams, DEFAULT_PARAMS
from repro.pipeline import PipelinedPE, all_configs
from repro.resilience.forensics import forensic_report, format_report
from repro.verify.generator import case_source, case_streams

#: The full design matrix under differential test: 8 partitions x {±P}
#: x {conservative, effective, padded} = 48 microarchitectures.
CONFIGS = all_configs(include_padded=True)
CONFIG_NAMES = [config.name for config in CONFIGS]

#: Watchdog for the golden model: a generated case that runs this long
#: without halting is a generator bug, reported as its own failure kind.
GOLDEN_WATCHDOG = 50_000


class _SoloSystem:
    """Adapter giving one PE the System shape forensics expects."""

    def __init__(self, pe) -> None:
        self.cycles = pe.counters.cycles
        self.all_halted = pe.halted
        self.pes = [pe]
        self.read_ports = []
        self.write_ports = []
        self.lsqs = []


def _hang_dump(pe) -> str:
    return format_report(forensic_report(_SoloSystem(pe)))


def _run_model(pe, streams: dict[int, list[tuple[int, int]]],
               max_cycles: int, schedule=None) -> dict | None:
    """Drive one PE to halt; returns its fingerprint, or None on a hang.

    By default, input queues are topped up from the streams whenever
    capacity frees and outputs are drained every cycle, so queue
    availability is a pure function of how many tokens the program has
    consumed — identical across every model, whatever their issue
    timing.

    ``schedule`` (a list of checker witness steps, see
    :mod:`repro.analyze.witness`) overrides that canonical environment
    for its first ``len(schedule)`` cycles: each step names how many
    tokens to deliver per input queue before the cycle and how many
    entries to drain per output queue after it.  Deliveries are clamped
    to available capacity and backlog (a shrinker that deletes stream
    tokens must not turn a witness schedule into an illegal one); once
    the schedule is exhausted the canonical environment resumes, so a
    finite witness prefix still runs to halt.
    """
    backlog = {queue: list(tokens) for queue, tokens in streams.items()}
    collected: dict[int, list[tuple[int, int]]] = {
        index: [] for index in range(len(pe.outputs))
    }
    schedule = list(schedule) if schedule else []
    for cycle in range(max_cycles):
        if pe.halted:
            break
        plan = schedule[cycle] if cycle < len(schedule) else None
        if plan is None:
            for queue, tokens in backlog.items():
                while tokens and not pe.inputs[queue].is_full:
                    value, tag = tokens.pop(0)
                    pe.inputs[queue].enqueue(value, tag)
        else:
            for queue, count in (plan.get("deliver") or {}).items():
                queue = int(queue)
                tokens = backlog.get(queue, [])
                for _ in range(count):
                    if not tokens or pe.inputs[queue].is_full:
                        break
                    value, tag = tokens.pop(0)
                    pe.inputs[queue].enqueue(value, tag)
        pe.step()
        pe.commit_queues()
        if plan is None:
            for index, queue in enumerate(pe.outputs):
                for entry in queue.drain():
                    collected[index].append((entry.value, entry.tag))
        else:
            for index, count in (plan.get("drain") or {}).items():
                index = int(index)
                queue = pe.outputs[index]
                for _ in range(min(count, queue.occupancy)):
                    entry = queue.dequeue()
                    collected[index].append((entry.value, entry.tag))
    if not pe.halted:
        return None
    pe.commit_queues()
    for index, queue in enumerate(pe.outputs):
        for entry in queue.drain():
            collected[index].append((entry.value, entry.tag))
    leftovers: dict[int, list[tuple[int, int]]] = {}
    for index, queue in enumerate(pe.inputs):
        if queue._staged:
            queue.commit()
        left = [(entry.value, entry.tag) for entry in queue.drain()]
        left.extend(backlog.get(index, []))
        if left:
            leftovers[index] = left
    return {
        "halted": True,
        "cycles": pe.counters.cycles,
        "regs": list(pe.regs.snapshot()),
        "preds": pe.preds.state,
        "scratchpad": {
            index: word
            for index, word in enumerate(pe.scratchpad.dump())
            if word
        },
        "outputs": {q: list(tokens) for q, tokens in collected.items() if tokens},
        "inputs_left": leftovers,
    }


def _run_guarded(pe, streams: dict[int, list[tuple[int, int]]],
                 max_cycles: int, schedule=None) -> dict | None:
    """:func:`_run_model`, with model crashes captured as results.

    A queue-accounting bug can surface as an exception (dequeue from an
    empty queue, enqueue past capacity) rather than as wrong state; a
    campaign must record that as a divergence, not die on it.
    """
    try:
        return _run_model(pe, streams, max_cycles, schedule=schedule)
    except Exception as exc:     # noqa: BLE001
        return {"crashed": f"{type(exc).__name__}: {exc}"}


def measured_case_cpi(case: dict, config,
                      params: ArchParams = DEFAULT_PARAMS) -> float | None:
    """Worker CPI for one generated case under one pipeline config.

    Runs the pipelined PE in the canonical cooperative environment
    (inputs topped up whenever capacity frees, outputs drained every
    cycle) and returns retired-instruction CPI, or ``None`` when the
    case hangs or crashes.  This is the measurement side of the
    static-bound cross-validation: the proved lower bound of
    :func:`repro.analyze.perf.program_bounds` must never exceed it for
    any case and any configuration (``tests/test_perf.py``).
    """
    name = case.get("name", "case")
    program = assemble(case_source(case), params, name=name)
    pe = PipelinedPE(config, params, name=name)
    program.configure(pe)
    result = _run_guarded(pe, case_streams(case), GOLDEN_WATCHDOG)
    if result is None or not result.get("halted"):
        return None
    if pe.counters.retired == 0:
        return None
    return pe.counters.cpi


_ARCH_KEYS = ("regs", "preds", "scratchpad", "outputs", "inputs_left")


def _diff_states(golden: dict, candidate: dict) -> list[str]:
    """Human-readable field-level differences between two fingerprints."""
    fields = []
    for key in _ARCH_KEYS:
        if golden[key] != candidate[key]:
            fields.append(
                f"{key}: golden={golden[key]!r} candidate={candidate[key]!r}"
            )
    return fields


def check_roundtrip(case: dict,
                    params: ArchParams = DEFAULT_PARAMS) -> list[dict]:
    """Assembler/disassembler and binary encode/decode round trips."""
    divergences = []
    source = case_source(case, params)
    program = assemble(source, params, name=case["name"])
    redisassembled = disassemble(program.instructions, params,
                                 program.initial_predicates)
    reassembled = assemble(redisassembled, params, name=case["name"])
    first = [encode_instruction(ins, params) for ins in program.instructions]
    second = [encode_instruction(ins, params)
              for ins in reassembled.instructions]
    if first != second:
        divergences.append({
            "kind": "roundtrip-asm",
            "config": None,
            "detail": "assemble -> disassemble -> assemble changed encodings",
        })
    if reassembled.initial_predicates != program.initial_predicates:
        divergences.append({
            "kind": "roundtrip-asm",
            "config": None,
            "detail": "round trip changed the .start predicate state",
        })
    blob = encode_program(program.instructions, params)
    decoded = decode_program(blob, params)
    if encode_program(decoded, params) != blob:
        divergences.append({
            "kind": "roundtrip-binary",
            "config": None,
            "detail": "encode -> decode -> encode changed the binary",
        })
    return divergences


def reference_config_names(case_seed: int, count: int) -> list[str]:
    """The deterministic per-case subset that also runs the reference
    (uncompiled) trigger walk."""
    count = max(0, min(count, len(CONFIG_NAMES)))
    return [CONFIG_NAMES[(case_seed + i * 7) % len(CONFIG_NAMES)]
            for i in range(count)]


def check_case(case: dict, params: ArchParams = DEFAULT_PARAMS,
               ref_configs: int = 4, jit: bool = False) -> dict:
    """Run one case differentially; returns a JSON-able result dict.

    With ``jit=True`` every configuration additionally runs under the
    ``repro.jit`` specialization backend, held to bit-identical state,
    cycle count, and counters against the interpreter fast path.
    """
    result = {
        "name": case["name"],
        "seed": case.get("seed"),
        "configs_checked": 0,
        "golden_cycles": None,
        "divergences": [],
    }
    try:
        divergences = check_roundtrip(case, params)
    except Exception as exc:     # noqa: BLE001 -- any build failure means
        # the *case* is malformed (shrinker reductions routinely produce
        # programs with dangling states), not that the harness is broken.
        result["divergences"].append({
            "kind": "generator-invalid",
            "config": None,
            "detail": f"case does not assemble: {exc!r}",
        })
        return result
    result["divergences"].extend(divergences)

    source = case_source(case, params)
    program = assemble(source, params, name=case["name"])
    streams = case_streams(case)

    golden = FunctionalPE(params, name=f"{case['name']}-golden")
    program.configure(golden)
    golden_print = _run_guarded(golden, streams, GOLDEN_WATCHDOG)
    if golden_print is not None and "crashed" in golden_print:
        result["divergences"].append({
            "kind": "crash",
            "config": None,
            "detail": f"golden model crashed: {golden_print['crashed']}",
        })
        return result
    if golden_print is None:
        result["divergences"].append({
            "kind": "golden-timeout",
            "config": None,
            "detail": "golden model did not halt (generator bug):\n"
                      + _hang_dump(golden),
        })
        return result
    result["golden_cycles"] = golden_print["cycles"]

    # Analyzer cross-validation: reachability over-approximates every
    # model, so a retirement from a slot the static analyzer proved
    # unreachable falsifies the interpreter or the scheduler — either
    # way a divergence.  One reachable-set computation vets all models.
    reachable = reachable_slots(
        program, params,
        stream_tag_sets(streams, params.num_input_queues))
    analysis_problems = retired_outside(reachable, golden.counters)
    if analysis_problems:
        result["divergences"].append({
            "kind": "analysis",
            "config": None,
            "detail": "golden model: " + "; ".join(analysis_problems),
        })

    ref_names = set(reference_config_names(case.get("seed") or 0, ref_configs))
    for config in CONFIGS:
        # Stalls cannot exceed a few pipeline depths per retired
        # instruction plus queue-refill latency; this bound is loose
        # enough that tripping it means livelock, not slowness.
        bound = golden_print["cycles"] * (6 * config.depth) + 500
        fast = PipelinedPE(config, params, name=f"{case['name']}-fast")
        program.configure(fast)
        fast_print = _run_guarded(fast, streams, bound)
        result["configs_checked"] += 1
        if fast_print is not None and "crashed" in fast_print:
            result["divergences"].append({
                "kind": "crash",
                "config": config.name,
                "detail": fast_print["crashed"],
            })
            continue
        if fast_print is None:
            result["divergences"].append({
                "kind": "hang",
                "config": config.name,
                "detail": f"no halt within {bound} cycles "
                          f"(golden: {golden_print['cycles']}):\n"
                          + _hang_dump(fast),
            })
            continue
        fields = _diff_states(golden_print, fast_print)
        if fields:
            result["divergences"].append({
                "kind": "state",
                "config": config.name,
                "detail": "; ".join(fields),
            })
            continue
        analysis_problems = retired_outside(reachable, fast.counters)
        if analysis_problems:
            result["divergences"].append({
                "kind": "analysis",
                "config": config.name,
                "detail": "; ".join(analysis_problems),
            })
            continue
        if jit:
            jpe = PipelinedPE(config, params, name=f"{case['name']}-jit",
                              backend="jit")
            program.configure(jpe)
            jit_print = _run_guarded(jpe, streams, bound)
            if jit_print is not None and "crashed" in jit_print:
                result["divergences"].append({
                    "kind": "crash",
                    "config": f"{config.name} (jit)",
                    "detail": jit_print["crashed"],
                })
                continue
            if jit_print is None:
                result["divergences"].append({
                    "kind": "hang",
                    "config": f"{config.name} (jit)",
                    "detail": f"no halt within {bound} cycles:\n"
                              + _hang_dump(jpe),
                })
                continue
            fields = _diff_states(fast_print, jit_print)
            if jit_print["cycles"] != fast_print["cycles"]:
                fields.append(
                    f"cycles: fast={fast_print['cycles']} "
                    f"jit={jit_print['cycles']}"
                )
            if fast.counters.as_dict() != jpe.counters.as_dict():
                fields.append("counters differ between fast and jit")
            if fields:
                result["divergences"].append({
                    "kind": "jit-vs-interp",
                    "config": config.name,
                    "detail": "; ".join(fields),
                })
                continue
        if config.name in ref_names:
            ref = PipelinedPE(config, params, name=f"{case['name']}-ref",
                              fast_path=False)
            program.configure(ref)
            ref_print = _run_guarded(ref, streams, bound)
            if ref_print is not None and "crashed" in ref_print:
                result["divergences"].append({
                    "kind": "crash",
                    "config": f"{config.name} (reference walk)",
                    "detail": ref_print["crashed"],
                })
                continue
            if ref_print is None:
                result["divergences"].append({
                    "kind": "hang",
                    "config": f"{config.name} (reference walk)",
                    "detail": f"no halt within {bound} cycles:\n"
                              + _hang_dump(ref),
                })
                continue
            fields = _diff_states(fast_print, ref_print)
            if ref_print["cycles"] != fast_print["cycles"]:
                fields.append(
                    f"cycles: fast={fast_print['cycles']} "
                    f"ref={ref_print['cycles']}"
                )
            if fast.counters.as_dict() != ref.counters.as_dict():
                fields.append("counters differ between fast and reference")
            if fields:
                result["divergences"].append({
                    "kind": "fast-vs-reference",
                    "config": config.name,
                    "detail": "; ".join(fields),
                })
    return result


def check_witness(case: dict, witness, params: ArchParams = DEFAULT_PARAMS,
                  ) -> dict:
    """Replay a checker witness through this (independent) harness.

    The checker (:mod:`repro.analyze.check`) and this harness implement
    the run loop separately; a witness that reproduces here is validated
    by two implementations.  The golden model runs under the *canonical*
    environment (its fingerprint is schedule-independent whenever the
    checker proved the golden model schedule-deterministic, which it
    does before emitting any witness); the accused configuration runs
    under the witness schedule at the witness's queue depth.

    Returns a JSON-able dict; ``result["reproduced"]`` is True when the
    replay diverges (crash, hang, or final-state mismatch).
    """
    from dataclasses import replace

    cparams = replace(params, queue_capacity=witness.queue_capacity)
    program = assemble(case_source(case, cparams), cparams,
                       name=case["name"])
    streams = case_streams(case)
    config = next((c for c in CONFIGS if c.name == witness.config), None)
    if config is None:
        raise ReproError(f"witness names unknown config {witness.config!r}")

    golden = FunctionalPE(cparams, name=f"{case['name']}-golden")
    program.configure(golden)
    golden_print = _run_guarded(golden, streams, GOLDEN_WATCHDOG)

    result = {
        "name": case["name"],
        "config": witness.config,
        "kind": witness.kind,
        "queue_capacity": witness.queue_capacity,
        "reproduced": False,
        "divergence": None,
    }
    if golden_print is None or "crashed" in golden_print:
        result["divergence"] = {
            "kind": "golden-timeout" if golden_print is None else "crash",
            "detail": "golden model failed under the canonical schedule",
        }
        return result

    bound = (golden_print["cycles"] * (6 * config.depth) + 500
             + witness.cycles())
    pe = PipelinedPE(config, cparams, name=f"{case['name']}-witness")
    program.configure(pe)
    candidate = _run_guarded(pe, streams, bound, schedule=witness.schedule)
    if candidate is not None and "crashed" in candidate:
        result["reproduced"] = True
        result["divergence"] = {"kind": "crash",
                                "detail": candidate["crashed"]}
        return result
    if candidate is None:
        result["reproduced"] = True
        result["divergence"] = {
            "kind": "hang",
            "detail": f"no halt within {bound} cycles "
                      f"(golden: {golden_print['cycles']}):\n"
                      + _hang_dump(pe),
        }
        return result
    fields = _diff_states(golden_print, candidate)
    if fields:
        result["reproduced"] = True
        result["divergence"] = {"kind": "state", "detail": "; ".join(fields)}
    return result


def real_divergences(result: dict) -> list[dict]:
    """Divergences that indicate a model bug (golden timeouts are
    generator bugs and are excluded — the shrinker must not chase
    degenerate never-halting reductions)."""
    return [d for d in result["divergences"]
            if d["kind"] not in ("golden-timeout", "generator-invalid")]
