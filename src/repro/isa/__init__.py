"""The triggered-instruction ISA: operations, instruction format, encoding.

This subpackage defines the paper's "generic, integer ISA" (Section 2.2):
the 42 operations, the trigger/datapath instruction structure, the binary
encoding of Table 2, and the 32-bit integer semantics of every operation.
"""

from repro.isa.opcodes import Op, OpClass, OPS, op_by_name
from repro.isa.instruction import (
    Instruction,
    Trigger,
    DatapathOp,
    Operand,
    OperandType,
    Destination,
    DestinationType,
    PredUpdate,
    TagCheck,
)
from repro.isa.encoding import encode_instruction, decode_instruction, encode_program, decode_program
from repro.isa.alu import alu_execute, AluResult

__all__ = [
    "Op",
    "OpClass",
    "OPS",
    "op_by_name",
    "Instruction",
    "Trigger",
    "DatapathOp",
    "Operand",
    "OperandType",
    "Destination",
    "DestinationType",
    "PredUpdate",
    "TagCheck",
    "encode_instruction",
    "decode_instruction",
    "encode_program",
    "decode_program",
    "alu_execute",
    "AluResult",
]
