"""Integer semantics for every ISA operation.

All values are Python ints held in unsigned word representation
(0 .. 2**word_width - 1).  Signed operations reinterpret the bit pattern
in two's complement.  Results are always truncated back to the word.

The scratchpad operations (``lsw``/``ssw``) are resolved here against a
scratchpad object passed by the caller, so the same semantics serve the
functional simulator and every pipeline model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.isa.opcodes import Op
from repro.params import ArchParams


@dataclass(frozen=True, slots=True)
class AluResult:
    """Outcome of executing one operation's datapath."""

    value: int = 0
    halt: bool = False
    store: tuple[int, int] | None = None   # (address, value) for ssw


def to_signed(value: int, params: ArchParams) -> int:
    """Reinterpret an unsigned word as two's-complement signed."""
    value &= params.word_mask
    if value & params.word_sign_bit:
        return value - (1 << params.word_width)
    return value


def to_unsigned(value: int, params: ArchParams) -> int:
    """Truncate any Python int into the unsigned word representation."""
    return value & params.word_mask


def _clz(x: int, width: int) -> int:
    if x == 0:
        return width
    return width - x.bit_length()


def _ctz(x: int, width: int) -> int:
    if x == 0:
        return width
    return (x & -x).bit_length() - 1


def _brev(x: int, width: int) -> int:
    result = 0
    for _ in range(width):
        result = (result << 1) | (x & 1)
        x >>= 1
    return result


def _lsw(a, b, p, mask, w, spad):
    if spad is None:
        raise SimulationError("lsw executed on a PE without a scratchpad")
    return AluResult(value=spad.load(a) & mask)


def _ssw(a, b, p, mask, w, spad):
    if spad is None:
        raise SimulationError("ssw executed on a PE without a scratchpad")
    return AluResult(store=(a, b))


def _rol(a, b, p, mask, w, spad):
    s = b % w
    return AluResult(value=((a << s) | (a >> (w - s))) & mask if s else a)


def _ror(a, b, p, mask, w, spad):
    s = b % w
    return AluResult(value=((a >> s) | (a << (w - s))) & mask if s else a)


def _sext8(a, b, p, mask, w, spad):
    v = a & 0xFF
    return AluResult(value=(v | (mask ^ 0xFF)) & mask if v & 0x80 else v)


def _sext16(a, b, p, mask, w, spad):
    v = a & 0xFFFF
    return AluResult(value=(v | (mask ^ 0xFFFF)) & mask if v & 0x8000 else v)


# Dispatch table: one callable per mnemonic with the uniform signature
# (a, b, params, mask, w, scratchpad) -> AluResult.  Table lookup
# replaced a linear mnemonic-comparison chain whose worst case walked
# ~40 string compares per executed instruction.
_SEMANTICS = {
    "nop": lambda a, b, p, mask, w, s: AluResult(),
    "halt": lambda a, b, p, mask, w, s: AluResult(halt=True),
    "mov": lambda a, b, p, mask, w, s: AluResult(value=a),
    "add": lambda a, b, p, mask, w, s: AluResult(value=(a + b) & mask),
    "sub": lambda a, b, p, mask, w, s: AluResult(value=(a - b) & mask),
    "mul": lambda a, b, p, mask, w, s: AluResult(value=(a * b) & mask),
    "mulh": lambda a, b, p, mask, w, s: AluResult(
        value=((to_signed(a, p) * to_signed(b, p)) >> w) & mask),
    "mulhu": lambda a, b, p, mask, w, s: AluResult(value=((a * b) >> w) & mask),
    "and": lambda a, b, p, mask, w, s: AluResult(value=a & b),
    "or": lambda a, b, p, mask, w, s: AluResult(value=a | b),
    "xor": lambda a, b, p, mask, w, s: AluResult(value=a ^ b),
    "nor": lambda a, b, p, mask, w, s: AluResult(value=~(a | b) & mask),
    "nand": lambda a, b, p, mask, w, s: AluResult(value=~(a & b) & mask),
    "xnor": lambda a, b, p, mask, w, s: AluResult(value=~(a ^ b) & mask),
    "not": lambda a, b, p, mask, w, s: AluResult(value=~a & mask),
    "shl": lambda a, b, p, mask, w, s: AluResult(value=(a << (b % w)) & mask),
    "shr": lambda a, b, p, mask, w, s: AluResult(value=(a >> (b % w)) & mask),
    "asr": lambda a, b, p, mask, w, s: AluResult(
        value=(to_signed(a, p) >> (b % w)) & mask),
    "rol": _rol,
    "ror": _ror,
    "clz": lambda a, b, p, mask, w, s: AluResult(value=_clz(a, w)),
    "ctz": lambda a, b, p, mask, w, s: AluResult(value=_ctz(a, w)),
    "popc": lambda a, b, p, mask, w, s: AluResult(value=bin(a).count("1")),
    "brev": lambda a, b, p, mask, w, s: AluResult(value=_brev(a, w)),
    "sext8": _sext8,
    "sext16": _sext16,
    "eq": lambda a, b, p, mask, w, s: AluResult(value=int(a == b)),
    "ne": lambda a, b, p, mask, w, s: AluResult(value=int(a != b)),
    "slt": lambda a, b, p, mask, w, s: AluResult(
        value=int(to_signed(a, p) < to_signed(b, p))),
    "sle": lambda a, b, p, mask, w, s: AluResult(
        value=int(to_signed(a, p) <= to_signed(b, p))),
    "sgt": lambda a, b, p, mask, w, s: AluResult(
        value=int(to_signed(a, p) > to_signed(b, p))),
    "sge": lambda a, b, p, mask, w, s: AluResult(
        value=int(to_signed(a, p) >= to_signed(b, p))),
    "ult": lambda a, b, p, mask, w, s: AluResult(value=int(a < b)),
    "ule": lambda a, b, p, mask, w, s: AluResult(value=int(a <= b)),
    "ugt": lambda a, b, p, mask, w, s: AluResult(value=int(a > b)),
    "uge": lambda a, b, p, mask, w, s: AluResult(value=int(a >= b)),
    "eqz": lambda a, b, p, mask, w, s: AluResult(value=int(a == 0)),
    "nez": lambda a, b, p, mask, w, s: AluResult(value=int(a != 0)),
    "land": lambda a, b, p, mask, w, s: AluResult(value=int(bool(a) and bool(b))),
    "lor": lambda a, b, p, mask, w, s: AluResult(value=int(bool(a) or bool(b))),
    "lsw": _lsw,
    "ssw": _ssw,
}


def alu_execute(
    op: Op,
    a: int,
    b: int,
    params: ArchParams,
    scratchpad=None,
) -> AluResult:
    """Execute one operation on unsigned-word operands ``a`` and ``b``.

    ``scratchpad`` must support ``load(addr)`` / ``store(addr, value)``
    and is only consulted for the memory operations.
    """
    semantics = _SEMANTICS.get(op.mnemonic)
    if semantics is None:
        raise SimulationError(f"operation {op.mnemonic!r} has no defined semantics")
    mask = params.word_mask
    return semantics(a & mask, b & mask, params, mask, params.word_width, scratchpad)
