"""Integer semantics for every ISA operation.

All values are Python ints held in unsigned word representation
(0 .. 2**word_width - 1).  Signed operations reinterpret the bit pattern
in two's complement.  Results are always truncated back to the word.

The scratchpad operations (``lsw``/``ssw``) are resolved here against a
scratchpad object passed by the caller, so the same semantics serve the
functional simulator and every pipeline model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.isa.opcodes import Op
from repro.params import ArchParams


@dataclass(frozen=True)
class AluResult:
    """Outcome of executing one operation's datapath."""

    value: int = 0
    halt: bool = False
    store: tuple[int, int] | None = None   # (address, value) for ssw


def to_signed(value: int, params: ArchParams) -> int:
    """Reinterpret an unsigned word as two's-complement signed."""
    value &= params.word_mask
    if value & params.word_sign_bit:
        return value - (1 << params.word_width)
    return value


def to_unsigned(value: int, params: ArchParams) -> int:
    """Truncate any Python int into the unsigned word representation."""
    return value & params.word_mask


def _clz(x: int, width: int) -> int:
    if x == 0:
        return width
    return width - x.bit_length()


def _ctz(x: int, width: int) -> int:
    if x == 0:
        return width
    return (x & -x).bit_length() - 1


def _brev(x: int, width: int) -> int:
    result = 0
    for _ in range(width):
        result = (result << 1) | (x & 1)
        x >>= 1
    return result


def alu_execute(
    op: Op,
    a: int,
    b: int,
    params: ArchParams,
    scratchpad=None,
) -> AluResult:
    """Execute one operation on unsigned-word operands ``a`` and ``b``.

    ``scratchpad`` must support ``load(addr)`` / ``store(addr, value)``
    and is only consulted for the memory operations.
    """
    w = params.word_width
    mask = params.word_mask
    a &= mask
    b &= mask
    m = op.mnemonic

    if m == "nop":
        return AluResult()
    if m == "halt":
        return AluResult(halt=True)
    if m == "mov":
        return AluResult(value=a)
    if m == "add":
        return AluResult(value=(a + b) & mask)
    if m == "sub":
        return AluResult(value=(a - b) & mask)
    if m == "mul":
        return AluResult(value=(a * b) & mask)
    if m == "mulh":
        sa, sb = to_signed(a, params), to_signed(b, params)
        return AluResult(value=((sa * sb) >> w) & mask)
    if m == "mulhu":
        return AluResult(value=((a * b) >> w) & mask)
    if m == "and":
        return AluResult(value=a & b)
    if m == "or":
        return AluResult(value=a | b)
    if m == "xor":
        return AluResult(value=a ^ b)
    if m == "nor":
        return AluResult(value=~(a | b) & mask)
    if m == "nand":
        return AluResult(value=~(a & b) & mask)
    if m == "xnor":
        return AluResult(value=~(a ^ b) & mask)
    if m == "not":
        return AluResult(value=~a & mask)
    if m == "shl":
        return AluResult(value=(a << (b % w)) & mask)
    if m == "shr":
        return AluResult(value=(a >> (b % w)) & mask)
    if m == "asr":
        return AluResult(value=(to_signed(a, params) >> (b % w)) & mask)
    if m == "rol":
        s = b % w
        return AluResult(value=((a << s) | (a >> (w - s))) & mask if s else a)
    if m == "ror":
        s = b % w
        return AluResult(value=((a >> s) | (a << (w - s))) & mask if s else a)
    if m == "clz":
        return AluResult(value=_clz(a, w))
    if m == "ctz":
        return AluResult(value=_ctz(a, w))
    if m == "popc":
        return AluResult(value=bin(a).count("1"))
    if m == "brev":
        return AluResult(value=_brev(a, w))
    if m == "sext8":
        v = a & 0xFF
        return AluResult(value=(v | (mask ^ 0xFF)) & mask if v & 0x80 else v)
    if m == "sext16":
        v = a & 0xFFFF
        return AluResult(value=(v | (mask ^ 0xFFFF)) & mask if v & 0x8000 else v)
    if m == "eq":
        return AluResult(value=int(a == b))
    if m == "ne":
        return AluResult(value=int(a != b))
    if m == "slt":
        return AluResult(value=int(to_signed(a, params) < to_signed(b, params)))
    if m == "sle":
        return AluResult(value=int(to_signed(a, params) <= to_signed(b, params)))
    if m == "sgt":
        return AluResult(value=int(to_signed(a, params) > to_signed(b, params)))
    if m == "sge":
        return AluResult(value=int(to_signed(a, params) >= to_signed(b, params)))
    if m == "ult":
        return AluResult(value=int(a < b))
    if m == "ule":
        return AluResult(value=int(a <= b))
    if m == "ugt":
        return AluResult(value=int(a > b))
    if m == "uge":
        return AluResult(value=int(a >= b))
    if m == "eqz":
        return AluResult(value=int(a == 0))
    if m == "nez":
        return AluResult(value=int(a != 0))
    if m == "land":
        return AluResult(value=int(bool(a) and bool(b)))
    if m == "lor":
        return AluResult(value=int(bool(a) or bool(b)))
    if m == "lsw":
        if scratchpad is None:
            raise SimulationError("lsw executed on a PE without a scratchpad")
        return AluResult(value=scratchpad.load(a) & mask)
    if m == "ssw":
        if scratchpad is None:
            raise SimulationError("ssw executed on a PE without a scratchpad")
        return AluResult(store=(a, b))

    raise SimulationError(f"operation {m!r} has no defined semantics")
