"""Instruction structure: trigger (guard) + datapath operation.

An instruction in this ISA is a guarded atomic action (Section 2.1).  The
*trigger* half names the predicate on-set/off-set and tagged input-queue
conditions under which the instruction may fire; the *datapath* half names
the operation, its sources and destination, any input-queue dequeues, and
an atomic predicate update mask applied at issue time.

The classes here are the in-memory form produced by the assembler and
consumed by both simulators; :mod:`repro.isa.encoding` gives them the
binary layout of paper Table 2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import EncodingError
from repro.isa.opcodes import Op, op_by_name
from repro.params import ArchParams


class OperandType(enum.Enum):
    """Source operand types (2-bit SrcTypes encoding)."""

    NONE = 0
    REG = 1
    IN = 2      # input queue (peek at head; dequeue is separate)
    IMM = 3


class DestinationType(enum.Enum):
    """Destination types (2-bit DstTypes encoding)."""

    NONE = 0
    REG = 1
    OUT = 2     # output queue (enqueue, with OutTag)
    PRED = 3    # single predicate bit


@dataclass(frozen=True)
class Operand:
    """One source operand."""

    kind: OperandType
    index: int = 0  # register / input queue index; ignored for NONE and IMM

    @staticmethod
    def none() -> "Operand":
        return Operand(OperandType.NONE)

    @staticmethod
    def reg(index: int) -> "Operand":
        return Operand(OperandType.REG, index)

    @staticmethod
    def input_queue(index: int) -> "Operand":
        return Operand(OperandType.IN, index)

    @staticmethod
    def imm() -> "Operand":
        """The immediate operand; its value lives in the instruction's Imm field."""
        return Operand(OperandType.IMM)


@dataclass(frozen=True)
class Destination:
    """The (single, NDsts = 1) destination of an instruction."""

    kind: DestinationType
    index: int = 0
    out_tag: int = 0  # tag used when kind is OUT

    @staticmethod
    def none() -> "Destination":
        return Destination(DestinationType.NONE)

    @staticmethod
    def reg(index: int) -> "Destination":
        return Destination(DestinationType.REG, index)

    @staticmethod
    def output_queue(index: int, tag: int) -> "Destination":
        return Destination(DestinationType.OUT, index, out_tag=tag)

    @staticmethod
    def predicate(index: int) -> "Destination":
        return Destination(DestinationType.PRED, index)


@dataclass(frozen=True)
class TagCheck:
    """One input-queue tag condition in a trigger.

    Requires input queue ``queue`` to be non-empty and its head tag to
    equal ``tag`` (or to *differ* from it when ``negate`` is set — the
    NotTags encoding).  Plain data *availability* is not expressed here:
    the scheduler sees the whole instruction combinationally (Section 2.2)
    and derives availability requirements from the instruction's queue
    sources, dequeues, and output destination."""

    queue: int
    tag: int = 0
    negate: bool = False

    def matches(self, head_tag: int) -> bool:
        """Whether a non-empty queue with the given head tag satisfies this check."""
        return (head_tag != self.tag) if self.negate else (head_tag == self.tag)


@dataclass(frozen=True)
class Trigger:
    """The guard of a guarded atomic action.

    ``pred_on`` / ``pred_off`` are bit masks over the predicate registers:
    a predicate listed in ``pred_on`` must read 1, one in ``pred_off``
    must read 0, and unlisted predicates are don't-care (the ``X``
    positions of the assembly's ``%p == XXXX0000`` notation).
    """

    pred_on: int = 0
    pred_off: int = 0
    tag_checks: tuple[TagCheck, ...] = ()

    def predicates_match(self, pred_state: int) -> bool:
        """Whether the given predicate register state satisfies the guard."""
        if (pred_state & self.pred_on) != self.pred_on:
            return False
        return (~pred_state & self.pred_off) == self.pred_off

    @property
    def watched_predicates(self) -> int:
        """Mask of predicate bits this trigger actually inspects."""
        return self.pred_on | self.pred_off


@dataclass(frozen=True)
class PredUpdate:
    """Masks of predicates to force high or low at issue time.

    This is the triggered-control analogue of ``PC = PC + 4``: it must
    update architectural state within a cycle of the trigger (Section 2.2)
    and therefore never participates in predicate hazards.
    """

    set_mask: int = 0
    clear_mask: int = 0

    def apply(self, pred_state: int) -> int:
        return (pred_state | self.set_mask) & ~self.clear_mask

    @property
    def touched(self) -> int:
        return self.set_mask | self.clear_mask


@dataclass(frozen=True)
class DatapathOp:
    """The datapath half of an instruction."""

    op: Op
    srcs: tuple[Operand, ...] = ()
    dst: Destination = field(default_factory=Destination.none)
    imm: int = 0
    deq: tuple[int, ...] = ()           # input queue indices to dequeue
    pred_update: PredUpdate = field(default_factory=PredUpdate)

    @property
    def reads_queues(self) -> tuple[int, ...]:
        """Input queue indices read as operands."""
        return tuple(s.index for s in self.srcs if s.kind is OperandType.IN)

    @property
    def writes_predicate(self) -> bool:
        """True when the datapath result lands in a predicate register.

        This — not the issue-time :class:`PredUpdate` — is what creates
        predicate hazards and what the speculative predicate unit predicts.
        """
        return self.dst.kind is DestinationType.PRED

    @property
    def enqueues(self) -> bool:
        return self.dst.kind is DestinationType.OUT

    @property
    def has_side_effects_before_retire(self) -> bool:
        """Instructions forbidden during speculation (Section 5.2).

        Dequeues take effect early (in decode), before retirement, so a
        speculative dequeue could not be rolled back.  Enqueues, register
        writes and scratchpad stores all commit at retirement and are
        quashed with the instruction, so they stay legal.
        """
        return bool(self.deq)


@dataclass(frozen=True)
class Instruction:
    """A complete triggered instruction: guard plus datapath operation.

    ``line``/``column`` are source coordinates of the ``when`` guard in
    the originating assembly file, when the instruction came from the
    assembler; they are excluded from equality so instructions compare
    by meaning, and they flow into assembler errors and static-analyzer
    findings.
    """

    trigger: Trigger
    dp: DatapathOp
    valid: bool = True
    label: str = ""   # optional human-readable name from the assembler
    line: int | None = field(default=None, compare=False)
    column: int | None = field(default=None, compare=False)

    def validate(self, params: ArchParams) -> None:
        """Check this instruction against the architecture parameters.

        Raises :class:`EncodingError` describing the first violated
        constraint.  The assembler calls this for every assembled
        instruction; hand-constructed instructions should call it too
        before being fed to a simulator.
        """
        p = params
        if len(self.trigger.tag_checks) > p.max_check:
            raise EncodingError(
                f"{self._what()}: trigger checks {len(self.trigger.tag_checks)} "
                f"queues, but MaxCheck is {p.max_check}"
            )
        checked = set()
        for check in self.trigger.tag_checks:
            if not 0 <= check.queue < p.num_input_queues:
                raise EncodingError(
                    f"{self._what()}: trigger checks input queue {check.queue}, "
                    f"but only {p.num_input_queues} exist"
                )
            if check.queue in checked:
                raise EncodingError(
                    f"{self._what()}: input queue {check.queue} checked twice"
                )
            checked.add(check.queue)
            if not 0 <= check.tag < p.num_tags:
                raise EncodingError(
                    f"{self._what()}: tag {check.tag} does not fit in "
                    f"{p.tag_width} tag bits"
                )
        pred_all = (1 << p.num_preds) - 1
        for name, mask in [
            ("pred_on", self.trigger.pred_on),
            ("pred_off", self.trigger.pred_off),
            ("pred set", self.dp.pred_update.set_mask),
            ("pred clear", self.dp.pred_update.clear_mask),
        ]:
            if mask & ~pred_all:
                raise EncodingError(
                    f"{self._what()}: {name} mask {mask:#x} references "
                    f"predicates beyond NPreds = {p.num_preds}"
                )
        if self.trigger.pred_on & self.trigger.pred_off:
            raise EncodingError(
                f"{self._what()}: a predicate is required both on and off"
            )
        if self.dp.pred_update.set_mask & self.dp.pred_update.clear_mask:
            raise EncodingError(
                f"{self._what()}: a predicate is both force-set and force-cleared"
            )
        if len(self.dp.srcs) > p.num_srcs:
            raise EncodingError(
                f"{self._what()}: {len(self.dp.srcs)} sources exceed NSrcs = {p.num_srcs}"
            )
        if len(self.dp.srcs) < self.dp.op.num_srcs:
            raise EncodingError(
                f"{self._what()}: operation {self.dp.op.mnemonic!r} needs "
                f"{self.dp.op.num_srcs} sources, got {len(self.dp.srcs)}"
            )
        for src in self.dp.srcs:
            if src.kind is OperandType.REG and not 0 <= src.index < p.num_regs:
                raise EncodingError(f"{self._what()}: register %r{src.index} out of range")
            if src.kind is OperandType.IN and not 0 <= src.index < p.num_input_queues:
                raise EncodingError(f"{self._what()}: input queue %i{src.index} out of range")
        dst = self.dp.dst
        if dst.kind is DestinationType.REG and not 0 <= dst.index < p.num_regs:
            raise EncodingError(f"{self._what()}: destination register out of range")
        if dst.kind is DestinationType.OUT:
            if not 0 <= dst.index < p.num_output_queues:
                raise EncodingError(f"{self._what()}: output queue out of range")
            if not 0 <= dst.out_tag < p.num_tags:
                raise EncodingError(f"{self._what()}: output tag out of range")
        if dst.kind is DestinationType.PRED and not 0 <= dst.index < p.num_preds:
            raise EncodingError(f"{self._what()}: destination predicate out of range")
        if dst.kind is not DestinationType.NONE and not self.dp.op.has_dst:
            raise EncodingError(
                f"{self._what()}: operation {self.dp.op.mnemonic!r} produces no result"
            )
        if dst.kind is DestinationType.NONE and self.dp.op.has_dst:
            raise EncodingError(
                f"{self._what()}: operation {self.dp.op.mnemonic!r} needs a destination"
            )
        if len(self.dp.deq) > p.max_deq:
            raise EncodingError(
                f"{self._what()}: {len(self.dp.deq)} dequeues exceed MaxDeq = {p.max_deq}"
            )
        if len(set(self.dp.deq)) != len(self.dp.deq):
            raise EncodingError(f"{self._what()}: duplicate dequeue of the same queue")
        for q in self.dp.deq:
            if not 0 <= q < p.num_input_queues:
                raise EncodingError(f"{self._what()}: dequeue of input queue {q} out of range")
        # The assembler guarantees PredUpdate never conflicts with a
        # datapath predicate destination (Section 2.2).
        if self.dp.writes_predicate and (self.dp.pred_update.touched >> dst.index) & 1:
            raise EncodingError(
                f"{self._what()}: predicate %p{dst.index} is both a datapath "
                f"destination and force-updated at issue"
            )
        imm_srcs = sum(1 for s in self.dp.srcs if s.kind is OperandType.IMM)
        if imm_srcs > 1:
            raise EncodingError(
                f"{self._what()}: at most one immediate source per instruction"
            )
        if not -(1 << (p.word_width - 1)) <= self.dp.imm < (1 << p.word_width):
            raise EncodingError(f"{self._what()}: immediate {self.dp.imm} does not fit a word")

    def _what(self) -> str:
        what = f"instruction {self.label!r}" if self.label else "instruction"
        if self.line is not None:
            where = f"line {self.line}"
            if self.column is not None:
                where += f":{self.column}"
            what += f" ({where})"
        return what

    @property
    def required_input_queues(self) -> frozenset[int]:
        """Input queues that must hold data for this instruction to fire.

        The union of trigger-checked queues, queue source operands, and
        dequeued queues — the availability condition the scheduler derives
        from the combinationally exposed instruction fields.
        """
        queues = {check.queue for check in self.trigger.tag_checks}
        queues.update(self.dp.reads_queues)
        queues.update(self.dp.deq)
        return frozenset(queues)

    @property
    def output_queue(self) -> int | None:
        """The output queue this instruction enqueues to, if any."""
        if self.dp.dst.kind is DestinationType.OUT:
            return self.dp.dst.index
        return None


def make_nop() -> Instruction:
    """An always-invalid placeholder instruction (empty slot)."""
    return Instruction(
        trigger=Trigger(),
        dp=DatapathOp(op=op_by_name("nop")),
        valid=False,
        label="<empty>",
    )
