"""The 42 operations of the triggered integer ISA.

The paper fixes ``NOps = 42`` (Table 1) and describes the ISA as a
RISC-style integer set with a full complement of arithmetic and logical
operations, two-word-product multiplication, a wide range of comparisons
aimed at predicate writes, rich bit manipulation (``clz``/``ctz``), and
scratchpad loads/stores — with division and floating point deliberately
omitted (``udiv`` is provided as a software macro benchmark instead).

Each operation carries:

* an :class:`OpClass` used by the VLSI component model for activity
  weighting and by the pipeline model for functional-unit selection, and
* a ``late_result`` flag — operations that produce their value at the end
  of the *second* execute stage in split-ALU (X1|X2) pipelines.  Simple
  single-stage ALU operations resolve at the end of X1 and can be
  forwarded a cycle earlier.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpClass(enum.Enum):
    """Functional categories of operations."""

    MISC = "misc"            # nop, mov, halt
    ARITH = "arith"          # add/sub
    MULTIPLY = "multiply"    # two-word-product multiplication
    LOGIC = "logic"          # bitwise logic
    SHIFT = "shift"          # shifts and rotates
    BITMANIP = "bitmanip"    # clz/ctz/popc/brev/sext
    COMPARE = "compare"      # comparisons producing 0/1
    PREDLOGIC = "predlogic"  # logical and/or on truth values
    MEMORY = "memory"        # scratchpad load/store


@dataclass(frozen=True)
class OpEffects:
    """Declarative per-opcode effect metadata.

    This is the single source of truth for what an operation *does* to
    architectural state beyond writing its destination.  The simulators,
    the fuzz generator, and the static analyzer all read it — ad-hoc
    mnemonic lists and string comparisons are exactly the kind of
    knowledge that silently drifts when the ISA changes.

    Note the split of responsibilities: *dequeues*, *enqueues* and
    *writes_predicate* are properties of a particular instruction (its
    ``deq`` list and destination kind), not of the opcode; the
    capability flags here say whether an opcode's result can legally be
    steered there at all (``has_dst``).  The opcode-intrinsic effects —
    scratchpad traffic and halting — live only here.
    """

    stores_scratchpad: bool = False   # ssw: writes PE-local memory
    loads_scratchpad: bool = False    # lsw: reads PE-local memory
    halts: bool = False               # halt: stops the PE at retirement
    boolean_result: bool = False      # result is a 0/1 truth value

    @property
    def side_effecting(self) -> bool:
        """Architectural effect beyond the named destination write."""
        return self.stores_scratchpad or self.halts

    @property
    def touches_scratchpad(self) -> bool:
        return self.stores_scratchpad or self.loads_scratchpad


_NO_EFFECTS = OpEffects()


@dataclass(frozen=True)
class Op:
    """One ISA operation."""

    mnemonic: str
    opcode: int
    op_class: OpClass
    num_srcs: int
    description: str
    late_result: bool = False   # resolves in X2 on split-ALU pipelines
    has_dst: bool = True        # produces a value to write somewhere
    effects: OpEffects = _NO_EFFECTS

    @property
    def is_multiply(self) -> bool:
        return self.op_class is OpClass.MULTIPLY

    @property
    def is_memory(self) -> bool:
        return self.op_class is OpClass.MEMORY


def _build_ops() -> tuple[Op, ...]:
    table = [
        # mnemonic, class, nsrcs, late, has_dst, description
        ("nop", OpClass.MISC, 0, False, False, "No operation"),
        ("mov", OpClass.MISC, 1, False, True, "Copy source to destination"),
        ("add", OpClass.ARITH, 2, False, True, "Integer addition"),
        ("sub", OpClass.ARITH, 2, False, True, "Integer subtraction"),
        ("mul", OpClass.MULTIPLY, 2, True, True, "Multiply, low word of product"),
        ("mulh", OpClass.MULTIPLY, 2, True, True, "Multiply, high word, signed"),
        ("mulhu", OpClass.MULTIPLY, 2, True, True, "Multiply, high word, unsigned"),
        ("and", OpClass.LOGIC, 2, False, True, "Bitwise AND"),
        ("or", OpClass.LOGIC, 2, False, True, "Bitwise OR"),
        ("xor", OpClass.LOGIC, 2, False, True, "Bitwise XOR"),
        ("nor", OpClass.LOGIC, 2, False, True, "Bitwise NOR"),
        ("nand", OpClass.LOGIC, 2, False, True, "Bitwise NAND"),
        ("xnor", OpClass.LOGIC, 2, False, True, "Bitwise XNOR"),
        ("not", OpClass.LOGIC, 1, False, True, "Bitwise complement"),
        ("shl", OpClass.SHIFT, 2, False, True, "Logical shift left"),
        ("shr", OpClass.SHIFT, 2, False, True, "Logical shift right"),
        ("asr", OpClass.SHIFT, 2, False, True, "Arithmetic shift right"),
        ("rol", OpClass.SHIFT, 2, False, True, "Rotate left"),
        ("ror", OpClass.SHIFT, 2, False, True, "Rotate right"),
        ("clz", OpClass.BITMANIP, 1, False, True, "Count leading zeros"),
        ("ctz", OpClass.BITMANIP, 1, False, True, "Count trailing zeros"),
        ("popc", OpClass.BITMANIP, 1, False, True, "Population count"),
        ("brev", OpClass.BITMANIP, 1, False, True, "Bit reversal"),
        ("sext8", OpClass.BITMANIP, 1, False, True, "Sign-extend low byte"),
        ("sext16", OpClass.BITMANIP, 1, False, True, "Sign-extend low halfword"),
        ("eq", OpClass.COMPARE, 2, False, True, "Set 1 if equal"),
        ("ne", OpClass.COMPARE, 2, False, True, "Set 1 if not equal"),
        ("slt", OpClass.COMPARE, 2, False, True, "Set 1 if signed less than"),
        ("sle", OpClass.COMPARE, 2, False, True, "Set 1 if signed less or equal"),
        ("sgt", OpClass.COMPARE, 2, False, True, "Set 1 if signed greater than"),
        ("sge", OpClass.COMPARE, 2, False, True, "Set 1 if signed greater or equal"),
        ("ult", OpClass.COMPARE, 2, False, True, "Set 1 if unsigned less than"),
        ("ule", OpClass.COMPARE, 2, False, True, "Set 1 if unsigned less or equal"),
        ("ugt", OpClass.COMPARE, 2, False, True, "Set 1 if unsigned greater than"),
        ("uge", OpClass.COMPARE, 2, False, True, "Set 1 if unsigned greater or equal"),
        ("eqz", OpClass.COMPARE, 1, False, True, "Set 1 if zero"),
        ("nez", OpClass.COMPARE, 1, False, True, "Set 1 if non-zero"),
        ("land", OpClass.PREDLOGIC, 2, False, True, "Logical AND of truth values"),
        ("lor", OpClass.PREDLOGIC, 2, False, True, "Logical OR of truth values"),
        ("lsw", OpClass.MEMORY, 1, True, True, "Load word from scratchpad"),
        ("ssw", OpClass.MEMORY, 2, False, False, "Store word to scratchpad"),
        ("halt", OpClass.MISC, 0, False, False, "Halt this processing element"),
    ]
    effects = {
        "lsw": OpEffects(loads_scratchpad=True),
        "ssw": OpEffects(stores_scratchpad=True),
        "halt": OpEffects(halts=True),
    }
    boolean = OpEffects(boolean_result=True)
    for m, c, _n, _late, _dst, _d in table:
        if c in (OpClass.COMPARE, OpClass.PREDLOGIC):
            effects[m] = boolean
    ops = tuple(
        Op(mnemonic=m, opcode=i, op_class=c, num_srcs=n, late_result=late,
           has_dst=dst, description=d, effects=effects.get(m, _NO_EFFECTS))
        for i, (m, c, n, late, dst, d) in enumerate(table)
    )
    return ops


OPS: tuple[Op, ...] = _build_ops()
"""All 42 operations, indexed by opcode."""

_BY_NAME = {op.mnemonic: op for op in OPS}

assert len(OPS) == 42, "the ISA must define exactly NOps = 42 operations"
assert len(_BY_NAME) == 42, "operation mnemonics must be unique"


def op_by_name(mnemonic: str) -> Op:
    """Look up an operation by mnemonic.

    Raises :class:`KeyError` with the list of valid mnemonics on a miss.
    """
    try:
        return _BY_NAME[mnemonic]
    except KeyError:
        raise KeyError(
            f"unknown operation {mnemonic!r}; valid operations are "
            f"{sorted(_BY_NAME)}"
        ) from None


def op_by_code(opcode: int) -> Op:
    """Look up an operation by its numeric opcode."""
    if not 0 <= opcode < len(OPS):
        raise KeyError(f"opcode {opcode} out of range 0..{len(OPS) - 1}")
    return OPS[opcode]


# ----------------------------------------------------------------------
# Derived operation groups
#
# Consumers that need "every op of shape X" (the fuzz generator, the
# static analyzer's commutation rules) derive the groups from the table
# above instead of keeping their own mnemonic lists.
# ----------------------------------------------------------------------

ALU_OPS_1SRC: tuple[str, ...] = tuple(
    op.mnemonic for op in OPS
    if op.num_srcs == 1 and op.has_dst and not op.effects.touches_scratchpad
)
"""Pure one-source value-producing operations (no scratchpad traffic)."""

ALU_OPS_2SRC: tuple[str, ...] = tuple(
    op.mnemonic for op in OPS
    if op.num_srcs == 2 and op.has_dst and not op.effects.touches_scratchpad
)
"""Pure two-source value-producing operations (no scratchpad traffic)."""

BOOLEAN_OPS_1SRC: tuple[str, ...] = tuple(
    op.mnemonic for op in OPS
    if op.num_srcs == 1 and op.effects.boolean_result
)
"""One-source operations producing 0/1 (natural predicate writers)."""

BOOLEAN_OPS_2SRC: tuple[str, ...] = tuple(
    op.mnemonic for op in OPS
    if op.num_srcs == 2 and op.effects.boolean_result
)
"""Two-source operations producing 0/1 (natural predicate writers)."""

SIDE_EFFECTING_OPS: tuple[str, ...] = tuple(
    op.mnemonic for op in OPS if op.effects.side_effecting
)
"""Opcodes with architectural effects beyond their destination write."""
