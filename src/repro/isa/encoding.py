"""Binary instruction encoding per paper Table 2.

Fields are packed least-significant-bit first, in Table 2's row order:
Val, PredMask, QueueIndices, NotTags, TagVals, Op, SrcTypes, SrcIDs,
DstTypes, DstIDs, OutTag, IQueueDeq, PredUpdate, Imm.  At the default
parameters this totals 106 bits; :func:`encode_program` pads each
instruction to the memory-mapped width (128 bits) exactly as the paper's
host interface does — padding the host sees but the instruction memory
never stores.

Index fields that can name "no queue" (QueueIndices, IQueueDeq) reserve
the value ``NIQueues`` as the none encoding, which is why they are sized
with ``clog2(NIQueues + 1)``.
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.isa.instruction import (
    DatapathOp,
    Destination,
    DestinationType,
    Instruction,
    Operand,
    OperandType,
    PredUpdate,
    TagCheck,
    Trigger,
)
from repro.isa.opcodes import op_by_code
from repro.params import ArchParams


class _BitPacker:
    """Accumulates fields LSB-first into one integer."""

    def __init__(self) -> None:
        self.value = 0
        self.position = 0

    def put(self, value: int, width: int, what: str) -> None:
        if value < 0 or value >= (1 << width):
            raise EncodingError(f"{what} value {value} does not fit in {width} bits")
        self.value |= value << self.position
        self.position += width


class _BitUnpacker:
    """Reads fields LSB-first from one integer."""

    def __init__(self, value: int) -> None:
        self.value = value
        self.position = 0

    def take(self, width: int) -> int:
        field = (self.value >> self.position) & ((1 << width) - 1)
        self.position += width
        return field


def encode_instruction(ins: Instruction, params: ArchParams) -> int:
    """Encode one instruction into its integer bit pattern."""
    ins.validate(params)
    p = params
    none_queue = p.num_input_queues
    packer = _BitPacker()

    packer.put(int(ins.valid), p.val_width, "Val")
    packer.put(ins.trigger.pred_on, p.num_preds, "PredMask on-set")
    packer.put(ins.trigger.pred_off, p.num_preds, "PredMask off-set")

    checks = list(ins.trigger.tag_checks)
    not_tags = 0
    tag_vals = 0
    for slot in range(p.max_check):
        if slot < len(checks):
            check = checks[slot]
            packer.put(check.queue, p.queue_index_width, "QueueIndices")
            if check.negate:
                not_tags |= 1 << slot
            tag_vals |= check.tag << (slot * p.tag_width)
        else:
            packer.put(none_queue, p.queue_index_width, "QueueIndices")
    packer.put(not_tags, p.not_tags_width, "NotTags")
    packer.put(tag_vals, p.tag_vals_width, "TagVals")

    packer.put(ins.dp.op.opcode, p.op_width, "Op")

    src_types = 0
    src_ids = 0
    for slot in range(p.num_srcs):
        if slot < len(ins.dp.srcs):
            src = ins.dp.srcs[slot]
            src_types |= src.kind.value << (slot * 2)
            if src.kind in (OperandType.REG, OperandType.IN):
                src_ids |= src.index << (slot * p.src_id_width)
    packer.put(src_types, p.src_types_width, "SrcTypes")
    packer.put(src_ids, p.src_ids_width, "SrcIDs")

    packer.put(ins.dp.dst.kind.value, p.dst_types_width, "DstTypes")
    dst_id = ins.dp.dst.index if ins.dp.dst.kind is not DestinationType.NONE else 0
    packer.put(dst_id, p.dst_ids_width, "DstIDs")
    out_tag = ins.dp.dst.out_tag if ins.dp.dst.kind is DestinationType.OUT else 0
    packer.put(out_tag, p.out_tag_width, "OutTag")

    for slot in range(p.max_deq):
        if slot < len(ins.dp.deq):
            packer.put(ins.dp.deq[slot], p.queue_index_width, "IQueueDeq")
        else:
            packer.put(none_queue, p.queue_index_width, "IQueueDeq")

    packer.put(ins.dp.pred_update.set_mask, p.num_preds, "PredUpdate set")
    packer.put(ins.dp.pred_update.clear_mask, p.num_preds, "PredUpdate clear")
    packer.put(ins.dp.imm & p.word_mask, p.imm_width, "Imm")

    if packer.position != p.instruction_width:
        raise EncodingError(
            f"internal encoding error: packed {packer.position} bits, "
            f"expected {p.instruction_width}"
        )
    return packer.value


def decode_instruction(word: int, params: ArchParams, label: str = "") -> Instruction:
    """Decode an integer bit pattern back into an :class:`Instruction`."""
    p = params
    if word < 0 or word >= (1 << p.padded_instruction_width):
        raise EncodingError(f"encoded instruction {word:#x} wider than the padded format")
    none_queue = p.num_input_queues
    bits = _BitUnpacker(word)

    valid = bool(bits.take(p.val_width))
    pred_on = bits.take(p.num_preds)
    pred_off = bits.take(p.num_preds)

    queue_indices = [bits.take(p.queue_index_width) for _ in range(p.max_check)]
    not_tags = bits.take(p.not_tags_width)
    tag_vals = bits.take(p.tag_vals_width)
    checks = []
    for slot, queue in enumerate(queue_indices):
        if queue == none_queue:
            continue
        if queue > none_queue:
            raise EncodingError(f"QueueIndices slot {slot} holds illegal queue {queue}")
        checks.append(
            TagCheck(
                queue=queue,
                tag=(tag_vals >> (slot * p.tag_width)) & (p.num_tags - 1),
                negate=bool((not_tags >> slot) & 1),
            )
        )

    opcode = bits.take(p.op_width)
    op = op_by_code(opcode)

    src_types = bits.take(p.src_types_width)
    src_ids = bits.take(p.src_ids_width)
    srcs = []
    for slot in range(p.num_srcs):
        kind = OperandType((src_types >> (slot * 2)) & 0b11)
        if kind is OperandType.NONE:
            continue
        index = (src_ids >> (slot * p.src_id_width)) & ((1 << p.src_id_width) - 1)
        srcs.append(Operand(kind, index if kind is not OperandType.IMM else 0))

    dst_kind = DestinationType(bits.take(p.dst_types_width))
    dst_id = bits.take(p.dst_ids_width)
    out_tag = bits.take(p.out_tag_width)
    if dst_kind is DestinationType.NONE:
        dst = Destination.none()
    elif dst_kind is DestinationType.OUT:
        dst = Destination.output_queue(dst_id, out_tag)
    else:
        dst = Destination(dst_kind, dst_id)

    deq = []
    for _ in range(p.max_deq):
        queue = bits.take(p.queue_index_width)
        if queue == none_queue:
            continue
        if queue > none_queue:
            raise EncodingError(f"IQueueDeq holds illegal queue {queue}")
        deq.append(queue)

    set_mask = bits.take(p.num_preds)
    clear_mask = bits.take(p.num_preds)
    imm = bits.take(p.imm_width)

    ins = Instruction(
        trigger=Trigger(pred_on=pred_on, pred_off=pred_off, tag_checks=tuple(checks)),
        dp=DatapathOp(
            op=op,
            srcs=tuple(srcs),
            dst=dst,
            imm=imm,
            deq=tuple(deq),
            pred_update=PredUpdate(set_mask=set_mask, clear_mask=clear_mask),
        ),
        valid=valid,
        label=label,
    )
    if valid:
        ins.validate(params)
    return ins


def encode_program(instructions: list[Instruction], params: ArchParams) -> bytes:
    """Encode a PE program as padded little-endian instruction words.

    Each instruction occupies ``padded_instruction_width`` bits (128 at
    default parameters) for the host's convenience, exactly as the paper's
    memory-mapped interface pads the 106-bit instruction to 128 bits.
    """
    if len(instructions) > params.num_instructions:
        raise EncodingError(
            f"program has {len(instructions)} instructions, PE holds "
            f"{params.num_instructions}"
        )
    stride = params.padded_instruction_width // 8
    blob = bytearray()
    for ins in instructions:
        blob += encode_instruction(ins, params).to_bytes(stride, "little")
    return bytes(blob)


def decode_program(blob: bytes, params: ArchParams) -> list[Instruction]:
    """Decode a binary produced by :func:`encode_program`."""
    stride = params.padded_instruction_width // 8
    if len(blob) % stride:
        raise EncodingError(
            f"binary length {len(blob)} is not a multiple of the "
            f"{stride}-byte padded instruction"
        )
    instructions = []
    for offset in range(0, len(blob), stride):
        word = int.from_bytes(blob[offset:offset + stride], "little")
        instructions.append(decode_instruction(word, params, label=f"ins{offset // stride}"))
    return instructions
