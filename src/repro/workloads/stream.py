"""``stream`` — Table 3: one PE (the worker) generates a stream of data
to store (increasing integers from zero to a maximum value) while a
second produces an identical stream used as store indices.  The goal is
to determine the maximum throughput for a sequential loop within a PE
program."""

from __future__ import annotations

from repro.errors import SimulationError
from repro.fabric.system import System
from repro.workloads.base import PEFactory, Workload
from repro.workloads.common import counter_producer

_OUT_BASE = 16


class StreamWorkload(Workload):
    name = "stream"
    description = (
        "A worker PE generates increasing integers as store data while a "
        "second PE generates the matching store indices — peak sequential "
        "loop throughput."
    )
    pe_count = 2
    worker_name = "worker"
    default_scale = 512

    def build(self, make_pe: PEFactory, scale: int, seed: int) -> System:
        n = max(2, scale)
        system = System()
        worker = make_pe(self.worker_name)   # data generator
        indexer = make_pe("indexer")         # address generator
        counter_producer(0, n, self.params, eos="none").configure(worker)
        counter_producer(_OUT_BASE, n, self.params, eos="none").configure(indexer)
        system.add_pe(worker)
        system.add_pe(indexer)
        system.add_write_port(indexer, 0, worker, 0)
        # Poison the destination so the check can't pass vacuously.
        system.memory.preload([0xDEAD] * n, base=_OUT_BASE)
        return system

    def check(self, system: System, scale: int, seed: int) -> None:
        n = max(2, scale)
        got = system.memory.dump(_OUT_BASE, n)
        expected = list(range(n))
        if got != expected:
            bad = next(i for i in range(n) if got[i] != expected[i])
            raise SimulationError(
                f"stream: memory[{_OUT_BASE + bad}] = {got[bad]}, expected {bad}"
            )
