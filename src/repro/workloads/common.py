"""Reusable PE programs shared by several workloads.

Streaming data between memory and workers is the fabric's bread and
butter; these helpers emit the standard producer idioms as assembly via
the :class:`~repro.workloads.builder.ProgramBuilder`.

Tag conventions used throughout the suite:

* tag 0 — ordinary data word
* tag 1 — end of stream (EOS)

Three EOS styles cover the consumers' needs:

* ``"last"`` — the final *data* word carries the EOS tag (consumers that
  must still process the last element, e.g. ``arg_max``).
* ``"sentinel"`` — all data words carry tag 0 and one extra word with
  tag 1 follows (consumers that treat EOS as "no more data", e.g. the
  ``merge`` drain logic).
* ``"none"`` — no EOS marker at all (fixed-length consumers such as the
  write port in ``stream``).
"""

from __future__ import annotations

from repro.asm.program import Program
from repro.errors import ConfigError
from repro.params import ArchParams, DEFAULT_PARAMS
from repro.workloads.builder import ProgramBuilder

TAG_DATA = 0
TAG_EOS = 1

_EOS_STYLES = ("last", "sentinel", "none")


def _check_style(eos: str) -> None:
    if eos not in _EOS_STYLES:
        raise ConfigError(f"eos style {eos!r} not one of {_EOS_STYLES}")


def memory_streamer(
    base: int,
    count: int,
    params: ArchParams = DEFAULT_PARAMS,
    out_queue: int = 1,
    eos: str = "last",
) -> Program:
    """Stream ``memory[base : base + count]`` to an output channel.

    Uses a read port wired to ``%o0`` (requests) / ``%i0`` (responses).
    Data leaves on ``%o<out_queue>``.  The EOS marker rides on the final
    *address* request and is propagated back by the read port, exercising
    tag-directed forwarding.  Halts once everything is forwarded.
    """
    _check_style(eos)
    if count < 1:
        raise ConfigError("memory_streamer needs at least one element")
    b = ProgramBuilder(params, start_state="init0")
    # Forwarders first: highest priority keeps the response queue moving.
    b.add(
        checks=[f"%i0.{TAG_DATA}"], deq=["%i0"],
        op=f"mov %o{out_queue}.{TAG_DATA}, %i0",
        comment="forward a data word downstream",
    )
    if eos == "last":
        b.add(
            checks=[f"%i0.{TAG_EOS}"], deq=["%i0"],
            op=f"mov %o{out_queue}.{TAG_EOS}, %i0",
            set_flags={3: True},
            comment="forward the last word with EOS and arm halt",
        )
    else:
        # Forward the last word as plain data...
        b.add(
            checks=[f"%i0.{TAG_EOS}"], deq=["%i0"],
            op=f"mov %o{out_queue}.{TAG_DATA}, %i0",
            set_flags={2: True} if eos == "sentinel" else {3: True},
            comment="forward the last word as data",
        )
        if eos == "sentinel":
            # ...then append a sentinel word with the EOS tag.
            b.add(
                flags={2: True},
                op=f"mov %o{out_queue}.{TAG_EOS}, $0",
                set_flags={2: False, 3: True},
                comment="append the EOS sentinel",
            )
    b.add(flags={3: True}, op="halt", comment="all data forwarded")
    # Address generation loop.
    b.add(state="init0", op=f"mov %r0, ${base}", next="init1",
          comment="r0 = first address")
    b.add(state="init1", op=f"mov %r1, ${base + count - 1}", next="cmp",
          comment="r1 = last address")
    b.add(state="cmp", op="ult %p1, %r0, %r1", next="act",
          comment="more addresses after this one?")
    b.add(state="act", flags={1: True}, op="mov %o0.0, %r0", next="inc",
          comment="request next word")
    b.add(state="act", flags={1: False}, op=f"mov %o0.{TAG_EOS}, %r0", next="drain",
          comment="request last word, tagged EOS")
    b.add(state="inc", op="add %r0, %r0, $1", next="cmp")
    # 'drain' has no instructions: the PE idles until the forwarders and
    # the halt instruction finish the job.
    return b.program(name=f"streamer[{base}:{base + count}]")


def counter_producer(
    start: int,
    count: int,
    params: ArchParams = DEFAULT_PARAMS,
    out_queue: int = 0,
    step: int = 1,
    eos: str = "last",
) -> Program:
    """Emit ``start, start + step, ...`` (``count`` values), then halt.

    This is the paper's maximum-throughput sequential loop: compare,
    emit, increment — three instructions per element.
    """
    _check_style(eos)
    if count < 1:
        raise ConfigError("counter_producer needs at least one element")
    last = start + step * (count - 1)
    last_tag = TAG_EOS if eos == "last" else TAG_DATA
    b = ProgramBuilder(params, start_state="init0")
    b.add(state="init0", op=f"mov %r0, ${start}", next="init1")
    b.add(state="init1", op=f"mov %r1, ${last}", next="cmp")
    b.add(state="cmp", op="ult %p1, %r0, %r1", next="act")
    b.add(state="act", flags={1: True}, op=f"mov %o{out_queue}.{TAG_DATA}, %r0",
          next="inc", comment="emit value")
    b.add(state="act", flags={1: False}, op=f"mov %o{out_queue}.{last_tag}, %r0",
          next="sent" if eos == "sentinel" else "done",
          comment="emit last value")
    b.add(state="inc", op=f"add %r0, %r0, ${step}", next="cmp")
    if eos == "sentinel":
        b.add(state="sent", op=f"mov %o{out_queue}.{TAG_EOS}, $0", next="done",
              comment="append the EOS sentinel")
    b.add(state="done", op="halt")
    return b.program(name=f"counter[{start}..{last}]")
