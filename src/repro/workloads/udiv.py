"""``udiv`` — Table 3: an unsigned integer division assembly macro in a
single PE (the worker), fed numerators and denominators by another PE
streaming them from memory, with the quotients stored back to memory.

The divider is the paper's example of software support for operations
deliberately omitted from the RISC-style ISA.  The worker implements a
32-iteration restoring shift-subtract division in exactly 16
instructions — the full capacity of a PE — by recirculating the
numerator register: each ``rol`` consumes one numerator bit at the top
and the freed bottom bit stores the next quotient bit.

The feeder streams (numerator, denominator) pairs and weaves one store
address per pair into its request loop, so the write port always has an
address ready when the worker emits a quotient (emitting all addresses
after all requests would deadlock on queue backpressure)."""

from __future__ import annotations

import random

from repro.errors import SimulationError
from repro.fabric.system import System
from repro.workloads.base import PEFactory, Workload
from repro.workloads.builder import ProgramBuilder


def _inputs(scale: int, seed: int) -> list[tuple[int, int]]:
    rng = random.Random(seed ^ 0x75646976)
    pairs = []
    for _ in range(max(1, scale)):
        numerator = rng.randrange(0, 1 << 32)
        denominator = rng.randrange(1, 1 << 16)
        pairs.append((numerator, denominator))
    return pairs


def divider_program(params, word_width: int = 32):
    """Restoring division; quotient accumulates in the numerator register."""
    b = ProgramBuilder(params, start_state="geta")
    b.add(state="geta", checks=["%i0.0"], op="mov %r0, %i0", deq=["%i0"],
          next="getb", comment="numerator (quotient builds here too)")
    b.add(state="geta", checks=["%i0.1"], op="halt", comment="EOS sentinel")
    b.add(state="getb", checks=["%i0.0"], op="mov %r1, %i0", deq=["%i0"],
          next="i1", comment="denominator")
    b.add(state="i1", op="mov %r4, $0", next="i2", comment="remainder = 0")
    b.add(state="i2", op=f"mov %r3, ${word_width}", next="loop",
          comment="bit counter")
    b.add(state="loop", op="eqz %p1, %r3", next="lbr")
    b.add(state="lbr", flags={1: True}, op="mov %o2.0, %r0", next="geta",
          comment="done: r0 is the quotient; feeder supplies the address")
    b.add(state="lbr", flags={1: False}, op="rol %r0, %r0, $1", next="b2",
          comment="numerator MSB rotates into bit 0")
    b.add(state="b2", op="and %r6, %r0, $1", next="b3",
          comment="extract the incoming bit")
    b.add(state="b3", op="shl %r4, %r4, $1", next="b4")
    b.add(state="b4", op="or %r4, %r4, %r6", next="b5",
          comment="remainder = remainder << 1 | bit")
    b.add(state="b5", op="sub %r3, %r3, $1", next="b6")
    b.add(state="b6", op="uge %p2, %r4, %r1", next="b7",
          comment="does the denominator fit?")
    b.add(state="b7", flags={2: True}, op="sub %r4, %r4, %r1", next="b8")
    b.add(state="b8", op="or %r0, %r0, $1", next="loop",
          comment="quotient bit 1 (replaces the consumed numerator bit)")
    b.add(state="b7", flags={2: False}, op="and %r0, %r0, $-2", next="loop",
          comment="quotient bit 0")
    return b.program(name="udiv")


def feeder_program(params, pair_count: int, out_base: int):
    """Stream 2*pair_count words (pairs) and one store address per pair.

    Read port on %o0/%i0; data to the worker on %o1; store addresses to
    the write port on %o2.  The last denominator request carries the EOS
    tag; its response is forwarded as data and followed by a sentinel.
    """
    last_pair_base = 2 * (pair_count - 1)
    b = ProgramBuilder(params, start_state="cmp")
    b.add(checks=["%i0.0"], deq=["%i0"], op="mov %o1.0, %i0",
          comment="forward a data word to the divider")
    b.add(checks=["%i0.1"], deq=["%i0"], op="mov %o1.0, %i0",
          set_flags={2: True}, comment="forward the last denominator")
    b.add(flags={2: True}, op="mov %o1.1, $0", set_flags={2: False, 3: True},
          comment="append the EOS sentinel")
    b.add(state="cmp", op=f"ult %p1, %r0, ${last_pair_base}", next="act",
          comment="r0 is the memory address; more pairs after this one?")
    b.add(state="act", flags={1: True}, op="mov %o0.0, %r0", next="inc1",
          comment="request numerator")
    b.add(state="inc1", op="add %r0, %r0, $1", next="act2")
    b.add(state="act2", op="mov %o0.0, %r0", next="inc2",
          comment="request denominator")
    b.add(state="inc2", op="add %r0, %r0, $1", next="aemit")
    b.add(state="aemit", op=f"add %o2.0, %r2, ${out_base}", next="ainc",
          comment="store address for this pair's quotient")
    b.add(state="ainc", op="add %r2, %r2, $1", next="cmp")
    b.add(state="act", flags={1: False}, op="mov %o0.0, %r0", next="linc",
          comment="last pair: request numerator")
    b.add(state="linc", op="add %r0, %r0, $1", next="lact2")
    b.add(state="lact2", op="mov %o0.1, %r0", next="aemitl",
          comment="last denominator request, tagged EOS")
    b.add(state="aemitl", op=f"add %o2.0, %r2, ${out_base}", next="adone")
    b.add(state="adone", flags={3: True}, op="halt",
          comment="sentinel forwarded and all addresses emitted")
    return b.program(name="udiv_feeder")


class UdivWorkload(Workload):
    name = "udiv"
    description = (
        "A feeder PE streams numerator/denominator pairs from memory to a "
        "software shift-subtract divider PE; quotients go back to memory."
    )
    pe_count = 2
    worker_name = "worker"
    default_scale = 24   # pairs; each costs ~300 worker cycles

    def build(self, make_pe: PEFactory, scale: int, seed: int) -> System:
        pairs = _inputs(scale, seed)
        n = len(pairs)
        out_base = 2 * n
        flat = [value for pair in pairs for value in pair]

        system = System()
        feeder = make_pe("feeder")
        worker = make_pe(self.worker_name)
        feeder_program(self.params, n, out_base).configure(feeder)
        divider_program(self.params, self.params.word_width).configure(worker)
        system.add_pe(feeder)
        system.add_pe(worker)
        system.add_read_port(feeder, request_out=0, response_in=0)
        system.connect(feeder, 1, worker, 0)
        system.add_write_port(feeder, 2, worker, 2)
        system.memory.preload(flat, base=0)
        return system

    def check(self, system: System, scale: int, seed: int) -> None:
        pairs = _inputs(scale, seed)
        expected = [n // d for n, d in pairs]
        got = system.memory.dump(2 * len(pairs), len(pairs))
        if got != expected:
            bad = next(i for i in range(len(pairs)) if got[i] != expected[i])
            raise SimulationError(
                f"udiv: {pairs[bad][0]} / {pairs[bad][1]} stored {got[bad]}, "
                f"expected {expected[bad]}"
            )
