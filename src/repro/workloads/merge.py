"""``merge`` — Table 3: simulates the conditions for a PE in a
high-radix spatial merge sort using a 2x2 array.  Two PEs stream sorted
lists to a merge PE (the worker), which must produce a sorted list
combining them.

Like ``filter``, the comparison outcome depends on high-entropy data, so
the worker's predicate writes are nearly unpredictable (Figure 4).  The
incoming streams use sentinel EOS words so the worker can drain the
surviving stream after the other ends."""

from __future__ import annotations

import random

from repro.errors import SimulationError
from repro.fabric.system import System
from repro.workloads.base import PEFactory, Workload
from repro.workloads.builder import ProgramBuilder
from repro.workloads.common import memory_streamer


def _inputs(scale: int, seed: int) -> tuple[list[int], list[int]]:
    rng = random.Random(seed ^ 0x6D657267)
    n = max(2, scale)
    return (
        sorted(rng.randrange(0, 1 << 30) for _ in range(n)),
        sorted(rng.randrange(0, 1 << 30) for _ in range(n)),
    )


def merge_program(params, out_base: int):
    """Classic two-way merge over %i0 and %i3 (the paper's own queues).

    Each accepted element costs three instructions: compare, store
    address, store data.  When one stream's sentinel is at the head the
    other is drained unconditionally; both sentinels mean done.
    """
    b = ProgramBuilder(params, start_state="cmp")
    b.add(state="cmp", checks=["%i0.0", "%i3.0"], op="ule %p1, %i0, %i3",
          next="br", comment="which head is smaller?")
    b.add(state="br", flags={1: True}, op=f"add %o1.0, %r2, ${out_base}",
          next="da", comment="take from stream A")
    b.add(state="da", op="mov %o2.0, %i0", deq=["%i0"], next="bump")
    b.add(state="br", flags={1: False}, op=f"add %o1.0, %r2, ${out_base}",
          next="db", comment="take from stream B")
    b.add(state="db", op="mov %o2.0, %i3", deq=["%i3"], next="bump")
    b.add(state="bump", op="add %r2, %r2, $1", next="cmp")
    b.add(state="cmp", checks=["%i0.1", "%i3.0"],
          op=f"add %o1.0, %r2, ${out_base}", next="db",
          comment="A exhausted: drain B")
    b.add(state="cmp", checks=["%i0.0", "%i3.1"],
          op=f"add %o1.0, %r2, ${out_base}", next="da",
          comment="B exhausted: drain A")
    b.add(state="cmp", checks=["%i0.1", "%i3.1"], op="halt",
          comment="both sentinels seen: done")
    return b.program(name="merge")


class MergeWorkload(Workload):
    name = "merge"
    description = (
        "Two PEs stream sorted lists to a merge worker PE that stores "
        "the combined sorted list."
    )
    pe_count = 3
    worker_name = "worker"
    default_scale = 192

    def build(self, make_pe: PEFactory, scale: int, seed: int) -> System:
        xs, ys = _inputs(scale, seed)
        n = len(xs)
        out_base = 2 * n

        system = System()
        stream_a = make_pe("stream_a")
        stream_b = make_pe("stream_b")
        worker = make_pe(self.worker_name)
        memory_streamer(0, n, self.params, eos="sentinel").configure(stream_a)
        memory_streamer(n, n, self.params, eos="sentinel").configure(stream_b)
        merge_program(self.params, out_base).configure(worker)
        for pe in (stream_a, stream_b, worker):
            system.add_pe(pe)
        system.add_read_port(stream_a, request_out=0, response_in=0)
        system.add_read_port(stream_b, request_out=0, response_in=0)
        system.connect(stream_a, 1, worker, 0)
        system.connect(stream_b, 1, worker, 3)
        system.add_write_port(worker, 1, worker, 2)
        system.memory.preload(xs, base=0)
        system.memory.preload(ys, base=n)
        return system

    def check(self, system: System, scale: int, seed: int) -> None:
        xs, ys = _inputs(scale, seed)
        expected = sorted(xs + ys)
        got = system.memory.dump(2 * len(xs), len(expected))
        if got != expected:
            bad = next(i for i in range(len(expected)) if got[i] != expected[i])
            raise SimulationError(
                f"merge: output[{bad}] = {got[bad]}, expected {expected[bad]}"
            )
