"""``string_search`` — Table 3: one PE reads four-byte words from memory
and forwards them to a second PE, which breaks the words into bytes.
Those bytes go to a third PE (the worker) which interprets each as an
ASCII character and scans the stream for the string ``"MICRO"`` using a
small DFA.  The worker emits zeros in all states except the match state,
in which it emits a one — the output array in memory marks the indices
of the occurrences.

The worker keeps its expected-character table in the PE-local scratchpad
(preloaded by the host, exactly the paper toolchain's capability) and
walks it with ``lsw`` — the DFA state is just an index register."""

from __future__ import annotations

import random

from repro.errors import SimulationError
from repro.fabric.system import System
from repro.workloads.base import PEFactory, Workload
from repro.workloads.builder import ProgramBuilder
from repro.workloads.common import memory_streamer

_PATTERN = "MICRO"


def _inputs(scale: int, seed: int) -> bytes:
    """Random uppercase text with planted pattern occurrences."""
    rng = random.Random(seed ^ 0x73747273)
    nwords = max(4, scale)
    text = [chr(rng.randrange(65, 91)) for _ in range(4 * nwords)]
    # Plant the pattern every ~40 characters.
    position = 7
    while position + len(_PATTERN) < len(text):
        text[position:position + len(_PATTERN)] = _PATTERN
        position += 40 + rng.randrange(0, 13)
    return "".join(text).encode("ascii")


def _pack_words(text: bytes) -> list[int]:
    """Little-endian packing: byte 0 of the text is bits 7:0 of word 0."""
    words = []
    for offset in range(0, len(text), 4):
        chunk = text[offset:offset + 4]
        words.append(int.from_bytes(chunk.ljust(4, b"\0"), "little"))
    return words


def _golden(text: bytes) -> list[int]:
    """1 at byte positions where a pattern occurrence *completes*."""
    marks = [0] * len(text)
    state = 0
    for position, byte in enumerate(text):
        char = chr(byte)
        if char == _PATTERN[state]:
            state += 1
            if state == len(_PATTERN):
                marks[position] = 1
                state = 0
        else:
            state = 1 if char == _PATTERN[0] else 0
    return marks


def splitter_program(params):
    """Break each 32-bit word into four bytes, LSB first; forward EOS."""
    b = ProgramBuilder(params, start_state="w0")
    b.add(state="w0", checks=["%i0.0"], op="and %o1.0, %i0, $255", next="w1",
          comment="byte 0")
    b.add(state="w1", op="shr %r0, %i0, $8", next="w1b")
    b.add(state="w1b", op="and %o1.0, %r0, $255", next="w2", comment="byte 1")
    b.add(state="w2", op="shr %r1, %r0, $8", next="w2b")
    b.add(state="w2b", op="and %o1.0, %r1, $255", next="w3", comment="byte 2")
    b.add(state="w3", op="shr %r2, %r1, $8", next="w3b")
    b.add(state="w3b", op="and %o1.0, %r2, $255", deq=["%i0"], next="w0",
          comment="byte 3; word consumed")
    b.add(state="w0", checks=["%i0.1"], op="mov %o1.1, %i0", deq=["%i0"],
          next="done", comment="forward the EOS sentinel")
    b.add(state="done", op="halt")
    return b.program(name="splitter")


def dfa_program(params, out_base: int, pattern_len: int):
    """Scratchpad-driven DFA over the byte stream; one output per byte."""
    m_char = ord(_PATTERN[0])
    b = ProgramBuilder(params, start_state="ld")
    b.add(state="ld", op="lsw %r1, %r0", next="cmp",
          comment="expected char for the current DFA state (r0)")
    b.add(state="cmp", checks=["%i0.0"], op="eq %p1, %i0, %r1", next="br")
    b.add(state="br", flags={1: True}, op="add %r0, %r0, $1", deq=["%i0"],
          next="mt", comment="advance the DFA")
    b.add(state="mt", op=f"eq %p2, %r0, ${pattern_len}", next="ea",
          comment="completed a match?")
    b.add(state="ea", op=f"add %o1.0, %r2, ${out_base}", next="ev",
          comment="output address for this byte position")
    b.add(state="ev", flags={2: True}, op="mov %o2.0, $1", next="rst",
          comment="match state: emit one")
    b.add(state="rst", op="mov %r0, $0", next="adv", comment="restart the DFA")
    b.add(state="ev", flags={2: False}, op="mov %o2.0, $0", next="adv")
    b.add(state="adv", op="add %r2, %r2, $1", next="ld")
    b.add(state="br", flags={1: False}, op=f"eq %p3, %i0, ${m_char}",
          deq=["%i0"], next="fb", comment="mismatch: does it restart at 'M'?")
    b.add(state="fb", flags={3: True}, op="mov %r0, $1", next="mt")
    b.add(state="fb", flags={3: False}, op="mov %r0, $0", next="mt")
    b.add(state="cmp", checks=["%i0.1"], op="halt", comment="EOS sentinel")
    return b.program(name="string_search")


class StringSearchWorkload(Workload):
    name = "string_search"
    description = (
        "A word reader, a byte splitter, and a DFA worker PE scanning "
        "for 'MICRO'; the output array marks the match positions."
    )
    pe_count = 3
    worker_name = "worker"
    default_scale = 64   # number of 4-byte words of text

    def build(self, make_pe: PEFactory, scale: int, seed: int) -> System:
        text = _inputs(scale, seed)
        words = _pack_words(text)
        out_base = len(words)

        system = System()
        reader = make_pe("reader")
        splitter = make_pe("splitter")
        worker = make_pe(self.worker_name)
        memory_streamer(0, len(words), self.params,
                        eos="sentinel").configure(reader)
        splitter_program(self.params).configure(splitter)
        dfa_program(self.params, out_base, len(_PATTERN)).configure(worker)
        worker.scratchpad.preload([ord(c) for c in _PATTERN])
        for pe in (reader, splitter, worker):
            system.add_pe(pe)
        system.add_read_port(reader, request_out=0, response_in=0)
        system.connect(reader, 1, splitter, 0)
        system.connect(splitter, 1, worker, 0)
        system.add_write_port(worker, 1, worker, 2)
        system.memory.preload(words, base=0)
        return system

    def check(self, system: System, scale: int, seed: int) -> None:
        text = _inputs(scale, seed)
        expected = _golden(text)
        out_base = (len(text) + 3) // 4
        got = system.memory.dump(out_base, len(expected))
        if got != expected:
            bad = next(i for i in range(len(expected)) if got[i] != expected[i])
            raise SimulationError(
                f"string_search: mark[{bad}] = {got[bad]}, expected "
                f"{expected[bad]} (char {text[bad:bad + 1]!r})"
            )
        if sum(expected) == 0:
            raise SimulationError("string_search: degenerate input, no matches planted")
