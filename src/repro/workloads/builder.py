"""A macro layer for writing triggered-instruction state machines.

Hand-writing predicate guard patterns (``when %p == XXXX0011``) is
error-prone once a program has a dozen states.  This builder lets a
workload be written as named states with flag conditions; it assigns
state encodings to a chosen group of predicate bits and emits ordinary
assembly text, which then goes through the real assembler — so the
output is always legal machine code, inspectable as ``.s`` source.

Example::

    b = ProgramBuilder()
    b.add(state="cmp", op="ult %p1, %r0, %r1", next="act")
    b.add(state="act", flags={1: True}, op="mov %o0.0, %r0", next="inc")
    b.add(state="act", flags={1: False}, op="halt")
    b.add(state="inc", op="add %r0, %r0, $1", next="cmp")
    source = b.source()

Instruction priority is insertion order, exactly as in raw assembly.
Stateless instructions (``state=None``) match any state and are the
idiom for tag-directed forwarding that may fire in every state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AssemblerError
from repro.params import ArchParams, DEFAULT_PARAMS

_PRED_DST = __import__("re").compile(r"%p(\d+)\b")


@dataclass
class _Entry:
    state: str | None
    flags: dict[int, bool]
    checks: list[str]
    op: str
    deq: list[str]
    next_state: str | None
    set_flags: dict[int, bool]
    comment: str


class ProgramBuilder:
    """Builds triggered assembly from named states and flag conditions."""

    def __init__(
        self,
        params: ArchParams = DEFAULT_PARAMS,
        state_bits: tuple[int, ...] = (7, 6, 5, 4),
        start_state: str | None = None,
    ) -> None:
        self.params = params
        self.state_bits = state_bits
        self._states: dict[str, int] = {}
        self._entries: list[_Entry] = []
        self._start_state = start_state

    # ------------------------------------------------------------------

    def add(
        self,
        op: str,
        state: str | None = None,
        flags: dict[int, bool] | None = None,
        checks: list[str] | None = None,
        deq: list[str] | None = None,
        next: str | None = None,
        set_flags: dict[int, bool] | None = None,
        comment: str = "",
    ) -> None:
        """Append one instruction.

        ``state`` — named state guarding this instruction (None = any).
        ``flags`` — predicate-bit conditions, e.g. ``{1: True}``.
        ``checks`` — trigger tag checks in assembly form (``"%i0.1"``).
        ``deq`` — queues to dequeue (``"%i0"``).
        ``next`` — state to transition to (None = stay).
        ``set_flags`` — extra predicate bits to force at issue.
        """
        for name in (state, next):
            if name is not None and name not in self._states:
                self._states[name] = len(self._states)
        for bit in list((flags or {})) + list((set_flags or {})):
            if bit in self.state_bits:
                raise AssemblerError(
                    f"flag predicate %p{bit} collides with a state bit"
                )
        self._entries.append(
            _Entry(
                state=state,
                flags=dict(flags or {}),
                checks=list(checks or []),
                op=op,
                deq=list(deq or []),
                next_state=next,
                set_flags=dict(set_flags or {}),
                comment=comment,
            )
        )

    # ------------------------------------------------------------------

    def _encoding(self, name: str) -> int:
        code = self._states[name]
        if code >= (1 << len(self.state_bits)):
            raise AssemblerError(
                f"{len(self._states)} states exceed the "
                f"{len(self.state_bits)} state bits"
            )
        return code

    def _guard_pattern(self, entry: _Entry) -> str:
        chars = ["X"] * self.params.num_preds
        if entry.state is not None:
            code = self._encoding(entry.state)
            for position, bit in enumerate(self.state_bits):
                chars[bit] = "1" if (code >> position) & 1 else "0"
        for bit, value in entry.flags.items():
            chars[bit] = "1" if value else "0"
        return "".join(reversed(chars))

    def _set_pattern(self, entry: _Entry) -> str | None:
        chars = ["Z"] * self.params.num_preds
        changed = False
        if entry.next_state is not None:
            code = self._encoding(entry.next_state)
            for position, bit in enumerate(self.state_bits):
                chars[bit] = "1" if (code >> position) & 1 else "0"
            changed = True
        for bit, value in entry.set_flags.items():
            chars[bit] = "1" if value else "0"
            changed = True
        if not changed:
            return None
        # Never force a bit the datapath writes (chars is indexed LSB-first).
        if m := _PRED_DST.match(entry.op.split(None, 1)[-1]):
            bit = int(m.group(1))
            if chars[bit] != "Z":
                raise AssemblerError(
                    f"instruction {entry.op!r} writes %p{bit} but the "
                    f"transition also forces it"
                )
        return "".join(reversed(chars))

    def source(self) -> str:
        """Emit the program as assembly text."""
        lines = []
        if self._start_state is not None:
            code = self._encoding(self._start_state)
            chars = ["0"] * self.params.num_preds
            for position, bit in enumerate(self.state_bits):
                chars[bit] = "1" if (code >> position) & 1 else "0"
            lines.append(".start %p = " + "".join(reversed(chars)))
            lines.append("")
        for entry in self._entries:
            guard = f"when %p == {self._guard_pattern(entry)}"
            if entry.checks:
                guard += " with " + ", ".join(entry.checks)
            guard += ":"
            if entry.comment or entry.state is not None:
                where = entry.state or "*"
                flag_text = "".join(
                    f" p{bit}={int(value)}" for bit, value in entry.flags.items()
                )
                lines.append(f"# [{where}{flag_text}] {entry.comment}")
            lines.append(guard)
            actions = [entry.op]
            set_pattern = self._set_pattern(entry)
            if set_pattern is not None:
                actions.append(f"set %p = {set_pattern}")
            if entry.deq:
                actions.append("deq " + ", ".join(entry.deq))
            lines.append("    " + "; ".join(actions) + ";")
            lines.append("")
        return "\n".join(lines)

    def program(self, name: str = ""):
        """Assemble directly to a :class:`~repro.asm.program.Program`."""
        from repro.asm.assembler import assemble

        return assemble(self.source(), self.params, name=name)
