"""``gcd`` — Table 3: a single PE reads two numbers (chosen intentionally
for long runtime) and performs a register-register workload computing
their GCD by subtraction before storing it back to memory."""

from __future__ import annotations

import math

from repro.errors import SimulationError
from repro.fabric.system import System
from repro.workloads.base import PEFactory, Workload
from repro.workloads.builder import ProgramBuilder

_A_ADDR = 0
_B_ADDR = 1
_RESULT_ADDR = 2


def _inputs(scale: int, seed: int) -> tuple[int, int]:
    """Operands whose subtractive GCD takes on the order of ``scale`` steps."""
    # (k + 1, k) degenerates to gcd(1, k): about k subtraction steps.
    base = max(2, scale)
    return base + 1 + seed % 7, base + seed % 7


def gcd_program(params):
    """The worker program: load a and b, subtract until equal, store."""
    b = ProgramBuilder(params, start_state="req_a")
    b.add(state="req_a", op=f"mov %o0.0, ${_A_ADDR}", next="req_b",
          comment="request operand a")
    b.add(state="req_b", op=f"mov %o0.0, ${_B_ADDR}", next="recv_a",
          comment="request operand b")
    b.add(state="recv_a", op="mov %r0, %i0", deq=["%i0"], next="recv_b")
    b.add(state="recv_b", op="mov %r1, %i0", deq=["%i0"], next="test")
    b.add(state="test", op="eq %p1, %r0, %r1", next="br",
          comment="loop until a == b")
    b.add(state="br", flags={1: True}, op=f"mov %o1.0, ${_RESULT_ADDR}",
          next="store", comment="converged: store address")
    b.add(state="store", op="mov %o2.0, %r0", next="done",
          comment="store gcd value")
    b.add(state="done", op="halt")
    b.add(state="br", flags={1: False}, op="ult %p2, %r0, %r1", next="sub")
    b.add(state="sub", flags={2: True}, op="sub %r1, %r1, %r0", next="test")
    b.add(state="sub", flags={2: False}, op="sub %r0, %r0, %r1", next="test")
    return b.program(name="gcd")


class GcdWorkload(Workload):
    name = "gcd"
    description = (
        "Single PE reads two numbers, computes their GCD with "
        "register-register subtraction, stores it back to memory."
    )
    pe_count = 1
    worker_name = "worker"
    default_scale = 512

    def build(self, make_pe: PEFactory, scale: int, seed: int) -> System:
        a, b = _inputs(scale, seed)
        system = System()
        worker = make_pe(self.worker_name)
        gcd_program(self.params).configure(worker)
        system.add_pe(worker)
        system.add_read_port(worker, request_out=0, response_in=0)
        system.add_write_port(worker, 1, worker, 2)
        system.memory.preload([a, b], base=_A_ADDR)
        return system

    def check(self, system: System, scale: int, seed: int) -> None:
        a, b = _inputs(scale, seed)
        expected = math.gcd(a, b)
        got = system.memory.load(_RESULT_ADDR)
        if got != expected:
            raise SimulationError(f"gcd({a}, {b}) = {expected}, PE stored {got}")
