"""``bst`` — Table 3: a single PE accesses memory to traverse a binary
search tree with nodes generated from random numbers (to increase branch
entropy), storing the Boolean result of each search back to memory.

This is the paper's reference workload for VLSI activity extraction —
among the single-PE workloads it has the most balanced mix of I/O channel
use, computation and memory-access delay (Section 3).

Memory layout (word addressed)::

    [0 .. n)        search keys
    [n .. 2n)       results (1 = found)
    [2n .. ...)     tree nodes, three words each: value, left, right

The null pointer is ``0xFFFFFFFF`` so that address 0 stays usable.  The
worker uses two read ports (keys and nodes) and keeps the current key at
the head of its key queue during the whole traversal — comparisons read
both queue heads directly, exercising ``MaxDeq = 2`` dequeues on a hit.
"""

from __future__ import annotations

import random

from repro.errors import SimulationError
from repro.fabric.system import System
from repro.workloads.base import PEFactory, Workload
from repro.workloads.builder import ProgramBuilder

_NULL = -1  # encodes as 0xFFFFFFFF


class _GoldenTree:
    """Array-backed reference BST matching the PE's memory layout."""

    def __init__(self, values: list[int], base: int) -> None:
        self.base = base
        self.words: list[int] = []
        for value in values:
            self._insert(value)

    def _insert(self, value: int) -> None:
        node = len(self.words)
        if not self.words:
            self.words += [value, _NULL & 0xFFFFFFFF, _NULL & 0xFFFFFFFF]
            return
        current = 0
        while True:
            node_value = self.words[current]
            slot = current + 1 if value < node_value else current + 2
            if self.words[slot] == _NULL & 0xFFFFFFFF:
                self.words[slot] = self.base + len(self.words)
                self.words += [value, _NULL & 0xFFFFFFFF, _NULL & 0xFFFFFFFF]
                return
            current = self.words[slot] - self.base

    def contains(self, key: int) -> bool:
        if not self.words:
            return False
        current = 0
        while True:
            value = self.words[current]
            if key == value:
                return True
            slot = current + 1 if key < value else current + 2
            if self.words[slot] == _NULL & 0xFFFFFFFF:
                return False
            current = self.words[slot] - self.base


def _inputs(scale: int, seed: int) -> tuple[list[int], list[int]]:
    """(tree values, search keys): half the keys hit, half miss."""
    rng = random.Random(seed ^ 0x627374)
    n = max(4, scale)
    universe = rng.sample(range(1, 1 << 24), 2 * n)
    values = universe[:n]
    keys = [rng.choice(values) if rng.random() < 0.5 else rng.choice(universe[n:])
            for _ in range(n)]
    return values, keys


def bst_program(params, num_keys: int, root_addr: int):
    """The 16-instruction traversal worker (fills the PE exactly)."""
    b = ProgramBuilder(params, start_state="key_cmp")
    b.add(state="key_cmp", op=f"ult %p1, %r0, ${num_keys}", next="key_act",
          comment="more keys?  r0 is the key address")
    b.add(state="key_act", flags={1: False}, op="halt")
    b.add(state="key_act", flags={1: True}, op="mov %o0.0, %r0", next="root0",
          comment="request the key (port A); it stays queued all traversal")
    b.add(state="root0", op=f"mov %r2, ${root_addr}", next="adv",
          comment="node = root")
    b.add(state="adv", op="add %r0, %r0, $1", next="node_test",
          comment="advance the key cursor early")
    b.add(state="node_test", op=f"eq %p2, %r2, ${_NULL}", next="node_br",
          comment="reached a null pointer?")
    b.add(state="node_br", flags={2: True},
          op=f"add %o1.0, %r0, ${num_keys - 1}", deq=["%i0"], next="store_miss",
          comment="miss: store address (results follow keys); drop the key")
    b.add(state="store_miss", op="mov %o2.0, $0", next="key_cmp")
    b.add(state="node_br", flags={2: False}, op="mov %o3.0, %r2", next="val_wait",
          comment="request node value (port B)")
    b.add(state="val_wait", op="eq %p3, %i0, %i1", next="hit_br",
          comment="key == node value?  (both read in place)")
    b.add(state="hit_br", flags={3: True},
          op=f"add %o1.0, %r0, ${num_keys - 1}", deq=["%i0", "%i1"],
          next="store_hit", comment="hit: store address; drop key and value")
    b.add(state="store_hit", op="mov %o2.0, $1", next="key_cmp")
    b.add(state="hit_br", flags={3: False}, op="ult %p1, %i0, %i1",
          deq=["%i1"], next="child_br", comment="descend left or right?")
    b.add(state="child_br", flags={1: True}, op="add %o3.0, %r2, $1",
          next="child_wait", comment="request left pointer")
    b.add(state="child_br", flags={1: False}, op="add %o3.0, %r2, $2",
          next="child_wait", comment="request right pointer")
    b.add(state="child_wait", op="mov %r2, %i1", deq=["%i1"], next="node_test",
          comment="node = child pointer")
    return b.program(name="bst")


class BstWorkload(Workload):
    name = "bst"
    description = (
        "Single PE traverses a randomized binary search tree in memory and "
        "stores the Boolean result of each search."
    )
    pe_count = 1
    worker_name = "worker"
    default_scale = 128   # number of keys searched (= tree size)

    def build(self, make_pe: PEFactory, scale: int, seed: int) -> System:
        values, keys = _inputs(scale, seed)
        n = len(keys)
        node_base = 2 * n
        tree = _GoldenTree(values, node_base)

        system = System()
        worker = make_pe(self.worker_name)
        bst_program(self.params, n, node_base).configure(worker)
        system.add_pe(worker)
        system.add_read_port(worker, request_out=0, response_in=0)   # keys
        system.add_read_port(worker, request_out=3, response_in=1)   # nodes
        system.add_write_port(worker, 1, worker, 2)                  # results
        system.memory.preload(keys, base=0)
        system.memory.preload(tree.words, base=node_base)
        return system

    def check(self, system: System, scale: int, seed: int) -> None:
        values, keys = _inputs(scale, seed)
        n = len(keys)
        tree = _GoldenTree(values, 2 * n)
        expected = [int(tree.contains(key)) for key in keys]
        got = system.memory.dump(n, n)
        if got != expected:
            bad = next(i for i in range(n) if got[i] != expected[i])
            raise SimulationError(
                f"bst: result[{bad}] for key {keys[bad]} is {got[bad]}, "
                f"expected {expected[bad]}"
            )
