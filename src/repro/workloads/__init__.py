"""The ten PE-centric microbenchmarks of paper Table 3."""

from repro.workloads.base import Workload, WorkloadRun
from repro.workloads.suite import WORKLOADS, get_workload, run_workload

__all__ = ["Workload", "WorkloadRun", "WORKLOADS", "get_workload", "run_workload"]
