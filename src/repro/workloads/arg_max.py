"""``arg_max`` — Table 3: one PE streams an array of integers from
memory to another which determines the index of the highest value; the
second PE (the worker) stores the result back to data memory."""

from __future__ import annotations

import random

from repro.errors import SimulationError
from repro.fabric.system import System
from repro.workloads.base import PEFactory, Workload
from repro.workloads.builder import ProgramBuilder
from repro.workloads.common import memory_streamer

_ARRAY_BASE = 0


def _inputs(scale: int, seed: int) -> list[int]:
    rng = random.Random(seed ^ 0x6172676D)
    return [rng.randrange(1, 1 << 30) for _ in range(max(2, scale))]


def arg_max_program(params, result_addr: int):
    """Track the running maximum and its index; store the index at EOS.

    The incoming stream uses the "last" EOS style, so the final element
    still participates in the comparison.  Ties keep the earliest index.
    """
    b = ProgramBuilder(params, start_state="scan")
    b.add(state="scan", checks=["%i0.0"], op="ugt %p1, %i0, %r1", next="upd",
          comment="new element beats the best so far?")
    b.add(state="scan", checks=["%i0.1"], op="ugt %p1, %i0, %r1", next="upd",
          set_flags={2: True}, comment="last element: same test, arm finish")
    b.add(state="upd", flags={1: True}, op="mov %r1, %i0", next="upd2",
          comment="new best value")
    b.add(state="upd2", op="mov %r2, %r0", next="adv", comment="new best index")
    b.add(state="upd", flags={1: False}, op="nop", next="adv")
    b.add(state="adv", flags={2: False}, op="add %r0, %r0, $1", deq=["%i0"],
          next="scan", comment="consume the element, bump the index")
    b.add(state="adv", flags={2: True}, op="add %r0, %r0, $1", deq=["%i0"],
          next="fin")
    b.add(state="fin", op=f"mov %o1.0, ${result_addr}", next="fin2")
    b.add(state="fin2", op="mov %o2.0, %r2", next="done")
    b.add(state="done", op="halt")
    return b.program(name="arg_max")


class ArgMaxWorkload(Workload):
    name = "arg_max"
    description = (
        "One PE streams integers from memory to a worker PE that finds "
        "the index of the maximum and stores it."
    )
    pe_count = 2
    worker_name = "worker"
    default_scale = 256

    def build(self, make_pe: PEFactory, scale: int, seed: int) -> System:
        values = _inputs(scale, seed)
        result_addr = _ARRAY_BASE + len(values)

        system = System()
        streamer = make_pe("streamer")
        worker = make_pe(self.worker_name)
        memory_streamer(_ARRAY_BASE, len(values), self.params,
                        eos="last").configure(streamer)
        arg_max_program(self.params, result_addr).configure(worker)
        system.add_pe(streamer)
        system.add_pe(worker)
        system.add_read_port(streamer, request_out=0, response_in=0)
        system.connect(streamer, 1, worker, 0)
        system.add_write_port(worker, 1, worker, 2)
        system.memory.preload(values, base=_ARRAY_BASE)
        return system

    def check(self, system: System, scale: int, seed: int) -> None:
        values = _inputs(scale, seed)
        expected = max(range(len(values)), key=lambda i: values[i])
        got = system.memory.load(_ARRAY_BASE + len(values))
        if got != expected:
            raise SimulationError(f"arg_max: expected index {expected}, stored {got}")
