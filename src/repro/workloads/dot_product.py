"""``dot_product`` — Table 3: two PEs stream two integer arrays to a
third PE (the worker) which calculates the dot product.  Upon receiving
end-of-program tags from both streams, the multiply-accumulate PE saves
its accumulator to memory before halting.

The worker PE does not rely on predicates for control flow, only the
semantic information encoded in operand tags — the paper singles it out
for exactly this in Figure 4."""

from __future__ import annotations

import random

from repro.errors import SimulationError
from repro.fabric.system import System
from repro.workloads.base import PEFactory, Workload
from repro.workloads.builder import ProgramBuilder
from repro.workloads.common import memory_streamer

_WORD = 0xFFFFFFFF


def _inputs(scale: int, seed: int) -> tuple[list[int], list[int]]:
    rng = random.Random(seed ^ 0x646F74)
    n = max(2, scale)
    return (
        [rng.randrange(0, 1 << 15) for _ in range(n)],
        [rng.randrange(0, 1 << 15) for _ in range(n)],
    )


def mac_program(params, result_addr: int):
    """Multiply-accumulate pairs; finish when both heads carry EOS tags.

    The streams are equal length and consumed in lockstep, so the EOS
    tags arrive on the same pair.
    """
    b = ProgramBuilder(params, start_state="mac")
    b.add(state="mac", checks=["%i0.0", "%i1.0"], op="mul %r1, %i0, %i1",
          next="acc", comment="product of the pair (reads both heads)")
    b.add(state="mac", checks=["%i0.1", "%i1.1"], op="mul %r1, %i0, %i1",
          next="acc", set_flags={3: True}, comment="final pair")
    b.add(state="acc", flags={3: False}, op="add %r0, %r0, %r1",
          deq=["%i0", "%i1"], next="mac", comment="accumulate, consume pair")
    b.add(state="acc", flags={3: True}, op="add %r0, %r0, %r1",
          deq=["%i0", "%i1"], next="fin")
    b.add(state="fin", op=f"mov %o1.0, ${result_addr}", next="fin2")
    b.add(state="fin2", op="mov %o2.0, %r0", next="done",
          comment="save the accumulator")
    b.add(state="done", op="halt")
    return b.program(name="dot_product")


class DotProductWorkload(Workload):
    name = "dot_product"
    description = (
        "Two PEs stream two integer arrays to a multiply-accumulate "
        "worker PE that stores the dot product."
    )
    pe_count = 3
    worker_name = "worker"
    default_scale = 256

    def build(self, make_pe: PEFactory, scale: int, seed: int) -> System:
        xs, ys = _inputs(scale, seed)
        n = len(xs)
        result_addr = 2 * n

        system = System()
        stream_x = make_pe("stream_x")
        stream_y = make_pe("stream_y")
        worker = make_pe(self.worker_name)
        memory_streamer(0, n, self.params, eos="last").configure(stream_x)
        memory_streamer(n, n, self.params, eos="last").configure(stream_y)
        mac_program(self.params, result_addr).configure(worker)
        for pe in (stream_x, stream_y, worker):
            system.add_pe(pe)
        system.add_read_port(stream_x, request_out=0, response_in=0)
        system.add_read_port(stream_y, request_out=0, response_in=0)
        system.connect(stream_x, 1, worker, 0)
        system.connect(stream_y, 1, worker, 1)
        system.add_write_port(worker, 1, worker, 2)
        system.memory.preload(xs, base=0)
        system.memory.preload(ys, base=n)
        return system

    def check(self, system: System, scale: int, seed: int) -> None:
        xs, ys = _inputs(scale, seed)
        expected = sum(x * y for x, y in zip(xs, ys)) & _WORD
        got = system.memory.load(2 * len(xs))
        if got != expected:
            raise SimulationError(f"dot_product: expected {expected}, stored {got}")
