"""Registry of the ten Table 3 workloads."""

from __future__ import annotations

from repro.errors import ConfigError
from repro.params import ArchParams, DEFAULT_PARAMS
from repro.workloads.base import PEFactory, Workload, WorkloadRun

WORKLOAD_CLASSES: dict[str, type] = {}
"""Populated lazily to avoid import cycles during module construction."""


def _load_classes() -> dict[str, type]:
    if WORKLOAD_CLASSES:
        return WORKLOAD_CLASSES
    from repro.workloads.bst import BstWorkload
    from repro.workloads.gcd import GcdWorkload
    from repro.workloads.mean import MeanWorkload
    from repro.workloads.arg_max import ArgMaxWorkload
    from repro.workloads.dot_product import DotProductWorkload
    from repro.workloads.filter import FilterWorkload
    from repro.workloads.merge import MergeWorkload
    from repro.workloads.stream import StreamWorkload
    from repro.workloads.string_search import StringSearchWorkload
    from repro.workloads.udiv import UdivWorkload

    for cls in (
        BstWorkload, GcdWorkload, MeanWorkload, ArgMaxWorkload,
        DotProductWorkload, FilterWorkload, MergeWorkload, StreamWorkload,
        StringSearchWorkload, UdivWorkload,
    ):
        WORKLOAD_CLASSES[cls.name] = cls
    return WORKLOAD_CLASSES


def WORKLOADS() -> list[str]:
    """Names of the ten workloads, in the paper's Table 3 order."""
    return list(_load_classes())


def get_workload(name: str, params: ArchParams = DEFAULT_PARAMS) -> Workload:
    classes = _load_classes()
    if name not in classes:
        raise ConfigError(f"unknown workload {name!r}; choose from {sorted(classes)}")
    return classes[name](params)


def run_workload(
    name: str,
    make_pe: PEFactory | None = None,
    scale: int | None = None,
    seed: int = 0,
    params: ArchParams = DEFAULT_PARAMS,
) -> WorkloadRun:
    """Convenience: instantiate, run and validate one workload."""
    return get_workload(name, params).run(make_pe=make_pe, scale=scale, seed=seed)
