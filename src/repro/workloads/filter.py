"""``filter`` — Table 3: one PE streams a list of integers to a second
which determines whether they are above a threshold and in turn emits a
zero or one accordingly to a third PE.  This third PE (the worker) uses
the Boolean input stream to determine whether to save the corresponding
value from a second stream of integers to memory.

The control stream is generated from high-entropy data, making the
worker's predicate writes unpredictable — the paper's worst case for the
predicate predictor (~50% accuracy, Figure 4)."""

from __future__ import annotations

import random

from repro.errors import SimulationError
from repro.fabric.system import System
from repro.workloads.base import PEFactory, Workload
from repro.workloads.builder import ProgramBuilder
from repro.workloads.common import memory_streamer

_THRESHOLD = 1 << 29   # about half of a 30-bit uniform range


def _inputs(scale: int, seed: int) -> tuple[list[int], list[int]]:
    rng = random.Random(seed ^ 0x66696C74)
    n = max(2, scale)
    control = [rng.randrange(0, 1 << 30) for _ in range(n)]
    payload = [rng.randrange(0, 1 << 30) for _ in range(n)]
    return control, payload


def threshold_program(params, threshold: int):
    """Map each incoming word to 1 (above threshold) or 0, preserve EOS."""
    b = ProgramBuilder(params, start_state=None)
    b.add(checks=["%i0.0"], deq=["%i0"], op=f"ugt %o1.0, %i0, ${threshold}",
          comment="boolean out, same tag")
    b.add(checks=["%i0.1"], deq=["%i0"], op=f"ugt %o1.1, %i0, ${threshold}",
          set_flags={0: True}, comment="last boolean, then halt")
    b.add(flags={0: True}, op="halt")
    return b.program(name="filter_threshold")


def filter_worker_program(params, out_base: int, count_addr: int):
    """Save payload words whose control boolean is 1; store the count last."""
    b = ProgramBuilder(params, start_state="sel")
    b.add(state="sel", checks=["%i0.0", "%i1.0"], op="nez %p1, %i0",
          next="br", comment="control says keep?")
    b.add(state="sel", checks=["%i0.1", "%i1.1"], op="nez %p1, %i0",
          next="br", set_flags={3: True}, comment="final pair")
    b.add(state="br", flags={1: True}, op=f"add %o1.0, %r2, ${out_base}",
          next="store_d", comment="keep: store address = base + kept count")
    b.add(state="store_d", op="mov %o2.0, %i1", next="bump",
          comment="store the payload word")
    b.add(state="bump", flags={3: False}, op="add %r2, %r2, $1",
          deq=["%i0", "%i1"], next="sel")
    b.add(state="bump", flags={3: True}, op="add %r2, %r2, $1",
          deq=["%i0", "%i1"], next="fin")
    b.add(state="br", flags={1: False, 3: False}, op="nop",
          deq=["%i0", "%i1"], next="sel", comment="drop the pair")
    b.add(state="br", flags={1: False, 3: True}, op="nop",
          deq=["%i0", "%i1"], next="fin")
    b.add(state="fin", op=f"mov %o1.0, ${count_addr}", next="fin2")
    b.add(state="fin2", op="mov %o2.0, %r2", next="done",
          comment="record how many words were kept")
    b.add(state="done", op="halt")
    return b.program(name="filter_worker")


class FilterWorkload(Workload):
    name = "filter"
    description = (
        "A threshold PE turns one stream into Booleans; the worker PE "
        "saves words of a second stream wherever the Boolean is one."
    )
    pe_count = 4
    worker_name = "worker"
    default_scale = 256

    def build(self, make_pe: PEFactory, scale: int, seed: int) -> System:
        control, payload = _inputs(scale, seed)
        n = len(control)
        out_base = 2 * n
        count_addr = 3 * n

        system = System()
        stream_c = make_pe("stream_c")
        thresh = make_pe("threshold")
        stream_p = make_pe("stream_p")
        worker = make_pe(self.worker_name)
        memory_streamer(0, n, self.params, eos="last").configure(stream_c)
        threshold_program(self.params, _THRESHOLD).configure(thresh)
        memory_streamer(n, n, self.params, eos="last").configure(stream_p)
        filter_worker_program(self.params, out_base, count_addr).configure(worker)
        for pe in (stream_c, thresh, stream_p, worker):
            system.add_pe(pe)
        system.add_read_port(stream_c, request_out=0, response_in=0)
        system.add_read_port(stream_p, request_out=0, response_in=0)
        system.connect(stream_c, 1, thresh, 0)
        system.connect(thresh, 1, worker, 0)
        system.connect(stream_p, 1, worker, 1)
        system.add_write_port(worker, 1, worker, 2)
        system.memory.preload(control, base=0)
        system.memory.preload(payload, base=n)
        return system

    def check(self, system: System, scale: int, seed: int) -> None:
        control, payload = _inputs(scale, seed)
        n = len(control)
        expected = [p for c, p in zip(control, payload) if c > _THRESHOLD]
        count = system.memory.load(3 * n)
        if count != len(expected):
            raise SimulationError(
                f"filter: kept {count} words, expected {len(expected)}"
            )
        got = system.memory.dump(2 * n, len(expected)) if expected else []
        if got != expected:
            raise SimulationError("filter: saved payload mismatch")
