"""Workload framework.

Each of the ten Table 3 microbenchmarks is a :class:`Workload`: it builds
a :class:`~repro.fabric.system.System` of one or more programmed PEs plus
memory ports, declares which PE is the designated *worker* (the paper
reads performance counters from the worker only), and checks the final
memory/architectural state against a pure-Python golden model.

Workloads are microarchitecture-agnostic: ``build`` receives a PE factory
so the same program runs on the functional model or on any of the eight
pipeline configurations.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable

from repro.arch.functional import FunctionalPE
from repro.fabric.system import System
from repro.params import ArchParams, DEFAULT_PARAMS

PEFactory = Callable[[str], object]
"""Makes a PE given its name; defaults to :class:`FunctionalPE`."""


@dataclass
class WorkloadRun:
    """Outcome of one workload execution."""

    name: str
    cycles: int
    worker_name: str
    worker_counters: object
    system: System

    @property
    def worker_cpi(self) -> float:
        return self.worker_counters.cpi


class Workload(abc.ABC):
    """One Table 3 microbenchmark."""

    name: str = ""
    description: str = ""
    pe_count: int = 1
    worker_name: str = "worker"
    default_scale: int = 64   # elements processed; tests shrink, benches grow

    def __init__(self, params: ArchParams = DEFAULT_PARAMS) -> None:
        self.params = params

    @abc.abstractmethod
    def build(self, make_pe: PEFactory, scale: int, seed: int) -> System:
        """Construct and program the system (PEs, wiring, memory preload)."""

    @abc.abstractmethod
    def check(self, system: System, scale: int, seed: int) -> None:
        """Validate final state against the golden model (raises on mismatch)."""

    # ------------------------------------------------------------------

    def default_pe_factory(self) -> PEFactory:
        return lambda name: FunctionalPE(self.params, name=name)

    def run(
        self,
        make_pe: PEFactory | None = None,
        scale: int | None = None,
        seed: int = 0,
        max_cycles: int = 4_000_000,
    ) -> WorkloadRun:
        """Build, execute to completion, validate, and report."""
        if make_pe is None:
            make_pe = self.default_pe_factory()
        if scale is None:
            scale = self.default_scale
        system = self.build(make_pe, scale, seed)
        cycles = system.run(max_cycles=max_cycles)
        self.check(system, scale, seed)
        worker = system.pe(self.worker_name)
        return WorkloadRun(
            name=self.name,
            cycles=cycles,
            worker_name=self.worker_name,
            worker_counters=worker.counters,
            system=system,
        )
