"""``mean`` — Table 3: a single PE reads an array of numbers from memory
and accumulates them before calculating their average and storing it
back to memory.

The ISA deliberately has no divide, so the array length is a power of
two and the average is an arithmetic shift — the idiom the paper's
benchmarks use for omitted operations."""

from __future__ import annotations

import random

from repro.errors import SimulationError
from repro.fabric.system import System
from repro.workloads.base import PEFactory, Workload
from repro.workloads.builder import ProgramBuilder

_ARRAY_BASE = 0


def _pow2_count(scale: int) -> int:
    count = 1
    while count * 2 <= max(2, scale):
        count *= 2
    return count


def _inputs(scale: int, seed: int) -> list[int]:
    rng = random.Random(seed ^ 0x6D65616E)
    return [rng.randrange(0, 1 << 16) for _ in range(_pow2_count(scale))]


def mean_program(params, count: int):
    """Serial load-accumulate loop, then a shift for the average."""
    log2 = count.bit_length() - 1
    result_addr = _ARRAY_BASE + count
    b = ProgramBuilder(params, start_state="cmp")
    b.add(state="cmp", op=f"ult %p1, %r0, ${_ARRAY_BASE + count}", next="act",
          comment="more elements?  r0 is the address")
    b.add(state="act", flags={1: True}, op="mov %o0.0, %r0", next="recv",
          comment="request element")
    b.add(state="recv", op="add %r1, %r1, %i0", deq=["%i0"], next="inc",
          comment="accumulate")
    b.add(state="inc", op="add %r0, %r0, $1", next="cmp")
    b.add(state="act", flags={1: False}, op=f"shr %r1, %r1, ${log2}",
          next="store_addr", comment="average = sum >> log2(n)")
    b.add(state="store_addr", op=f"mov %o1.0, ${result_addr}", next="store_data")
    b.add(state="store_data", op="mov %o2.0, %r1", next="done")
    b.add(state="done", op="halt")
    return b.program(name="mean")


class MeanWorkload(Workload):
    name = "mean"
    description = (
        "Single PE reads an array from memory, accumulates it, and stores "
        "the average back to memory."
    )
    pe_count = 1
    worker_name = "worker"
    default_scale = 256

    def build(self, make_pe: PEFactory, scale: int, seed: int) -> System:
        values = _inputs(scale, seed)
        system = System()
        worker = make_pe(self.worker_name)
        mean_program(self.params, len(values)).configure(worker)
        system.add_pe(worker)
        system.add_read_port(worker, request_out=0, response_in=0)
        system.add_write_port(worker, 1, worker, 2)
        system.memory.preload(values, base=_ARRAY_BASE)
        return system

    def check(self, system: System, scale: int, seed: int) -> None:
        values = _inputs(scale, seed)
        expected = sum(values) // len(values)
        got = system.memory.load(_ARRAY_BASE + len(values))
        if got != expected:
            raise SimulationError(
                f"mean of {len(values)} values: expected {expected}, stored {got}"
            )
