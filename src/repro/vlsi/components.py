"""Per-component area and power budgets (paper Figure 3 and Section 4).

The single-cycle PE synthesizes to 64,435 um^2 and 1.95 mW (1.0 V, SVT,
500 MHz target, bst activity).  Figure 3 and the Section 4 prose give
the component split:

* area   — ALU dominates, then instruction memory at 25%, queues 18%,
  register file, scheduler 6%, predicate unit; front end 32% vs back
  end 46% with queues neutral at 18%.
* power  — instruction memory 41% (clock tree of the always-exposed
  trigger storage), queues 22%, scheduler 5%; front end 48% vs back
  end 23%.

Section 4 also quantifies the alternative instruction-storage media
(CACTI analysis) and Section 5.4 the optional-feature overheads, all
encoded here as the published absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

TDX_AREA_UM2 = 64_435.0
TDX_POWER_W = 1.95e-3
ANCHOR_VDD = 1.0
ANCHOR_FREQ_HZ = 500e6


@dataclass(frozen=True)
class ComponentBudget:
    """One PE component's share of the single-cycle budget."""

    name: str
    area_fraction: float
    power_fraction: float
    front_end: bool | None   # None = neutral (queues / misc)

    @property
    def area_um2(self) -> float:
        return self.area_fraction * TDX_AREA_UM2

    @property
    def power_w(self) -> float:
        return self.power_fraction * TDX_POWER_W


COMPONENTS: tuple[ComponentBudget, ...] = (
    ComponentBudget("alu", 0.35, 0.15, front_end=False),
    ComponentBudget("instruction_memory", 0.25, 0.41, front_end=True),
    ComponentBudget("queues", 0.18, 0.22, front_end=None),
    ComponentBudget("register_file", 0.11, 0.08, front_end=False),
    ComponentBudget("scheduler", 0.06, 0.05, front_end=True),
    ComponentBudget("predicate_unit", 0.015, 0.02, front_end=True),
    ComponentBudget("other", 0.035, 0.07, front_end=None),
)


def component(name: str) -> ComponentBudget:
    for budget in COMPONENTS:
        if budget.name == name:
            return budget
    raise KeyError(f"unknown component {name!r}")


def front_back_split() -> dict[str, float]:
    """The Section 4 front/back-end split (queues and misc neutral)."""
    split = {"front_area": 0.0, "back_area": 0.0, "front_power": 0.0, "back_power": 0.0}
    for budget in COMPONENTS:
        if budget.front_end is True:
            split["front_area"] += budget.area_fraction
            split["front_power"] += budget.power_fraction
        elif budget.front_end is False:
            split["back_area"] += budget.area_fraction
            split["back_power"] += budget.power_fraction
    return split


# ----------------------------------------------------------------------
# Section 4: instruction storage medium alternatives (CACTI analysis).
# Relative to the register-based instruction memory actually used.
# ----------------------------------------------------------------------

INSTRUCTION_STORAGE = {
    # medium: (area rel. to registers, power rel. to registers)
    "register": (1.00, 1.00),
    # CACTI-modeled latch-only store: sized so the mixed medium lands 9%
    # smaller and 19% lower power than it, per Section 4.
    "latch": (0.84 / 0.91, 0.76 / 0.81),
    # Mixed register/latch + SRAM for datapath-only fields: -16% area and
    # -24% power vs registers (= -9% / -19% vs latch-only, per Section 4).
    "mixed_sram": (0.84, 0.76),
    # Synthesis-observed latch instruction memory: ~30% smaller and 75%
    # lower power than registers thanks to the removed clock tree, but it
    # lengthened the trigger resolver's critical path and failed gate-level
    # validation — why the paper (and this model) stay with registers.
    "latch_synthesis": (0.692, 0.25),
}


# ----------------------------------------------------------------------
# Section 5.4: optional-feature overheads, anchored at the four-stage
# T|D|X1|X2 synthesized at 500 MHz, 1.0 V, SVT: 63,991.4 um^2, 2.852 mW.
# ----------------------------------------------------------------------

PIPE4_AREA_UM2 = 63_991.4
PIPE4_POWER_W = 2.852e-3
PIPE_REGISTER_POWER_W = 0.301e-3   # per pipeline register at 500 MHz, 1.0 V

FEATURE_AREA_UM2 = {
    # (predicate_prediction, effective_queue_status) -> area adder
    (False, False): 0.0,
    (True, False): 64_278.4 - PIPE4_AREA_UM2,    # +0.5%
    (False, True): 64_131.8 - PIPE4_AREA_UM2,    # +0.2%
    (True, True): 64_895.4 - PIPE4_AREA_UM2,     # +1.4% combined
}

FEATURE_POWER_W = {
    (False, False): 0.0,
    (True, False): 3.048e-3 - PIPE4_POWER_W,     # +7%
    (False, True): 0.0,                          # no measurable difference
    (True, True): 3.077e-3 - PIPE4_POWER_W,      # +8% combined
}

# The reject-buffer alternative: padding every output queue with one
# entry per pipeline stage instead of accounting (anchored at depth 4).
PADDED_AREA_UM2_AT_DEPTH4 = 72_439.4 - PIPE4_AREA_UM2    # +13%
PADDED_POWER_W_AT_DEPTH4 = 3.194e-3 - PIPE4_POWER_W      # +12%

# Timing: the speculative predicate unit lengthens the trigger stage.
TRIGGER_FO4 = 53.6
TRIGGER_FO4_WITH_PREDICTION = 64.3
