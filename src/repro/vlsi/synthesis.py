"""Synthesis model: (microarchitecture, VT, VDD, f_target) -> area/power/timing.

This stands in for the paper's Design Compiler runs.  Stage delays are
budgeted in FO4 (Section 5.4 reports the trigger stage at 53.6 FO4 —
64.3 with speculation — and observes balanced stages in the 50-60 FO4
range); the critical path of a partition is the largest per-stage sum.
f_max follows from the technology's FO4(VDD, VT).

Cell sizing tracks the target frequency: designs synthesized at relaxed
targets use small cells (~0.72x switched capacitance), the 500 MHz
anchor point sizes at 1.0x, and pushing toward timing closure inflates
the design quadratically ("the push for timing will inflate the
resulting design") up to a cap.

Power = C_eff * VDD^2 * f * sizing + leakage(VT, VDD), with C_eff built
from the single-cycle anchor (1.95 mW at 1.0 V / 500 MHz), 0.602 pF per
pipeline register (the paper's +0.301 mW at 500 MHz / 1.0 V), and the
published adders for +P / +Q / output-queue padding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SynthesisError
from repro.pipeline.config import PipelineConfig, QueuePolicy
from repro.vlsi import components as comp
from repro.vlsi.technology import TECH65, Technology, VtFlavor

# FO4 budgets per conceptual phase.  T is measured (Section 5.4); the
# rest are set so stage balance lands in the paper's 50-60 FO4 window
# and the deepest pipeline's critical path is the trigger stage.
PHASE_FO4 = {"T": 53.6, "D": 16.0, "X": 40.0, "X1": 22.0, "X2": 22.0}
PREDICTION_TRIGGER_EXTRA_FO4 = (
    comp.TRIGGER_FO4_WITH_PREDICTION - comp.TRIGGER_FO4
)  # 10.7 FO4 of speculative predicate unit in the trigger stage

# Effective switched capacitance (farads), calibrated per module docstring.
_LEAK_SVT_1V = 0.08e-3
C_CORE = (comp.TDX_POWER_W - _LEAK_SVT_1V) / (
    comp.ANCHOR_VDD ** 2 * comp.ANCHOR_FREQ_HZ
)  # ~3.74 pF for the single-cycle core
C_PIPE_REGISTER = comp.PIPE_REGISTER_POWER_W / (
    comp.ANCHOR_VDD ** 2 * comp.ANCHOR_FREQ_HZ
)  # ~0.602 pF per pipeline register
_C_FEATURE = {
    key: power / (comp.ANCHOR_VDD ** 2 * comp.ANCHOR_FREQ_HZ)
    for key, power in comp.FEATURE_POWER_W.items()
}
C_PADDING_AT_DEPTH4 = comp.PADDED_POWER_W_AT_DEPTH4 / (
    comp.ANCHOR_VDD ** 2 * comp.ANCHOR_FREQ_HZ
)

# Sizing-vs-target-frequency model (dimensionless multiplier on C_eff).
_SIZE_FLOOR = 0.72
_SIZE_ANCHOR_HZ = 500e6
_SIZE_GROWTH = 1.66
_SIZE_GROWTH_SPAN_HZ = 657e6
_SIZE_CAP = 2.2
_AREA_GROWTH_CAP = 1.45   # Pareto designs show little area variance (Fig. 8)

# Area sizing pressure: relaxed designs sit at the pipelined anchor; the
# under-pipelined single-cycle PE at a 500 MHz target sizes up ~0.7%.
_AREA_PRESSURE = 0.016


def sizing_factor(f_target: float) -> float:
    """Switched-capacitance multiplier for a synthesis target frequency."""
    if f_target <= _SIZE_ANCHOR_HZ:
        return _SIZE_FLOOR + (1.0 - _SIZE_FLOOR) * (f_target / _SIZE_ANCHOR_HZ)
    grown = 1.0 + _SIZE_GROWTH * ((f_target - _SIZE_ANCHOR_HZ) / _SIZE_GROWTH_SPAN_HZ) ** 2
    return min(grown, _SIZE_CAP)


def stage_fo4(config: PipelineConfig) -> list[float]:
    """Per-stage delay budgets in FO4 for one partition."""
    budgets = []
    for stage in config.stages:
        total = sum(PHASE_FO4[phase] for phase in stage)
        if "T" in stage and config.predicate_prediction:
            total += PREDICTION_TRIGGER_EXTRA_FO4
        budgets.append(total)
    return budgets


def critical_path_fo4(config: PipelineConfig) -> float:
    """The longest stage, in FO4 — what sets the clock."""
    return max(stage_fo4(config))


def fmax(
    config: PipelineConfig,
    vdd: float,
    vt: VtFlavor,
    tech: Technology = TECH65,
) -> float:
    """Maximum clock frequency in Hz at a supply/flavor point."""
    return 1.0 / (critical_path_fo4(config) * tech.fo4_delay(vdd, vt))


def effective_capacitance(config: PipelineConfig) -> float:
    """Design C_eff in farads, before sizing."""
    c = C_CORE + (config.depth - 1) * C_PIPE_REGISTER
    c += _C_FEATURE[(config.predicate_prediction, config.effective_queue_status)]
    if config.queue_policy is QueuePolicy.PADDED:
        c += C_PADDING_AT_DEPTH4 * (config.depth / 4.0)
    return c


def base_area_um2(config: PipelineConfig) -> float:
    """Design area in um^2, before sizing pressure."""
    # Depth 1 gets the relaxed-sizing single-cycle core; deeper designs
    # share one figure — pipeline registers are in the noise.
    area = (comp.TDX_AREA_UM2 - 444.0 if config.depth == 1
            else comp.PIPE4_AREA_UM2)
    area += comp.FEATURE_AREA_UM2[
        (config.predicate_prediction, config.effective_queue_status)
    ]
    if config.queue_policy is QueuePolicy.PADDED:
        area += comp.PADDED_AREA_UM2_AT_DEPTH4 * (config.depth / 4.0)
    return area


@dataclass(frozen=True)
class SynthesisResult:
    """One closed design point."""

    config_name: str
    vt: VtFlavor
    vdd: float
    f_target_hz: float
    fmax_hz: float
    area_um2: float
    power_w: float
    dynamic_power_w: float
    leakage_power_w: float
    critical_fo4: float

    @property
    def area_mm2(self) -> float:
        return self.area_um2 * 1e-6

    @property
    def power_density_mw_per_mm2(self) -> float:
        return (self.power_w * 1e3) / self.area_mm2


def synthesize(
    config: PipelineConfig,
    vdd: float,
    vt: VtFlavor,
    f_target_hz: float,
    tech: Technology = TECH65,
) -> SynthesisResult:
    """Close one design point, or raise :class:`SynthesisError`.

    Mirrors the paper's per-point flow: each (voltage, frequency) pair is
    its own synthesis run with cells sized for that exact target.
    """
    ceiling = fmax(config, vdd, vt, tech)
    if f_target_hz > ceiling:
        raise SynthesisError(
            f"{config.name} cannot close {f_target_hz / 1e6:.0f} MHz at "
            f"{vdd:.1f} V {vt.value.upper()} (f_max {ceiling / 1e6:.0f} MHz)"
        )
    if f_target_hz <= 0:
        raise SynthesisError("target frequency must be positive")
    size = sizing_factor(f_target_hz)
    dynamic = effective_capacitance(config) * size * vdd ** 2 * f_target_hz
    area_pressure = 1.0 + _AREA_PRESSURE * max(
        0.0, (f_target_hz / ceiling - 0.6) / 0.4
    ) ** 2
    area = base_area_um2(config) * area_pressure * min(
        _AREA_GROWTH_CAP, max(1.0, size / 1.4)
    )
    leakage = tech.leakage_power(vdd, vt, area / comp.PIPE4_AREA_UM2)
    return SynthesisResult(
        config_name=config.name,
        vt=vt,
        vdd=vdd,
        f_target_hz=f_target_hz,
        fmax_hz=ceiling,
        area_um2=area,
        power_w=dynamic + leakage,
        dynamic_power_w=dynamic,
        leakage_power_w=leakage,
        critical_fo4=critical_path_fo4(config),
    )
