"""Analytical VLSI power/timing/area model of the 65 nm flow (Section 3).

Replaces the paper's Synopsys Design Compiler + PrimeTime methodology
with a calibrated analytical model: alpha-power-law gate delay with a
near-threshold exponential blend, per-VT leakage, component capacitance
and area budgets tied to every absolute number the paper publishes.
"""

from repro.vlsi.technology import Technology, VtFlavor, TECH65
from repro.vlsi.components import ComponentBudget, COMPONENTS
from repro.vlsi.synthesis import SynthesisResult, synthesize, fmax, critical_path_fo4

__all__ = [
    "Technology",
    "VtFlavor",
    "TECH65",
    "ComponentBudget",
    "COMPONENTS",
    "SynthesisResult",
    "synthesize",
    "fmax",
    "critical_path_fo4",
]
