"""65 nm general-purpose CMOS technology model.

Gate delay follows the alpha-power law ``d = A * V / (V - Vth)^alpha``
with an exponential near-/sub-threshold blend once the overdrive drops
below :data:`_BLEND_OVERDRIVE` — the standard compact-model shape for
voltage-scaled standard cells.  Three threshold flavors (LVT/SVT/HVT)
trade leakage against speed, exactly the knob the paper sweeps.

Calibration anchors (all from the paper):

* FO4(1.0 V, SVT) = 15.76 ps — from the T|D|X1|X2 design closing at
  1184 MHz with a 53.6 FO4 trigger-stage critical path (Section 5.4).
* FO4(1.0 V, LVT) = 9.44 ps — from the Pareto-fastest TDX1|X2 +Q point
  running at 1157 MHz across a 91.6 FO4 single-stage path (Figure 8).
* FO4(0.4 V, HVT) ~ 1.5 ns — so the deepest pipeline at the slowest
  characterized target (10 MHz, subthreshold high-VT refinement of
  Section 3) lands near the paper's 309 ns/instruction delay extreme.
* Leakage at 1.0 V: LVT ~ 1.05 mW, SVT ~ 0.08 mW, HVT ~ 0.004 mW per
  PE — fitted to the 47.59 pJ/instruction energy maximum (a leaky
  low-VT design crawling at 100 MHz) and the 0.89 / 0.67 pJ low-power
  extremes (Figure 8).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.errors import ConfigError


class VtFlavor(enum.Enum):
    """Standard-cell threshold-voltage flavor."""

    LVT = "lvt"
    SVT = "svt"
    HVT = "hvt"


_ALPHA = 1.3                 # velocity-saturation exponent
_BLEND_OVERDRIVE = 0.20      # V; below this the exponential blend engages
_BLEND_SLOPE = 0.0718        # V per e-fold of near-threshold slowdown

_VTH = {
    VtFlavor.LVT: 0.22,
    VtFlavor.SVT: 0.32,
    VtFlavor.HVT: 0.45,
}

# Fitted so FO4(1.0, SVT) = 15.76 ps and FO4(1.0, LVT) = 9.44 ps.
_DELAY_A = {
    VtFlavor.LVT: 9.436e-12 * (1.0 - _VTH[VtFlavor.LVT]) ** _ALPHA,
    VtFlavor.SVT: 15.76e-12 * (1.0 - _VTH[VtFlavor.SVT]) ** _ALPHA,
    VtFlavor.HVT: 21.0e-12 * (1.0 - _VTH[VtFlavor.HVT]) ** _ALPHA,
}

# PE-level leakage at 1.0 V (W); scales with V and a DIBL-style exponent.
_LEAK_1V = {
    VtFlavor.LVT: 1.05e-3,
    VtFlavor.SVT: 0.08e-3,
    VtFlavor.HVT: 0.004e-3,
}
_LEAK_DIBL_DECADES_PER_VOLT = 1.5

_VDD_MIN = 0.35
_VDD_MAX = 1.1


@dataclass(frozen=True)
class Technology:
    """One characterized technology corner family."""

    name: str = "tsmc65gp-model"

    def vth(self, vt: VtFlavor) -> float:
        return _VTH[vt]

    def fo4_delay(self, vdd: float, vt: VtFlavor) -> float:
        """FO4 inverter delay in seconds at the given supply and flavor."""
        if not _VDD_MIN <= vdd <= _VDD_MAX:
            raise ConfigError(
                f"VDD {vdd} V outside the characterized range "
                f"[{_VDD_MIN}, {_VDD_MAX}]"
            )
        vth = _VTH[vt]
        overdrive = vdd - vth
        a = _DELAY_A[vt]
        if overdrive >= _BLEND_OVERDRIVE:
            return a * vdd / overdrive ** _ALPHA
        # Near/sub-threshold: alpha-power pinned at the blend point times
        # an exponential in the missing overdrive.
        base = a * vdd / _BLEND_OVERDRIVE ** _ALPHA
        return base * math.exp((_BLEND_OVERDRIVE - overdrive) / _BLEND_SLOPE)

    def leakage_power(self, vdd: float, vt: VtFlavor, area_scale: float = 1.0) -> float:
        """PE leakage power in watts (scaled by relative cell area)."""
        dibl = 10.0 ** (_LEAK_DIBL_DECADES_PER_VOLT * (vdd - 1.0))
        return _LEAK_1V[vt] * vdd * dibl * area_scale

    def supply_range(self) -> tuple[float, float]:
        return (_VDD_MIN, _VDD_MAX)


TECH65 = Technology()
"""The calibrated 65 nm model used throughout the evaluation."""
