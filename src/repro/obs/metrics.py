"""Metrics registry: cross-PE counter aggregation plus fabric metrics.

The paper reads performance counters from one designated worker PE
(Section 6.1); at fabric scale the interesting questions span PEs —
which queue is the bottleneck, which memory port saturates, where the
hazard cycles concentrate.  :class:`MetricsRegistry` aggregates every
PE's counter block, attributes hazards per PE (the Figure 5 CPI-stack
categories), and — when a :class:`~repro.obs.events.Telemetry` sink was
attached — folds in the sampled fabric metrics: per-queue occupancy
timelines and high-water marks, and memory-port/LSQ busy fractions.

Everything exports as plain JSON (:meth:`MetricsRegistry.to_json`), and
the snapshot embeds into resilience forensic reports so a hang
post-mortem carries the same numbers a healthy run would report.
"""

from __future__ import annotations

import json

#: PipelineCounters fields summed into the cross-PE aggregate.
_SUMMED_FIELDS = (
    "cycles",
    "issued",
    "retired",
    "quashed",
    "pred_hazard_cycles",
    "data_hazard_cycles",
    "forbidden_cycles",
    "none_triggered_cycles",
    "predicate_writes",
    "predictions",
    "mispredictions",
    "enqueues",
    "dequeues",
)

#: The Figure 5 hazard-attribution categories (cycle counts per PE).
_HAZARD_FIELDS = (
    "pred_hazard_cycles",
    "data_hazard_cycles",
    "forbidden_cycles",
    "none_triggered_cycles",
)


def _pe_metrics(pe) -> dict:
    """One PE's counter block, normalized across PE models."""
    counters = pe.counters
    entry: dict = {
        "model": "pipelined" if hasattr(pe, "stage_snapshot") else "functional",
        "halted": pe.halted,
        "counters": counters.as_dict(),
    }
    config = getattr(pe, "config", None)
    if config is not None:
        entry["config"] = config.name
    retired = counters.retired
    entry["cpi"] = (counters.cycles / retired) if retired else None
    stack = getattr(counters, "stack", None)
    if stack is not None:
        entry["cpi_stack"] = stack()
        entry["hazards"] = {
            field: getattr(counters, field) for field in _HAZARD_FIELDS
        }
    else:
        # The functional model has a single stall category.
        entry["hazards"] = {
            "none_triggered_cycles": counters.none_triggered,
        }
    return entry


class MetricsRegistry:
    """Aggregates a system's (or single PE's) observable state.

    Build one over a finished run::

        registry = MetricsRegistry.from_system(system, telemetry)
        print(registry.format())
        registry.to_json("metrics.json")

    ``telemetry`` is optional: without it the registry still aggregates
    counters across PEs; with it the snapshot gains queue-occupancy
    timelines, high-water marks, port busy fractions, and the event
    census.
    """

    def __init__(self) -> None:
        self.pes: dict[str, dict] = {}
        self.cycles = 0
        self.telemetry = None

    # ------------------------------------------------------------------

    @classmethod
    def from_system(cls, system, telemetry=None) -> "MetricsRegistry":
        registry = cls()
        registry.cycles = system.cycles
        registry.telemetry = (
            telemetry if telemetry is not None
            else getattr(system, "telemetry", None)
        )
        for pe in system.pes:
            registry.add_pe(pe)
        return registry

    @classmethod
    def from_pe(cls, pe, telemetry=None) -> "MetricsRegistry":
        registry = cls()
        registry.cycles = pe.counters.cycles
        registry.telemetry = (
            telemetry if telemetry is not None
            else getattr(pe, "telemetry", None)
        )
        registry.add_pe(pe)
        return registry

    def add_pe(self, pe) -> None:
        self.pes[pe.name] = _pe_metrics(pe)

    # ------------------------------------------------------------------

    def aggregate(self) -> dict:
        """Cross-PE sums plus the fleet-level CPI."""
        totals = {field: 0 for field in _SUMMED_FIELDS}
        for entry in self.pes.values():
            counters = entry["counters"]
            for field in _SUMMED_FIELDS:
                totals[field] += counters.get(field, 0)
            # Functional counters call their stall field none_triggered.
            totals["none_triggered_cycles"] += counters.get("none_triggered", 0)
        retired = totals["retired"]
        totals["cpi"] = (totals["cycles"] / retired) if retired else None
        return totals

    def hazard_breakdown(self) -> dict[str, dict]:
        """Per-PE hazard attribution (cycle counts by category)."""
        return {name: entry["hazards"] for name, entry in self.pes.items()}

    def queue_metrics(self) -> dict[str, dict]:
        """Per-queue occupancy timeline, high-water mark, and capacity.

        Requires an attached telemetry sink; empty otherwise.
        """
        telemetry = self.telemetry
        if telemetry is None:
            return {}
        metrics: dict[str, dict] = {}
        for name, timeline in telemetry.queue_timelines.items():
            metrics[name] = {
                "capacity": telemetry.queue_capacity[name],
                "high_water": telemetry.queue_high_water[name],
                "final_occupancy": timeline[-1][1] if timeline else 0,
                "timeline": [list(point) for point in timeline],
            }
        return metrics

    def port_metrics(self) -> dict[str, dict]:
        """Per memory-port/LSQ busy cycles and busy fraction."""
        telemetry = self.telemetry
        if telemetry is None or telemetry.sampled_cycles == 0:
            return {}
        sampled = telemetry.sampled_cycles
        return {
            name: {
                "busy_cycles": busy,
                "busy_fraction": busy / sampled,
            }
            for name, busy in telemetry.port_busy_cycles.items()
        }

    def jit_metrics(self) -> dict:
        """Process-wide jit backend health: compile-cache hit/miss and
        compile-seconds totals plus block-exit-reason counts.

        Imported lazily — the registry never drags the jit backend in
        for interpreter-only runs (and the counters are process-global,
        not per-run: they cover every PE compiled since the last
        ``repro.jit.clear_cache()``).
        """
        from repro.jit.cache import jit_metrics

        return jit_metrics()

    def snapshot(self) -> dict:
        """The complete metrics report as one JSON-ready dict."""
        report = {
            "cycles": self.cycles,
            "aggregate": self.aggregate(),
            "pes": self.pes,
            "hazards": self.hazard_breakdown(),
            "queues": self.queue_metrics(),
            "ports": self.port_metrics(),
            "jit": self.jit_metrics(),
        }
        if self.telemetry is not None:
            report["events"] = self.telemetry.summary()
        return report

    def to_json(self, path: str | None = None, indent: int = 1) -> str:
        """Serialize the snapshot; optionally also write it to ``path``."""
        text = json.dumps(self.snapshot(), indent=indent, sort_keys=True)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.write("\n")
        return text

    # ------------------------------------------------------------------

    def format(self) -> str:
        """Human-readable metrics report."""
        snapshot = self.snapshot()
        aggregate = snapshot["aggregate"]
        cpi = aggregate["cpi"]
        lines = [
            f"metrics at cycle {snapshot['cycles']}: "
            f"{aggregate['retired']} retired, "
            f"{aggregate['quashed']} quashed, "
            f"aggregate CPI {cpi:.3f}" if cpi is not None else
            f"metrics at cycle {snapshot['cycles']}: nothing retired",
        ]
        lines.append("  per-PE hazard attribution (cycles):")
        for name, entry in snapshot["pes"].items():
            hazards = entry["hazards"]
            pe_cpi = entry["cpi"]
            cpi_text = f"{pe_cpi:.3f}" if pe_cpi is not None else "inf"
            hazard_text = " ".join(
                f"{field.replace('_cycles', '')}={count}"
                for field, count in hazards.items()
            )
            lines.append(
                f"    {name}: retired={entry['counters']['retired']} "
                f"cpi={cpi_text} {hazard_text}"
            )
        if snapshot["queues"]:
            lines.append("  queue high-water marks:")
            for name, queue in sorted(snapshot["queues"].items()):
                lines.append(
                    f"    {name}: {queue['high_water']}/{queue['capacity']} "
                    f"(final {queue['final_occupancy']}, "
                    f"{len(queue['timeline'])} occupancy changes)"
                )
        if snapshot["ports"]:
            lines.append("  memory-port utilization:")
            for name, port in sorted(snapshot["ports"].items()):
                lines.append(
                    f"    {name}: busy {port['busy_cycles']} cycles "
                    f"({port['busy_fraction']:.1%})"
                )
        jit = snapshot.get("jit", {})
        if jit.get("hits") or jit.get("misses"):
            exits = " ".join(
                f"{reason}={count}"
                for reason, count in jit.get("block_exits", {}).items()
            )
            lines.append(
                f"  jit cache: {jit['hits']} hits / {jit['misses']} misses, "
                f"{jit['entries']} entries, "
                f"{jit['compile_seconds']:.3f}s compiling"
                + (f"; block exits: {exits}" if exits else "")
            )
        events = snapshot.get("events")
        if events:
            census = " ".join(
                f"{kind}={count}"
                for kind, count in events["event_counts"].items()
            )
            lines.append(f"  events: {census or '(none)'}")
            if events["truncated"]:
                lines.append(
                    f"  (!) event buffer truncated: "
                    f"{events['events_dropped']} events dropped"
                )
        return "\n".join(lines)
