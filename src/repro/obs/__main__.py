"""CLI: instrumented workload runs and the observability smoke gate.

Render the cross-PE metrics report for one workload::

    PYTHONPATH=src python -m repro.obs --workload stream \\
        --config "T|D|X1|X2 +P+Q"

Export artifacts::

    python -m repro.obs --workload merge --report metrics.json \\
        --trace trace.json          # Chrome/Perfetto trace-event JSON

``python -m repro.obs --smoke`` is the CI gate: it checks the
event/counter identities, validates the trace export as round-trip
JSON, and verifies that a telemetry-enabled run leaves simulation
results bit-identical to an uninstrumented one.  Exit status is
non-zero on any failure.

``python -m repro.obs --smoke-service`` is the service-observability
gate: it runs a full 48-config campaign through a ServiceObs-attached
:class:`repro.serve.service.CampaignService` (forked workers, sim
tracing on), verifies the results are byte-identical to an
uninstrumented service, audits the span tree, exports the unified
campaign Perfetto timeline (service spans + simulator stage tracks in
one file), validates the ``/metrics`` Prometheus exposition, and
exercises SSE + ``/metrics`` over the real stdlib HTTP frontend.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

from repro.dse.cpi import CpiTable
from repro.obs.campaign import CampaignProfile, format_campaign_report
from repro.obs.events import Telemetry
from repro.obs.runner import run_instrumented
from repro.obs.trace_export import export_chrome_trace
from repro.pipeline.config import all_configs, config_by_name
from repro.workloads.suite import WORKLOADS, run_workload


def _run(args) -> int:
    config = config_by_name(args.config) if args.config else None
    run = run_instrumented(
        args.workload,
        config=config,
        scale=args.scale,
        seed=args.seed,
        telemetry=Telemetry(limit=args.event_limit),
        check_counters=args.check_counters,
    )
    print(
        f"{args.workload} @ {args.config or 'functional'}: "
        f"{run.cycles} cycles, result validated"
    )
    print(run.metrics.format())
    if args.report:
        if args.report == "-":
            print(run.metrics.to_json())
        else:
            run.metrics.to_json(args.report)
            print(f"wrote metrics report to {args.report}")
    if args.trace:
        trace = export_chrome_trace(run.telemetry, args.trace, run.system)
        print(
            f"wrote {len(trace['traceEvents'])} trace events to "
            f"{args.trace} (open in Perfetto / chrome://tracing)"
        )
    return 0


def _fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def _smoke(args) -> int:
    """The CI gate; every check prints what it verified."""
    scale = args.scale or int(os.environ.get("REPRO_BENCH_SCALE", "8"))
    config = config_by_name(args.config or "T|D|X1|X2 +P+Q")
    workloads = args.workloads or ["stream", "string_search"]
    print(
        f"observability gate: scale={scale} seed={args.seed} "
        f"config={config.name!r} workloads={workloads}"
    )

    for workload in workloads:
        print(f"\n[{workload}] instrumented run...")
        run = run_instrumented(
            workload, config=config, scale=scale, seed=args.seed,
            check_counters=True,
        )
        telemetry = run.telemetry

        # 1. Metrics JSON round-trips and is self-consistent.
        decoded = json.loads(run.metrics.to_json())
        if decoded["aggregate"]["retired"] <= 0:
            return _fail(f"{workload}: nothing retired in metrics snapshot")
        if not decoded["queues"]:
            return _fail(f"{workload}: no queue timelines sampled")
        per_pe_retired = sum(
            entry["counters"]["retired"] for entry in decoded["pes"].values()
        )
        if per_pe_retired != decoded["aggregate"]["retired"]:
            return _fail(f"{workload}: aggregate retired != per-PE sum")

        # 2. Event/counter identities.
        issued = sum(
            pe.counters.issued for pe in run.system.pes
            if hasattr(pe.counters, "issued")
        )
        retired = sum(pe.counters.retired for pe in run.system.pes)
        counts = telemetry.event_counts
        if counts.get("issue", 0) != issued:
            return _fail(
                f"{workload}: {counts.get('issue', 0)} issue events vs "
                f"{issued} issued counted"
            )
        if counts.get("retire", 0) != retired:
            return _fail(
                f"{workload}: {counts.get('retire', 0)} retire events vs "
                f"{retired} retired counted"
            )
        print(
            f"  metrics ok: {retired} retired, "
            f"{len(decoded['queues'])} queues, "
            f"{len(counts)} event kinds, identities hold"
        )

        # 3. Trace export round-trips as JSON with real content.
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "trace.json")
            export_chrome_trace(telemetry, path, run.system)
            with open(path, encoding="utf-8") as handle:
                trace = json.load(handle)
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        counters_events = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        if not spans or not counters_events:
            return _fail(
                f"{workload}: trace export missing spans or counters "
                f"({len(spans)} X, {len(counters_events)} C)"
            )
        print(
            f"  trace ok: {len(spans)} stage spans, "
            f"{len(counters_events)} queue counter samples"
        )

        # 4. Telemetry-disabled runs are bit-identical.
        def factory(name, config=config):
            from repro.pipeline.core import PipelinedPE

            return PipelinedPE(config, name=name)

        bare = run_workload(
            workload, make_pe=factory, scale=scale, seed=args.seed
        )
        if bare.cycles != run.cycles:
            return _fail(
                f"{workload}: instrumented run took {run.cycles} cycles, "
                f"bare run {bare.cycles}"
            )
        if bare.worker_counters.as_dict() != run.worker_counters.as_dict():
            return _fail(f"{workload}: worker counters diverge under telemetry")
        print(f"  bit-identical: {bare.cycles} cycles with telemetry on or off")

    # 5. Campaign profiling on a tiny CPI campaign.
    print("\n[campaign] profiled CPI campaign (2 configs)...")
    profile = CampaignProfile(label="smoke-cpi")
    table = CpiTable(scale=min(scale, 8))
    table.populate(all_configs()[:2], workers=1, profile=profile)
    report = profile.report()
    if report["completed_tasks"] != 2:
        return _fail(
            f"campaign profile recorded {report['completed_tasks']} tasks, "
            "expected 2"
        )
    if report["worker_utilization"] is None:
        return _fail("campaign profile has no utilization")
    print(format_campaign_report(report))

    print(f"\nobservability gate passed ({len(workloads)} workloads)")
    return 0


def _smoke_service(args) -> int:
    """The service-observability CI gate (spans, /metrics, SSE, export)."""
    import io
    import re
    import threading

    from repro.obs.svc import JsonLogger, ServiceObs
    from repro.obs.trace_export import export_campaign_trace
    from repro.serve import CampaignService, HttpClient
    from repro.serve.http import start_http_server
    from repro.serve.store import canonical_json

    scale = args.scale or int(os.environ.get("REPRO_BENCH_SCALE", "6"))
    # The full 48-config design matrix (32 + the padded-queue variants).
    configs = [config.name for config in all_configs(include_padded=True)]
    payloads = [
        {"workload": "gcd", "config": name, "scale": scale, "seed": args.seed}
        for name in configs
    ]
    print(
        f"service observability gate: {len(payloads)} configs x gcd "
        f"@ scale {scale}, seed {args.seed}"
    )

    # 1. Bare (uninstrumented) campaign: the byte-identity reference.
    print("\n[reference] uninstrumented service campaign...")
    with CampaignService(None, workers=2) as service:
        bare = service.run_job("workload-run", payloads, timeout=600.0)
    print(f"  {len(bare)} results")

    # 2. Traced campaign: spans + metrics + logs + sim stage tracks.
    print("[traced] ServiceObs(sim_trace=True) campaign, forked workers...")
    log_sink = io.StringIO()
    obs = ServiceObs(sim_trace=True, logger=JsonLogger(log_sink))
    with CampaignService(None, workers=2, obs=obs) as service:
        traced = service.run_job("workload-run", payloads, timeout=600.0)
        metrics_text = service.metrics_text()
        stats = service.stats()

    if canonical_json(traced) != canonical_json(bare):
        return _fail("traced campaign results diverge from uninstrumented")
    print(f"  byte-identical to the reference ({len(traced)} results)")

    # 3. Span-tree audit: lifecycle coverage and structural nesting.
    summary = obs.tracer.summary()
    required = ("job", "admission", "task", "queue_wait", "execute",
                "store_commit")
    missing = [name for name in required if not summary.get(name)]
    if missing:
        return _fail(f"span tree missing {missing}; saw {summary}")
    problems = obs.tracer.check_nesting()
    if problems:
        head = "; ".join(problems[:5])
        return _fail(f"{len(problems)} span-nesting problems: {head}")
    worker_tracks = {
        span.track for span in obs.tracer.spans if span.name == "execute"
    }
    if not worker_tracks:
        return _fail("no execute spans on worker tracks")
    if not obs.sim_traces:
        return _fail("no simulator stage traces shipped back from workers")
    log_lines = log_sink.getvalue().splitlines()
    for line in log_lines:
        json.loads(line)   # every log record is valid JSON
    print(
        f"  spans ok: {sum(summary.values())} spans "
        f"({', '.join(f'{k}={v}' for k, v in sorted(summary.items()))}), "
        f"nesting clean, {len(worker_tracks)} worker tracks, "
        f"{len(obs.sim_traces)} sim traces, {len(log_lines)} log records"
    )

    # 4. Unified Perfetto export: service spans above sim stage tracks.
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "campaign.json")
        export_campaign_trace(obs, path)
        with open(path, encoding="utf-8") as handle:
            trace = json.load(handle)
    service_events = [
        e for e in trace["traceEvents"]
        if e["ph"] == "X" and e["cat"] in ("service", "store")
    ]
    pipeline_events = [
        e for e in trace["traceEvents"]
        if e["ph"] == "X" and e["cat"] == "pipeline"
    ]
    if not service_events or not pipeline_events:
        return _fail(
            f"unified trace missing a layer ({len(service_events)} service, "
            f"{len(pipeline_events)} pipeline events)"
        )
    print(
        f"  unified timeline ok: {len(service_events)} service spans + "
        f"{len(pipeline_events)} sim stage events in one file"
    )

    # 5. /metrics exposition: parseable lines, required families present.
    sample = re.compile(
        r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? "
        r"(-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|NaN)$"
    )
    for line in metrics_text.splitlines():
        if line.startswith("#") or not line:
            continue
        if not sample.match(line):
            return _fail(f"unparseable exposition line: {line!r}")
    for family in ("repro_serve_tasks_done_total", "repro_serve_store_rows",
                   "repro_jit_cache_hits_total",
                   "repro_serve_queue_wait_seconds_bucket",
                   "repro_serve_task_seconds_bucket"):
        if family not in metrics_text:
            return _fail(f"/metrics missing family {family}")
    if stats["store"]["executions_total"] != stats["store"]["rows"]:
        return _fail("store executions audit: executions_total != rows")
    print(
        f"  /metrics ok: {len(metrics_text.splitlines())} lines, "
        f"required families present, store audit clean"
    )

    # 6. The same surfaces over the real stdlib HTTP frontend: SSE + text.
    print("[http] SSE progress stream + /metrics over the wire...")
    http_obs = ServiceObs(sim_trace=False)
    http_service = CampaignService(None, workers=1, obs=http_obs)
    bound = {}
    ready = threading.Event()
    stop = threading.Event()

    def run_loop():
        async def main():
            import asyncio

            server = await start_http_server(http_service, port=0)
            bound["port"] = server.sockets[0].getsockname()[1]
            pump = asyncio.ensure_future(http_service.drive())
            ready.set()
            try:
                async with server:
                    while not stop.is_set():
                        await asyncio.sleep(0.01)
            finally:
                pump.cancel()

        import asyncio

        asyncio.run(main())

    thread = threading.Thread(target=run_loop, daemon=True)
    thread.start()
    if not ready.wait(30.0):
        return _fail("HTTP frontend did not come up")
    try:
        client = HttpClient(f"http://127.0.0.1:{bound['port']}")
        job_id = client.submit("workload-run", payloads[:4])
        frames = list(client.events(job_id, timeout=300.0))
        if not frames or frames[0]["event"] != "snapshot":
            return _fail(f"SSE stream did not open with a snapshot: "
                         f"{frames[:1]}")
        if frames[-1]["event"] != "done":
            return _fail(f"SSE stream did not close on a terminal frame: "
                         f"{frames[-1]}")
        wire_text = client.metrics_text()
        if "repro_serve_tasks_done_total" not in wire_text:
            return _fail("/metrics over HTTP missing counter families")
    finally:
        stop.set()
        thread.join(timeout=10.0)
        http_service.close()
    print(f"  http ok: {len(frames)} SSE frames "
          f"(snapshot -> ... -> {frames[-1]['event']}), /metrics served")

    print("\nservice observability gate passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="instrumented workload runs, metrics reports, and "
                    "Chrome/Perfetto trace export",
    )
    parser.add_argument(
        "--workload", default="stream", choices=WORKLOADS(),
        help="workload to run (default: stream)",
    )
    parser.add_argument(
        "--config", default=None,
        help='pipeline config name, e.g. "T|D|X1|X2 +P+Q" '
             "(default: functional model; smoke default: T|D|X1|X2 +P+Q)",
    )
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the metrics JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a Chrome trace-event / Perfetto JSON file",
    )
    parser.add_argument(
        "--check-counters", action="store_true",
        help="verify per-PE cycle accounting after the run",
    )
    parser.add_argument(
        "--event-limit", type=int, default=1 << 20,
        help="telemetry event buffer bound",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the CI smoke gate (identities, trace round-trip, "
             "bit-identical disabled path, campaign profiling)",
    )
    parser.add_argument(
        "--workloads", nargs="+", default=None,
        help="smoke-gate workload list (default: stream string_search)",
    )
    parser.add_argument(
        "--smoke-service", action="store_true",
        help="run the service-observability gate (span tree, unified "
             "campaign trace, /metrics exposition, SSE over HTTP, "
             "byte-identical traced campaign)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return _smoke(args)
    if args.smoke_service:
        return _smoke_service(args)
    return _run(args)


if __name__ == "__main__":
    sys.exit(main())
