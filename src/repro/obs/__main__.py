"""CLI: instrumented workload runs and the observability smoke gate.

Render the cross-PE metrics report for one workload::

    PYTHONPATH=src python -m repro.obs --workload stream \\
        --config "T|D|X1|X2 +P+Q"

Export artifacts::

    python -m repro.obs --workload merge --report metrics.json \\
        --trace trace.json          # Chrome/Perfetto trace-event JSON

``python -m repro.obs --smoke`` is the CI gate: it checks the
event/counter identities, validates the trace export as round-trip
JSON, and verifies that a telemetry-enabled run leaves simulation
results bit-identical to an uninstrumented one.  Exit status is
non-zero on any failure.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

from repro.dse.cpi import CpiTable
from repro.obs.campaign import CampaignProfile, format_campaign_report
from repro.obs.events import Telemetry
from repro.obs.runner import run_instrumented
from repro.obs.trace_export import export_chrome_trace
from repro.pipeline.config import all_configs, config_by_name
from repro.workloads.suite import WORKLOADS, run_workload


def _run(args) -> int:
    config = config_by_name(args.config) if args.config else None
    run = run_instrumented(
        args.workload,
        config=config,
        scale=args.scale,
        seed=args.seed,
        telemetry=Telemetry(limit=args.event_limit),
        check_counters=args.check_counters,
    )
    print(
        f"{args.workload} @ {args.config or 'functional'}: "
        f"{run.cycles} cycles, result validated"
    )
    print(run.metrics.format())
    if args.report:
        if args.report == "-":
            print(run.metrics.to_json())
        else:
            run.metrics.to_json(args.report)
            print(f"wrote metrics report to {args.report}")
    if args.trace:
        trace = export_chrome_trace(run.telemetry, args.trace, run.system)
        print(
            f"wrote {len(trace['traceEvents'])} trace events to "
            f"{args.trace} (open in Perfetto / chrome://tracing)"
        )
    return 0


def _fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def _smoke(args) -> int:
    """The CI gate; every check prints what it verified."""
    scale = args.scale or int(os.environ.get("REPRO_BENCH_SCALE", "8"))
    config = config_by_name(args.config or "T|D|X1|X2 +P+Q")
    workloads = args.workloads or ["stream", "string_search"]
    print(
        f"observability gate: scale={scale} seed={args.seed} "
        f"config={config.name!r} workloads={workloads}"
    )

    for workload in workloads:
        print(f"\n[{workload}] instrumented run...")
        run = run_instrumented(
            workload, config=config, scale=scale, seed=args.seed,
            check_counters=True,
        )
        telemetry = run.telemetry

        # 1. Metrics JSON round-trips and is self-consistent.
        decoded = json.loads(run.metrics.to_json())
        if decoded["aggregate"]["retired"] <= 0:
            return _fail(f"{workload}: nothing retired in metrics snapshot")
        if not decoded["queues"]:
            return _fail(f"{workload}: no queue timelines sampled")
        per_pe_retired = sum(
            entry["counters"]["retired"] for entry in decoded["pes"].values()
        )
        if per_pe_retired != decoded["aggregate"]["retired"]:
            return _fail(f"{workload}: aggregate retired != per-PE sum")

        # 2. Event/counter identities.
        issued = sum(
            pe.counters.issued for pe in run.system.pes
            if hasattr(pe.counters, "issued")
        )
        retired = sum(pe.counters.retired for pe in run.system.pes)
        counts = telemetry.event_counts
        if counts.get("issue", 0) != issued:
            return _fail(
                f"{workload}: {counts.get('issue', 0)} issue events vs "
                f"{issued} issued counted"
            )
        if counts.get("retire", 0) != retired:
            return _fail(
                f"{workload}: {counts.get('retire', 0)} retire events vs "
                f"{retired} retired counted"
            )
        print(
            f"  metrics ok: {retired} retired, "
            f"{len(decoded['queues'])} queues, "
            f"{len(counts)} event kinds, identities hold"
        )

        # 3. Trace export round-trips as JSON with real content.
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "trace.json")
            export_chrome_trace(telemetry, path, run.system)
            with open(path, encoding="utf-8") as handle:
                trace = json.load(handle)
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        counters_events = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        if not spans or not counters_events:
            return _fail(
                f"{workload}: trace export missing spans or counters "
                f"({len(spans)} X, {len(counters_events)} C)"
            )
        print(
            f"  trace ok: {len(spans)} stage spans, "
            f"{len(counters_events)} queue counter samples"
        )

        # 4. Telemetry-disabled runs are bit-identical.
        def factory(name, config=config):
            from repro.pipeline.core import PipelinedPE

            return PipelinedPE(config, name=name)

        bare = run_workload(
            workload, make_pe=factory, scale=scale, seed=args.seed
        )
        if bare.cycles != run.cycles:
            return _fail(
                f"{workload}: instrumented run took {run.cycles} cycles, "
                f"bare run {bare.cycles}"
            )
        if bare.worker_counters.as_dict() != run.worker_counters.as_dict():
            return _fail(f"{workload}: worker counters diverge under telemetry")
        print(f"  bit-identical: {bare.cycles} cycles with telemetry on or off")

    # 5. Campaign profiling on a tiny CPI campaign.
    print("\n[campaign] profiled CPI campaign (2 configs)...")
    profile = CampaignProfile(label="smoke-cpi")
    table = CpiTable(scale=min(scale, 8))
    table.populate(all_configs()[:2], workers=1, profile=profile)
    report = profile.report()
    if report["completed_tasks"] != 2:
        return _fail(
            f"campaign profile recorded {report['completed_tasks']} tasks, "
            "expected 2"
        )
    if report["worker_utilization"] is None:
        return _fail("campaign profile has no utilization")
    print(format_campaign_report(report))

    print(f"\nobservability gate passed ({len(workloads)} workloads)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="instrumented workload runs, metrics reports, and "
                    "Chrome/Perfetto trace export",
    )
    parser.add_argument(
        "--workload", default="stream", choices=WORKLOADS(),
        help="workload to run (default: stream)",
    )
    parser.add_argument(
        "--config", default=None,
        help='pipeline config name, e.g. "T|D|X1|X2 +P+Q" '
             "(default: functional model; smoke default: T|D|X1|X2 +P+Q)",
    )
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the metrics JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a Chrome trace-event / Perfetto JSON file",
    )
    parser.add_argument(
        "--check-counters", action="store_true",
        help="verify per-PE cycle accounting after the run",
    )
    parser.add_argument(
        "--event-limit", type=int, default=1 << 20,
        help="telemetry event buffer bound",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the CI smoke gate (identities, trace round-trip, "
             "bit-identical disabled path, campaign profiling)",
    )
    parser.add_argument(
        "--workloads", nargs="+", default=None,
        help="smoke-gate workload list (default: stream string_search)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return _smoke(args)
    return _run(args)


if __name__ == "__main__":
    sys.exit(main())
