"""One-call instrumented workload execution.

Glue between the workload registry and the observability layer: build a
workload's system, attach a :class:`~repro.obs.events.Telemetry` sink
*after* wiring (the fabric replaces queue objects while wiring, so
attach order matters), run to completion, validate against the golden
model, and hand back everything the reporting layers need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.events import Telemetry
from repro.obs.metrics import MetricsRegistry
from repro.params import ArchParams, DEFAULT_PARAMS
from repro.pipeline.config import PipelineConfig
from repro.pipeline.core import PipelinedPE
from repro.workloads.suite import get_workload


@dataclass
class InstrumentedRun:
    """Outcome of one telemetry-enabled workload execution."""

    workload: str
    cycles: int
    system: object
    telemetry: Telemetry
    metrics: MetricsRegistry

    @property
    def worker_counters(self):
        return self.system.pe("worker").counters


def run_instrumented(
    workload: str,
    config: PipelineConfig | None = None,
    scale: int | None = None,
    seed: int = 0,
    params: ArchParams = DEFAULT_PARAMS,
    telemetry: Telemetry | None = None,
    check_counters: bool = False,
    max_cycles: int = 4_000_000,
) -> InstrumentedRun:
    """Run one workload with telemetry attached; validates the result.

    ``config`` selects the pipelined microarchitecture for every PE;
    ``None`` runs the functional model.  A caller-supplied ``telemetry``
    sink is used as-is (e.g. to set limits or sampling interval).
    """
    instance = get_workload(workload, params)
    if config is None:
        make_pe = instance.default_pe_factory()
    else:
        def make_pe(name: str) -> PipelinedPE:
            return PipelinedPE(config, params, name=name)

    if scale is None:
        scale = instance.default_scale
    if telemetry is None:
        telemetry = Telemetry()
    system = instance.build(make_pe, scale, seed)
    telemetry.attach_system(system)
    if check_counters:
        system.enable_counter_checks()
    cycles = system.run(max_cycles=max_cycles)
    instance.check(system, scale, seed)
    telemetry.finish()
    return InstrumentedRun(
        workload=workload,
        cycles=cycles,
        system=system,
        telemetry=telemetry,
        metrics=MetricsRegistry.from_system(system, telemetry),
    )
