"""Chrome trace-event / Perfetto JSON export of a telemetry stream.

Renders what the ASCII pipeline diagram (:mod:`repro.pipeline.trace`)
shows for one PE — but for the whole fabric, zoomable, in any Chrome
``about:tracing`` or Perfetto UI:

* one *process* per PE with one *thread* (track) per pipeline stage;
  each instruction's residence in a stage becomes a complete ("X")
  event spanning its cycles, labelled with the instruction and slot;
* one counter ("C") track per queue, plotting the sampled occupancy
  timeline;
* instant ("i") events for quashes, rollbacks, and memory-port grants.

Timestamps are simulated cycles passed through as microseconds (the
trace-event format's native unit), so one UI microsecond == one cycle.

The emitted JSON object format (``{"traceEvents": [...]}``) is accepted
by both Chrome and Perfetto; everything is plain JSON so the export
round-trips through ``json.loads`` — the smoke gate holds it to that.
"""

from __future__ import annotations

import json

from repro.obs.events import Telemetry

#: Event kinds rendered as instant markers, with the track they land on.
_INSTANT_KINDS = ("quash", "rollback", "port_grant")


def _metadata(pid: int, name: str, tid: int | None = None,
              thread_name: str | None = None) -> list[dict]:
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": name},
        }
    ]
    if tid is not None:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": thread_name},
            }
        )
    return events


def chrome_trace(telemetry: Telemetry, system=None) -> dict:
    """Build the trace-event JSON object from a telemetry sink.

    ``system`` is optional and only used to label stage tracks with
    their partition names (``T``, ``D``, ``X1`` ...); without it tracks
    are named ``stage0``, ``stage1``, ...
    """
    telemetry.finish()
    events: list[dict] = []
    pids: dict[str, int] = {}

    def pid_of(name: str) -> int:
        if name not in pids:
            pids[name] = len(pids) + 1
        return pids[name]

    stage_names: dict[str, list[str]] = {}
    if system is not None:
        for pe in system.pes:
            config = getattr(pe, "config", None)
            if config is not None:
                stage_names[pe.name] = [
                    "".join(stage) for stage in config.stages
                ]

    # -- stage tracks: one process per PE, one thread per stage ----------
    for pe_name, per_stage in telemetry.stage_intervals.items():
        pid = pid_of(pe_name)
        names = stage_names.get(
            pe_name, [f"stage{i}" for i in range(len(per_stage))]
        )
        events.extend(_metadata(pid, pe_name))
        for stage, intervals in enumerate(per_stage):
            tid = stage + 1
            label = names[stage] if stage < len(names) else f"stage{stage}"
            events.extend(
                _metadata(pid, pe_name, tid=tid, thread_name=label)[1:]
            )
            for start, end, name, slot, seq in intervals:
                events.append(
                    {
                        "name": name,
                        "cat": "pipeline",
                        "ph": "X",
                        "ts": start,
                        "dur": end - start + 1,
                        "pid": pid,
                        "tid": tid,
                        "args": {"slot": slot, "seq": seq},
                    }
                )

    # -- queue occupancy counters ----------------------------------------
    if telemetry.queue_timelines:
        pid = pid_of("queues")
        events.extend(_metadata(pid, "queues"))
    for queue_name, timeline in telemetry.queue_timelines.items():
        for cycle, occupancy in timeline:
            events.append(
                {
                    "name": queue_name,
                    "cat": "queue",
                    "ph": "C",
                    "ts": cycle,
                    "pid": pid,
                    "tid": 0,
                    "args": {"occupancy": occupancy},
                }
            )

    # -- instant markers ---------------------------------------------------
    fabric_pid: int | None = None
    for event in telemetry.events:
        if event.kind not in _INSTANT_KINDS:
            continue
        if event.source in pids:
            pid = pids[event.source]
        else:
            # Memory ports and other non-PE sources share one process.
            if fabric_pid is None:
                fabric_pid = pid_of("fabric")
                events.extend(_metadata(fabric_pid, "fabric"))
            pid = fabric_pid
        events.append(
            {
                "name": event.kind,
                "cat": "events",
                "ph": "i",
                "s": "p",
                "ts": event.cycle,
                "pid": pid,
                "tid": 0,
                "args": dict(event.data),
            }
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "unit": "1 trace microsecond == 1 simulated cycle",
            "truncated": telemetry.truncated,
            "events_dropped": telemetry.dropped_events,
        },
    }


def export_chrome_trace(telemetry: Telemetry, path: str, system=None) -> dict:
    """Write the trace-event JSON to ``path``; returns the object."""
    trace = chrome_trace(telemetry, system=system)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle)
        handle.write("\n")
    return trace
