"""Chrome trace-event / Perfetto JSON export of a telemetry stream.

Renders what the ASCII pipeline diagram (:mod:`repro.pipeline.trace`)
shows for one PE — but for the whole fabric, zoomable, in any Chrome
``about:tracing`` or Perfetto UI:

* one *process* per PE with one *thread* (track) per pipeline stage;
  each instruction's residence in a stage becomes a complete ("X")
  event spanning its cycles, labelled with the instruction and slot;
* one counter ("C") track per queue, plotting the sampled occupancy
  timeline;
* instant ("i") events for quashes, rollbacks, and memory-port grants.

Timestamps are simulated cycles passed through as microseconds (the
trace-event format's native unit), so one UI microsecond == one cycle.

The emitted JSON object format (``{"traceEvents": [...]}``) is accepted
by both Chrome and Perfetto; everything is plain JSON so the export
round-trips through ``json.loads`` — the smoke gate holds it to that.
"""

from __future__ import annotations

import json

from repro.obs.events import Telemetry

#: Event kinds rendered as instant markers, with the track they land on.
_INSTANT_KINDS = ("quash", "rollback", "port_grant")


def _metadata(pid: int, name: str, tid: int | None = None,
              thread_name: str | None = None) -> list[dict]:
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": name},
        }
    ]
    if tid is not None:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": thread_name},
            }
        )
    return events


def chrome_trace(telemetry: Telemetry, system=None) -> dict:
    """Build the trace-event JSON object from a telemetry sink.

    ``system`` is optional and only used to label stage tracks with
    their partition names (``T``, ``D``, ``X1`` ...); without it tracks
    are named ``stage0``, ``stage1``, ...
    """
    telemetry.finish()
    events: list[dict] = []
    pids: dict[str, int] = {}

    def pid_of(name: str) -> int:
        if name not in pids:
            pids[name] = len(pids) + 1
        return pids[name]

    stage_names: dict[str, list[str]] = {}
    if system is not None:
        for pe in system.pes:
            config = getattr(pe, "config", None)
            if config is not None:
                stage_names[pe.name] = [
                    "".join(stage) for stage in config.stages
                ]

    # -- stage tracks: one process per PE, one thread per stage ----------
    for pe_name, per_stage in telemetry.stage_intervals.items():
        pid = pid_of(pe_name)
        names = stage_names.get(
            pe_name, [f"stage{i}" for i in range(len(per_stage))]
        )
        events.extend(_metadata(pid, pe_name))
        for stage, intervals in enumerate(per_stage):
            tid = stage + 1
            label = names[stage] if stage < len(names) else f"stage{stage}"
            events.extend(
                _metadata(pid, pe_name, tid=tid, thread_name=label)[1:]
            )
            for start, end, name, slot, seq in intervals:
                events.append(
                    {
                        "name": name,
                        "cat": "pipeline",
                        "ph": "X",
                        "ts": start,
                        "dur": end - start + 1,
                        "pid": pid,
                        "tid": tid,
                        "args": {"slot": slot, "seq": seq},
                    }
                )

    # -- queue occupancy counters ----------------------------------------
    if telemetry.queue_timelines:
        pid = pid_of("queues")
        events.extend(_metadata(pid, "queues"))
    for queue_name, timeline in telemetry.queue_timelines.items():
        for cycle, occupancy in timeline:
            events.append(
                {
                    "name": queue_name,
                    "cat": "queue",
                    "ph": "C",
                    "ts": cycle,
                    "pid": pid,
                    "tid": 0,
                    "args": {"occupancy": occupancy},
                }
            )

    # -- instant markers ---------------------------------------------------
    fabric_pid: int | None = None
    for event in telemetry.events:
        if event.kind not in _INSTANT_KINDS:
            continue
        if event.source in pids:
            pid = pids[event.source]
        else:
            # Memory ports and other non-PE sources share one process.
            if fabric_pid is None:
                fabric_pid = pid_of("fabric")
                events.extend(_metadata(fabric_pid, "fabric"))
            pid = fabric_pid
        events.append(
            {
                "name": event.kind,
                "cat": "events",
                "ph": "i",
                "s": "p",
                "ts": event.cycle,
                "pid": pid,
                "tid": 0,
                "args": dict(event.data),
            }
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "unit": "1 trace microsecond == 1 simulated cycle",
            "truncated": telemetry.truncated,
            "events_dropped": telemetry.dropped_events,
        },
    }


def export_chrome_trace(telemetry: Telemetry, path: str, system=None) -> dict:
    """Write the trace-event JSON to ``path``; returns the object."""
    trace = chrome_trace(telemetry, system=system)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle)
        handle.write("\n")
    return trace


# ----------------------------------------------------------------------
# Campaign (service + simulator) timeline
# ----------------------------------------------------------------------


def campaign_trace(obs, include_sim: bool = True) -> dict:
    """One Perfetto timeline for a whole traced campaign.

    Process 1 ("campaign") renders the :class:`~repro.obs.svc.
    ServiceObs` span tree: the "jobs" track on top, one track per
    worker slot (the ``execute`` spans), one track per task (its
    ``queue_wait``/``backoff``/``store_commit`` children).  Below it,
    one process per traced task renders the simulator stage tracks the
    worker shipped back — cycle timestamps scaled into that task's
    wall-clock execute window — so "why was this campaign slow" reads
    off a single artifact: campaign spans above, pipeline stages below.

    Service timestamps are monotonic wall-clock converted to
    microsecond offsets from the earliest span.
    """
    spans = list(obs.tracer.spans)
    sim_traces = list(obs.sim_traces) if include_sim else []
    starts = [span.start for span in spans]
    starts.extend(entry["start"] for entry in sim_traces)
    base = min(starts, default=0.0)

    def us(stamp: float) -> int:
        return int(round((stamp - base) * 1e6))

    events: list[dict] = []
    pid = 1
    events.extend(_metadata(pid, "campaign"))

    # Track layout: stable, reader-friendly order — "jobs" first, then
    # worker slots, then per-task tracks in first-seen order.
    tracks: dict[str, int] = {}

    def tid_of(track: str) -> int:
        if track not in tracks:
            tracks[track] = len(tracks) + 1
            events.extend(
                _metadata(pid, "campaign", tid=tracks[track],
                          thread_name=track)[1:]
            )
        return tracks[track]

    tid_of("jobs")
    for span in spans:
        if span.track.startswith("worker"):
            tid_of(span.track)

    open_end = max(
        (span.end for span in spans if span.end is not None), default=0.0
    )
    for span in spans:
        end = span.end if span.end is not None else open_end
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": us(span.start),
            "dur": max(1, us(end) - us(span.start)),
            "pid": pid,
            "tid": tid_of(span.track),
            "args": {
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                **span.attrs,
            },
        })

    # -- simulator stage tracks, one process per traced task -------------
    sim_pid = pid
    for entry in sim_traces:
        sim_pid += 1
        data = entry["data"]
        cycles = max(1, data.get("cycles", 1))
        window = max(entry["end"] - entry["start"], 1e-9)
        per_cycle_us = window * 1e6 / cycles
        origin = us(entry["start"])

        def sim_ts(cycle: float, origin=origin, per_cycle_us=per_cycle_us):
            return origin + int(round(cycle * per_cycle_us))

        events.extend(_metadata(sim_pid, f"sim {entry['task_id']}"))
        tid = 0
        for pe_name, pe_data in data.get("pes", {}).items():
            stages = pe_data.get("stages", [])
            for stage, intervals in enumerate(pe_data.get("intervals", [])):
                tid += 1
                label = (stages[stage] if stage < len(stages)
                         else f"stage{stage}")
                events.extend(_metadata(
                    sim_pid, f"sim {entry['task_id']}", tid=tid,
                    thread_name=f"{pe_name} {label}",
                )[1:])
                for start, end, name, slot, seq in intervals:
                    events.append({
                        "name": name,
                        "cat": "pipeline",
                        "ph": "X",
                        "ts": sim_ts(start),
                        "dur": max(1, sim_ts(end + 1) - sim_ts(start)),
                        "pid": sim_pid,
                        "tid": tid,
                        "args": {"slot": slot, "seq": seq,
                                 "cycle": start},
                    })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "unit": "1 trace microsecond == 1 wall-clock microsecond; "
                    "sim tracks scaled into their execute windows",
            "spans": len(spans),
            "spans_dropped": obs.tracer.dropped,
            "sim_tasks": len(sim_traces),
        },
    }


def export_campaign_trace(obs, path: str, include_sim: bool = True) -> dict:
    """Write the unified campaign timeline to ``path``; returns it."""
    trace = campaign_trace(obs, include_sim=include_sim)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle)
        handle.write("\n")
    return trace
