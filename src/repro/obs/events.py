"""The structured telemetry event bus.

The paper's FPGA prototype pairs every PE with debug monitors and
performance counters (Section 6.1); this module is the fabric-level
generalization.  A :class:`Telemetry` sink attaches to a
:class:`~repro.fabric.system.System` (or a single PE) and collects:

* **typed events** emitted by the instrumented components — instruction
  ``issue`` / ``retire`` / ``quash``, speculative ``rollback``, queue
  ``enqueue`` / ``dequeue`` with tags, and memory ``port_grant``s;
* **per-cycle samples** — queue-occupancy timelines (delta-compressed),
  queue high-water marks, memory-port/LSQ busy cycles, and per-PE
  pipeline-stage occupancy intervals (the raw material for the Chrome
  trace export).

The instrumentation contract is strictly opt-in: every emitting
component carries a ``telemetry`` attribute that defaults to ``None``
(a class attribute on :class:`~repro.arch.queue.TaggedQueue`, so
uninstrumented queues pay no per-instance storage), and every emit site
is guarded by a single ``is not None`` test — the same zero-cost-when-off
discipline as the resilience layer's ``fault_hook`` seam.  Telemetry
never mutates simulated state, so instrumented and uninstrumented runs
are bit-identical (``tests/test_obs.py`` holds them to that).
"""

from __future__ import annotations


class TelemetryEvent:
    """One typed event on the bus."""

    __slots__ = ("kind", "cycle", "source", "data")

    def __init__(self, kind: str, cycle: int, source: str, data: dict) -> None:
        self.kind = kind
        self.cycle = cycle
        self.source = source
        self.data = data

    def __repr__(self) -> str:
        return (
            f"TelemetryEvent({self.kind!r}, cycle={self.cycle}, "
            f"source={self.source!r}, {self.data})"
        )


class Telemetry:
    """An opt-in structured event sink plus per-cycle fabric sampler.

    ``limit`` bounds the stored event list; past it events are counted
    in ``dropped_events`` (and ``truncated`` is set) rather than stored,
    so a pathological run cannot exhaust memory.  ``sample_interval``
    thins the per-cycle fabric sampling for very long runs; event
    emission is unaffected by it.
    """

    def __init__(self, limit: int = 1 << 20, sample_interval: int = 1) -> None:
        if limit < 1:
            raise ValueError("telemetry event limit must be positive")
        if sample_interval < 1:
            raise ValueError("sample interval must be positive")
        self.limit = limit
        self.sample_interval = sample_interval
        #: Current cycle, maintained by the instrumented steppers so
        #: sources that do not know the time (queues, ports) still stamp
        #: their events correctly.
        self.now = 0
        self.events: list[TelemetryEvent] = []
        self.dropped_events = 0
        self.truncated = False
        self.event_counts: dict[str, int] = {}
        # -- sampled fabric state ------------------------------------------
        #: Delta-compressed occupancy per queue: (cycle, occupancy) pairs,
        #: appended only when the sampled occupancy changes.
        self.queue_timelines: dict[str, list[tuple[int, int]]] = {}
        self.queue_high_water: dict[str, int] = {}
        self.queue_capacity: dict[str, int] = {}
        #: Busy (non-idle) cycles per memory port / LSQ.
        self.port_busy_cycles: dict[str, int] = {}
        self.sampled_cycles = 0
        # -- stage occupancy intervals -------------------------------------
        #: Closed intervals per PE per stage:
        #: (start_cycle, end_cycle, label, slot, seq), end inclusive.
        self.stage_intervals: dict[str, list[list[tuple]]] = {}
        self._stage_open: dict[str, list] = {}
        self._attached: list = []

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------

    def emit(self, kind: str, source: str, **data) -> None:
        """Record one typed event, stamped with the current cycle."""
        self.event_counts[kind] = self.event_counts.get(kind, 0) + 1
        if len(self.events) >= self.limit:
            self.dropped_events += 1
            self.truncated = True
            return
        self.events.append(TelemetryEvent(kind, self.now, source, data))

    def events_of(self, kind: str) -> list[TelemetryEvent]:
        return [event for event in self.events if event.kind == kind]

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------

    def attach_pe(self, pe) -> None:
        """Instrument one PE and the queues it currently owns."""
        pe.telemetry = self
        self._attached.append(pe)
        for queue in list(pe.inputs) + list(pe.outputs):
            queue.telemetry = self

    def attach_system(self, system) -> None:
        """Instrument a whole system: PEs, channels, ports, and LSQs.

        Call *after* wiring — the fabric wiring methods replace queue
        objects, and only the queues present at attach time are
        instrumented.
        """
        system.telemetry = self
        self._attached.append(system)
        for pe in system.pes:
            self.attach_pe(pe)
        for channel in system._all_channels():
            channel.telemetry = self
        for port in system.read_ports + system.write_ports + list(system.lsqs):
            port.telemetry = self

    def detach(self) -> None:
        """Remove this sink from everything it instrumented."""
        for owner in self._attached:
            owner.telemetry = None
            pes = getattr(owner, "pes", None)
            if pes is None:
                queues = list(owner.inputs) + list(owner.outputs)
            else:
                queues = list(owner._all_channels())
                for port in (
                    owner.read_ports + owner.write_ports + list(owner.lsqs)
                ):
                    port.telemetry = None
            for queue in queues:
                # Restore the class-level None default (no instance attr).
                if "telemetry" in queue.__dict__:
                    del queue.__dict__["telemetry"]
        self._attached = []

    # ------------------------------------------------------------------
    # Per-cycle sampling
    # ------------------------------------------------------------------

    def sample_system(self, system) -> None:
        """Sample fabric state at the end of one system cycle.

        Called by :meth:`repro.fabric.system.System.step` when this sink
        is attached; timelines therefore see committed (end-of-cycle)
        queue state.
        """
        cycle = system.cycles
        self.now = cycle
        if cycle % self.sample_interval:
            return
        self.sampled_cycles += 1
        for queue in system._all_channels():
            self._sample_queue(queue, cycle)
        for port in system.read_ports + system.write_ports + list(system.lsqs):
            if not port.idle:
                name = port.name
                self.port_busy_cycles[name] = (
                    self.port_busy_cycles.get(name, 0) + 1
                )
        for pe in system.pes:
            snapshot = getattr(pe, "stage_snapshot", None)
            if snapshot is not None:
                self._sample_stages(pe.name, snapshot(), cycle)

    def sample_pe(self, pe) -> None:
        """Single-PE variant of :meth:`sample_system` (no fabric)."""
        cycle = pe.counters.cycles
        self.now = cycle
        if cycle % self.sample_interval:
            return
        self.sampled_cycles += 1
        for queue in list(pe.inputs) + list(pe.outputs):
            self._sample_queue(queue, cycle)
        snapshot = getattr(pe, "stage_snapshot", None)
        if snapshot is not None:
            self._sample_stages(pe.name, snapshot(), cycle)

    def _sample_queue(self, queue, cycle: int) -> None:
        name = queue.name
        occupancy = queue.occupancy
        timeline = self.queue_timelines.get(name)
        if timeline is None:
            timeline = self.queue_timelines[name] = []
            self.queue_capacity[name] = queue.capacity
            self.queue_high_water[name] = 0
        if not timeline or timeline[-1][1] != occupancy:
            timeline.append((cycle, occupancy))
        if occupancy > self.queue_high_water[name]:
            self.queue_high_water[name] = occupancy

    def _sample_stages(self, pe_name: str, snapshot, cycle: int) -> None:
        open_entries = self._stage_open.get(pe_name)
        if open_entries is None:
            open_entries = self._stage_open[pe_name] = [None] * len(snapshot)
            self.stage_intervals[pe_name] = [[] for _ in snapshot]
        intervals = self.stage_intervals[pe_name]
        for stage, occupant in enumerate(snapshot):
            current = open_entries[stage]
            seq = None if occupant is None else occupant.seq
            if current is not None and current[4] != seq:
                start, __, label, slot, open_seq = current
                intervals[stage].append((start, cycle - 1, label, slot, open_seq))
                current = None
            if current is None and occupant is not None:
                current = [cycle, cycle, occupant.label, occupant.slot, seq]
            open_entries[stage] = current

    def finish(self) -> None:
        """Close any open stage intervals (call once the run completes)."""
        for pe_name, open_entries in self._stage_open.items():
            intervals = self.stage_intervals[pe_name]
            for stage, current in enumerate(open_entries):
                if current is not None:
                    start, __, label, slot, seq = current
                    intervals[stage].append((start, self.now, label, slot, seq))
                    open_entries[stage] = None

    # ------------------------------------------------------------------

    def summary(self) -> dict:
        """Structured digest of what the bus captured."""
        return {
            "event_counts": dict(sorted(self.event_counts.items())),
            "events_stored": len(self.events),
            "events_dropped": self.dropped_events,
            "truncated": self.truncated,
            "sampled_cycles": self.sampled_cycles,
            "queues_observed": len(self.queue_timelines),
            "ports_observed": len(self.port_busy_cycles),
        }
