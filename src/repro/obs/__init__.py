"""Unified observability: event bus, metrics registry, trace exporters,
and campaign profiling.

The layer is strictly opt-in — nothing is recorded (and nothing is paid
beyond a ``None`` test at each seam) until a :class:`Telemetry` sink is
attached — and strictly read-only: instrumented runs are bit-identical
to uninstrumented ones.

    from repro.obs import Telemetry, MetricsRegistry, run_instrumented

    run = run_instrumented("stream", config_by_name("T|D|X1|X2 +P+Q"))
    print(run.metrics.format())                 # cross-PE metrics report
    run.metrics.to_json("metrics.json")         # structured export
    export_chrome_trace(run.telemetry, "trace.json", run.system)

``python -m repro.obs`` wraps the same flow as a CLI.

The same seam discipline extends to the campaign service: attach a
:class:`ServiceObs` to a :class:`repro.serve.service.CampaignService`
and every job/task/worker lifecycle step is spanned, metered, and
JSON-logged; :func:`export_campaign_trace` renders the whole campaign
— service spans above, per-task simulator stage tracks below — as one
Perfetto timeline.  ``python -m repro.obs --smoke-service`` gates it.
"""

from repro.obs.campaign import CampaignProfile, format_campaign_report
from repro.obs.events import Telemetry, TelemetryEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.runner import InstrumentedRun, run_instrumented
from repro.obs.svc import (
    JobEventStream,
    JsonLogger,
    ServiceMetrics,
    ServiceObs,
    ServiceTracer,
    Span,
)
from repro.obs.trace_export import (
    campaign_trace,
    chrome_trace,
    export_campaign_trace,
    export_chrome_trace,
)

__all__ = [
    "CampaignProfile",
    "format_campaign_report",
    "Telemetry",
    "TelemetryEvent",
    "MetricsRegistry",
    "InstrumentedRun",
    "run_instrumented",
    "chrome_trace",
    "export_chrome_trace",
    "campaign_trace",
    "export_campaign_trace",
    "ServiceObs",
    "ServiceTracer",
    "ServiceMetrics",
    "JsonLogger",
    "JobEventStream",
    "Span",
]
