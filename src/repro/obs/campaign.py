"""Campaign profiling: where the wall-clock of a parallel campaign goes.

The CPI campaign, the design-space sweep, and the fault campaign all
fan out through :func:`repro.parallel.resilient_map`.  A
:class:`CampaignProfile` passed to any of them records, without
changing any result:

* per-task wall-clock (measured inside the worker, so pool scheduling
  does not pollute it);
* worker utilization — total task-busy seconds over ``elapsed x
  workers`` (1.0 means the pool never idled);
* resilience machinery activity: pool retries, timeouts, serial
  degradation, and checkpoint resume hits.

Profiles accumulate across calls, so one profile handed to both phases
of :func:`repro.dse.sweep.sweep` reports the whole campaign.
"""

from __future__ import annotations

import time


class CampaignProfile:
    """Mutable profiling record for one (or more) campaign map calls."""

    def __init__(self, label: str = "campaign") -> None:
        self.label = label
        self.workers = 1
        self.planned_tasks = 0
        #: Per-task records: ``{"index", "key", "seconds"}``.
        self.tasks: list[dict] = []
        self.pool_retries = 0
        self.timeouts = 0
        self.checkpoint_hits = 0
        self.serial_fallback = False
        self.elapsed = 0.0
        self._started: float | None = None

    # -- hooks called by repro.parallel ---------------------------------

    def begin(self, total: int, workers: int) -> None:
        self.planned_tasks += total
        self.workers = max(self.workers, workers)
        self._started = time.perf_counter()

    def finish(self) -> None:
        if self._started is not None:
            self.elapsed += time.perf_counter() - self._started
            self._started = None

    def task_done(self, index: int, key: str | None, seconds: float) -> None:
        self.tasks.append({"index": index, "key": key, "seconds": seconds})

    def pool_retry(self) -> None:
        self.pool_retries += 1

    def timeout(self) -> None:
        self.timeouts += 1

    def checkpoint_hit(self) -> None:
        self.checkpoint_hits += 1

    def degraded_to_serial(self) -> None:
        self.serial_fallback = True

    # -- reporting -------------------------------------------------------

    @property
    def busy_seconds(self) -> float:
        return sum(task["seconds"] for task in self.tasks)

    @property
    def utilization(self) -> float | None:
        """Task-busy seconds over the pool's wall-clock capacity."""
        if self.elapsed <= 0.0 or not self.tasks:
            return None
        return self.busy_seconds / (self.elapsed * self.workers)

    def report(self) -> dict:
        """JSON-ready structured campaign report."""
        slowest = max(
            self.tasks, key=lambda task: task["seconds"], default=None
        )
        return {
            "label": self.label,
            "workers": self.workers,
            "planned_tasks": self.planned_tasks,
            "completed_tasks": len(self.tasks),
            "checkpoint_hits": self.checkpoint_hits,
            "elapsed_seconds": round(self.elapsed, 6),
            "busy_seconds": round(self.busy_seconds, 6),
            "worker_utilization": (
                None if self.utilization is None
                else round(self.utilization, 4)
            ),
            "pool_retries": self.pool_retries,
            "timeouts": self.timeouts,
            "serial_fallback": self.serial_fallback,
            "slowest_task": slowest,
            "tasks": list(self.tasks),
        }


def format_campaign_report(report: dict) -> str:
    """Human-readable rendering of :meth:`CampaignProfile.report`."""
    lines = [
        f"campaign {report['label']!r}: "
        f"{report['completed_tasks']}/{report['planned_tasks']} tasks "
        f"in {report['elapsed_seconds']:.2f}s on "
        f"{report['workers']} worker(s)"
    ]
    utilization = report["worker_utilization"]
    if utilization is not None:
        lines.append(
            f"  busy {report['busy_seconds']:.2f}s -> "
            f"worker utilization {utilization:.1%}"
        )
    if report["checkpoint_hits"]:
        lines.append(f"  resumed {report['checkpoint_hits']} from checkpoint")
    if report["pool_retries"] or report["timeouts"]:
        lines.append(
            f"  pool retries {report['pool_retries']}, "
            f"timeouts {report['timeouts']}"
        )
    if report["serial_fallback"]:
        lines.append("  (!) degraded to in-process serial execution")
    slowest = report["slowest_task"]
    if slowest is not None:
        label = slowest["key"] if slowest["key"] is not None else slowest["index"]
        lines.append(f"  slowest task: {label} ({slowest['seconds']:.2f}s)")
    return "\n".join(lines)
