"""Service-side observability: spans, metrics, logs, SSE event streams.

:mod:`repro.obs` (PR 3) instruments the *simulator* — cycles, queues,
stages.  This module instruments the *service tier* around it: where
does a campaign's wall-clock go between ``POST /jobs`` and the last
store commit?  Four cooperating pieces, bundled by :class:`ServiceObs`:

* :class:`ServiceTracer` — wall-clock spans with trace/span IDs.  Every
  job gets a trace (``trace_id == job_id``); every task gets a span
  tree (``task`` → ``queue_wait`` / ``execute`` / ``backoff`` /
  ``store_commit``) whose context is propagated *into forked workers*
  so worker-side timings land on the same timeline.  Spans carry a
  ``track`` name ("jobs", "worker 0", "task job-0001/3") that becomes
  a Perfetto thread track in
  :func:`repro.obs.trace_export.campaign_trace`.
* :class:`ServiceMetrics` — labelled counters, gauges, and fixed-bucket
  histograms with Prometheus text-format 0.0.4 exposition
  (:meth:`ServiceMetrics.prometheus_text`) for ``GET /metrics``.
* :class:`JsonLogger` — structured JSON-lines logging; every record can
  carry ``trace_id``/``span_id`` correlation fields.
* :class:`JobEventStream` — a bounded per-subscriber event buffer
  backing ``GET /jobs/<id>/events`` (SSE).  Slow consumers drop the
  *oldest* events (progress is monotone, the newest frame supersedes
  them) and the drop count is surfaced, never silent.

The seam discipline is PR 3's: services take ``obs=None`` by default,
every emit site is a single ``is not None`` test, and with ``obs``
unset the serve tier's message formats and results are byte-identical
to the uninstrumented build — enforced by
``benchmarks/test_bench_obs_overhead.py``.
"""

from __future__ import annotations

import json
import sys
import time
from collections import deque
from collections.abc import Callable

__all__ = [
    "JobEventStream",
    "JsonLogger",
    "ServiceMetrics",
    "ServiceObs",
    "ServiceTracer",
    "Span",
    "sim_trace_data",
    "stats_metrics",
]


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------


class Span:
    """One timed operation on a trace; ``end is None`` while open."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "category",
                 "track", "start", "end", "attrs")

    def __init__(self, trace_id: str, span_id: str, name: str, *,
                 parent_id: str | None = None, category: str = "service",
                 track: str = "service", start: float = 0.0,
                 attrs: dict | None = None) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.track = track
        self.start = start
        self.end: float | None = None
        self.attrs: dict = attrs or {}

    @property
    def seconds(self) -> float | None:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "track": self.track,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:
        state = "open" if self.end is None else f"{self.seconds:.6f}s"
        return (f"<Span {self.name} {self.span_id} "
                f"trace={self.trace_id} {state}>")


class ServiceTracer:
    """Collects wall-clock spans; the export side of the span tree.

    The clock is injectable (tests drive a fake one); defaults to
    ``time.monotonic``, which on Linux is CLOCK_MONOTONIC and therefore
    comparable across ``fork()`` — worker-side timestamps land directly
    on the parent's timeline.  The span list is bounded; past ``limit``
    new spans are counted in ``dropped`` instead of stored.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic,
                 limit: int = 200_000) -> None:
        self.clock = clock
        self.limit = limit
        self.spans: list[Span] = []
        self.dropped = 0
        self._seq = 0

    def _new_span_id(self) -> str:
        self._seq += 1
        return f"s{self._seq:06d}"

    def _keep(self, span: Span) -> Span:
        if len(self.spans) < self.limit:
            self.spans.append(span)
        else:
            self.dropped += 1
        return span

    def begin(self, name: str, *, trace_id: str,
              parent: str | None = None, track: str = "service",
              category: str = "service", **attrs) -> Span:
        """Open a span now; close it with :meth:`end`."""
        return self._keep(Span(
            trace_id, self._new_span_id(), name, parent_id=parent,
            category=category, track=track, start=self.clock(),
            attrs=attrs,
        ))

    def end(self, span: Span | None, **attrs) -> None:
        """Close an open span (idempotent; ``None`` is a no-op)."""
        if span is None or span.end is not None:
            return
        span.end = self.clock()
        if attrs:
            span.attrs.update(attrs)

    def record(self, name: str, start: float, end: float, *,
               trace_id: str, parent: str | None = None,
               track: str = "service", category: str = "service",
               **attrs) -> Span:
        """Record an already-timed span (e.g. measured inside a worker)."""
        span = Span(
            trace_id, self._new_span_id(), name, parent_id=parent,
            category=category, track=track, start=start, attrs=attrs,
        )
        span.end = end
        return self._keep(span)

    # -- introspection ---------------------------------------------------

    def by_name(self, name: str) -> list[Span]:
        return [span for span in self.spans if span.name == name]

    def summary(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for span in self.spans:
            counts[span.name] = counts.get(span.name, 0) + 1
        return dict(sorted(counts.items()))

    def check_nesting(self, tolerance: float = 1e-6) -> list[str]:
        """Structural audit: every child lies within its parent's window.

        Returns human-readable problem strings (empty == healthy); the
        ``--smoke-service`` gate fails on any.  ``tolerance`` absorbs
        clock quantization at span edges.
        """
        problems: list[str] = []
        by_id = {span.span_id: span for span in self.spans}
        for span in self.spans:
            if span.end is None:
                problems.append(f"{span.name} {span.span_id} never ended")
                continue
            if span.end + tolerance < span.start:
                problems.append(
                    f"{span.name} {span.span_id} ends before it starts"
                )
            if span.parent_id is None:
                continue
            parent = by_id.get(span.parent_id)
            if parent is None:
                problems.append(
                    f"{span.name} {span.span_id} parent "
                    f"{span.parent_id} unknown"
                )
                continue
            if span.trace_id != parent.trace_id:
                problems.append(
                    f"{span.name} {span.span_id} crosses traces "
                    f"({span.trace_id} under {parent.trace_id})"
                )
            if span.start + tolerance < parent.start or (
                parent.end is not None
                and span.end > parent.end + tolerance
            ):
                problems.append(
                    f"{span.name} {span.span_id} "
                    f"[{span.start:.6f}, {span.end:.6f}] escapes parent "
                    f"{parent.name} [{parent.start:.6f}, {parent.end}]"
                )
        return problems


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

#: Default latency buckets (seconds): sub-millisecond queue waits up to
#: minute-scale campaign tasks.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class _Histogram:
    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)   # +1 for the +Inf bucket
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _escape(value) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _render_labels(key: tuple, extra: str = "") -> str:
    parts = [f'{name}="{_escape(value)}"' for name, value in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class ServiceMetrics:
    """Labelled counters, gauges, and histograms with Prometheus text
    exposition.

    The sim-side :class:`~repro.obs.metrics.MetricsRegistry` aggregates
    a *finished run*; this registry accumulates *service lifetime*
    series — every family renders in exposition-format 0.0.4 for
    ``GET /metrics``.
    """

    def __init__(self) -> None:
        #: family name -> label key -> value
        self.counters: dict[str, dict[tuple, float]] = {}
        self.gauges: dict[str, dict[tuple, float]] = {}
        self.histograms: dict[str, dict[tuple, _Histogram]] = {}
        self._buckets: dict[str, tuple[float, ...]] = {}

    # -- recording -------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        family = self.counters.setdefault(name, {})
        key = _label_key(labels)
        family[key] = family.get(key, 0.0) + value

    def gauge(self, name: str, value: float, **labels) -> None:
        self.gauges.setdefault(name, {})[_label_key(labels)] = value

    def observe(self, name: str, value: float,
                buckets: tuple[float, ...] | None = None, **labels) -> None:
        bounds = self._buckets.setdefault(name, buckets or DEFAULT_BUCKETS)
        family = self.histograms.setdefault(name, {})
        key = _label_key(labels)
        histogram = family.get(key)
        if histogram is None:
            histogram = family[key] = _Histogram(bounds)
        histogram.observe(value)

    # -- export ----------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready dump (embedded in quarantine forensic reports)."""

        def flat(families: dict) -> dict:
            return {
                name + _render_labels(key): value
                for name, family in sorted(families.items())
                for key, value in sorted(family.items())
            }

        return {
            "counters": flat(self.counters),
            "gauges": flat(self.gauges),
            "histograms": {
                name + _render_labels(key): {
                    "count": histogram.count,
                    "sum": histogram.total,
                }
                for name, family in sorted(self.histograms.items())
                for key, histogram in sorted(family.items())
            },
        }

    def prometheus_text(self) -> str:
        lines: list[str] = []
        for name, family in sorted(self.counters.items()):
            lines.append(f"# TYPE {name} counter")
            for key, value in sorted(family.items()):
                lines.append(
                    f"{name}{_render_labels(key)} {_format_value(value)}"
                )
        for name, family in sorted(self.gauges.items()):
            lines.append(f"# TYPE {name} gauge")
            for key, value in sorted(family.items()):
                lines.append(
                    f"{name}{_render_labels(key)} {_format_value(value)}"
                )
        for name, family in sorted(self.histograms.items()):
            lines.append(f"# TYPE {name} histogram")
            for key, histogram in sorted(family.items()):
                cumulative = 0
                for bound, count in zip(histogram.buckets, histogram.counts):
                    cumulative += count
                    le = 'le="' + _format_value(bound) + '"'
                    lines.append(
                        f"{name}_bucket{_render_labels(key, le)} {cumulative}"
                    )
                inf = 'le="+Inf"'
                lines.append(
                    f"{name}_bucket{_render_labels(key, inf)} "
                    f"{histogram.count}"
                )
                lines.append(
                    f"{name}_sum{_render_labels(key)} "
                    f"{_format_value(histogram.total)}"
                )
                lines.append(
                    f"{name}_count{_render_labels(key)} {histogram.count}"
                )
        return "\n".join(lines) + "\n" if lines else ""


def stats_metrics(stats: dict, jit: dict | None = None) -> ServiceMetrics:
    """Render a :meth:`CampaignService.stats` dict as metric families.

    This is what makes ``GET /metrics`` work even on an uninstrumented
    service: every counter the tier already keeps (supervisor, admission,
    store, jit cache) becomes an exposition family, with no obs seam in
    the hot path.  An attached :class:`ServiceObs` only *adds* the
    histogram families recorded live.
    """
    metrics = ServiceMetrics()
    for state, count in stats.get("jobs", {}).items():
        metrics.gauge("repro_serve_jobs", count, state=state)
    supervisor = stats.get("supervisor", {})
    for field in ("worker_spawns", "worker_kills", "worker_crashes",
                  "task_retries", "tasks_done", "tasks_failed",
                  "tasks_quarantined"):
        metrics.inc(f"repro_serve_{field}_total", supervisor.get(field, 0))
    metrics.gauge("repro_serve_serial_fallback",
                  1 if stats.get("serial") else 0)
    metrics.gauge("repro_serve_pending_tasks", stats.get("pending_tasks", 0))
    metrics.gauge("repro_serve_in_flight_tasks", stats.get("in_flight", 0))
    admission = stats.get("admission", {})
    metrics.inc("repro_serve_admitted_jobs_total",
                admission.get("admitted_jobs", 0))
    metrics.inc("repro_serve_rejected_jobs_total",
                admission.get("rejected_jobs", 0))
    for reason, count in admission.get("rejections", {}).items():
        metrics.inc("repro_serve_rejections_total", count, reason=reason)
    metrics.gauge("repro_serve_queued_jobs", admission.get("queued_jobs", 0))
    metrics.gauge("repro_serve_backlog_tasks",
                  admission.get("backlog_tasks", 0))
    store = stats.get("store", {})
    metrics.gauge("repro_serve_store_rows", store.get("rows", 0))
    metrics.gauge("repro_serve_store_max_executions",
                  store.get("max_executions", 0))
    metrics.gauge("repro_serve_store_executions_total",
                  store.get("executions_total", 0))
    for field in ("hits", "misses", "puts", "duplicate_puts"):
        metrics.inc(f"repro_serve_store_{field}_total", store.get(field, 0))
    for kind, count in store.get("kinds", {}).items():
        metrics.gauge("repro_serve_store_kind_rows", count, kind=kind)
    if jit is not None:
        metrics.inc("repro_jit_cache_hits_total", jit.get("hits", 0))
        metrics.inc("repro_jit_cache_misses_total", jit.get("misses", 0))
        metrics.inc("repro_jit_compile_seconds_total",
                    jit.get("compile_seconds", 0.0))
        metrics.gauge("repro_jit_cache_entries", jit.get("entries", 0))
        for reason, count in jit.get("block_exits", {}).items():
            metrics.inc("repro_jit_block_exits_total", count, reason=reason)
    return metrics


# ----------------------------------------------------------------------
# Structured logging
# ----------------------------------------------------------------------


class JsonLogger:
    """JSON-lines structured logging with trace/span correlation."""

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.lines = 0

    def log(self, event: str, *, level: str = "info",
            trace_id: str | None = None, span_id: str | None = None,
            **fields) -> None:
        record: dict = {"ts": round(time.time(), 6), "level": level,
                        "event": event}
        if trace_id is not None:
            record["trace_id"] = trace_id
        if span_id is not None:
            record["span_id"] = span_id
        record.update(fields)
        self.stream.write(
            json.dumps(record, sort_keys=True, default=str) + "\n"
        )
        self.lines += 1


# ----------------------------------------------------------------------
# SSE event streams
# ----------------------------------------------------------------------


class JobEventStream:
    """One SSE subscriber's bounded pending-event buffer.

    Backpressure policy: a consumer slower than the producer loses the
    *oldest* frames (job progress is monotone; each later frame carries
    the up-to-date resolved count) and ``dropped`` records how many —
    the SSE handler surfaces it as a comment line rather than stalling
    the service pump on a dead socket.
    """

    def __init__(self, max_buffer: int = 256) -> None:
        self.max_buffer = max(1, int(max_buffer))
        self._events: deque[dict] = deque()
        self.dropped = 0

    def push(self, event: dict) -> None:
        if len(self._events) >= self.max_buffer:
            self._events.popleft()
            self.dropped += 1
        self._events.append(event)

    def pop_all(self) -> list[dict]:
        events = list(self._events)
        self._events.clear()
        return events

    def __len__(self) -> int:
        return len(self._events)


# ----------------------------------------------------------------------
# The bundle
# ----------------------------------------------------------------------


class ServiceObs:
    """Everything the serve tier needs to observe itself, in one seam.

    Pass ``obs=ServiceObs()`` to :class:`~repro.serve.service.
    CampaignService` (optionally with ``sim_trace=True`` to also ship
    simulator stage tracks back from workers) and export the combined
    timeline with :func:`repro.obs.trace_export.export_campaign_trace`.
    """

    def __init__(self, *, tracer: ServiceTracer | None = None,
                 metrics: ServiceMetrics | None = None,
                 logger: JsonLogger | None = None,
                 sim_trace: bool = False,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.tracer = tracer if tracer is not None else ServiceTracer(clock)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.logger = logger
        self.sim_trace = sim_trace
        #: Simulator stage-track payloads shipped back from workers:
        #: ``{"task_id", "trace_id", "start", "end", "data"}`` where
        #: start/end bound the wall-clock window the run occupied.
        self.sim_traces: list[dict] = []

    def log(self, event: str, **fields) -> None:
        if self.logger is not None:
            self.logger.log(event, **fields)

    def add_sim_trace(self, task_id: str, data: dict | None, *,
                      start: float, end: float,
                      trace_id: str | None = None) -> None:
        if data is None:
            return
        self.sim_traces.append({
            "task_id": task_id,
            "trace_id": trace_id,
            "start": start,
            "end": end,
            "data": data,
        })

    def snapshot(self) -> dict:
        """Span/metric summary (embedded in forensics and ``/stats``)."""
        return {
            "spans": len(self.tracer.spans),
            "spans_dropped": self.tracer.dropped,
            "span_counts": self.tracer.summary(),
            "sim_traces": len(self.sim_traces),
            "metrics": self.metrics.snapshot(),
        }


def sim_trace_data(run) -> dict:
    """Compact JSON-pure stage-track payload from an
    :class:`~repro.obs.runner.InstrumentedRun`.

    This is what a traced worker ships back over its outbox: per-PE
    stage names plus the PR 3 stage-occupancy intervals, in cycles.
    The exporter later scales cycles into the execute span's wall-clock
    window so sim tracks align under the service spans.
    """
    stage_names: dict[str, list[str]] = {}
    for pe in run.system.pes:
        config = getattr(pe, "config", None)
        if config is not None:
            stage_names[pe.name] = ["".join(stage) for stage in config.stages]
    return {
        "cycles": run.cycles,
        "pes": {
            pe_name: {
                "stages": stage_names.get(
                    pe_name, [f"stage{i}" for i in range(len(per_stage))]
                ),
                "intervals": [
                    [list(interval) for interval in stage]
                    for stage in per_stage
                ],
            }
            for pe_name, per_stage in run.telemetry.stage_intervals.items()
        },
    }
