"""Architectural state and the functional (architectural) PE simulator."""

from repro.arch.queue import TaggedQueue, QueueEntry
from repro.arch.regfile import RegisterFile
from repro.arch.predicates import PredicateFile
from repro.arch.scratchpad import Scratchpad
from repro.arch.scheduler import Scheduler, ArchQueueView, QueueStatusView, TriggerOutcome
from repro.arch.functional import FunctionalPE

__all__ = [
    "TaggedQueue",
    "QueueEntry",
    "RegisterFile",
    "PredicateFile",
    "Scratchpad",
    "Scheduler",
    "ArchQueueView",
    "QueueStatusView",
    "TriggerOutcome",
    "FunctionalPE",
]
