"""Functional (architectural) simulator of one triggered PE.

This is the toolchain's "Functional Simulator" box (Figure 1) and the
architectural reference for every pipelined model: one triggered
instruction retires per cycle whenever any trigger matches.  It is also
the timing model of the single-cycle ``TDX`` baseline (Section 4), whose
CPI it reports directly.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field

from repro.arch.predicates import PredicateFile
from repro.arch.queue import TaggedQueue
from repro.arch.regfile import RegisterFile
from repro.arch.scheduler import ArchQueueView, Scheduler, TriggerKind
from repro.arch.scratchpad import Scratchpad
from repro.arch.trigger_cache import (
    DST_OUT,
    DST_PRED,
    DST_REG,
    IN,
    REG,
    CompiledDatapath,
    compile_datapaths,
    compile_program,
)
from repro.errors import SimulationError
from repro.isa.alu import alu_execute
from repro.isa.instruction import Instruction
from repro.params import ArchParams, DEFAULT_PARAMS


@dataclass
class FunctionalCounters:
    """Per-PE performance counters maintained by the functional model."""

    cycles: int = 0
    retired: int = 0
    none_triggered: int = 0
    predicate_writes: int = 0        # retired datapath writes to a predicate
    enqueues: int = 0
    dequeues: int = 0
    retired_by_op: Counter = field(default_factory=Counter)
    retired_by_slot: Counter = field(default_factory=Counter)

    @property
    def cpi(self) -> float:
        """Cycles per retired instruction."""
        if self.retired == 0:
            return float("inf")
        return self.cycles / self.retired

    @property
    def predicate_write_rate(self) -> float:
        """Fraction of retired instructions writing a predicate (Figure 4)."""
        if self.retired == 0:
            return 0.0
        return self.predicate_writes / self.retired

    def as_dict(self) -> dict:
        """JSON-ready view (Counters become plain dicts)."""
        return {
            "cycles": self.cycles,
            "retired": self.retired,
            "none_triggered": self.none_triggered,
            "predicate_writes": self.predicate_writes,
            "enqueues": self.enqueues,
            "dequeues": self.dequeues,
            "retired_by_op": dict(self.retired_by_op),
            "retired_by_slot": {
                str(slot): count
                for slot, count in self.retired_by_slot.items()
            },
        }


class FunctionalPE:
    """One processing element executing at one instruction per cycle."""

    def __init__(
        self,
        params: ArchParams = DEFAULT_PARAMS,
        name: str = "pe",
        has_scratchpad: bool = True,
        initial_predicates: int = 0,
    ) -> None:
        self.params = params
        self.name = name
        self.inputs = [
            TaggedQueue(params.queue_capacity, f"{name}.i{i}")
            for i in range(params.num_input_queues)
        ]
        self.outputs = [
            TaggedQueue(params.queue_capacity, f"{name}.o{i}")
            for i in range(params.num_output_queues)
        ]
        self.regs = RegisterFile(params)
        self.preds = PredicateFile(params, initial_predicates)
        self.scratchpad = Scratchpad(params) if has_scratchpad else None
        self.scheduler = Scheduler(params)
        self.instructions: list[Instruction] = []
        self.counters = FunctionalCounters()
        self.halted = False
        self._initial_predicates = initial_predicates
        # One architectural queue view per PE; it reads live queue state
        # through the (stable) input/output lists, so rebuilding it per
        # cycle was pure allocation churn.
        self._view = ArchQueueView(self.inputs, self.outputs)
        # Fast path: triggers compiled at load time plus a memoized
        # trigger decision keyed on predicate state and a queue-status
        # signature built from monotone queue version counters.
        self._compiled = None
        self._dp_meta: list[CompiledDatapath] = []
        self._decision_cache: dict[tuple, object] = {}
        self._sig_queues = self.inputs + self.outputs
        #: Resilience seam: called with this PE at the top of every live
        #: cycle (see :mod:`repro.resilience.faults`).  None costs one
        #: attribute test per cycle.
        self.fault_hook = None
        #: Observability seam: a :class:`repro.obs.events.Telemetry` sink
        #: receiving retire events, or ``None`` (one attribute test per
        #: cycle, like ``fault_hook``).
        self.telemetry = None
        #: Ring of the most recent (cycle, slot) fires, for forensic dumps.
        self.recent_fires: deque[tuple[int, int]] = deque(maxlen=8)

    # ------------------------------------------------------------------
    # Host interface (the userspace library's role)
    # ------------------------------------------------------------------

    def load_program(self, instructions: list[Instruction]) -> None:
        """Program the instruction memory (validates against parameters)."""
        if len(instructions) > self.params.num_instructions:
            raise SimulationError(
                f"{self.name}: program of {len(instructions)} instructions "
                f"exceeds NIns = {self.params.num_instructions}"
            )
        for ins in instructions:
            if ins.valid:
                ins.validate(self.params)
        self.instructions = list(instructions)
        self._compiled = compile_program(self.instructions)
        self._dp_meta = compile_datapaths(self.instructions, self.params)
        self._decision_cache.clear()

    def invalidate_schedule_cache(self) -> None:
        """Drop memoized trigger decisions (call after external rewiring).

        Queue-version signatures are only monotone for the queue objects
        the PE currently holds; swapping a queue object (as fabric wiring
        does) could otherwise let a stale signature alias a new state.
        """
        self._decision_cache.clear()
        self._sig_queues = self.inputs + self.outputs

    def reset(self) -> None:
        """Return all architectural state to its post-configuration value."""
        for queue in self.inputs:
            queue.reset()
        for queue in self.outputs:
            queue.reset()
        self.regs.reset()
        self.preds.reset(self._initial_predicates)
        if self.scratchpad is not None:
            self.scratchpad.reset()
        self.counters = FunctionalCounters()
        self.halted = False
        self._decision_cache.clear()
        self.recent_fires.clear()

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Advance one cycle; returns True when an instruction retired."""
        if self.halted:
            return False
        self.counters.cycles += 1
        if self.fault_hook is not None:
            self.fault_hook(self)
        if self.telemetry is not None:
            self.telemetry.now = self.counters.cycles
        signature = 0
        for queue in self._sig_queues:
            signature += queue.version
        key = (self.preds.state, signature)
        outcome = self._decision_cache.get(key)
        if outcome is None:
            outcome = self.scheduler.evaluate(
                self.instructions, self.preds.state, self._view,
                compiled=self._compiled,
            )
            if len(self._decision_cache) >= 1 << 16:
                self._decision_cache.clear()
            self._decision_cache[key] = outcome
        if outcome.kind is not TriggerKind.FIRED:
            self.counters.none_triggered += 1
            return False
        self._execute(outcome.index)
        return True

    def _execute(self, slot: int) -> None:
        meta = self._dp_meta[slot]

        # Operand read (queue sources peek at the head; dequeue is separate).
        operands = []
        for code, payload in meta.operand_plan:
            if code == REG:
                operands.append(self.regs.read(payload))
            elif code == IN:
                operands.append(self.inputs[payload].peek(0).value)
            else:   # LIT: an immediate (pre-masked) or an absent source
                operands.append(payload)

        # Issue-time atomic actions: predicate force-update and dequeues.
        self.preds.apply_update(meta.pred_update)
        for queue in meta.deq:
            self.inputs[queue].dequeue()
            self.counters.dequeues += 1

        semantics = meta.semantics
        if semantics is not None:
            params = self.params
            mask = params.word_mask
            result = semantics(
                operands[0] & mask, operands[1] & mask, params, mask,
                params.word_width, self.scratchpad,
            )
        else:
            result = alu_execute(meta.op, operands[0], operands[1],
                                 self.params, self.scratchpad)

        if result.store is not None:
            if self.scratchpad is None:
                raise SimulationError(f"{self.name}: store without a scratchpad")
            self.scratchpad.store(*result.store)

        dst_kind = meta.dst_kind
        if dst_kind == DST_REG:
            self.regs.write(meta.dst_index, result.value)
        elif dst_kind == DST_OUT:
            self.outputs[meta.dst_index].enqueue(result.value, meta.out_tag)
            self.counters.enqueues += 1
        elif dst_kind == DST_PRED:
            self.preds.write_bit(meta.dst_index, result.value & 1)
            self.counters.predicate_writes += 1

        if result.halt:
            self.halted = True

        self.counters.retired += 1
        self.counters.retired_by_op[meta.op.mnemonic] += 1
        self.counters.retired_by_slot[slot] += 1
        self.recent_fires.append((self.counters.cycles, slot))
        if self.telemetry is not None:
            # The functional model issues and retires in the same cycle,
            # so one retire event carries the whole story.
            self.telemetry.emit(
                "retire", self.name, slot=slot, op=meta.op.mnemonic
            )

    def snapshot_arch_state(self) -> tuple:
        """Canonical, hashable architectural state (the checker seam).

        Everything a future cycle's behavior can depend on, as one
        nested tuple: registers, the predicate vector, the non-zero
        scratchpad words, the halt flag, and every queue's live and
        staged contents.  Performance counters and forensic rings are
        *excluded* — they never feed back into execution, and including
        monotone counters would make every state unique, defeating the
        bounded model checker's frontier deduplication.  The inverse is
        :meth:`restore_arch_state`.
        """
        scratch = ()
        if self.scratchpad is not None:
            scratch = tuple(
                (address, word)
                for address, word in enumerate(self.scratchpad.dump())
                if word
            )
        return (
            self.regs.snapshot(),
            self.preds.state,
            scratch,
            self.halted,
            tuple(queue.arch_state() for queue in self.inputs),
            tuple(queue.arch_state() for queue in self.outputs),
        )

    def restore_arch_state(self, state: tuple) -> None:
        """Restore a :meth:`snapshot_arch_state` snapshot onto this PE.

        Counters and forensic rings are left untouched (they are not
        architectural); the memoized trigger-decision cache is dropped so
        a stale decision can never alias the restored queue state.
        """
        regs, preds, scratch, halted, inputs, outputs = state
        for index, value in enumerate(regs):
            self.regs.write(index, value)
        self.preds.state = preds
        if self.scratchpad is not None:
            self.scratchpad.reset()
            for address, word in scratch:
                self.scratchpad.store(address, word)
        self.halted = halted
        for queue, enc in zip(self.inputs, inputs):
            queue.restore_arch(enc)
        for queue, enc in zip(self.outputs, outputs):
            queue.restore_arch(enc)
        self._decision_cache.clear()

    def snapshot_state(self) -> dict:
        """Structured architectural state for forensic dumps."""
        return {
            "name": self.name,
            "model": "functional",
            "halted": self.halted,
            "cycles": self.counters.cycles,
            "retired": self.counters.retired,
            "predicates": f"{self.preds.state:0{self.params.num_preds}b}",
            "registers": list(self.regs.snapshot()),
            "recent_fires": list(self.recent_fires),
            "inputs": [queue.snapshot() for queue in self.inputs],
            "outputs": [queue.snapshot() for queue in self.outputs],
        }

    def commit_queues(self) -> None:
        """Commit staged enqueues on queues this PE owns (single-PE runs).

        In a multi-PE :class:`~repro.fabric.system.System` the system
        commits each shared channel exactly once per cycle instead.
        """
        for queue in self.inputs:
            if queue._staged:
                queue.commit()
        for queue in self.outputs:
            if queue._staged:
                queue.commit()

    def run(self, max_cycles: int = 1_000_000) -> FunctionalCounters:
        """Run standalone until halt (single-PE convenience wrapper)."""
        for _ in range(max_cycles):
            if self.halted:
                break
            self.step()
            self.commit_queues()
        else:
            raise SimulationError(
                f"{self.name}: did not halt within {max_cycles} cycles"
            )
        return self.counters
