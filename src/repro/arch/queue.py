"""Tagged register queues — the operand channels between PEs.

Each queue entry carries a data word plus a small tag encoding semantic
information (datatype, end-of-stream, control messages...).  Queues are
the paper's communication substrate: a producer PE's output queue is the
consumer PE's input queue.

To keep multi-PE simulation deterministic regardless of the order PEs are
stepped in, enqueues are *staged*: :meth:`enqueue` buffers the entry and
:meth:`commit` (called by the system at the end of each cycle) makes it
visible to the consumer.  This models the one-cycle channel traversal of
a physical register queue.  Dequeues act immediately — the consumer owns
the head of the queue.

Capacity accounting counts staged entries, so a producer can never
oversubscribe a queue within a cycle.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import QueueError


@dataclass(frozen=True)
class QueueEntry:
    """One word travelling through a channel."""

    value: int
    tag: int = 0


class TaggedQueue:
    """A bounded FIFO of tagged words with staged enqueue."""

    #: Observability seam: a :class:`repro.obs.events.Telemetry` sink, or
    #: ``None``.  A class attribute so uninstrumented queues carry no
    #: per-instance storage; attaching telemetry shadows it per instance.
    telemetry = None

    def __init__(self, capacity: int, name: str = "") -> None:
        if capacity <= 0:
            raise QueueError(f"queue capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._live: deque[QueueEntry] = deque()
        self._staged: list[QueueEntry] = []
        #: Monotonic change counter, bumped by every mutation that could
        #: alter what a scheduler queue-status view reports.  Memoizing
        #: schedulers sum these versions into a cheap state signature:
        #: an unchanged sum guarantees unchanged queue status.
        self.version = 0

    # -- producer side --------------------------------------------------

    @property
    def free_slots(self) -> int:
        """Slots available for new enqueues (staged entries already count)."""
        return self.capacity - len(self._live) - len(self._staged)

    @property
    def is_full(self) -> bool:
        return self.free_slots == 0

    def enqueue(self, value: int, tag: int = 0) -> None:
        """Stage an entry; it becomes visible after the next commit."""
        if self.free_slots <= 0:
            raise QueueError(
                f"enqueue to full queue {self.name!r} "
                f"(capacity {self.capacity}, live {len(self._live)}, "
                f"staged {len(self._staged)})",
                queue_name=self.name,
            )
        self._staged.append(QueueEntry(value, tag))
        self.version += 1
        if self.telemetry is not None:
            self.telemetry.emit("enqueue", self.name, value=value, tag=tag)

    # -- consumer side --------------------------------------------------

    @property
    def occupancy(self) -> int:
        """Entries currently visible to the consumer."""
        return len(self._live)

    @property
    def is_empty(self) -> bool:
        return not self._live

    def peek(self, depth: int = 0) -> QueueEntry:
        """Inspect the entry ``depth`` positions behind the head.

        ``depth = 0`` is the head, ``depth = 1`` the "neck" that the
        effective-queue-status scheduler inspects when a dequeue is in
        flight (Section 5.3).
        """
        if depth >= len(self._live):
            raise QueueError(
                f"peek depth {depth} on queue {self.name!r} with "
                f"occupancy {len(self._live)}",
                queue_name=self.name,
            )
        return self._live[depth]

    def dequeue(self) -> QueueEntry:
        """Remove and return the head entry (takes effect immediately)."""
        if not self._live:
            raise QueueError(
                f"dequeue from empty queue {self.name!r} "
                f"(capacity {self.capacity}, staged {len(self._staged)})",
                queue_name=self.name,
            )
        self.version += 1
        entry = self._live.popleft()
        if self.telemetry is not None:
            self.telemetry.emit(
                "dequeue", self.name, value=entry.value, tag=entry.tag
            )
        return entry

    # -- simulation control ----------------------------------------------

    def commit(self) -> None:
        """Make staged enqueues visible.  Called once per cycle."""
        if self._staged:
            self._live.extend(self._staged)
            self._staged.clear()
            self.version += 1

    def reset(self) -> None:
        self._live.clear()
        self._staged.clear()
        self.version += 1

    # -- fault injection --------------------------------------------------
    #
    # Direct mutations of live entries, used by the resilience layer to
    # model upsets in the physical queue storage.  Every mutator bumps
    # ``version``: the memoizing schedulers key their decision caches on
    # summed queue versions, so an unversioned mutation would let a stale
    # cached decision mask the fault — exactly the failure mode the fault
    # campaign exists to measure, not to manufacture.

    def inject_tag_flip(self, position: int, bit: int) -> bool:
        """Flip one bit of the tag ``position`` entries behind the head."""
        if position >= len(self._live):
            return False
        entry = self._live[position]
        self._live[position] = QueueEntry(entry.value, entry.tag ^ (1 << bit))
        self.version += 1
        return True

    def inject_value_flip(self, position: int, bit: int) -> bool:
        """Flip one bit of the data word ``position`` entries behind the head."""
        if position >= len(self._live):
            return False
        entry = self._live[position]
        self._live[position] = QueueEntry(entry.value ^ (1 << bit), entry.tag)
        self.version += 1
        return True

    def inject_drop(self, position: int = 0) -> bool:
        """Silently lose one live entry (a dropped token)."""
        if position >= len(self._live):
            return False
        del self._live[position]
        self.version += 1
        return True

    def inject_duplicate(self, position: int = 0) -> bool:
        """Duplicate one live entry in place (a replayed token).

        Refuses when the queue has no physical slot free — queue storage
        cannot hold more words than it has flops.
        """
        if position >= len(self._live) or self.free_slots <= 0:
            return False
        self._live.insert(position, self._live[position])
        self.version += 1
        return True

    def drain(self) -> list[QueueEntry]:
        """Remove and return every visible entry (host-side helper)."""
        items = list(self._live)
        self._live.clear()
        self.version += 1
        return items

    def arch_state(self) -> tuple:
        """Canonical hashable contents: ``(live, staged)`` value/tag pairs.

        The bounded model checker's state encoding; restore with
        :meth:`restore_arch`.  Capacity and name are configuration, not
        state, so they are not included.
        """
        return (
            tuple((entry.value, entry.tag) for entry in self._live),
            tuple((entry.value, entry.tag) for entry in self._staged),
        )

    def restore_arch(self, state: tuple) -> None:
        """Restore an :meth:`arch_state` snapshot (bumps ``version`` so
        memoized scheduler decisions cannot alias the restored state)."""
        live, staged = state
        self._live.clear()
        self._live.extend(QueueEntry(value, tag) for value, tag in live)
        self._staged[:] = [QueueEntry(value, tag) for value, tag in staged]
        self.version += 1

    def entries(self) -> tuple[QueueEntry, ...]:
        """Non-destructive view of every pending entry, live then staged.

        Tooling helper (static analyzer, forensics): what would flow
        through this channel if nothing else were enqueued.
        """
        return tuple(self._live) + tuple(self._staged)

    def snapshot(self) -> dict:
        """Forensic view of the queue: occupancy plus head and neck entries.

        The "neck" (second entry) is what the effective-queue-status
        scheduler inspects when a dequeue is in flight, so a forensic
        dump needs both.
        """
        def entry(depth: int) -> tuple[int, int] | None:
            if depth >= len(self._live):
                return None
            e = self._live[depth]
            return (e.value, e.tag)

        return {
            "name": self.name,
            "occupancy": len(self._live),
            "staged": len(self._staged),
            "capacity": self.capacity,
            "head": entry(0),
            "neck": entry(1),
        }

    def __len__(self) -> int:
        return len(self._live)

    def __repr__(self) -> str:
        return (
            f"TaggedQueue({self.name!r}, occ={len(self._live)}, "
            f"staged={len(self._staged)}, cap={self.capacity})"
        )
