"""Compiled trigger descriptors — the scheduler's fast path.

Trigger resolution is the critical path of a triggered PE (paper
Section 4), and it is also the innermost loop of the simulator: every
cycle the scheduler re-derives each instruction's eligibility from the
:class:`~repro.isa.instruction.Instruction` dataclasses — enum
comparisons, property calls that rebuild frozensets, attribute chases
through ``ins.trigger`` and ``ins.dp``.  None of that varies after
``load_program``.

This module lowers each instruction's trigger once, at program-load
time, into a flat :class:`CompiledTrigger` descriptor of plain integers
and tuples.  Per-cycle eligibility then reduces to integer mask tests
and small tuple walks with no dataclass traffic.  The compiled form is
semantically exact: for every (predicate state, queue status, pending
mask) the scheduler's compiled path returns bit-for-bit the same
:class:`~repro.arch.scheduler.TriggerOutcome` as the reference path
over the original instructions — the differential suite in
``tests/test_pipeline_equivalence.py`` holds both paths to that.

A :class:`CompiledProgram` remembers the instruction list it was
compiled from (by identity), so holders can cheaply detect staleness
after a reload.
"""

from __future__ import annotations

from repro.isa.alu import _SEMANTICS
from repro.isa.instruction import DestinationType, Instruction, OperandType
from repro.params import ArchParams


class CompiledTrigger:
    """One instruction's trigger, lowered to flat integers and tuples.

    Fields mirror exactly what :meth:`Scheduler._eligibility` inspects:

    * ``index`` — the instruction's priority slot (descriptors for
      invalid slots are dropped at compile time, so the compiled walk
      skips them for free while reporting original indices);
    * ``pred_on`` / ``pred_off`` / ``watched`` — predicate bitmasks
      (``watched = pred_on | pred_off`` precomputed);
    * ``required_queues`` — input queues that must be non-empty (the
      union of trigger-checked, operand-read and dequeued queues);
    * ``tag_checks`` — ``(queue, tag, negate)`` triples against the
      effective head tag;
    * ``out_queue`` — output queue needing a free slot, or ``-1``;
    * ``side_effects`` — whether issue is forbidden during speculation
      (pre-retirement side effects, i.e. dequeues).
    """

    __slots__ = (
        "index",
        "pred_on",
        "pred_off",
        "watched",
        "required_queues",
        "tag_checks",
        "out_queue",
        "side_effects",
    )

    def __init__(self, index: int, ins: Instruction) -> None:
        trigger = ins.trigger
        self.index = index
        self.pred_on = trigger.pred_on
        self.pred_off = trigger.pred_off
        self.watched = trigger.pred_on | trigger.pred_off
        self.required_queues = tuple(sorted(ins.required_input_queues))
        self.tag_checks = tuple(
            (check.queue, check.tag, check.negate)
            for check in trigger.tag_checks
        )
        out = ins.output_queue
        self.out_queue = -1 if out is None else out
        self.side_effects = ins.dp.has_side_effects_before_retire


class CompiledProgram:
    """The compiled descriptors of one PE's instruction store."""

    __slots__ = ("source", "descriptors")

    def __init__(self, instructions: list[Instruction]) -> None:
        self.source = instructions
        self.descriptors: tuple[CompiledTrigger, ...] = tuple(
            CompiledTrigger(index, ins)
            for index, ins in enumerate(instructions)
            if ins.valid
        )

    def matches(self, instructions: list[Instruction]) -> bool:
        """Whether this compilation still describes ``instructions``."""
        return self.source is instructions

    def __len__(self) -> int:
        return len(self.descriptors)


def compile_program(instructions: list[Instruction]) -> CompiledProgram:
    """Lower a program's triggers for the scheduler fast path."""
    return CompiledProgram(instructions)


# Operand plan codes (CompiledDatapath.operand_plan): the payload is a
# literal value for LIT (NONE reads zero, IMM is pre-masked), a register
# index for REG, an input-queue index for IN.
LIT = 0
REG = 1
IN = 2

# Destination codes; values deliberately equal DestinationType.*.value.
DST_NONE = DestinationType.NONE.value
DST_REG = DestinationType.REG.value
DST_OUT = DestinationType.OUT.value
DST_PRED = DestinationType.PRED.value


class CompiledDatapath:
    """One instruction's datapath half, lowered for the simulators.

    Issue, operand capture, hazard checks and retirement all chase
    ``ins.dp`` enums and properties on every cycle an instruction is in
    flight; this flattens everything they read into plain ints and
    tuples once at program-load time.
    """

    __slots__ = (
        "op",
        "semantics",
        "late_result",
        "is_halt",
        "operand_plan",
        "reg_srcs",
        "deq",
        "dst_kind",
        "dst_index",
        "out_tag",
        "out_queue",
        "pred_update",
        "writes_reg",
        "writes_pred",
    )

    def __init__(self, ins: Instruction, params: ArchParams) -> None:
        dp = ins.dp
        self.op = dp.op
        # May be None for an op with no defined semantics; executors fall
        # back to alu_execute, which raises the canonical error.
        self.semantics = _SEMANTICS.get(dp.op.mnemonic)
        self.late_result = dp.op.late_result
        self.is_halt = dp.op.effects.halts
        plan = []
        for src in dp.srcs:
            if src.kind is OperandType.REG:
                plan.append((REG, src.index))
            elif src.kind is OperandType.IN:
                plan.append((IN, src.index))
            elif src.kind is OperandType.IMM:
                plan.append((LIT, dp.imm & params.word_mask))
            else:
                plan.append((LIT, 0))
        while len(plan) < 2:
            plan.append((LIT, 0))
        self.operand_plan = tuple(plan)
        self.reg_srcs = tuple(index for code, index in plan if code == REG)
        self.deq = dp.deq
        dst = dp.dst
        self.dst_kind = dst.kind.value
        self.dst_index = dst.index
        self.out_tag = dst.out_tag
        self.out_queue = dst.index if dst.kind is DestinationType.OUT else -1
        self.pred_update = dp.pred_update
        self.writes_reg = dst.kind is DestinationType.REG
        self.writes_pred = dst.kind is DestinationType.PRED


def compile_datapaths(
    instructions: list[Instruction], params: ArchParams
) -> list[CompiledDatapath]:
    """Lower every slot's datapath (invalid slots included, by position)."""
    return [CompiledDatapath(ins, params) for ins in instructions]
