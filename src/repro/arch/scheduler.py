"""Trigger resolution and priority encoding — the PE front end.

Every cycle the scheduler compares all instruction triggers against the
predicate state and queue status and fires the highest-priority triggered
instruction (Section 2.1).  The queue status it sees is abstracted behind
:class:`QueueStatusView`, which is the seam where the pipelined models
plug in conservative, effective (+Q), or padded accounting.

Pipelining introduces two suppression mechanisms the scheduler must
honor:

* ``pending_predicates`` — a mask of predicate bits with in-flight
  datapath writes.  An instruction whose trigger inspects a pending bit
  has *unknown* eligibility; priority semantics then forbid firing any
  lower-priority instruction past it (the predicate hazard).
* ``forbid_side_effects`` — set while a predicate speculation is
  unresolved (Section 5.2); a triggered instruction with pre-retirement
  side effects is then recognized but not issued (a forbidden cycle).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.arch.queue import TaggedQueue
from repro.arch.trigger_cache import CompiledProgram
from repro.isa.instruction import Instruction
from repro.params import ArchParams


class QueueStatusView:
    """What the scheduler believes about queue state.

    The architectural view (this base class) reports true occupancies.
    Subclasses in :mod:`repro.pipeline.queue_status` adjust for in-flight
    dequeues and enqueues in conservative or effective (+Q) fashion.
    """

    def __init__(self, inputs: list[TaggedQueue], outputs: list[TaggedQueue]) -> None:
        self.inputs = inputs
        self.outputs = outputs

    def input_count(self, queue: int) -> int:
        """Entries the scheduler may consider available on an input queue."""
        return self.inputs[queue].occupancy

    def input_tag(self, queue: int, position: int = 0) -> int | None:
        """Tag at the given *effective* position (0 = effective head)."""
        q = self.inputs[queue]
        if position >= q.occupancy:
            return None
        return q.peek(position).tag

    def output_space(self, queue: int) -> int:
        """Slots the scheduler may consider free on an output queue."""
        return self.outputs[queue].free_slots


ArchQueueView = QueueStatusView
"""Alias: the unadjusted architectural queue view."""


class _Eligibility(enum.Enum):
    TRIGGERED = "triggered"
    NOT_TRIGGERED = "not_triggered"
    UNKNOWN = "unknown"          # depends on a pending predicate write


class TriggerKind(enum.Enum):
    """Outcome classification of one scheduling cycle (Figure 5 taxonomy)."""

    FIRED = "fired"
    PREDICATE_HAZARD = "predicate_hazard"
    FORBIDDEN = "forbidden"
    NONE_TRIGGERED = "none_triggered"


@dataclass(frozen=True)
class TriggerOutcome:
    """Result of one trigger-resolution cycle."""

    kind: TriggerKind
    index: int | None = None   # fired (or forbidden) instruction slot

    @property
    def fired(self) -> bool:
        return self.kind is TriggerKind.FIRED


class Scheduler:
    """Priority-ordered trigger resolution over one PE's instruction list."""

    def __init__(self, params: ArchParams) -> None:
        self._params = params

    def evaluate(
        self,
        instructions: list[Instruction],
        pred_state: int,
        view: QueueStatusView,
        pending_predicates: int = 0,
        forbid_side_effects: bool = False,
        compiled: CompiledProgram | None = None,
    ) -> TriggerOutcome:
        """Resolve triggers for one cycle.

        Walks instructions in priority (list) order.  The first instruction
        whose eligibility is *unknown* (its trigger inspects a predicate
        with an in-flight write) stops the walk with a predicate hazard:
        nothing of lower priority may fire past it.  The first *triggered*
        instruction before any unknown one fires — unless speculation
        forbids its side effects, which is reported as a forbidden cycle.

        When ``compiled`` descriptors for the same program are supplied
        (see :mod:`repro.arch.trigger_cache`) the walk runs over flat
        integer masks instead of the instruction dataclasses; the outcome
        is bit-for-bit identical.
        """
        if compiled is not None:
            return self._evaluate_compiled(
                compiled, pred_state, view, pending_predicates,
                forbid_side_effects,
            )
        for index, ins in enumerate(instructions):
            status = self._eligibility(ins, pred_state, view, pending_predicates)
            if status is _Eligibility.UNKNOWN:
                return TriggerOutcome(TriggerKind.PREDICATE_HAZARD, index)
            if status is _Eligibility.TRIGGERED:
                if forbid_side_effects and ins.dp.has_side_effects_before_retire:
                    return TriggerOutcome(TriggerKind.FORBIDDEN, index)
                return TriggerOutcome(TriggerKind.FIRED, index)
        return TriggerOutcome(TriggerKind.NONE_TRIGGERED)

    def _evaluate_compiled(
        self,
        compiled: CompiledProgram,
        pred_state: int,
        view: QueueStatusView,
        pending_predicates: int,
        forbid_side_effects: bool,
    ) -> TriggerOutcome:
        """The fast path of :meth:`evaluate`: masks over flat descriptors.

        Invalid slots carry no descriptor, so the walk skips them for
        free; ``descriptor.index`` keeps outcomes reporting original
        priority slots.  Check order mirrors :meth:`_eligibility` exactly
        (queue occupancy, tag checks, output space, stable predicates,
        pending predicates) so short-circuit semantics cannot diverge.
        """
        input_count = view.input_count
        input_tag = view.input_tag
        output_space = view.output_space
        for d in compiled.descriptors:
            eligible = True
            for queue in d.required_queues:
                if input_count(queue) < 1:
                    eligible = False
                    break
            if not eligible:
                continue
            for queue, tag, negate in d.tag_checks:
                head_tag = input_tag(queue, 0)
                if head_tag is None or (head_tag == tag) is negate:
                    eligible = False
                    break
            if not eligible:
                continue
            if d.out_queue >= 0 and output_space(d.out_queue) < 1:
                continue
            watched = d.watched
            stable = watched & ~pending_predicates
            on_stable = d.pred_on & stable
            off_stable = d.pred_off & stable
            if (pred_state & on_stable) != on_stable:
                continue
            if (~pred_state & off_stable) != off_stable:
                continue
            if watched & pending_predicates:
                return TriggerOutcome(TriggerKind.PREDICATE_HAZARD, d.index)
            if forbid_side_effects and d.side_effects:
                return TriggerOutcome(TriggerKind.FORBIDDEN, d.index)
            return TriggerOutcome(TriggerKind.FIRED, d.index)
        return TriggerOutcome(TriggerKind.NONE_TRIGGERED)

    def triggered_indices(
        self,
        instructions: list[Instruction],
        pred_state: int,
        view: QueueStatusView,
        pending_predicates: int = 0,
    ) -> list[int]:
        """All instruction slots whose triggers are satisfied (telemetry).

        Honors ``pending_predicates`` the way issue does: a slot whose
        trigger inspects a predicate with an in-flight write has
        *unknown* eligibility and is not reported as triggered, rather
        than pending bits being silently read as stable.
        """
        return [
            index
            for index, ins in enumerate(instructions)
            if self._eligibility(ins, pred_state, view, pending_predicates)
            is _Eligibility.TRIGGERED
        ]

    def _eligibility(
        self,
        ins: Instruction,
        pred_state: int,
        view: QueueStatusView,
        pending_predicates: int,
    ) -> _Eligibility:
        if not ins.valid:
            return _Eligibility.NOT_TRIGGERED

        # Queue conditions are known regardless of predicate state; if they
        # fail, the instruction cannot trigger this cycle.
        for queue in ins.required_input_queues:
            if view.input_count(queue) < 1:
                return _Eligibility.NOT_TRIGGERED
        for check in ins.trigger.tag_checks:
            head_tag = view.input_tag(check.queue, 0)
            if head_tag is None or not check.matches(head_tag):
                return _Eligibility.NOT_TRIGGERED
        out_queue = ins.output_queue
        if out_queue is not None and view.output_space(out_queue) < 1:
            return _Eligibility.NOT_TRIGGERED

        # Predicate conditions: resolve what we can against non-pending
        # bits; pending watched bits make the outcome unknown.
        watched = ins.trigger.watched_predicates
        stable = watched & ~pending_predicates
        on_stable = ins.trigger.pred_on & stable
        off_stable = ins.trigger.pred_off & stable
        if (pred_state & on_stable) != on_stable:
            return _Eligibility.NOT_TRIGGERED
        if (~pred_state & off_stable) != off_stable:
            return _Eligibility.NOT_TRIGGERED
        if watched & pending_predicates:
            return _Eligibility.UNKNOWN
        return _Eligibility.TRIGGERED
