"""PE-local scratchpad memory (word addressed)."""

from __future__ import annotations

from repro.errors import SimMemoryError
from repro.params import ArchParams


class Scratchpad:
    """A small word-addressed local store for ``lsw`` / ``ssw``."""

    def __init__(self, params: ArchParams) -> None:
        self._params = params
        self._words = [0] * params.scratchpad_words

    def load(self, address: int) -> int:
        self._check(address)
        return self._words[address]

    def store(self, address: int, value: int) -> None:
        self._check(address)
        self._words[address] = value & self._params.word_mask

    def preload(self, values: list[int], base: int = 0) -> None:
        """Host-side bulk initialization (the userspace library's role)."""
        if base < 0 or base + len(values) > len(self._words):
            raise SimMemoryError(
                f"preload of {len(values)} words at {base} exceeds scratchpad "
                f"size {len(self._words)}"
            )
        for offset, value in enumerate(values):
            self._words[base + offset] = value & self._params.word_mask

    def dump(self, base: int = 0, count: int | None = None) -> list[int]:
        if count is None:
            count = len(self._words) - base
        self._check(base)
        self._check(base + count - 1)
        return self._words[base:base + count]

    def reset(self) -> None:
        for i in range(len(self._words)):
            self._words[i] = 0

    def _check(self, address: int) -> None:
        if not 0 <= address < len(self._words):
            raise SimMemoryError(
                f"scratchpad address {address} out of range "
                f"0..{len(self._words) - 1}"
            )

    def __len__(self) -> int:
        return len(self._words)
