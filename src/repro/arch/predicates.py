"""Predicate register file.

``NPreds`` single-bit registers whose state, together with queue status,
drives all control flow.  Two update paths exist:

* the issue-time :class:`~repro.isa.instruction.PredUpdate` force-set /
  force-clear masks (the triggered analogue of ``PC = PC + 4``), and
* datapath writes — a comparison or logic result landing in one predicate
  bit at writeback, the triggered analogue of a branch.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.isa.instruction import PredUpdate
from repro.params import ArchParams


class PredicateFile:
    """Bit-addressable predicate state held as one integer mask."""

    def __init__(self, params: ArchParams, initial: int = 0) -> None:
        self._params = params
        self._mask_all = (1 << params.num_preds) - 1
        if initial & ~self._mask_all:
            raise SimulationError(f"initial predicate state {initial:#x} out of range")
        self.state = initial

    def read_bit(self, index: int) -> int:
        self._check(index)
        return (self.state >> index) & 1

    def write_bit(self, index: int, value: int) -> None:
        """Datapath predicate write: any non-zero result sets the bit."""
        self._check(index)
        if value:
            self.state |= 1 << index
        else:
            self.state &= ~(1 << index)

    def apply_update(self, update: PredUpdate) -> None:
        """Issue-time force-set / force-clear update."""
        self.state = update.apply(self.state) & self._mask_all

    def reset(self, initial: int = 0) -> None:
        self.state = initial & self._mask_all

    def _check(self, index: int) -> None:
        if not 0 <= index < self._params.num_preds:
            raise SimulationError(f"predicate %p{index} out of range")

    def __repr__(self) -> str:
        return f"PredicateFile({self.state:0{self._params.num_preds}b})"
