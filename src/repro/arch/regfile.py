"""General-purpose data register file."""

from __future__ import annotations

from repro.errors import SimulationError
from repro.params import ArchParams


class RegisterFile:
    """``NRegs`` word-wide registers, initialized to zero."""

    def __init__(self, params: ArchParams) -> None:
        self._params = params
        self._regs = [0] * params.num_regs

    def read(self, index: int) -> int:
        if not 0 <= index < len(self._regs):
            raise SimulationError(f"read of register %r{index} out of range")
        return self._regs[index]

    def write(self, index: int, value: int) -> None:
        if not 0 <= index < len(self._regs):
            raise SimulationError(f"write of register %r{index} out of range")
        self._regs[index] = value & self._params.word_mask

    def reset(self) -> None:
        for i in range(len(self._regs)):
            self._regs[i] = 0

    def snapshot(self) -> tuple[int, ...]:
        return tuple(self._regs)

    def __len__(self) -> int:
        return len(self._regs)
