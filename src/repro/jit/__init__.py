"""Per-config specialization backend for the pipelined PE (ROADMAP item 1).

``repro.jit`` turns the interpreter's per-cycle generality into
straight-line Python generated once per (program, partition, ±P,
queue-policy, params) content fingerprint:

* :mod:`repro.jit.codegen` — emits the specialized ``step``/``run``
  source (stage walk unrolled, trigger resolution inlined per
  descriptor, ALU semantics baked in).
* :mod:`repro.jit.cache` — sha256 content fingerprinting and the
  compile-once module cache.
* :mod:`repro.jit.batch` — lockstep batching of N independent PE
  instances through one compiled module for fuzz/DSE campaigns.

Select it per PE with ``PipelinedPE(..., backend="jit")`` (the
``REPRO_JIT`` environment variable flips the process-wide default).
Instrumented paths — fault hooks, telemetry sinks — transparently fall
back to the interpreter, cycle for cycle.
"""

from repro.jit.batch import JitBatch
from repro.jit.cache import (
    JitProgram,
    block_exit_counts,
    cache_stats,
    clear_cache,
    fingerprint,
    get_compiled,
    jit_metrics,
)
from repro.jit.codegen import CODEGEN_VERSION, generate_source

__all__ = [
    "CODEGEN_VERSION",
    "JitBatch",
    "JitProgram",
    "block_exit_counts",
    "cache_stats",
    "clear_cache",
    "fingerprint",
    "generate_source",
    "get_compiled",
    "jit_metrics",
]
