"""Content-addressed compilation cache for generated PE modules.

The specialized source emitted by :mod:`repro.jit.codegen` depends only
on the *content* of the (program, pipeline config, arch params) tuple —
two PEs running the same program under the same configuration share one
compiled module (the generated functions take the PE as their first
argument and hold no per-PE state).  This module owns that keying:

* :func:`fingerprint` — a sha256 over the canonical lowered form of the
  program (the ``CompiledTrigger``/``CompiledDatapath`` fields the
  generator consumes), every numeric the config contributes to codegen,
  the full ``ArchParams`` tuple and ``CODEGEN_VERSION``.
* :func:`get_compiled` — fingerprint → compile once → reuse.  Recompiles
  of previously seen content are dictionary hits, which is what makes
  fuzz/DSE campaigns (thousands of short programs, many repeated) pay
  the ``compile()`` cost only per *distinct* program.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Any, Callable

from repro.isa.instruction import Instruction
from repro.params import ArchParams
from repro.pipeline.config import PipelineConfig

from repro.jit.codegen import (
    CODEGEN_VERSION,
    generate_source,
    semantics_table,
)
from repro.arch.trigger_cache import compile_datapaths, compile_program


@dataclass(frozen=True)
class JitProgram:
    """One compiled specialization: its key, source and entry points."""

    key: str
    source: str
    step: Callable[..., bool]
    run: Callable[..., int]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    compile_seconds: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "compile_seconds": self.compile_seconds,
        }


_CACHE: dict[str, JitProgram] = {}
STATS = CacheStats()

#: Why generated block runs returned control: reason -> count.  Filled
#: by the :func:`_counted_run` wrapper around every compiled ``run``;
#: surfaced via :func:`block_exit_counts`, the
#: :class:`~repro.obs.metrics.MetricsRegistry` snapshot, and the serve
#: tier's ``GET /metrics``.
BLOCK_EXITS: dict[str, int] = {}


def _counted_run(raw_run: Callable[..., int]) -> Callable[..., int]:
    """Wrap a generated block entry point with exit-reason accounting.

    The generated ``run`` has no hook to report *why* it stopped, and
    regenerating it would bump ``CODEGEN_VERSION`` for pure accounting —
    so the reason is inferred from post-call PE state instead, one dict
    update per block entry (amortized over the cycles the block ran).
    The wrapper keeps the exact positional signature the fused system
    loop uses and stays a plain function so ``__get__`` binding in
    ``PipelinedPE`` works unchanged.
    """

    def run(pe, budget, stop_on_enqueue=False, idle_streak=0,
            stall_limit=0, stop_on_dequeue=False):
        before = pe.counters.cycles
        try:
            streak = raw_run(pe, budget, stop_on_enqueue, idle_streak,
                             stall_limit, stop_on_dequeue)
        except Exception:
            BLOCK_EXITS["error"] = BLOCK_EXITS.get("error", 0) + 1
            raise
        ran = pe.counters.cycles - before
        if ran == 0:
            # The block refused to start (staged entries, attached hook).
            reason = "refused"
        elif pe.halted:
            reason = "halt"
        elif stall_limit and streak >= stall_limit:
            reason = "stall"
        elif ran >= budget:
            reason = "budget"
        elif stop_on_dequeue:
            # Dequeue wins ties with enqueue: the fused loop passes both
            # and the version-sum check fires first in generated code.
            reason = "dequeue"
        elif stop_on_enqueue:
            reason = "enqueue"
        else:
            reason = "other"
        BLOCK_EXITS[reason] = BLOCK_EXITS.get(reason, 0) + 1
        return streak

    return run


def fingerprint(
    instructions: list[Instruction],
    config: PipelineConfig,
    params: ArchParams,
) -> str:
    """Content key over everything the generator bakes into the source."""
    compiled = compile_program(instructions)
    dp_meta = compile_datapaths(instructions, params)
    triggers = tuple(
        (
            d.index, d.pred_on, d.pred_off, d.watched,
            d.required_queues, d.tag_checks, d.out_queue, d.side_effects,
        )
        for d in compiled.descriptors
    )
    datapaths = tuple(
        (
            meta.op.mnemonic, meta.late_result, meta.is_halt,
            meta.operand_plan, meta.reg_srcs, meta.deq,
            meta.dst_kind, meta.dst_index, meta.out_tag, meta.out_queue,
            meta.pred_update.set_mask, meta.pred_update.clear_mask,
            meta.writes_reg, meta.writes_pred, meta.semantics is None,
        )
        for meta in dp_meta
    )
    canon = (
        CODEGEN_VERSION,
        triggers,
        datapaths,
        config.name,
        tuple(config.stages),
        config.predicate_prediction,
        config.queue_policy.value,
        config.speculative_depth,
        config.depth,
        config.decode_stage,
        config.early_result_stage,
        config.late_result_stage,
        dataclasses.astuple(params),
    )
    return hashlib.sha256(repr(canon).encode()).hexdigest()


def _namespace() -> dict[str, Any]:
    """Globals injected into every generated module."""
    # Imported here (not at module top) to keep repro.jit importable
    # without dragging the full pipeline in, and to avoid import cycles
    # when pipeline.core lazily imports this module.
    from repro.isa.alu import AluResult, alu_execute
    from repro.pipeline.core import PipelinedPE, _InFlight, _Speculation

    return {
        "_InFlight": _InFlight,
        "_Speculation": _Speculation,
        "AluResult": AluResult,
        "_ALU_EXEC": alu_execute,
        # The *class* function — calling it with a PE positionally runs
        # one pure-interpreter cycle regardless of any instance binding.
        "_INTERP_STEP": PipelinedPE.step,
    }


def get_compiled(
    instructions: list[Instruction],
    config: PipelineConfig,
    params: ArchParams,
) -> JitProgram:
    """Return the compiled specialization, generating it on first use."""
    key = fingerprint(instructions, config, params)
    cached = _CACHE.get(key)
    if cached is not None:
        STATS.hits += 1
        return cached
    STATS.misses += 1
    import time

    started = time.perf_counter()
    source = generate_source(instructions, config, params)
    namespace = _namespace()
    namespace["SEM"] = semantics_table(instructions, params)
    code = compile(source, f"<jit:{key[:12]}>", "exec")
    exec(code, namespace)
    STATS.compile_seconds += time.perf_counter() - started
    program = JitProgram(
        key=key, source=source,
        step=namespace["step"], run=_counted_run(namespace["run"]),
    )
    _CACHE[key] = program
    return program


def clear_cache() -> None:
    """Drop all compiled modules and reset the hit/miss statistics."""
    _CACHE.clear()
    STATS.hits = 0
    STATS.misses = 0
    STATS.compile_seconds = 0.0
    BLOCK_EXITS.clear()


def cache_stats() -> dict[str, Any]:
    return {**STATS.as_dict(), "entries": len(_CACHE)}


def block_exit_counts() -> dict[str, int]:
    """Block-run exit reasons recorded since the last cache clear."""
    return dict(sorted(BLOCK_EXITS.items()))


def jit_metrics() -> dict[str, Any]:
    """One JSON-ready dict: cache stats plus block-exit reasons."""
    return {**cache_stats(), "block_exits": block_exit_counts()}
