"""Lockstep batching: N independent PE instances through one compiled module.

Fuzz and design-space-exploration campaigns evaluate the *same* program
(or a small set of programs) across many seeds, queue preloads, or
stimulus schedules.  :class:`JitBatch` arranges the instances
structure-of-arrays style: every member PE of a batch lane shares the
single compiled specialization for its (program, config, params)
fingerprint, and :meth:`step` advances all live members one cycle by
running that one generated ``step`` over the dense member list — no
per-member dispatch through the interpreter's generic walk, no
re-deriving of the specialization per instance.

Members stay full :class:`~repro.pipeline.core.PipelinedPE` objects, so
any member can be pulled out of the batch and inspected (or stepped
individually) with identical semantics; the batch only owns the
lockstep schedule, not the state layout.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import ConfigError
from repro.isa.instruction import Instruction
from repro.params import ArchParams, DEFAULT_PARAMS
from repro.pipeline.config import PipelineConfig, SINGLE_CYCLE
from repro.pipeline.core import PipelinedPE


class JitBatch:
    """Steps independent PE instances in lockstep through shared codegen."""

    def __init__(
        self,
        config: PipelineConfig = SINGLE_CYCLE,
        params: ArchParams = DEFAULT_PARAMS,
    ) -> None:
        self.config = config
        self.params = params
        self.pes: list[PipelinedPE] = []
        # Dense (step_function, pe) pairs, rebuilt when membership changes.
        self._lanes: list[tuple[Callable[[PipelinedPE], bool], PipelinedPE]] = []
        self.cycles = 0

    def __len__(self) -> int:
        return len(self.pes)

    def add(
        self,
        instructions: Sequence[Instruction],
        name: str | None = None,
    ) -> PipelinedPE:
        """Create a member PE running ``instructions`` under the batch config."""
        pe = PipelinedPE(
            config=self.config,
            params=self.params,
            name=name or f"lane{len(self.pes)}",
            backend="jit",
        )
        pe.load_program(list(instructions))
        if pe._jit is None:
            raise ConfigError(
                f"batch member {pe.name!r} failed to specialize; "
                "JitBatch requires the jit backend"
            )
        self.pes.append(pe)
        self._lanes.append((pe._jit.step, pe))
        return pe

    def step(self) -> int:
        """Advance every live member one cycle; returns how many progressed.

        Queue commits happen per member after its cycle, exactly as the
        single-instance drivers do, so producer/consumer pairs wired
        *within* one member observe the usual next-cycle visibility.
        """
        progressed = 0
        for step_fn, pe in self._lanes:
            if pe.halted:
                continue
            if step_fn(pe):
                progressed += 1
            pe.commit_queues()
        self.cycles += 1
        return progressed

    def run(self, max_cycles: int) -> int:
        """Step until every member halts or ``max_cycles`` elapse."""
        for _ in range(max_cycles):
            if all(pe.halted for pe in self.pes):
                break
            self.step()
        return self.cycles

    @property
    def halted(self) -> bool:
        return all(pe.halted for pe in self.pes)
