"""Per-config Python code generation for the pipelined PE (ROADMAP item 1).

For a fixed (program, partition, ±P, queue-policy) tuple every decision
the interpreter in :mod:`repro.pipeline.core` makes per cycle — which
stages exist, where decode and the result stages sit, which queues each
trigger inspects, what the ALU does, which destination a retirement
writes — is a compile-time constant.  This module emits one Python
module of straight-line source per such tuple: a specialized ``step``
and a block-mode ``run`` whose cycle body has the stage walk unrolled,
the trigger resolution inlined per descriptor (conditions folded down
to integer compares against baked masks and baked queue capacities),
and the issue/compute/retire effects of each slot inlined at their use
sites — the fire site knows its slot statically, and the retire and
result stages dispatch through a small ``if``-chain over the slots that
can actually reach them.

The generated code is *bit-identical* to the interpreter: it mutates the
same ``PipelinedPE`` state through the same sequence of effects (queue
version bumps, ``_state_version`` accounting, counter increments,
predictor training, speculation bookkeeping), so a PE may switch between
the two executors mid-run — which is exactly what happens on the cold
edges.  Whenever a fault hook or telemetry sink is attached, both entry
points defer to the interpreter (``_INTERP_STEP``) so instrumented runs
observe every seam the interpreter exposes.

Nothing here caches or keys anything; see :mod:`repro.jit.cache` for
content fingerprinting and compiled-module reuse.
"""

from __future__ import annotations

from repro.arch.trigger_cache import (
    DST_OUT,
    DST_PRED,
    DST_REG,
    IN,
    LIT,
    REG,
    CompiledDatapath,
    CompiledTrigger,
    compile_datapaths,
    compile_program,
)
from repro.isa.instruction import Instruction
from repro.params import ArchParams
from repro.pipeline.config import PipelineConfig, QueuePolicy
from repro.pipeline.queue_status import TAG_VISIBILITY

CODEGEN_VERSION = 2
"""Bumped whenever generated-source semantics change; part of the cache key."""

_STORE_OPS = frozenset({"ssw"})
"""Mnemonics whose results carry a scratchpad store effect."""

# Operations whose inlined form reads only operand ``a`` (operand ``b``
# need not be masked for them; the SEM/alu_execute fallbacks mask both).
_UNARY_OPS = frozenset({
    "nop", "halt", "mov", "not", "clz", "ctz", "popc", "sext8", "sext16",
    "eqz", "nez",
})


class _Emitter:
    """Indentation-tracking source accumulator."""

    def __init__(self) -> None:
        self.lines: list[str] = []

    def line(self, depth: int, text: str) -> None:
        self.lines.append("    " * depth + text)

    def blank(self) -> None:
        self.lines.append("")

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _alu_lines(
    meta: CompiledDatapath, slot: int, params: ArchParams, ev: str
) -> list[str]:
    """Statements computing ``<ev>.result`` from masked locals ``a``/``b``.

    Most operations inline to a single ``AluResult`` construction (with
    interned ``_AR0``/``_AR1``/``_HALT`` singletons for boolean and
    control results).  The loop-bodied and scratchpad operations call
    the shared semantics table (``SEM``), and operations with no defined
    semantics fall through to ``alu_execute`` for the canonical error.
    """
    m = params.word_mask
    w = params.word_width
    w2 = 1 << w
    sb = params.word_sign_bit
    sa = f"(a - {w2} if a & {sb} else a)"
    sgb = f"(b - {w2} if b & {sb} else b)"
    mn = meta.op.mnemonic
    table: dict[str, list[str]] = {
        "nop": [f"{ev}.result = _AR0"],
        "halt": [f"{ev}.result = _HALT"],
        "mov": [f"{ev}.result = AluResult(a)"],
        "add": [f"{ev}.result = AluResult((a + b) & {m})"],
        "sub": [f"{ev}.result = AluResult((a - b) & {m})"],
        "mul": [f"{ev}.result = AluResult((a * b) & {m})"],
        "mulh": [f"{ev}.result = AluResult((({sa} * {sgb}) >> {w}) & {m})"],
        "mulhu": [f"{ev}.result = AluResult(((a * b) >> {w}) & {m})"],
        "and": [f"{ev}.result = AluResult(a & b)"],
        "or": [f"{ev}.result = AluResult(a | b)"],
        "xor": [f"{ev}.result = AluResult(a ^ b)"],
        "nor": [f"{ev}.result = AluResult(~(a | b) & {m})"],
        "nand": [f"{ev}.result = AluResult(~(a & b) & {m})"],
        "xnor": [f"{ev}.result = AluResult(~(a ^ b) & {m})"],
        "not": [f"{ev}.result = AluResult(~a & {m})"],
        "shl": [f"{ev}.result = AluResult((a << (b % {w})) & {m})"],
        "shr": [f"{ev}.result = AluResult((a >> (b % {w})) & {m})"],
        "asr": [f"{ev}.result = AluResult(({sa} >> (b % {w})) & {m})"],
        "rol": [
            f"sh = b % {w}",
            f"{ev}.result = AluResult(((a << sh) | (a >> ({w} - sh))) & {m})"
            f" if sh else AluResult(a)",
        ],
        "ror": [
            f"sh = b % {w}",
            f"{ev}.result = AluResult(((a >> sh) | (a << ({w} - sh))) & {m})"
            f" if sh else AluResult(a)",
        ],
        "clz": [f"{ev}.result = AluResult({w} - a.bit_length() if a else {w})"],
        "ctz": [
            f"{ev}.result = AluResult((a & -a).bit_length() - 1 if a else {w})"
        ],
        "popc": [f'{ev}.result = AluResult(bin(a).count("1"))'],
        "eq": [f"{ev}.result = _AR1 if a == b else _AR0"],
        "ne": [f"{ev}.result = _AR1 if a != b else _AR0"],
        "slt": [f"{ev}.result = _AR1 if {sa} < {sgb} else _AR0"],
        "sle": [f"{ev}.result = _AR1 if {sa} <= {sgb} else _AR0"],
        "sgt": [f"{ev}.result = _AR1 if {sa} > {sgb} else _AR0"],
        "sge": [f"{ev}.result = _AR1 if {sa} >= {sgb} else _AR0"],
        "ult": [f"{ev}.result = _AR1 if a < b else _AR0"],
        "ule": [f"{ev}.result = _AR1 if a <= b else _AR0"],
        "ugt": [f"{ev}.result = _AR1 if a > b else _AR0"],
        "uge": [f"{ev}.result = _AR1 if a >= b else _AR0"],
        "eqz": [f"{ev}.result = _AR1 if a == 0 else _AR0"],
        "nez": [f"{ev}.result = _AR1 if a else _AR0"],
        "land": [f"{ev}.result = _AR1 if a and b else _AR0"],
        "lor": [f"{ev}.result = _AR1 if a or b else _AR0"],
    }
    if w >= 8:
        table["sext8"] = [
            "v = a & 255",
            f"{ev}.result = AluResult(((v | {m ^ 0xFF}) & {m})"
            f" if v & 128 else v)",
        ]
    if w >= 16:
        table["sext16"] = [
            "v = a & 65535",
            f"{ev}.result = AluResult(((v | {m ^ 0xFFFF}) & {m})"
            f" if v & 32768 else v)",
        ]
    lines = table.get(mn)
    if lines is not None:
        return lines
    if meta.semantics is not None:
        return [
            f"{ev}.result = SEM[{slot}](a, b, pe.params, {m}, {w},"
            " pe.scratchpad)"
        ]
    return [
        f"{ev}.result = _ALU_EXEC(pe._dp_meta[{slot}].op, a, b, pe.params,"
        " pe.scratchpad)"
    ]


class _Codegen:
    """Emits one generated module for a (program, config, params) tuple."""

    def __init__(
        self,
        instructions: list[Instruction],
        config: PipelineConfig,
        params: ArchParams,
    ) -> None:
        self.instructions = instructions
        self.config = config
        self.params = params
        self.compiled = compile_program(instructions)
        self.dp_meta = compile_datapaths(instructions, params)
        self.depth = config.depth
        self.dd = config.decode_stage
        self.early = config.early_result_stage
        self.late = config.late_result_stage
        self.predicts = config.predicate_prediction
        self.spec_depth = config.speculative_depth
        self.policy = config.queue_policy
        self.mask_all = (1 << params.num_preds) - 1
        self.valid_slots = [d.index for d in self.compiled.descriptors]
        self.rs = [
            (self.late if meta.late_result else self.early)
            for meta in self.dp_meta
        ]
        # ±P machinery is only live if some valid slot writes a predicate.
        self.any_pred_writer = any(
            self.dp_meta[n].writes_pred for n in self.valid_slots
        )
        # Registers some valid slot writes — operand scans for any other
        # register can skip the in-flight producer search entirely.
        self.written_regs = {
            self.dp_meta[n].dst_index
            for n in self.valid_slots
            if self.dp_meta[n].writes_reg
        }
        # Output queues some valid slot enqueues to: the only queues the
        # block loop can ever find staged entries on.
        self.written_outputs = sorted({
            self.dp_meta[n].dst_index
            for n in self.valid_slots
            if self.dp_meta[n].dst_kind == DST_OUT
        })
        # Input/output queues any trigger condition inspects.
        self.used_inputs = sorted({
            q
            for d in self.compiled.descriptors
            for q in d.required_queues
        } | {
            check[0]
            for d in self.compiled.descriptors
            for check in d.tag_checks
        })
        self.used_outputs = sorted({
            d.out_queue for d in self.compiled.descriptors if d.out_queue >= 0
        })
        out_capacity = params.queue_capacity
        if self.policy is QueuePolicy.PADDED:
            out_capacity += self.depth
        self.out_capacity = out_capacity
        # Naming mode for queue conditions; set per entry point.
        self._hoisted = False
        # Small programs dispatch pipeline entries to their slot's
        # inlined effects through an ``if``-chain (one or two compares);
        # past this size the chain's average compare count loses to a
        # tuple-indexed call into a per-slot function.
        self.use_tables = len(self.valid_slots) > 6

    # ------------------------------------------------------------------
    # Per-slot effect bodies (inlined at their use sites)
    # ------------------------------------------------------------------

    def _issue_body(self, em: _Emitter, d: int, slot: int, ev: str) -> None:
        """Issue effects for a statically-known slot (the fire site)."""
        meta = self.dp_meta[slot]
        em.line(d, f"{ev} = _InFlight(pe.instructions[{slot}],"
                   f" pe._dp_meta[{slot}], {slot}, pe._next_seq, 0)")
        em.line(d, "pe._next_seq += 1")
        em.line(d, f"pipe[0] = {ev}")
        em.line(d, "c.issued += 1")
        em.line(d, f"pe.recent_fires.append((c.cycles, {slot}))")
        update = meta.pred_update
        if update.set_mask or update.clear_mask:
            andm = (~update.clear_mask) & self.mask_all
            em.line(d, f"pe.preds.state = (pe.preds.state | {update.set_mask})"
                       f" & {andm}")
        bumps = len(meta.deq) + (1 if meta.out_queue >= 0 else 0)
        if bumps:
            for q in meta.deq:
                em.line(d, f"qs.pending_deqs[{q}] += 1")
                em.line(d, f"qs.sched_deqs[{q}] += 1")
            if meta.out_queue >= 0:
                em.line(d, f"qs.pending_enqs[{meta.out_queue}] += 1")
            em.line(d, f"pe._state_version += {bumps}")
        if meta.writes_pred and self.predicts:
            idx = meta.dst_index
            bit = 1 << idx
            em.line(d, "specs = pe._specs")
            em.line(d, f"if len(specs) < {self.spec_depth}:")
            em.line(d + 1, "pr = pe.predictor")
            # Inlined predictor fast path; forced inversions (fault
            # campaigns) take the full method for its flag handling.
            em.line(d + 1, "if pr.force_invert_next:")
            em.line(d + 2, f"p_ = pr.predict({idx})")
            em.line(d + 1, "else:")
            em.line(d + 2, "pr.last_forced = False")
            em.line(d + 2, f"p_ = 1 if pr.counters[{idx}] >= 2 else 0")
            em.line(d + 1, f"specs.append(_Speculation({ev}.seq, {idx}, p_,"
                           " pe.preds.state, pr.last_forced))")
            em.line(d + 1, "if p_:")
            em.line(d + 2, f"pe.preds.state |= {bit}")
            em.line(d + 1, "else:")
            em.line(d + 2, f"pe.preds.state &= ~{bit}")
        if meta.is_halt:
            em.line(d, "pe._halt_pending = True")

    def _emit_operand(self, em: _Emitter, var: str, code: int,
                      payload: int) -> None:
        """Assign one captured operand (with register forwarding) or return
        early if its youngest in-flight producer is not ready."""
        if code == LIT:
            em.line(1, f"{var} = {payload}")
            return
        if code == IN:
            em.line(1, f"{var} = pe.inputs[{payload}]._live[0].value")
            return
        # REG: in-order pipe ⇒ deeper stage is older; the first producer
        # found scanning from just past decode is the youngest.  A
        # register no slot writes can have no in-flight producer.
        scan = list(range(self.dd + 1, self.depth))
        if not scan or payload not in self.written_regs:
            em.line(1, f"{var} = pe.regs._regs[{payload}]")
            return
        match = (f"o_ is not None and o_.writes_reg"
                 f" and o_.meta.dst_index == {payload}")
        if len(scan) == 1:
            em.line(1, f"o_ = pipe[{scan[0]}]")
            em.line(1, f"if {match}:")
            em.line(2, "if not o_.result_ready:")
            em.line(3, "return")
            em.line(2, f"{var} = o_.result.value")
            em.line(1, "else:")
            em.line(2, f"{var} = pe.regs._regs[{payload}]")
        else:
            em.line(1, f"for j_ in {tuple(scan)}:")
            em.line(2, "o_ = pipe[j_]")
            em.line(2, f"if {match}:")
            em.line(3, "if not o_.result_ready:")
            em.line(4, "return")
            em.line(3, f"{var} = o_.result.value")
            em.line(3, "break")
            em.line(1, "else:")
            em.line(2, f"{var} = pe.regs._regs[{payload}]")

    def _emit_capture_fn(self, em: _Emitter, slot: int) -> None:
        """``_cap_<slot>(pe, e)``: operand capture with forwarding.

        Stays a function (unlike issue/compute/retire) because the
        not-ready producer case needs a multi-level early exit, which
        ``return`` expresses and inline code cannot.
        """
        meta = self.dp_meta[slot]
        em.line(0, f"def _cap_{slot}(pe, e):")
        plan = meta.operand_plan
        needs_pipe = (
            self.dd + 1 < self.depth
            and any(
                code == REG and payload in self.written_regs
                for code, payload in plan
            )
        )
        if needs_pipe:
            em.line(1, "pipe = pe._pipe")
        (c0, p0), (c1, p1) = plan
        self._emit_operand(em, "v0", c0, p0)
        self._emit_operand(em, "v1", c1, p1)
        em.line(1, "e.operands = (v0, v1)")
        em.line(1, "e.captured = True")
        if meta.deq:
            em.line(1, "qs = pe._queue_state")
            em.line(1, "c = pe.counters")
            for q in meta.deq:
                em.line(1, f"pe.inputs[{q}].dequeue()")
                em.line(1, f"qs.pending_deqs[{q}] -= 1")
                em.line(1, "c.dequeues += 1")
                em.line(1, "pe._state_version += 1")
        em.blank()

    def _exec_body(self, em: _Emitter, d: int, slot: int, ev: str) -> None:
        """Compute effects for a statically-known slot."""
        meta = self.dp_meta[slot]
        em.line(d, f"a, b = {ev}.operands")
        em.line(d, f"a &= {self.params.word_mask}")
        if meta.op.mnemonic not in _UNARY_OPS:
            em.line(d, f"b &= {self.params.word_mask}")
        for stmt in _alu_lines(meta, slot, self.params, ev):
            em.line(d, stmt)
        em.line(d, f"{ev}.result_ready = True")
        if meta.writes_pred and self.predicts:
            em.line(d, f"_pw_{slot}(pe, {ev}, {ev}.result.value & 1)")
            em.line(d, f"{ev}.pred_committed = True")

    def _ret_body(self, em: _Emitter, d: int, slot: int, ev: str) -> None:
        """Retire effects for a statically-known slot."""
        meta = self.dp_meta[slot]
        if self.dd == self.depth - 1:
            # Decode coalesced into the final stage: force the capture
            # (no deeper producers exist, so it cannot block).
            em.line(d, f"if not {ev}.captured:")
            em.line(d + 1, f"_cap_{slot}(pe, {ev})")
        em.line(d, f"if not {ev}.result_ready:")
        self._exec_body(em, d + 1, slot, ev)
        em.line(d, f"r_ = {ev}.result")
        for q in meta.deq:
            em.line(d, f"qs.sched_deqs[{q}] -= 1")
            em.line(d, "pe._state_version += 1")
        if meta.op.mnemonic in _STORE_OPS:
            em.line(d, "pe.scratchpad.store(*r_.store)")
        if meta.dst_kind == DST_REG:
            em.line(d, f"pe.regs._regs[{meta.dst_index}] = r_.value"
                       f" & {self.params.word_mask}")
        elif meta.dst_kind == DST_OUT:
            em.line(d, f"pe.outputs[{meta.dst_index}].enqueue(r_.value,"
                       f" {meta.out_tag})")
            em.line(d, f"qs.pending_enqs[{meta.dst_index}] -= 1")
            em.line(d, "c.enqueues += 1")
            em.line(d, "pe._state_version += 1")
        elif meta.dst_kind == DST_PRED:
            em.line(d, f"if not {ev}.pred_committed:")
            if self.predicts:
                em.line(d + 1, f"_pw_{slot}(pe, {ev}, r_.value & 1)")
            else:
                # No speculation machinery: the predicate commit folds to
                # a counter train plus a live-state bit write.
                idx = meta.dst_index
                bit = 1 << idx
                em.line(d + 1, "c.predicate_writes += 1")
                em.line(d + 1, "cn = pe.predictor.counters")
                em.line(d + 1, "if r_.value & 1:")
                em.line(d + 2, f"if cn[{idx}] < 3:")
                em.line(d + 3, f"cn[{idx}] += 1")
                em.line(d + 2, f"pe.preds.state |= {bit}")
                em.line(d + 1, "else:")
                em.line(d + 2, f"if cn[{idx}] > 0:")
                em.line(d + 3, f"cn[{idx}] -= 1")
                em.line(d + 2, f"pe.preds.state &= ~{bit}")
        if meta.is_halt:
            em.line(d, "pe.halted = True")
        elif meta.semantics is None:
            em.line(d, "if r_.halt:")
            em.line(d + 1, "pe.halted = True")
        em.line(d, "c.retired += 1")
        em.line(d, f"c.retired_by_op[{meta.op.mnemonic!r}] += 1")
        em.line(d, f"c.retired_by_slot[{slot}] += 1")

    def _emit_pred_write_fn(self, em: _Emitter, slot: int) -> None:
        """``_pw_<slot>(pe, e, v_)``: the ±P predicate commit, flattened.

        Mirrors ``PipelinedPE._commit_predicate_write`` exactly — train,
        spec lookup, unpredicted bypass with fallback patching, or
        resolution with accuracy accounting — but with the predicate
        index baked in and no generator allocations.  The misprediction
        flush stays a call into the PE (it is the rare path and owns the
        quash bookkeeping).
        """
        meta = self.dp_meta[slot]
        idx = meta.dst_index
        bit = 1 << idx
        em.line(0, f"def _pw_{slot}(pe, e, v_):")
        em.line(1, "pe.counters.predicate_writes += 1")
        em.line(1, "cn = pe.predictor.counters")
        em.line(1, "if v_:")
        em.line(2, f"if cn[{idx}] < 3:")
        em.line(3, f"cn[{idx}] += 1")
        em.line(1, "else:")
        em.line(2, f"if cn[{idx}] > 0:")
        em.line(3, f"cn[{idx}] -= 1")
        em.line(1, "specs = pe._specs")
        em.line(1, "sp = None")
        em.line(1, "for s_ in specs:")
        em.line(2, "if s_.owner_seq == e.seq:")
        em.line(3, "sp = s_")
        em.line(3, "break")
        em.line(1, "if sp is None:")
        # Unpredicted write: lands in the live state unless a younger
        # in-flight prediction already holds this bit; younger spec
        # fallbacks absorb it either way.
        em.line(2, "for s_ in specs:")
        em.line(3, f"if s_.pred_index == {idx} and s_.owner_seq > e.seq:")
        em.line(4, "break")
        em.line(2, "else:")
        em.line(3, "if v_:")
        em.line(4, f"pe.preds.state |= {bit}")
        em.line(3, "else:")
        em.line(4, f"pe.preds.state &= ~{bit}")
        em.line(2, "for s_ in specs:")
        em.line(3, "if s_.owner_seq > e.seq:")
        em.line(4, "if v_:")
        em.line(5, f"s_.fallback |= {bit}")
        em.line(4, "else:")
        em.line(5, f"s_.fallback &= ~{bit}")
        em.line(2, "return")
        em.line(1, "correct = sp.predicted == v_")
        em.line(1, "pr = pe.predictor")
        em.line(1, "if sp.forced:")
        em.line(2, "pr.forced += 1")
        em.line(2, "pe.counters.forced_predictions += 1")
        em.line(1, "else:")
        em.line(2, "pr.predictions += 1")
        em.line(2, "if correct:")
        em.line(3, "pr.correct += 1")
        em.line(2, "pe.counters.predictions += 1")
        em.line(1, "if correct:")
        em.line(2, "specs.remove(sp)")
        em.line(2, "return")
        em.line(1, "if not sp.forced:")
        em.line(2, "pe.counters.mispredictions += 1")
        em.line(1, "pe._flush_younger_than(sp.owner_seq)")
        em.line(1, "pe._specs = [s_ for s_ in pe._specs"
                   " if s_.owner_seq < sp.owner_seq]")
        em.line(1, "restored = sp.fallback")
        em.line(1, "if v_:")
        em.line(2, f"restored |= {bit}")
        em.line(1, "else:")
        em.line(2, f"restored &= ~{bit}")
        em.line(1, "pe.preds.state = restored")
        em.blank()

    def _slot_chain(self, em: _Emitter, d: int, slots: list[int], ev: str,
                    body) -> None:
        """Dispatch over the given slots with an ``if``-chain on ``.slot``,
        inlining ``body(em, depth, slot, ev)`` per branch."""
        if len(slots) == 1:
            body(em, d, slots[0], ev)
            return
        em.line(d, f"k_ = {ev}.slot")
        kw = "if"
        for slot in slots:
            em.line(d, f"{kw} k_ == {slot}:")
            body(em, d + 1, slot, ev)
            kw = "elif"

    def _emit_ret_fn(self, em: _Emitter, slot: int) -> None:
        """``_ret_<slot>(pe, e)``: the retire body as a table target."""
        em.line(0, f"def _ret_{slot}(pe, e):")
        em.line(1, "c = pe.counters")
        em.line(1, "qs = pe._queue_state")
        self._ret_body(em, 1, slot, "e")
        em.blank()

    def _emit_exc_fn(self, em: _Emitter, slot: int) -> None:
        """``_exc_<slot>(pe, e)``: the compute body as a table target."""
        em.line(0, f"def _exc_{slot}(pe, e):")
        self._exec_body(em, 1, slot, "e")
        em.blank()

    def _emit_tables(self, em: _Emitter) -> None:
        """Slot-indexed dispatch tuples (``None`` for invalid slots)."""
        def table(name: str, prefix: str) -> None:
            cells = [
                f"{prefix}{n}" if n in set(self.valid_slots) else "None"
                for n in range(len(self.instructions))
            ]
            em.line(0, f"{name} = ({', '.join(cells)},)")

        table("RET", "_ret_")
        table("EXC", "_exc_")
        table("CAP", "_cap_")
        rs = [
            str(self.rs[n]) if n in set(self.valid_slots) else "99"
            for n in range(len(self.instructions))
        ]
        em.line(0, f"RS = ({', '.join(rs)},)")
        em.blank()

    # ------------------------------------------------------------------
    # Trigger resolution
    # ------------------------------------------------------------------

    def _queue_conds(self, d: CompiledTrigger) -> list[str]:
        """Pure-expression queue conditions, in the interpreter's order:
        required occupancy, tag checks, output space.

        ``self._hoisted`` selects the naming: the block ``run`` hoists
        queues and booking arrays into locals once per invocation, while
        ``step`` references them through ``pe``/``qs`` — predicate
        gating means only the one or two surviving descriptors per cycle
        evaluate these, so per-call hoisting would cost more than the
        attribute chains it saves.
        """
        if self._hoisted:
            inq = "I{}".format
            outq = "O{}".format
            pd, sd, pen = "pd", "sd", "pen"
        else:
            inq = "pe.inputs[{}]".format
            outq = "pe.outputs[{}]".format
            pd, sd, pen = (
                "qs.pending_deqs", "qs.sched_deqs", "qs.pending_enqs"
            )
        conds: list[str] = []
        if self.policy is QueuePolicy.EFFECTIVE:
            for q in d.required_queues:
                conds.append(f"len({inq(q)}._live) > {pd}[{q}]")
            for q, tag, negate in d.tag_checks:
                op = "!=" if negate else "=="
                conds.append(f"{pd}[{q}] < {TAG_VISIBILITY}")
                conds.append(f"{inq(q)}._live[{pd}[{q}]].tag {op} {tag}")
            if d.out_queue >= 0:
                o = d.out_queue
                conds.append(
                    f"len({outq(o)}._live) + len({outq(o)}._staged)"
                    f" + {pen}[{o}] < {self.out_capacity}"
                )
        else:
            for q in d.required_queues:
                conds.append(f"not {sd}[{q}]")
                conds.append(f"{inq(q)}._live")
            for q, tag, negate in d.tag_checks:
                op = "!=" if negate else "=="
                conds.append(f"{inq(q)}._live[0].tag {op} {tag}")
            if d.out_queue >= 0:
                o = d.out_queue
                if self.policy is QueuePolicy.PADDED:
                    # Physical padding absorbs in-flight enqueues: the
                    # trigger checks live occupancy against the unpadded
                    # capacity and ignores staged entries (the reject
                    # buffer catches same-cycle traffic).
                    conds.append(
                        f"len({outq(o)}._live)"
                        f" < {self.out_capacity - self.depth}"
                    )
                else:
                    conds.append(f"not {pen}[{o}]")
                    conds.append(
                        f"len({outq(o)}._live) + len({outq(o)}._staged)"
                        f" < {self.out_capacity}"
                    )
        return conds

    def _emit_fire(self, em: _Emitter, d: int, slot: int,
                   terminal_true: list[str]) -> None:
        self._issue_body(em, d, slot, "e")
        if self.dd == 0:
            em.line(d, f"_cap_{slot}(pe, e)")
            if self.rs[slot] == 0:
                em.line(d, "if e.captured:")
                self._exec_body(em, d + 1, slot, "e")
        for text in terminal_true:
            em.line(d, text)

    def _emit_descriptor(self, em: _Emitter, base: int, d: CompiledTrigger,
                         terminal_true: list[str],
                         terminal_prog: list[str]) -> None:
        """One priority slot of the inline trigger walk."""
        slot = d.index
        forbid = (
            self.predicts and self.any_pred_writer and d.side_effects
        )
        conds = self._queue_conds(d)
        watched = d.watched
        pending_static_zero = not self.any_pred_writer

        def fire_tail(depth: int) -> None:
            if forbid:
                em.line(depth, "if pe._specs:")
                em.line(depth + 1, "c.forbidden_cycles += 1")
                for text in terminal_prog:
                    em.line(depth + 1, text)
            self._emit_fire(em, depth, slot, terminal_true)

        em.line(base, f"# slot {slot}: {self.dp_meta[slot].op.mnemonic}")
        if watched == 0 or pending_static_zero:
            # All watched bits are architectural: one stable compare,
            # cheapest first — most descriptors die on predicates.
            pred: list[str] = []
            if d.pred_on:
                pred.append(f"(ps & {d.pred_on}) == {d.pred_on}")
            if d.pred_off:
                pred.append(f"(inv & {d.pred_off}) == {d.pred_off}")
            allc = pred + conds
            if allc:
                em.line(base, f"if {' and '.join(allc)}:")
                fire_tail(base + 1)
            else:
                fire_tail(base)
            return
        # Dynamic pending mask.  ``((ps | pending) & on) == on`` holds
        # exactly when every stable on-bit is set (pending bits pass for
        # free), i.e. it IS the interpreter's stable-sub-mask match — and
        # it gates the descriptor before any queue checks run, which is
        # sound because all the conditions are pure and the hazard
        # outcome below still requires the queue conditions to hold.
        pred = []
        if d.pred_on:
            pred.append(f"((ps | pending) & {d.pred_on}) == {d.pred_on}")
        if d.pred_off:
            pred.append(f"((inv | pending) & {d.pred_off}) == {d.pred_off}")
        em.line(base, f"if {' and '.join(pred)}:")
        depth = base + 1
        if conds:
            em.line(depth, f"if {' and '.join(conds)}:")
            depth += 1
        em.line(depth, f"if {watched} & pending:")
        em.line(depth + 1, "c.pred_hazard_cycles += 1")
        for text in terminal_prog:
            em.line(depth + 1, text)
        fire_tail(depth)

    # ------------------------------------------------------------------
    # Cycle body (shared between step and run)
    # ------------------------------------------------------------------

    def _emit_cycle_body(self, em: _Emitter, base: int, mode: str) -> None:
        """The full cycle: stage walk, capture/compute, trigger resolve.

        ``mode`` selects the terminal statements: ``"step"`` returns the
        progressed flag, ``"run"`` breaks out of a one-shot inner loop
        with ``prog`` holding it.
        """
        if mode == "step":
            terminal_true = ["return True"]
            terminal_prog = ["return prog"]
        else:
            terminal_true = ["prog = True", "break"]
            terminal_prog = ["break"]
        depth = self.depth
        dd = self.dd

        # Phase 1: advance back to front; retire from the last stage.
        em.line(base, f"e_ = pipe[{depth - 1}]")
        em.line(base, "if e_ is not None:")
        if self.use_tables:
            em.line(base + 1, "RET[e_.slot](pe, e_)")
        else:
            self._slot_chain(
                em, base + 1, self.valid_slots, "e_", self._ret_body
            )
        em.line(base + 1, f"pipe[{depth - 1}] = None")
        em.line(base + 1, "prog = True")
        em.line(base + 1, "if pe.halted:")
        em.line(base + 2, "c.none_triggered_cycles += 1")
        for text in terminal_true:
            em.line(base + 2, text)
        for s in range(depth - 2, -1, -1):
            gate = " and e_.captured" if s == dd else ""
            em.line(base, f"e_ = pipe[{s}]")
            em.line(base, f"if e_ is not None and pipe[{s + 1}] is None{gate}:")
            em.line(base + 1, f"pipe[{s}] = None")
            em.line(base + 1, f"e_.stage = {s + 1}")
            em.line(base + 1, f"pipe[{s + 1}] = e_")

        # Phase 2: operand capture in D, then results deepest-first.  At
        # each stage only the slots whose result stage has been reached
        # can compute, so the dispatch chains are pre-filtered.
        em.line(base, f"e_ = pipe[{dd}]")
        em.line(base, "if e_ is not None and not e_.captured:")
        if self.use_tables:
            em.line(base + 1, "CAP[e_.slot](pe, e_)")
        else:
            self._slot_chain(
                em, base + 1, self.valid_slots, "e_",
                lambda em_, d_, slot, ev: em_.line(
                    d_, f"_cap_{slot}(pe, {ev})"
                ),
            )
        min_rs = min((self.rs[n] for n in self.valid_slots), default=0)
        for s in range(depth - 1, min_rs - 1, -1):
            eligible = [n for n in self.valid_slots if self.rs[n] <= s]
            if not eligible:
                continue
            em.line(base, f"e_ = pipe[{s}]")
            em.line(base, "if e_ is not None and e_.captured"
                          " and not e_.result_ready:")
            if self.use_tables:
                if len(eligible) == len(self.valid_slots):
                    em.line(base + 1, "EXC[e_.slot](pe, e_)")
                else:
                    em.line(base + 1, f"if RS[e_.slot] <= {s}:")
                    em.line(base + 2, "EXC[e_.slot](pe, e_)")
            else:
                self._slot_chain(em, base + 1, eligible, "e_",
                                 self._exec_body)

        # Phase 3: trigger resolution.
        em.line(base, "if pipe[0] is not None:")
        em.line(base + 1, "c.data_hazard_cycles += 1")
        for text in terminal_prog:
            em.line(base + 1, text)
        em.line(base, "if pe._halt_pending:")
        em.line(base + 1, "c.none_triggered_cycles += 1")
        for text in terminal_prog:
            em.line(base + 1, text)

        if self.any_pred_writer:
            em.line(base, "pending = 0")
            if self.predicts:
                em.line(base, "specs = pe._specs")
                em.line(base, "if specs:")
                em.line(base + 1, "for e_ in pipe:")
                em.line(base + 2, "if e_ is not None and e_.writes_pred"
                                  " and not e_.pred_committed:")
                em.line(base + 3, "for sp_ in specs:")
                em.line(base + 4, "if sp_.owner_seq == e_.seq:")
                em.line(base + 5, "break")
                em.line(base + 3, "else:")
                em.line(base + 4, "pending |= 1 << e_.meta.dst_index")
                em.line(base, "else:")
                em.line(base + 1, "for e_ in pipe:")
                em.line(base + 2, "if e_ is not None and e_.writes_pred"
                                  " and not e_.pred_committed:")
                em.line(base + 3, "pending |= 1 << e_.meta.dst_index")
            else:
                em.line(base, "for e_ in pipe:")
                em.line(base + 1, "if e_ is not None and e_.writes_pred"
                                  " and not e_.pred_committed:")
                em.line(base + 2, "pending |= 1 << e_.meta.dst_index")

        # Per-cycle hoists the descriptor conditions read.
        any_off = any(d.pred_off for d in self.compiled.descriptors)
        any_watched = any(d.watched for d in self.compiled.descriptors)
        if any_watched:
            em.line(base, "ps = pe.preds.state")
        if any_off:
            em.line(base, "inv = ~ps")

        for d in self.compiled.descriptors:
            self._emit_descriptor(em, base, d, terminal_true, terminal_prog)
        em.line(base, "c.none_triggered_cycles += 1")
        for text in terminal_prog:
            em.line(base, text)

    def _hoist_lines(self) -> list[str]:
        """Locals the block entry point hoists before its cycle loop."""
        lines = ["c = pe.counters", "pipe = pe._pipe", "qs = pe._queue_state"]
        if not self._hoisted:
            return lines
        for q in self.used_inputs:
            lines.append(f"I{q} = pe.inputs[{q}]")
        for o in self.used_outputs:
            lines.append(f"O{o} = pe.outputs[{o}]")
        if self.policy is QueuePolicy.EFFECTIVE:
            if self.used_inputs:
                lines.append("pd = qs.pending_deqs")
            if self.used_outputs:
                lines.append("pen = qs.pending_enqs")
        else:
            if self.used_inputs:
                lines.append("sd = qs.sched_deqs")
            if self.used_outputs and self.policy is not QueuePolicy.PADDED:
                lines.append("pen = qs.pending_enqs")
        return lines

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def _emit_step(self, em: _Emitter) -> None:
        self._hoisted = False
        em.line(0, "def step(pe):")
        em.line(1, "if pe.halted:")
        em.line(2, "return False")
        em.line(1, "if pe.fault_hook is not None or pe.telemetry is not None:")
        em.line(2, "return _INTERP_STEP(pe)")
        for text in self._hoist_lines():
            em.line(1, text)
        em.line(1, "c.cycles += 1")
        em.line(1, "prog = False")
        self._emit_cycle_body(em, 1, "step")
        em.blank()

    def _emit_run(self, em: _Emitter) -> None:
        self._hoisted = True
        em.line(0, "def run(pe, budget, stop_on_enqueue=False, idle_streak=0,"
                   " stall_limit=0, stop_on_dequeue=False):")
        em.line(1, '"""Block-step up to ``budget`` cycles with per-cycle')
        em.line(1, "queue commits; returns the updated idle streak.  Stops")
        em.line(1, "early on halt, on a staged enqueue (``stop_on_enqueue``),")
        em.line(1, "on any input dequeue (``stop_on_dequeue`` - so a sibling")
        em.line(1, "blocked on a full channel is re-evaluated the cycle after")
        em.line(1, "space appears, exactly as under interleaved stepping),")
        em.line(1, "or when the streak reaches ``stall_limit``.  Runs zero")
        em.line(1, "cycles - so callers fall back to the interpreter - when a")
        em.line(1, "hook or telemetry sink is attached, or when entries are")
        em.line(1, 'already staged on any queue."""')
        em.line(1, "if pe.fault_hook is not None or pe.telemetry is not None:")
        em.line(2, "return idle_streak")
        em.line(1, "for q_ in pe._sig_queues:")
        em.line(2, "if q_._staged:")
        em.line(3, "return idle_streak")
        for text in self._hoist_lines():
            em.line(1, text)
        for o in self.written_outputs:
            em.line(1, f"W{o} = pe.outputs[{o}]")
        if self.used_inputs:
            versions = " + ".join(f"I{q}.version" for q in self.used_inputs)
            em.line(1, f"dv_ = {versions}")
        em.line(1, "while budget > 0:")
        em.line(2, "if pe.halted:")
        em.line(3, "break")
        em.line(2, "budget -= 1")
        em.line(2, "c.cycles += 1")
        em.line(2, "prog = False")
        em.line(2, "while 1:")
        self._emit_cycle_body(em, 3, "run")
        # End of cycle: commit any enqueue this PE staged (only the
        # outputs the program writes can ever hold one here — the
        # prologue guaranteed everything else came in clean).
        if self.written_outputs:
            em.line(2, "stop = False")
            for o in self.written_outputs:
                em.line(2, f"if W{o}._staged:")
                em.line(3, f"W{o}.commit()")
                em.line(3, "stop = True")
        em.line(2, "if prog:")
        em.line(3, "idle_streak = 0")
        em.line(2, "else:")
        em.line(3, "idle_streak += 1")
        em.line(3, "if stall_limit and idle_streak >= stall_limit:")
        em.line(4, "break")
        if self.written_outputs:
            em.line(2, "if stop and stop_on_enqueue:")
            em.line(3, "break")
        if self.used_inputs:
            versions = " + ".join(f"I{q}.version" for q in self.used_inputs)
            em.line(2, f"if stop_on_dequeue and dv_ != ({versions}):")
            em.line(3, "break")
        em.line(1, "return idle_streak")
        em.blank()

    # ------------------------------------------------------------------

    def generate(self) -> str:
        em = _Emitter()
        em.line(0, f"# generated by repro.jit.codegen v{CODEGEN_VERSION}"
                   f" for config {self.config.name!r}")
        em.line(0, "_AR0 = AluResult(0)")
        em.line(0, "_AR1 = AluResult(1)")
        em.line(0, "_HALT = AluResult(halt=True)")
        em.blank()
        for slot in self.valid_slots:
            self._emit_capture_fn(em, slot)
            if self.predicts and self.dp_meta[slot].writes_pred:
                self._emit_pred_write_fn(em, slot)
        if self.use_tables:
            for slot in self.valid_slots:
                self._emit_exc_fn(em, slot)
                self._emit_ret_fn(em, slot)
            self._emit_tables(em)
        self._emit_step(em)
        self._emit_run(em)
        return em.source()


def generate_source(
    instructions: list[Instruction],
    config: PipelineConfig,
    params: ArchParams,
) -> str:
    """Emit the specialized module source for one (program, config) tuple."""
    return _Codegen(instructions, config, params).generate()


def semantics_table(
    instructions: list[Instruction], params: ArchParams
) -> tuple:
    """Per-slot semantics callables for the generated ``SEM[...]`` fallbacks."""
    return tuple(
        meta.semantics for meta in compile_datapaths(instructions, params)
    )
