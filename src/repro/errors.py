"""Exception hierarchy for the repro package.

Every error raised by the toolchain, the simulators, and the VLSI model
derives from :class:`ReproError`, so callers can catch one base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ParameterError(ReproError):
    """An architectural parameter is out of its legal range."""


class EncodingError(ReproError):
    """An instruction cannot be encoded or decoded."""


class AssemblerError(ReproError):
    """A triggered-assembly source program is malformed.

    Carries optional source coordinates so messages point at the offending
    line of assembly.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class SimulationError(ReproError):
    """The simulated machine reached an illegal state."""


class QueueError(SimulationError):
    """Illegal queue operation (dequeue from empty, enqueue to full)."""


class MemoryError_(SimulationError):
    """Out-of-bounds or otherwise illegal memory access."""


class ConfigError(ReproError):
    """An illegal microarchitecture or system configuration."""


class SynthesisError(ReproError):
    """A VLSI design point is infeasible (e.g. target frequency > f_max)."""
