"""Exception hierarchy for the repro package.

Every error raised by the toolchain, the simulators, and the VLSI model
derives from :class:`ReproError`, so callers can catch one base class.

Simulation errors carry *attribution*: the fabric annotates any error
escaping a PE's ``step`` with the PE name and the system cycle number
(:func:`attribute_error`), so a failure deep inside a multi-PE campaign
points at the offending PE without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ParameterError(ReproError):
    """An architectural parameter is out of its legal range."""


class EncodingError(ReproError):
    """An instruction cannot be encoded or decoded."""


class AssemblerError(ReproError):
    """A triggered-assembly source program is malformed.

    Carries optional source coordinates so messages point at the offending
    line of assembly.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            where = f"line {line}"
            if column is not None:
                where += f":{column}"
            message = f"{where}: {message}"
        super().__init__(message)


class SimulationError(ReproError):
    """The simulated machine reached an illegal state.

    ``pe_name`` and ``cycle`` are filled in by :func:`attribute_error`
    when the error crosses a fabric or PE boundary that knows them.
    """

    pe_name: str | None = None
    cycle: int | None = None


class QueueError(SimulationError):
    """Illegal queue operation (dequeue from empty, enqueue to full).

    ``queue_name`` identifies the offending channel (queue names embed
    the owning PE and port, e.g. ``"worker.i0"`` or
    ``"a.o1->b.i0"``).
    """

    def __init__(self, message: str, queue_name: str | None = None):
        self.queue_name = queue_name
        super().__init__(message)


class SimMemoryError(SimulationError):
    """Out-of-bounds or otherwise illegal memory access."""


#: Deprecated alias — the historical name shadow-punned Python's builtin
#: ``MemoryError``.  Use :class:`SimMemoryError`.
MemoryError_ = SimMemoryError


class InvariantViolation(SimulationError):
    """A runtime architectural invariant failed (resilience checker).

    Raised by :class:`repro.resilience.invariants.InvariantChecker` when
    per-cycle checking is enabled; indicates state corruption that the
    normal error paths did not catch.
    """


class DeadlockError(SimulationError):
    """The system made no architectural progress (or timed out).

    Carries a structured forensic ``report`` (per-PE predicate state,
    queue occupancies with head/neck tags, in-flight pipeline registers,
    last-triggered instructions) in addition to the formatted message.
    """

    def __init__(self, message: str, report: dict | None = None):
        self.report = report if report is not None else {}
        super().__init__(message)


class DivergenceError(SimulationError):
    """Fast-path and reference simulations disagreed on final state."""


class ConfigError(ReproError):
    """An illegal microarchitecture or system configuration."""


class SynthesisError(ReproError):
    """A VLSI design point is infeasible (e.g. target frequency > f_max)."""


class CampaignError(ReproError):
    """A parallel campaign task failed permanently.

    ``worker_traceback`` preserves the original traceback text from the
    worker process, which ``concurrent.futures`` would otherwise reduce
    to a bare exception repr.
    """

    def __init__(self, message: str, worker_traceback: str | None = None):
        self.worker_traceback = worker_traceback
        if worker_traceback:
            message = f"{message}\n--- worker traceback ---\n{worker_traceback}"
        super().__init__(message)


def attribute_error(
    exc: SimulationError, pe_name: str | None = None, cycle: int | None = None
) -> SimulationError:
    """Attach PE/cycle attribution to an in-flight simulation error.

    Idempotent: the first attribution wins (the innermost frame knows the
    precise coordinates) and the message is only extended once.
    """
    if exc.pe_name is None and pe_name is not None:
        exc.pe_name = pe_name
    if exc.cycle is None and cycle is not None:
        exc.cycle = cycle
    if not getattr(exc, "_attributed", False) and exc.args:
        tags = []
        if exc.pe_name is not None:
            tags.append(f"pe={exc.pe_name}")
        if exc.cycle is not None:
            tags.append(f"cycle={exc.cycle}")
        if tags:
            exc.args = (f"{exc.args[0]} [{', '.join(tags)}]",) + exc.args[1:]
            exc._attributed = True
    return exc
