"""Architectural and microarchitectural parameters (paper Table 1).

The whole toolchain — assembler, functional simulator, cycle-accurate
pipeline models and the VLSI cost model — is governed by one
:class:`ArchParams` object, mirroring the paper's single ``params.yaml``
file (Figure 1).  Derived binary-encoding field widths (paper Table 2)
are exposed as properties.

A note on ``MaxCheck``: the paper's Table 1 prints the value 4, but the
field-width arithmetic of Table 2 (``QueueIndices`` = 6 bits, ``NotTags``
= 2 bits, ``TagVals`` = 4 bits) and the quoted 106-bit instruction length
are only consistent with ``MaxCheck = 2``, which also matches the prose
("a maximum of two input channel tag conditions per trigger").  We default
to 2 so the encoded instruction is exactly 106 bits as published.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields

from repro.errors import ParameterError


def _clog2(value: int) -> int:
    """Ceiling of log2, as used for index field sizing (``dlog2(x)e``)."""
    if value <= 0:
        raise ParameterError(f"cannot take clog2 of non-positive value {value}")
    return max(1, math.ceil(math.log2(value)))


@dataclass(frozen=True)
class ArchParams:
    """Architectural parameters from paper Table 1.

    All parameters except ``num_ops``, ``num_srcs`` and ``num_dsts`` are
    recognized by the toolchain (the starred entries in Table 1 are fixed
    by the ISA definition itself).
    """

    num_regs: int = 8            # NRegs: general-purpose data registers
    num_input_queues: int = 4    # NIQueues: input channels
    num_output_queues: int = 4   # NOQueues: output channels
    max_check: int = 2           # MaxCheck: queues checked per trigger (see module docstring)
    max_deq: int = 2             # MaxDeq: dequeues allowed per instruction
    num_preds: int = 8           # NPreds: single-bit predicate registers
    word_width: int = 32         # Word: data word width in bits
    tag_width: int = 2           # TagWidth: queue tag width in bits
    num_instructions: int = 16   # NIns: instructions per PE
    num_ops: int = 42            # NOps*: operations in the ISA
    num_srcs: int = 2            # NSrcs*: source operands per instruction
    num_dsts: int = 1            # NDsts*: destinations per instruction
    # Microarchitectural knobs that ride along in the same file, as the
    # paper's parameter file also carries on/off feature settings.
    queue_capacity: int = 4      # entries per hardware operand queue
    scratchpad_words: int = 256  # PE-local scratchpad size in words

    def __post_init__(self) -> None:
        positive = [
            "num_regs", "num_input_queues", "num_output_queues", "max_check",
            "max_deq", "num_preds", "word_width", "tag_width",
            "num_instructions", "num_ops", "num_srcs", "num_dsts",
            "queue_capacity", "scratchpad_words",
        ]
        for name in positive:
            if getattr(self, name) <= 0:
                raise ParameterError(f"{name} must be positive, got {getattr(self, name)}")
        if self.max_check > self.num_input_queues:
            raise ParameterError(
                f"max_check ({self.max_check}) cannot exceed the number of "
                f"input queues ({self.num_input_queues})"
            )
        if self.max_deq > self.num_input_queues:
            raise ParameterError(
                f"max_deq ({self.max_deq}) cannot exceed the number of "
                f"input queues ({self.num_input_queues})"
            )
        if self.num_srcs < 1 or self.num_dsts < 1:
            raise ParameterError("instructions need at least one source and destination")

    # ------------------------------------------------------------------
    # Word helpers
    # ------------------------------------------------------------------

    @property
    def word_mask(self) -> int:
        """Bit mask covering one data word (e.g. 0xFFFFFFFF for 32-bit)."""
        return (1 << self.word_width) - 1

    @property
    def word_sign_bit(self) -> int:
        """Mask selecting the sign bit of a data word."""
        return 1 << (self.word_width - 1)

    @property
    def num_tags(self) -> int:
        """Number of distinct tag values representable in ``tag_width`` bits."""
        return 1 << self.tag_width

    # ------------------------------------------------------------------
    # Instruction field widths (paper Table 2)
    # ------------------------------------------------------------------

    @property
    def val_width(self) -> int:
        """Valid bit."""
        return 1

    @property
    def pred_mask_width(self) -> int:
        """Required on-set and off-set of predicates for trigger."""
        return 2 * self.num_preds

    @property
    def queue_index_width(self) -> int:
        """Width of one input-queue index (including the 'none' encoding)."""
        return _clog2(self.num_input_queues + 1)

    @property
    def queue_indices_width(self) -> int:
        """Input queues to check: MaxCheck x clog2(NIQueues + 1)."""
        return self.max_check * self.queue_index_width

    @property
    def not_tags_width(self) -> int:
        """Which checked queues match on *absence* of the given tag."""
        return self.max_check

    @property
    def tag_vals_width(self) -> int:
        """Vector of tags to seek on input queues."""
        return self.max_check * self.tag_width

    @property
    def op_width(self) -> int:
        """Opcode field."""
        return _clog2(self.num_ops)

    @property
    def src_types_width(self) -> int:
        """Source types (register, input queue, immediate, or none)."""
        return self.num_srcs * 2

    @property
    def src_id_width(self) -> int:
        """Width of one source index."""
        return _clog2(max(self.num_regs, self.num_input_queues))

    @property
    def src_ids_width(self) -> int:
        """Source indices."""
        return self.num_srcs * self.src_id_width

    @property
    def dst_types_width(self) -> int:
        """Destination types (register, output queue, or predicate)."""
        return self.num_dsts * 2

    @property
    def dst_id_width(self) -> int:
        """Width of one destination index."""
        return _clog2(max(self.num_regs, self.num_output_queues, self.num_preds))

    @property
    def dst_ids_width(self) -> int:
        """Destination indices."""
        return self.num_dsts * self.dst_id_width

    @property
    def out_tag_width(self) -> int:
        """Tag with which to enqueue the result."""
        return self.tag_width

    @property
    def iqueue_deq_width(self) -> int:
        """Input queues to dequeue: MaxDeq x clog2(NIQueues + 1)."""
        return self.max_deq * self.queue_index_width

    @property
    def pred_update_width(self) -> int:
        """Masks of which predicates to force high or low."""
        return 2 * self.num_preds

    @property
    def imm_width(self) -> int:
        """Full word-length immediate (a deliberate ISA choice, Section 2.2)."""
        return self.word_width

    @property
    def instruction_width(self) -> int:
        """Total encoded instruction width (106 bits at default parameters)."""
        return (
            self.val_width
            + self.pred_mask_width
            + self.queue_indices_width
            + self.not_tags_width
            + self.tag_vals_width
            + self.op_width
            + self.src_types_width
            + self.src_ids_width
            + self.dst_types_width
            + self.dst_ids_width
            + self.out_tag_width
            + self.iqueue_deq_width
            + self.pred_update_width
            + self.imm_width
        )

    @property
    def padded_instruction_width(self) -> int:
        """Instruction width padded to a round number of 32-bit words.

        The paper pads the 106-bit instruction to 128 bits for the
        memory-mapped host interface; the padding is never stored in the
        instruction memory.
        """
        return ((self.instruction_width + 31) // 32) * 32

    def field_widths(self) -> dict[str, int]:
        """Table 2 as a name -> width mapping, in encoding order."""
        return {
            "Val": self.val_width,
            "PredMask": self.pred_mask_width,
            "QueueIndices": self.queue_indices_width,
            "NotTags": self.not_tags_width,
            "TagVals": self.tag_vals_width,
            "Op": self.op_width,
            "SrcTypes": self.src_types_width,
            "SrcIDs": self.src_ids_width,
            "DstTypes": self.dst_types_width,
            "DstIDs": self.dst_ids_width,
            "OutTag": self.out_tag_width,
            "IQueueDeq": self.iqueue_deq_width,
            "PredUpdate": self.pred_update_width,
            "Imm": self.imm_width,
        }

    def table1(self) -> list[tuple[str, str, int]]:
        """Rows of paper Table 1: (parameter, description, value)."""
        return [
            ("NRegs", "Number of registers", self.num_regs),
            ("NIQueues", "Number of input queues", self.num_input_queues),
            ("NOQueues", "Number of output queues", self.num_output_queues),
            ("MaxCheck", "Max queues checked per trigger", self.max_check),
            ("MaxDeq", "Max dequeues allowed / ins", self.max_deq),
            ("NPreds", "Number of predicates", self.num_preds),
            ("Word", "Word width", self.word_width),
            ("TagWidth", "Queue tag width", self.tag_width),
            ("NIns", "Number of instructions per PE", self.num_instructions),
            ("NOps*", "Number of operations", self.num_ops),
            ("NSrcs*", "Number of source operands / ins", self.num_srcs),
            ("NDsts*", "Number of destinations / ins", self.num_dsts),
        ]

    @classmethod
    def from_dict(cls, raw: dict) -> "ArchParams":
        """Build parameters from a plain dict (the ``params.yaml`` role).

        Unknown keys raise :class:`ParameterError` so configuration typos
        do not silently fall back to defaults.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(raw) - known
        if unknown:
            raise ParameterError(f"unknown parameter(s): {sorted(unknown)}")
        return cls(**raw)


DEFAULT_PARAMS = ArchParams()
"""The paper's fixed parameterization (Table 1 'Value' column)."""
