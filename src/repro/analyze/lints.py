"""Program-level lint rules over one PE's triggered program.

Each rule is a pure function from the assembled program (plus optional
fabric knowledge — the tags that can actually arrive on each input
queue) to :class:`~repro.analyze.findings.Finding` objects:

``unsatisfiable-trigger`` (error)
    The trigger requires a predicate bit at a value the program can
    never produce: the bit is *frozen* — no instruction's issue-time
    update or datapath write ever touches it — yet the trigger demands
    the opposite of its ``.start`` value.

``redundant-pred-literal`` (warning)
    The trigger spells out a frozen bit at exactly its frozen value.
    The literal is vacuous; either the bit was meant to change or the
    guard was meant to be wider.

``unreachable-trigger`` (warning)
    Exhaustive predicate-state exploration (:mod:`repro.analyze.abstract`)
    proves the trigger can never be satisfied — dead code in the
    instruction store.

``trigger-shadowed`` (warning)
    A higher-priority slot is eligible whenever this slot is, so the
    priority encoder can never select it.

``trigger-overlap`` (warning)
    Two slots with *identical* predicate constraints can be eligible
    simultaneously and their effects do not commute (common dequeue,
    same destination register or predicate, conflicting predicate
    updates, a halt, or clashing scratchpad traffic): which one runs
    depends on data arrival timing.  Deliberate priority idioms — tag
    dispatch on one queue, fair merges across queues — stay unflagged
    because their effects commute or their tag checks conflict.

``speculation-window`` (note)
    A dequeue is reachable immediately after a datapath predicate
    write.  Dequeues take effect before retirement, so the +P pipeline
    must hold such instructions until the speculation resolves —
    forbidden cycles (Section 5.2).  A performance observation, not a
    bug: correct programs (e.g. ``merge``) do this by design.
"""

from __future__ import annotations

from repro.analyze.abstract import (
    Reachability,
    TagSets,
    explore,
    fire_successors,
    queue_conditions,
    tags_feasible,
)
from repro.analyze.findings import Finding, Severity, attach_source
from repro.asm.program import Program
from repro.isa.instruction import DestinationType, Instruction
from repro.params import ArchParams, DEFAULT_PARAMS


def _finding(rule: str, severity: Severity, message: str, pe: str | None,
             slot: int, ins: Instruction) -> Finding:
    return Finding(rule=rule, severity=severity, message=message, pe=pe,
                   slot=slot, line=ins.line, column=ins.column)


# ----------------------------------------------------------------------
# Frozen-bit rules
# ----------------------------------------------------------------------

def _touched_mask(instructions: list[Instruction]) -> int:
    """Predicate bits some instruction can change (update mask or write)."""
    touched = 0
    for ins in instructions:
        if not ins.valid:
            continue
        touched |= ins.dp.pred_update.touched
        if ins.dp.writes_predicate:
            touched |= 1 << ins.dp.dst.index
    return touched


def _frozen_bit_findings(
    instructions: list[Instruction], initial: int, params: ArchParams,
    pe: str | None,
) -> tuple[list[Finding], set[int]]:
    """Unsatisfiable / redundant literals on frozen bits.

    Returns the findings plus the set of slots proved unsatisfiable, so
    the reachability rule does not re-report them.
    """
    frozen = ~_touched_mask(instructions) & ((1 << params.num_preds) - 1)
    findings: list[Finding] = []
    unsatisfiable: set[int] = set()
    for slot, ins in enumerate(instructions):
        if not ins.valid:
            continue
        contradicted = []
        vacuous = []
        for bit in range(params.num_preds):
            mask = 1 << bit
            if not frozen & mask:
                continue
            value = bool(initial & mask)
            if ins.trigger.pred_on & mask:
                (vacuous if value else contradicted).append((bit, 1))
            elif ins.trigger.pred_off & mask:
                (contradicted if value else vacuous).append((bit, 0))
        if contradicted:
            bits = ", ".join(
                f"%p{bit} == {want}" for bit, want in contradicted)
            findings.append(_finding(
                "unsatisfiable-trigger", Severity.ERROR,
                f"trigger requires {bits}, but no instruction ever writes "
                "the bit and its .start value is the opposite — this "
                "instruction can never fire",
                pe, slot, ins,
            ))
            unsatisfiable.add(slot)
        elif vacuous:
            bits = ", ".join(f"%p{bit} == {want}" for bit, want in vacuous)
            findings.append(_finding(
                "redundant-pred-literal", Severity.WARNING,
                f"trigger tests {bits}, but the bit is frozen at that "
                "value (never touched by any predicate update or datapath "
                "write) — the literal is vacuous",
                pe, slot, ins,
            ))
    return findings, unsatisfiable


# ----------------------------------------------------------------------
# Reachability rule
# ----------------------------------------------------------------------

def _unreachable_findings(
    instructions: list[Instruction], reach: Reachability,
    params: ArchParams, input_tags: TagSets | None,
    pe: str | None, skip: set[int],
) -> list[Finding]:
    findings = []
    for slot in reach.unreachable_slots(instructions):
        if slot in skip:
            continue
        ins = instructions[slot]
        message = (
            "trigger can never be satisfied from any reachable "
            "predicate state — dead instruction slot"
            if tags_feasible(ins, input_tags, params.num_tags) else
            "trigger's queue conditions can never be met: the tags it "
            "checks for never arrive on the wired channel"
        )
        findings.append(_finding(
            "unreachable-trigger", Severity.WARNING, message, pe, slot, ins))
    return findings


# ----------------------------------------------------------------------
# Shadow / overlap rules
# ----------------------------------------------------------------------

def _tag_requirement(ins: Instruction, queue: int) -> tuple[int, bool] | None:
    """The (tag, negate) requirement ``ins`` places on ``queue``, if any.

    Encoding validity guarantees at most one check per queue.
    """
    for check in ins.trigger.tag_checks:
        if check.queue == queue:
            return (check.tag, check.negate)
    return None


def _implies(earlier: Instruction, later: Instruction) -> bool:
    """Whether *later* being eligible forces *earlier* to be eligible.

    True exactly when every firing condition of ``earlier`` is implied by
    a condition of ``later`` — predicate literals, queue availability,
    tag checks, and output-queue space.
    """
    if earlier.trigger.pred_on & ~later.trigger.pred_on:
        return False
    if earlier.trigger.pred_off & ~later.trigger.pred_off:
        return False
    if not earlier.required_input_queues <= later.required_input_queues:
        return False
    for check in earlier.trigger.tag_checks:
        other = _tag_requirement(later, check.queue)
        if other is None:
            return False
        tag, negate = other
        if check.negate:
            # head != t is implied by head != t, or by head == t2 (t2 != t)
            if not ((negate and tag == check.tag)
                    or (not negate and tag != check.tag)):
                return False
        elif negate or tag != check.tag:
            return False
    earlier_out = earlier.output_queue
    return earlier_out is None or earlier_out == later.output_queue


def _tags_compatible(a: Instruction, b: Instruction) -> bool:
    """Whether the two triggers' tag checks can hold simultaneously."""
    for check in a.trigger.tag_checks:
        other = _tag_requirement(b, check.queue)
        if other is None:
            continue
        tag, negate = other
        if not check.negate and not negate and tag != check.tag:
            return False
        if check.negate != negate and tag == check.tag:
            return False
    return True


def _conflicting_effects(a: Instruction, b: Instruction) -> str | None:
    """A human-readable reason the two actions do not commute, or None."""
    common_deq = set(a.dp.deq) & set(b.dp.deq)
    if common_deq:
        queues = ", ".join(f"%i{q}" for q in sorted(common_deq))
        return f"both dequeue {queues}"
    for kind, what in ((DestinationType.REG, "register %r{}"),
                       (DestinationType.PRED, "predicate %p{}")):
        if (a.dp.dst.kind is kind and b.dp.dst.kind is kind
                and a.dp.dst.index == b.dp.dst.index):
            return "both write " + what.format(a.dp.dst.index)
    pa, pb = a.dp.pred_update, b.dp.pred_update
    if (pa.set_mask & pb.clear_mask) or (pa.clear_mask & pb.set_mask):
        return "their predicate updates push a common bit both ways"
    if a.dp.op.effects.halts or b.dp.op.effects.halts:
        return "one of them halts the PE"
    ea, eb = a.dp.op.effects, b.dp.op.effects
    if (ea.touches_scratchpad and eb.touches_scratchpad
            and (ea.stores_scratchpad or eb.stores_scratchpad)):
        return "clashing scratchpad accesses"
    return None


def _shadow_overlap_findings(
    instructions: list[Instruction], reach: Reachability,
    pe: str | None, dead: set[int],
) -> list[Finding]:
    findings = []
    live = [
        slot for slot, ins in enumerate(instructions)
        if ins.valid and slot not in dead
    ]
    shadowed: set[int] = set()
    for j_pos, j in enumerate(live):
        for i in live[:j_pos]:
            if _implies(instructions[i], instructions[j]):
                findings.append(_finding(
                    "trigger-shadowed", Severity.WARNING,
                    f"whenever this trigger is eligible, higher-priority "
                    f"slot {i} is eligible too — the priority encoder can "
                    "never select this instruction",
                    pe, j, instructions[j],
                ))
                shadowed.add(j)
                break
    for j_pos, j in enumerate(live):
        if j in shadowed:
            continue
        for i in live[:j_pos]:
            a, b = instructions[i], instructions[j]
            if a.trigger.pred_on != b.trigger.pred_on:
                continue
            if a.trigger.pred_off != b.trigger.pred_off:
                continue
            if not _tags_compatible(a, b):
                continue
            reason = _conflicting_effects(a, b)
            if reason is None:
                continue
            findings.append(_finding(
                "trigger-overlap", Severity.WARNING,
                f"identical predicate guard as slot {i} and compatible "
                f"queue conditions, but the actions do not commute "
                f"({reason}) — which fires depends on data arrival timing",
                pe, j, b,
            ))
            break
    return findings


# ----------------------------------------------------------------------
# Speculation-window rule
# ----------------------------------------------------------------------

#: How many pure issues the window closure follows: a speculation lives
#: until its owner retires, at most the deepest pipeline's depth (4
#: stages, ``T|D|X1|X2``) after issue.
_SPEC_WINDOW_ISSUES = 4


def _speculation_pair_set(
    instructions: list[Instruction], reach: Reachability,
    params: ArchParams, input_tags: TagSets | None,
) -> set[tuple[int, int]]:
    feasible = [
        ins.valid and tags_feasible(ins, input_tags, params.num_tags)
        for ins in instructions
    ]
    pairs: set[tuple[int, int]] = set()
    for writer, states in sorted(reach.successors.items()):
        ins = instructions[writer]
        if not ins.dp.writes_predicate:
            continue
        written = 1 << ins.dp.dst.index
        # While the write is speculative (+P), the visible predicate
        # state is the *predicted* one: the post-write state when the
        # prediction is right, its complement in the written bit when it
        # is wrong (the window still exists — it just ends in a flush).
        window_states = set()
        for state in states:
            window_states.add(state)
            window_states.add(state ^ written)
        # The window spans several cycles; instructions without
        # pre-retire side effects still issue during it (only side
        # effects are forbidden) and their issue-time updates and
        # predicate writes move the visible state.  Close the window
        # set over those pure issues, bounded by the deepest pipeline's
        # speculation lifetime.
        frontier = set(window_states)
        for _ in range(_SPEC_WINDOW_ISSUES):
            nxt = set()
            for state in frontier:
                for slot, candidate in enumerate(instructions):
                    if not feasible[slot]:
                        continue
                    if not candidate.trigger.predicates_match(state):
                        continue
                    if not candidate.dp.has_side_effects_before_retire:
                        for succ in fire_successors(state, candidate):
                            if succ not in window_states:
                                nxt.add(succ)
                    if not queue_conditions(candidate):
                        break
            window_states |= nxt
            frontier = nxt
            if not frontier:
                break
        for state in sorted(window_states):
            for slot, candidate in enumerate(instructions):
                if not feasible[slot]:
                    continue
                if not candidate.trigger.predicates_match(state):
                    continue
                if candidate.dp.has_side_effects_before_retire:
                    # The pipeline forbids *every* pre-retire side effect
                    # while *any* speculation is outstanding, whether or
                    # not the candidate watches the written bit
                    # (``forbid = bool(self._specs)`` in the trigger
                    # stage) — the bounded checker's observed forbidden
                    # cycles pinned this down.
                    pairs.add((writer, slot))
                if not queue_conditions(candidate):
                    break
    return pairs


def _speculation_findings(
    instructions: list[Instruction], reach: Reachability,
    params: ArchParams, input_tags: TagSets | None, pe: str | None,
) -> list[Finding]:
    pairs = _speculation_pair_set(instructions, reach, params, input_tags)
    findings = []
    for writer, slot in sorted(pairs):
        ins = instructions[slot]
        findings.append(_finding(
            "speculation-window", Severity.NOTE,
            f"dequeues {', '.join(f'%i{q}' for q in ins.dp.deq)} while "
            f"slot {writer}'s datapath write to "
            f"%p{instructions[writer].dp.dst.index} may still be "
            "speculative; under +P the issue is held until the "
            "speculation resolves (forbidden cycles, Section 5.2)",
            pe, slot, ins,
        ))
    return findings


def speculation_pairs(
    program: Program,
    params: ArchParams = DEFAULT_PARAMS,
    input_tags: TagSets | None = None,
) -> set[tuple[int, int]]:
    """The speculation-window lint's raw ``(writer, held slot)`` pairs.

    This is the static over-approximation the bounded checker's observed
    forbidden cycles are validated against
    (:func:`repro.analyze.check.confirm_speculation_window`): every pair
    the checker *observes* at runtime must appear here, or the lint has
    a false negative.
    """
    reach = explore(program.instructions, program.initial_predicates,
                    params, input_tags)
    return _speculation_pair_set(program.instructions, reach, params,
                                 input_tags)


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def analyze_program(
    program: Program,
    params: ArchParams = DEFAULT_PARAMS,
    pe: str | None = None,
    input_tags: TagSets | None = None,
) -> list[Finding]:
    """All program-level findings for one assembled program.

    ``input_tags`` optionally narrows what can arrive on each input
    queue (see :data:`repro.analyze.abstract.TagSets`); the fabric
    analyzer supplies it from the actual system wiring.
    """
    name = pe if pe is not None else (program.name or None)
    instructions = program.instructions
    initial = program.initial_predicates
    reach = explore(instructions, initial, params, input_tags)

    findings, unsatisfiable = _frozen_bit_findings(
        instructions, initial, params, name)
    dead = unsatisfiable | set(reach.unreachable_slots(instructions))
    findings += _unreachable_findings(
        instructions, reach, params, input_tags, name, unsatisfiable)
    findings += _shadow_overlap_findings(instructions, reach, name, dead)
    findings += _speculation_findings(
        instructions, reach, params, input_tags, name)

    findings.sort(key=lambda f: (f.slot if f.slot is not None else -1,
                                 f.rule))
    return [attach_source(f, program) for f in findings]
