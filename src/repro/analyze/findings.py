"""Finding model and report emitters for the static analyzer.

A :class:`Finding` is one diagnostic produced by the program- or
fabric-level lints: a stable rule identifier, a severity, a message, and
enough source attribution (PE name, instruction slot, assembly
line/column) that a reader can jump from the report straight to the
offending ``when`` block.  Emitters render a finding list as terminal
text, JSON, or SARIF 2.1.0 — the last so CI systems and editors that
speak SARIF can ingest analyzer output without bespoke glue.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Finding severities, ordered so comparisons read naturally.

    ``NOTE`` marks performance observations (e.g. a dequeue inside a
    +P speculation window causes forbidden cycles, Section 5.2) that are
    inherent to correct programs; ``WARNING`` marks almost-certainly
    unintended program structure; ``ERROR`` marks programs that are
    provably wrong (a trigger that can never be satisfied).
    """

    NOTE = 1
    WARNING = 2
    ERROR = 3

    @property
    def label(self) -> str:
        return self.name.lower()

    @staticmethod
    def parse(text: str) -> "Severity":
        try:
            return Severity[text.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; choose from "
                f"{[s.label for s in Severity]}"
            ) from None


@dataclass(frozen=True)
class Finding:
    """One diagnostic from the static analyzer."""

    rule: str
    severity: Severity
    message: str
    pe: str | None = None         # PE / program name, when known
    slot: int | None = None       # instruction priority slot
    line: int | None = None       # 1-based assembly source line
    column: int | None = None     # 1-based column of the ``when`` guard
    snippet: str | None = field(default=None, compare=False)

    @property
    def location(self) -> str:
        """Compact human-readable location string."""
        parts = []
        if self.pe:
            parts.append(self.pe)
        if self.slot is not None:
            parts.append(f"slot {self.slot}")
        if self.line is not None:
            where = f"line {self.line}"
            if self.column is not None:
                where += f":{self.column}"
            parts.append(where)
        return ", ".join(parts)

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.label,
            "message": self.message,
            "pe": self.pe,
            "slot": self.slot,
            "line": self.line,
            "column": self.column,
        }


def attach_source(finding: Finding, program) -> Finding:
    """Return ``finding`` with the offending source line quoted, when the
    program carries its assembly text (see ``Program.source``)."""
    if finding.snippet is not None or finding.line is None or program is None:
        return finding
    text = program.source_line(finding.line)
    if text is None:
        return finding
    return Finding(
        rule=finding.rule, severity=finding.severity, message=finding.message,
        pe=finding.pe, slot=finding.slot, line=finding.line,
        column=finding.column, snippet=text.strip(),
    )


def worst_severity(findings: list[Finding]) -> Severity | None:
    return max((f.severity for f in findings), default=None)


def fails_build(findings: list[Finding], fail_on: str) -> bool:
    """Whether a finding list flips the exit status under ``--fail-on``.

    The comparison is the explicit :class:`Severity` order (note <
    warning < error, via the IntEnum values) — never string comparison,
    which would order the labels alphabetically ("error" < "note" <
    "warning") and silently invert the threshold.  ``"never"`` disables
    the gate entirely; any other unknown label raises ``ValueError``.
    """
    if fail_on == "never":
        return False
    threshold = Severity.parse(fail_on)
    worst = worst_severity(findings)
    return worst is not None and worst >= threshold


def count_by_severity(findings: list[Finding]) -> dict[str, int]:
    counts = {s.label: 0 for s in Severity}
    for finding in findings:
        counts[finding.severity.label] += 1
    return counts


# ----------------------------------------------------------------------
# Emitters
# ----------------------------------------------------------------------

def render_text(findings: list[Finding]) -> str:
    """Terminal report: one line per finding plus a severity summary."""
    lines = []
    for f in findings:
        where = f" ({f.location})" if f.location else ""
        lines.append(f"{f.severity.label}: {f.rule}{where}: {f.message}")
        if f.snippet:
            lines.append(f"    | {f.snippet}")
    counts = count_by_severity(findings)
    summary = ", ".join(
        f"{counts[s.label]} {s.label}(s)"
        for s in sorted(Severity, reverse=True)
    )
    lines.append(f"{len(findings)} finding(s): {summary}")
    return "\n".join(lines)


def render_json(findings: list[Finding]) -> str:
    return json.dumps(
        {
            "findings": [f.as_dict() for f in findings],
            "counts": count_by_severity(findings),
        },
        indent=2,
    )


#: SARIF maps severities onto its three result levels.
_SARIF_LEVEL = {Severity.NOTE: "note", Severity.WARNING: "warning",
                Severity.ERROR: "error"}


def render_sarif(findings: list[Finding], tool_version: str = "1.0") -> str:
    """Minimal SARIF 2.1.0 log: one run, one result per finding.

    Findings that came from assembled sources carry a physical location
    (the program's file path when assembled from disk, else the PE name
    as a logical artifact).
    """
    rules: dict[str, dict] = {}
    results = []
    for f in findings:
        rules.setdefault(f.rule, {"id": f.rule})
        result: dict = {
            "ruleId": f.rule,
            "level": _SARIF_LEVEL[f.severity],
            "message": {"text": f.message},
        }
        location: dict = {}
        if f.pe:
            location["logicalLocations"] = [{"name": f.pe}]
        if f.line is not None:
            region: dict = {"startLine": f.line}
            if f.column is not None:
                region["startColumn"] = f.column
            location["physicalLocation"] = {
                "artifactLocation": {"uri": f.pe or "<program>"},
                "region": region,
            }
        if location:
            result["locations"] = [location]
        results.append(result)
    log = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-analyze",
                "version": tool_version,
                "informationUri":
                    "https://example.invalid/repro/analyze",
                "rules": sorted(rules.values(), key=lambda r: r["id"]),
            }},
            "results": results,
        }],
    }
    return json.dumps(log, indent=2)
